//! Beyond-the-paper scalability: the paper tops out at 93 nodes; the Rust
//! implementation handles a ~500-node transit-stub network (≈60k ground
//! actions) in well under a second in release mode.
//!
//! Ignored in debug builds (grounding alone would dominate CI time);
//! run with `cargo test --release --test scale -- --ignored --include-ignored`
//! or just `cargo test --release` (not ignored there).

use sekitei::model::{media_domain, CppProblem, Goal, LevelScenario, StreamSource};
use sekitei::prelude::*;
use sekitei::topology::{transit_stub, TransitStubConfig};

fn huge_problem() -> CppProblem {
    let cfg = TransitStubConfig {
        transit_nodes: 5,
        stubs_per_transit: 5,
        stub_size: 20,
        seed: 3,
        ..TransitStubConfig::default()
    };
    let ts = transit_stub(&cfg);
    assert_eq!(ts.net.num_nodes(), 5 + 5 * 5 * 20);
    let server = ts.members[0][0][1];
    let client = ts.members[4][4][1];
    let d = media_domain(LevelScenario::C);
    CppProblem {
        network: ts.net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", server, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: client }],
    }
}

#[cfg_attr(debug_assertions, ignore = "release-only scale test")]
#[test]
fn five_hundred_node_network_plans_quickly() {
    let p = huge_problem();
    let t0 = std::time::Instant::now();
    let outcome = Planner::new(PlannerConfig::default()).plan(&p).unwrap();
    let elapsed = t0.elapsed();
    let plan = outcome.plan.expect("solvable");
    // 5 placements + compressed pair over the 5-hop path
    assert_eq!(plan.len(), 15, "{plan}");
    assert!(outcome.stats.total_actions > 30_000, "{}", outcome.stats.total_actions);
    // generous bound: ~360ms measured; fail loudly on order-of-magnitude
    // regressions without being flaky on slow machines
    assert!(elapsed.as_secs() < 30, "took {elapsed:?}");
    let report = validate_plan(&p, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
}
