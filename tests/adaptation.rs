//! Integration tests for deployment adaptation (paper §6 future work):
//! keep/migrate cost structure, stream re-routing, and interaction with
//! the ordinary planner.

use proptest::prelude::*;
use sekitei::model::adapt::{adapt_problem, AdaptConfig};
use sekitei::model::resource::names::{CPU, LBW};
use sekitei::model::{
    media_domain, CppProblem, ExistingDeployment, Goal, LinkClass, Network, StreamSource,
};
use sekitei::prelude::*;
use sekitei::sim::existing_from_plan;

fn diamond(bw_via_a: f64) -> CppProblem {
    let mut net = Network::new();
    let s = net.add_node("s", [(CPU, 30.0)]);
    let a = net.add_node("a", [(CPU, 30.0)]);
    let b = net.add_node("b", [(CPU, 30.0)]);
    let k = net.add_node("k", [(CPU, 30.0)]);
    net.add_link(s, a, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(a, k, LinkClass::Wan, [(LBW, bw_via_a)]);
    net.add_link(s, b, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(b, k, LinkClass::Wan, [(LBW, 70.0)]);
    let d = media_domain(LevelScenario::C);
    CppProblem {
        network: net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", s, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: k }],
    }
}

#[test]
fn adaptation_reuses_components_and_beats_fresh_replanning() {
    let planner = Planner::default();
    let healthy = diamond(70.0);
    let initial = planner.plan(&healthy).unwrap().plan.expect("healthy solvable");

    let degraded = diamond(40.0);
    let fresh = planner.plan(&degraded).unwrap().plan.expect("degraded solvable");

    let existing = existing_from_plan(&healthy, &initial);
    assert!(!existing.is_empty());
    let adapted_p = adapt_problem(&degraded, &existing, &AdaptConfig::default());
    let outcome = planner.plan(&adapted_p).unwrap();
    let adapted = outcome.plan.expect("adaptation solvable");

    assert!(adapted.cost_lower_bound < fresh.cost_lower_bound);
    // all previously running components kept in place
    for e in &existing.placements {
        let node_name = &adapted_p.network.node(e.node).name;
        assert!(
            adapted
                .steps
                .iter()
                .any(|s| s.name.starts_with(&format!("place({},{node_name})", e.component))),
            "{} not kept at {node_name}:\n{adapted}",
            e.component
        );
    }
    let report = validate_plan(&adapted_p, &outcome.task, &adapted);
    assert!(report.ok, "{:?}", report.violations);
}

#[test]
fn migration_happens_when_keeping_is_infeasible() {
    // degrade the CPU of the node hosting the Splitter to zero: the
    // component *must* move, paying the migration tariff
    let planner = Planner::default();
    let healthy = diamond(70.0);
    let initial = planner.plan(&healthy).unwrap().plan.expect("solvable");
    let existing = existing_from_plan(&healthy, &initial);
    let splitter_home = existing
        .placements
        .iter()
        .find(|e| e.component == "Splitter")
        .expect("initial plan has a splitter")
        .node;

    // rebuild the diamond with that node's CPU gone
    let mut degraded = diamond(70.0);
    let mut net = Network::new();
    for (id, n) in degraded.network.nodes() {
        let cpu = if id == splitter_home { 0.0 } else { n.resources[CPU] };
        net.add_node(n.name.clone(), [(CPU, cpu)]);
    }
    for (_, l) in degraded.network.links() {
        net.add_link(l.a, l.b, l.class, l.resources.clone().into_iter().collect::<Vec<_>>());
    }
    degraded.network = net;

    let adapted_p = adapt_problem(&degraded, &existing, &AdaptConfig::default());
    let outcome = planner.plan(&adapted_p).unwrap();
    let adapted = outcome.plan.expect("migration makes it solvable");
    let home_name = &adapted_p.network.node(splitter_home).name;
    let moved = adapted
        .steps
        .iter()
        .any(|s| s.name.starts_with("place(Splitter,") && !s.name.contains(home_name.as_str()));
    assert!(moved, "splitter must migrate off the dead node:\n{adapted}");
    let report = validate_plan(&adapted_p, &outcome.task, &adapted);
    assert!(report.ok, "{:?}", report.violations);
}

#[test]
fn keep_cost_monotone_in_config() {
    // a pricier keep narrows the gap to fresh replanning
    let planner = Planner::default();
    let healthy = diamond(70.0);
    let initial = planner.plan(&healthy).unwrap().plan.unwrap();
    let existing = existing_from_plan(&healthy, &initial);
    let degraded = diamond(40.0);
    let mut costs = Vec::new();
    for keep in [0.1, 2.0, 8.0] {
        let p = adapt_problem(
            &degraded,
            &existing,
            &AdaptConfig { keep_cost: keep, migration_factor: 1.5 },
        );
        let plan = planner.plan(&p).unwrap().plan.expect("solvable");
        costs.push(plan.cost_lower_bound);
    }
    assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
}

proptest! {
    // The degenerate case `adapt.rs` promises: with *nothing* deployed
    // there is nothing to keep or migrate, so adaptation must collapse to
    // scratch planning — same solvability and same optimal cost on every
    // Tiny scenario (including unsolvable A), for any cost model.
    #[test]
    fn empty_adaptation_equals_scratch_planning(
        keep_cost in 0.0..10.0f64,
        migration_factor in 0.1..5.0f64,
    ) {
        let planner = Planner::default();
        let cfg = AdaptConfig { keep_cost, migration_factor };
        for sc in LevelScenario::ALL {
            let p = sekitei::scenarios::tiny(sc);
            let adapted = adapt_problem(&p, &ExistingDeployment::default(), &cfg);
            let scratch = planner.plan(&p).unwrap().plan;
            let via_adapt = planner.plan(&adapted).unwrap().plan;
            match (&scratch, &via_adapt) {
                (Some(s), Some(a)) => prop_assert!(
                    (s.cost_lower_bound - a.cost_lower_bound).abs() < 1e-9,
                    "{sc:?}: scratch {} != adapted {}",
                    s.cost_lower_bound,
                    a.cost_lower_bound
                ),
                (None, None) => {} // scenario A: both unsolvable
                _ => prop_assert!(
                    false,
                    "{sc:?}: solvability diverged (scratch {}, adapted {})",
                    scratch.is_some(),
                    via_adapt.is_some()
                ),
            }
        }
    }
}

#[test]
fn adaptation_with_existing_streams_shortens_plans() {
    // a long-lived compressed stream already staged at the client's side
    // lets the planner skip the whole upstream pipeline
    let planner = Planner::default();
    let p = sekitei::scenarios::tiny(LevelScenario::C);
    let existing = sekitei::model::ExistingDeployment {
        placements: vec![],
        streams: vec![
            StreamSource::up_to("T", sekitei::model::NodeId(1), "ibw", 70.0),
            StreamSource::up_to("I", sekitei::model::NodeId(1), "ibw", 30.0),
        ],
    };
    let q = adapt_problem(&p, &existing, &AdaptConfig::default());
    let plan = planner.plan(&q).unwrap().plan.expect("solvable");
    // Merger + Client only: the T/I streams are already on n1
    assert_eq!(plan.len(), 2, "{plan}");
}
