//! Integration assertions for the paper's Table 2: the qualitative shape
//! of the scalability evaluation must hold — who finds plans, how long
//! they are, what they reserve, and how the work grows with levels.

use sekitei::model::LevelScenario;
use sekitei::planner::{plan_metrics, Plan, Planner, PlannerConfig, PlannerStats};
use sekitei::scenarios::{self, NetSize};

fn solve(size: NetSize, sc: LevelScenario) -> (Option<Plan>, PlannerStats, f64) {
    let p = scenarios::problem(size, sc);
    let planner = Planner::new(PlannerConfig {
        // keep the unsolvable scenario-A searches snappy in CI
        max_nodes: 300_000,
        max_candidate_rejects: 2_000,
        ..PlannerConfig::default()
    });
    let o = planner.plan(&p).unwrap();
    let lan =
        o.plan.as_ref().map(|plan| plan_metrics(&p, &o.task, plan).reserved_lan_bw).unwrap_or(-1.0);
    (o.plan, o.stats, lan)
}

#[test]
fn scenario_a_fails_on_every_network() {
    for size in NetSize::ALL {
        let (plan, _, _) = solve(size, LevelScenario::A);
        assert!(plan.is_none(), "{size:?}: greedy scenario A must not find a plan");
    }
}

#[test]
fn tiny_plans_have_seven_actions() {
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
        let (plan, _, _) = solve(NetSize::Tiny, sc);
        let plan = plan.unwrap_or_else(|| panic!("{sc:?} must solve Tiny"));
        assert_eq!(plan.len(), 7, "{sc:?}");
    }
}

#[test]
fn tiny_scenario_b_lower_bound_is_action_count() {
    // Table 2: scenario B's bound collapses to 1 per action (7/10/11)
    let (plan, _, _) = solve(NetSize::Tiny, LevelScenario::B);
    assert!((plan.unwrap().cost_lower_bound - 7.0).abs() < 1e-9);
    let (plan, _, _) = solve(NetSize::Small, LevelScenario::B);
    assert!((plan.unwrap().cost_lower_bound - 10.0).abs() < 1e-9);
    let (plan, _, _) = solve(NetSize::Large, LevelScenario::B);
    assert!((plan.unwrap().cost_lower_bound - 11.0).abs() < 1e-9);
}

#[test]
fn small_b_suboptimal_vs_c_optimal() {
    // Figure 9: B finds the 10-action plan reserving 100 units of LAN
    // bandwidth; C finds the 13-action plan reserving only 65.
    let (plan_b, _, lan_b) = solve(NetSize::Small, LevelScenario::B);
    let plan_b = plan_b.unwrap();
    assert_eq!(plan_b.len(), 10);
    assert!((lan_b - 100.0).abs() < 1e-6, "B reserves {lan_b}");

    for sc in [LevelScenario::C, LevelScenario::D, LevelScenario::E] {
        let (plan, _, lan) = solve(NetSize::Small, sc);
        let plan = plan.unwrap();
        assert_eq!(plan.len(), 13, "{sc:?}");
        assert!((lan - 65.0).abs() < 1e-6, "{sc:?} reserves {lan}");
    }
}

#[test]
fn large_b_11_actions_then_13_optimal() {
    let (plan_b, _, lan_b) = solve(NetSize::Large, LevelScenario::B);
    let plan_b = plan_b.unwrap();
    assert_eq!(plan_b.len(), 11);
    assert!((lan_b - 100.0).abs() < 1e-6);

    let (plan_c, _, lan_c) = solve(NetSize::Large, LevelScenario::C);
    let plan_c = plan_c.unwrap();
    assert_eq!(plan_c.len(), 13);
    assert!((lan_c - 65.0).abs() < 1e-6);
}

#[test]
fn optimal_plans_cost_less_despite_more_actions() {
    // the heart of the paper: 13 actions can be cheaper than 10 when the
    // cost function prices bandwidth
    let p_b = scenarios::small(LevelScenario::B);
    let p_c = scenarios::small(LevelScenario::C);
    let planner = Planner::default();
    let plan_b = planner.plan(&p_b).unwrap().plan.unwrap();
    let plan_c = planner.plan(&p_c).unwrap().plan.unwrap();
    // evaluate both plans under the *same* (true) cost model via the sim
    let o_b = planner.plan(&p_b).unwrap();
    let o_c = planner.plan(&p_c).unwrap();
    let real_b = sekitei::sim::validate_plan(&p_b, &o_b.task, &plan_b).total_cost;
    let real_c = sekitei::sim::validate_plan(&p_c, &o_c.task, &plan_c).total_cost;
    assert!(plan_c.len() > plan_b.len());
    assert!(real_c < real_b, "optimal plan must be really cheaper: {real_c} vs {real_b}");
}

#[test]
fn ground_actions_grow_with_levels_and_network() {
    let mut prev = 0usize;
    for sc in LevelScenario::ALL {
        let (_, stats, _) = solve(NetSize::Tiny, sc);
        assert!(stats.total_actions >= prev, "{sc:?}");
        prev = stats.total_actions;
    }
    // larger networks ground more actions at the same scenario
    let (_, t, _) = solve(NetSize::Tiny, LevelScenario::C);
    let (_, s, _) = solve(NetSize::Small, LevelScenario::C);
    let (_, l, _) = solve(NetSize::Large, LevelScenario::C);
    assert!(t.total_actions < s.total_actions);
    assert!(s.total_actions < l.total_actions);
}

#[test]
fn leveling_link_bandwidth_costs_work_not_quality() {
    // paper §4.3: scenario E does not improve the solution but increases
    // the planner's work relative to D
    let (plan_d, stats_d, lan_d) = solve(NetSize::Small, LevelScenario::D);
    let (plan_e, stats_e, lan_e) = solve(NetSize::Small, LevelScenario::E);
    let (plan_d, plan_e) = (plan_d.unwrap(), plan_e.unwrap());
    assert_eq!(plan_d.len(), plan_e.len());
    assert!((plan_d.cost_lower_bound - plan_e.cost_lower_bound).abs() < 1e-6);
    assert!((lan_d - lan_e).abs() < 1e-6);
    assert!(stats_e.total_actions > stats_d.total_actions);
}

#[test]
fn all_found_plans_validate_in_simulator() {
    for size in NetSize::ALL {
        for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
            let p = scenarios::problem(size, sc);
            let o = Planner::default().plan(&p).unwrap();
            let plan = o.plan.unwrap_or_else(|| panic!("{size:?}/{sc:?}"));
            let report = sekitei::sim::validate_plan(&p, &o.task, &plan);
            assert!(report.ok, "{size:?}/{sc:?}: {:?}", report.violations);
        }
    }
}
