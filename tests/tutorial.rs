//! The spec from docs/TUTORIAL.md, verified verbatim: if this test fails,
//! the tutorial is lying to its readers.

use sekitei::planner::Planner;
use sekitei::sim::{plan_ops, plan_sources, simulate};
use sekitei::spec::parse_problem;

const TUTORIAL_SPEC: &str = r#"
resource node cpu;
resource link lbw;
resource link secure rigid static;      # tested, never consumed

interface Req {
    property ibw;
    levels ibw [40];                    # cut at the demand
    cross {
        when { link.secure >= 1; }      # plaintext only on trusted links
        effect {
            link.lbw -= min(Req.ibw, link.lbw);
            Req.ibw := min(Req.ibw, link.lbw);
        }
        cost 1 + Req.ibw / 10;
    }
}

interface Enc {
    property ibw;
    levels ibw [44];                    # 10% ciphertext framing
    cross {
        effect {
            link.lbw -= min(Enc.ibw, link.lbw);
            Enc.ibw := min(Enc.ibw, link.lbw);
        }
        cost 1 + Enc.ibw / 10;
    }
}

component Encryptor {
    requires Req;
    implements Enc;
    when { node.cpu >= Req.ibw / 8; }
    effect {
        Enc.ibw := Req.ibw * 1.1;
        node.cpu -= Req.ibw / 8;
    }
    cost 1 + Req.ibw / 10;
}

component Decryptor {
    requires Enc;
    implements Req;
    when { node.cpu >= Enc.ibw / 8; }
    effect {
        Req.ibw := Enc.ibw / 1.1;
        node.cpu -= Enc.ibw / 8;
    }
    cost 1 + Enc.ibw / 10;
}

component Backend {
    requires Req;
    when { Req.ibw >= 40; }
    cost 1;
}

network {
    node gw  { cpu 30; }
    node mid { cpu 30; }
    node dc  { cpu 30; }
    link gw -- mid wan { lbw 100; secure 0; }
    link mid -- dc wan { lbw 100; secure 0; }
    link gw -- dc  wan { lbw 100; secure 0; }
}

problem {
    source Req at gw { ibw up to 80; }
    goal Backend at dc;
}
"#;

#[test]
fn tutorial_spec_parses_and_plans_with_encryption() {
    let problem = parse_problem(TUTORIAL_SPEC).expect("tutorial spec must parse");
    let outcome = Planner::default().plan(&problem).unwrap();
    let plan = outcome.plan.expect("tutorial promises a 4-action plan");
    assert_eq!(plan.len(), 4, "{plan}");
    let names: Vec<&str> = plan.steps.iter().map(|s| s.name.as_str()).collect();
    assert!(names.iter().any(|n| n.starts_with("place(Encryptor,gw)")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("place(Decryptor,dc)")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("place(Backend,dc)")), "{names:?}");

    let report = simulate(
        &problem,
        &plan_sources(&problem, &outcome.task, &plan),
        &plan_ops(&problem, &plan),
    );
    assert!(report.ok, "{:?}", report.violations);
}

#[test]
fn tutorial_secure_backbone_drops_crypto() {
    // flip the direct link to secure, as the tutorial suggests
    let secured = TUTORIAL_SPEC.replace(
        "link gw -- dc  wan { lbw 100; secure 0; }",
        "link gw -- dc  wan { lbw 100; secure 1; }",
    );
    let problem = parse_problem(&secured).unwrap();
    let outcome = Planner::default().plan(&problem).unwrap();
    let plan = outcome.plan.expect("solvable over the secure link");
    assert!(
        plan.steps.iter().all(|s| !s.name.contains("cryptor")),
        "plaintext should ride the secure link:\n{plan}"
    );
    assert_eq!(plan.len(), 2, "{plan}");
}

#[test]
fn tutorial_doctor_flow() {
    // tighten the source below the demand: doctor must call it logically
    // unreachable? No — the stream exists, only too small: it is a
    // resource-level failure caught by replay
    let starved = TUTORIAL_SPEC.replace("ibw up to 80", "ibw up to 30");
    let problem = parse_problem(&starved).unwrap();
    let d = sekitei::planner::diagnose(&problem, &Default::default()).unwrap();
    match d {
        sekitei::planner::Diagnosis::ResourceInfeasible { .. }
        | sekitei::planner::Diagnosis::LogicallyUnreachable { .. } => {}
        other => panic!("expected failure diagnosis, got {other:?}"),
    }
}
