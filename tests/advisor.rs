//! End-to-end tests for the automatic level advisor: problems the greedy
//! (unleveled) planner cannot solve become solvable — with near-optimal
//! quality — once demand-derived cutpoints are installed.

use sekitei::model::{apply_suggestions, suggest_levels, LevelScenario};
use sekitei::planner::{plan_metrics, Planner};
use sekitei::scenarios;
use sekitei::sim::validate_plan;

#[test]
fn advisor_rescues_the_unleveled_tiny_problem() {
    let planner = Planner::default();
    let mut p = scenarios::tiny(LevelScenario::A);
    assert!(planner.plan(&p).unwrap().plan.is_none(), "A fails without levels");

    let suggestions = suggest_levels(&p, 1.0 / 9.0); // cap at 90·10/9 = 100
    assert_eq!(apply_suggestions(&mut p, &suggestions), 4);

    let outcome = planner.plan(&p).unwrap();
    let plan = outcome.plan.expect("advisor levels make Tiny solvable");
    assert_eq!(plan.len(), 7, "{plan}");
    let report = validate_plan(&p, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
}

#[test]
fn advisor_levels_reach_scenario_c_quality_on_small() {
    let planner = Planner::default();
    let mut p = scenarios::small(LevelScenario::A);
    assert!(planner.plan(&p).unwrap().plan.is_none());

    let suggestions = suggest_levels(&p, 1.0 / 9.0);
    apply_suggestions(&mut p, &suggestions);

    let outcome = planner.plan(&p).unwrap();
    let plan = outcome.plan.expect("solvable with suggested levels");
    // same structure as the hand-crafted scenario C: 13 actions,
    // split-at-server, 65 units of LAN reservation
    assert_eq!(plan.len(), 13, "{plan}");
    let m = plan_metrics(&p, &outcome.task, &plan);
    assert!(
        (m.reserved_lan_bw - 65.0).abs() < 1e-6,
        "advisor quality should match scenario C: {m:?}"
    );
}

#[test]
fn advisor_is_idempotent_and_respects_experts() {
    // applying to an already-leveled (scenario C) problem changes nothing
    let mut p = scenarios::small(LevelScenario::C);
    let before: Vec<_> = p.interfaces.iter().map(|i| i.levels_of("ibw")).collect();
    let suggestions = suggest_levels(&p, 0.2);
    assert_eq!(apply_suggestions(&mut p, &suggestions), 0);
    let after: Vec<_> = p.interfaces.iter().map(|i| i.levels_of("ibw")).collect();
    assert_eq!(before, after);
}

#[test]
fn advisor_on_text_domain() {
    // the tradeoff's TClient demand (63) seeds T and, through Zip, Z
    let p = scenarios::tradeoff(1.0);
    let suggestions = suggest_levels(&p, 0.1);
    let t = suggestions.iter().find(|s| s.iface == "T").expect("T seeded");
    assert!((t.cutpoints[0] - 63.0).abs() < 1e-9);
    let z = suggestions.iter().find(|s| s.iface == "Z").expect("Z derived via Zip");
    assert!((z.cutpoints[0] - 31.5).abs() < 1e-9);
}
