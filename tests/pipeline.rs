//! End-to-end pipeline tests: spec text → parse → compile → plan →
//! simulate, plus the binary wire path, across the canonical scenarios.

use sekitei::model::LevelScenario;
use sekitei::planner::Planner;
use sekitei::scenarios;
use sekitei::sim::validate_plan;
use sekitei::spec::{decode, encode, parse_problem, print_problem};

#[test]
fn text_roundtrip_preserves_plans() {
    for sc in LevelScenario::ALL {
        let original = scenarios::tiny(sc);
        let text = print_problem(&original);
        let reparsed = parse_problem(&text).expect("reparse");
        let planner = Planner::default();
        let a = planner.plan(&original).unwrap();
        let b = planner.plan(&reparsed).unwrap();
        match (&a.plan, &b.plan) {
            (Some(x), Some(y)) => {
                assert_eq!(x.len(), y.len(), "{sc:?}");
                assert!((x.cost_lower_bound - y.cost_lower_bound).abs() < 1e-9);
            }
            (None, None) => {}
            other => panic!("{sc:?}: {other:?}"),
        }
    }
}

#[test]
fn wire_roundtrip_preserves_plans() {
    for problem in [
        scenarios::small(LevelScenario::C),
        scenarios::tradeoff(1.2),
        scenarios::large(LevelScenario::B),
    ] {
        let decoded = decode(&encode(&problem)).expect("decode");
        let planner = Planner::default();
        let a = planner.plan(&problem).unwrap().plan.expect("solvable");
        let b = planner.plan(&decoded).unwrap().plan.expect("solvable");
        assert_eq!(a.len(), b.len());
        assert!((a.cost_lower_bound - b.cost_lower_bound).abs() < 1e-9);
    }
}

#[test]
fn parsed_plan_simulates() {
    // the full loop: emit the Small/C spec as text, parse it back, plan,
    // and execute the plan in the simulator
    let text = print_problem(&scenarios::small(LevelScenario::C));
    let problem = parse_problem(&text).unwrap();
    let outcome = Planner::default().plan(&problem).unwrap();
    let plan = outcome.plan.expect("solvable");
    let report = validate_plan(&problem, &outcome.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    // delivered at least the demanded 90 units of M at the client
    let goal = problem.goals[0].node;
    let delivered = report
        .delivered
        .iter()
        .find(|(i, n, p, _)| i == "M" && *n == goal && p == "ibw")
        .map(|(_, _, _, v)| *v)
        .expect("M delivered at client");
    assert!(delivered >= 90.0);
}

#[test]
fn spec_language_handles_the_large_network() {
    let p = scenarios::large(LevelScenario::D);
    let text = print_problem(&p);
    // 93 nodes / ~150 links print and reparse
    let q = parse_problem(&text).unwrap();
    assert_eq!(q.network.num_nodes(), 93);
    assert_eq!(q.network.num_links(), p.network.num_links());
}

#[test]
fn pre_placed_components_skip_planning() {
    let mut p = scenarios::tiny(LevelScenario::C);
    p.pre_placed
        .push(sekitei::model::PrePlacement { component: "Client".into(), node: p.goals[0].node });
    let o = Planner::default().plan(&p).unwrap();
    let plan = o.plan.expect("goal already satisfied");
    assert!(plan.is_empty(), "{plan}");
    assert_eq!(plan.cost_lower_bound, 0.0);
}

#[test]
fn multiple_goals_compose() {
    // demand the client AND a splitter deployment on the server node
    let mut p = scenarios::tiny(LevelScenario::C);
    p.goals.push(sekitei::model::Goal {
        component: "Splitter".into(),
        node: sekitei::model::NodeId(0),
    });
    let o = Planner::default().plan(&p).unwrap();
    let plan = o.plan.expect("both goals achievable");
    assert_eq!(plan.len(), 7, "the splitter is already part of the plan:\n{plan}");
    let report = validate_plan(&p, &o.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
}

#[test]
fn unsatisfiable_demand_yields_no_plan() {
    // demand more than the server can produce
    let cfg = sekitei::model::MediaConfig {
        client_demand: 250.0,
        ..sekitei::model::MediaConfig::default()
    };
    let p = scenarios::tiny_with(cfg, LevelScenario::D);
    let o = Planner::default().plan(&p).unwrap();
    assert!(o.plan.is_none());
}

#[test]
fn deadlines_discard_partial_plans_in_replay() {
    // paper §3.2.3: accumulated-latency QoS limits prune plan tails early.
    // Cheap bandwidth makes the 3-hop raw path cost-optimal, but its
    // 36-unit latency only fits the loose deadline.
    let planner = Planner::default();

    let loose = scenarios::tradeoff_deadline(0.3, 100.0);
    let o = planner.plan(&loose).unwrap();
    let plan = o.plan.expect("loose deadline solvable");
    assert!(
        plan.steps.iter().all(|s| !s.name.contains("Zip")),
        "loose deadline should keep the cheap raw path:\n{plan}"
    );
    let report = validate_plan(&loose, &o.task, &plan);
    assert!(report.ok, "{:?}", report.violations);

    let tight = scenarios::tradeoff_deadline(0.3, 25.0);
    let o = planner.plan(&tight).unwrap();
    let plan = o.plan.expect("tight deadline still solvable via the fast path");
    assert!(
        plan.steps.iter().any(|s| s.name.contains("Zip")),
        "tight deadline must force the low-latency compressed path:\n{plan}"
    );
    let report = validate_plan(&tight, &o.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    // delivered latency respects the deadline in the simulator
    let goal = tight.goals[0].node;
    let lat = report
        .delivered
        .iter()
        .find(|(i, n, p, _)| i == "T" && *n == goal && p == "lat")
        .map(|(_, _, _, v)| *v)
        .expect("latency tracked");
    assert!(lat <= 25.0, "delivered latency {lat}");

    let impossible = scenarios::tradeoff_deadline(0.3, 10.0);
    let o = planner.plan(&impossible).unwrap();
    assert!(o.plan.is_none(), "no path meets a 10-unit deadline");
    assert!(o.stats.replay_prunes > 0, "replay must have pruned late tails");
}

#[test]
fn two_clients_share_the_upstream_pipeline() {
    // one server, two clients on different nodes of the diamond — the
    // planner serves both, reusing the single Splitter/Zip stage
    use sekitei::model::resource::names::{CPU, LBW};
    use sekitei::model::{media_domain, CppProblem, Goal, LinkClass, Network, StreamSource};
    let mut net = Network::new();
    let s = net.add_node("s", [(CPU, 30.0)]);
    let a = net.add_node("a", [(CPU, 30.0)]);
    let b = net.add_node("b", [(CPU, 30.0)]);
    let k1 = net.add_node("k1", [(CPU, 30.0)]);
    let k2 = net.add_node("k2", [(CPU, 30.0)]);
    net.add_link(s, a, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(s, b, LinkClass::Lan, [(LBW, 150.0)]);
    net.add_link(a, k1, LinkClass::Wan, [(LBW, 70.0)]);
    net.add_link(b, k2, LinkClass::Wan, [(LBW, 70.0)]);
    let d = media_domain(LevelScenario::C);
    let p = CppProblem {
        network: net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", s, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![
            Goal { component: "Client".into(), node: k1 },
            Goal { component: "Client".into(), node: k2 },
        ],
    };
    p.validate().unwrap();
    let o = Planner::default().plan(&p).unwrap();
    let plan = o.plan.expect("both clients servable");
    // exactly one Splitter for both branches
    let splitters = plan.steps.iter().filter(|s| s.name.starts_with("place(Splitter")).count();
    assert_eq!(splitters, 1, "{plan}");
    let clients = plan.steps.iter().filter(|s| s.name.starts_with("place(Client")).count();
    assert_eq!(clients, 2, "{plan}");
    let report = validate_plan(&p, &o.task, &plan);
    assert!(report.ok, "{:?}", report.violations);
    // both endpoints got their ≥90 units
    for goal in &p.goals {
        let v = report
            .delivered
            .iter()
            .find(|(i, n, pr, _)| i == "M" && *n == goal.node && pr == "ibw")
            .map(|(_, _, _, v)| *v)
            .unwrap();
        assert!(v >= 90.0, "client at {} got {v}", goal.node);
    }
}
