//! Graph algorithms over [`Network`]s: BFS shortest paths, weighted
//! Dijkstra, connectivity. Used by scenario construction (to assert the
//! structural properties the paper's experiment relies on) and by the
//! statistics module.

use sekitei_model::{LinkId, Network, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A path through the network: alternating nodes and the links between
/// them (`links.len() == nodes.len() - 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, in order.
    pub nodes: Vec<NodeId>,
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for a single-node path.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// Shortest path by hop count (BFS). Returns `None` when unreachable.
pub fn shortest_path(net: &Network, from: NodeId, to: NodeId) -> Option<Path> {
    if from == to {
        return Some(Path { nodes: vec![from], links: vec![] });
    }
    let n = net.num_nodes();
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &l in net.incident(u) {
            let v = net.opposite(l, u).expect("incident link");
            if !seen[v.index()] {
                seen[v.index()] = true;
                prev[v.index()] = Some((u, l));
                if v == to {
                    return Some(reconstruct(from, to, &prev));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Shortest path by additive link weight (Dijkstra). `weight` maps each
/// link to a non-negative cost. Returns `None` when unreachable.
pub fn dijkstra(
    net: &Network,
    from: NodeId,
    to: NodeId,
    mut weight: impl FnMut(LinkId) -> f64,
) -> Option<(Path, f64)> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut done = vec![false; n];
    dist[from.index()] = 0.0;
    // f64 keys via ordered bits; all weights nonneg so this is safe
    let mut heap: BinaryHeap<(Reverse<u64>, NodeId)> = BinaryHeap::new();
    heap.push((Reverse(0), from));
    while let Some((Reverse(dbits), u)) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        let du = f64::from_bits(dbits);
        if u == to {
            return Some((reconstruct(from, to, &prev), du));
        }
        for &l in net.incident(u) {
            let v = net.opposite(l, u).expect("incident link");
            let w = weight(l);
            debug_assert!(w >= 0.0, "negative link weight");
            let nd = du + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some((u, l));
                heap.push((Reverse(nd.to_bits()), v));
            }
        }
    }
    None
}

fn reconstruct(from: NodeId, to: NodeId, prev: &[Option<(NodeId, LinkId)>]) -> Path {
    let mut nodes = vec![to];
    let mut links = Vec::new();
    let mut cur = to;
    while cur != from {
        let (p, l) = prev[cur.index()].expect("reconstruct: broken chain");
        links.push(l);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Path { nodes, links }
}

/// True iff every node is reachable from every other.
pub fn is_connected(net: &Network) -> bool {
    let n = net.num_nodes();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &l in net.incident(u) {
            let v = net.opposite(l, u).expect("incident link");
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// Eccentricity-based diameter in hops (max over BFS from every node).
/// `None` for a disconnected network.
pub fn diameter(net: &Network) -> Option<usize> {
    let n = net.num_nodes();
    let mut best = 0usize;
    for s in net.node_ids() {
        let mut dist = vec![usize::MAX; n];
        dist[s.index()] = 0;
        let mut q = VecDeque::from([s]);
        let mut reached = 1;
        while let Some(u) = q.pop_front() {
            for &l in net.incident(u) {
                let v = net.opposite(l, u).expect("incident link");
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    best = best.max(dist[v.index()]);
                    reached += 1;
                    q.push_back(v);
                }
            }
        }
        if reached != n {
            return None;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LinkClass;

    fn line(n: usize) -> Network {
        let mut net = Network::new();
        let ids: Vec<_> = (0..n).map(|i| net.add_node(format!("n{i}"), [("cpu", 1.0)])).collect();
        for w in ids.windows(2) {
            net.add_link(w[0], w[1], LinkClass::Lan, [("lbw", 10.0)]);
        }
        net
    }

    #[test]
    fn bfs_on_line() {
        let net = line(5);
        let p = shortest_path(&net, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.nodes.first(), Some(&NodeId(0)));
        assert_eq!(p.nodes.last(), Some(&NodeId(4)));
        let same = shortest_path(&net, NodeId(2), NodeId(2)).unwrap();
        assert!(same.is_empty());
    }

    #[test]
    fn bfs_unreachable() {
        let mut net = line(3);
        net.add_node("island", [("cpu", 1.0)]);
        assert!(shortest_path(&net, NodeId(0), NodeId(3)).is_none());
        assert!(!is_connected(&net));
        assert!(diameter(&net).is_none());
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // triangle: 0-1 weight 10, 0-2 and 2-1 weight 1 each
        let mut net = Network::new();
        let a = net.add_node("a", [("cpu", 1.0)]);
        let b = net.add_node("b", [("cpu", 1.0)]);
        let c = net.add_node("c", [("cpu", 1.0)]);
        let heavy = net.add_link(a, b, LinkClass::Wan, [("lbw", 1.0)]);
        net.add_link(a, c, LinkClass::Lan, [("lbw", 1.0)]);
        net.add_link(c, b, LinkClass::Lan, [("lbw", 1.0)]);
        let (p, cost) = dijkstra(&net, a, b, |l| if l == heavy { 10.0 } else { 1.0 }).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(p.nodes, vec![a, c, b]);
    }

    #[test]
    fn connectivity_and_diameter() {
        let net = line(6);
        assert!(is_connected(&net));
        assert_eq!(diameter(&net), Some(5));
        let single = line(1);
        assert!(is_connected(&single));
        assert_eq!(diameter(&single), Some(0));
    }
}
