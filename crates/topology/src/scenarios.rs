//! Canonical CPP instances from the paper's evaluation (§4.1):
//!
//! * [`tiny`] — the 2-node network of Figure 3 (Scenario 1);
//! * [`small`] — the 6-node network of Figure 9;
//! * [`large`] — the 93-node transit-stub network of Figure 10;
//! * [`tradeoff`] — the Figure 5 Y-network for cost-function tradeoffs.
//!
//! All three media networks share the paper's resource distribution: LAN
//! links 150 units, WAN links 70 units, 30 CPU per node (enough for
//! Splitter+Zip processing up to ≈111 units of the media stream), server
//! producing up to 200 units, client demanding at least 90.

use crate::generators::{self, Capacities, TransitStubConfig};
use sekitei_model::expr::{CmpOp, Cond, Expr};
use sekitei_model::resource::names::{CPU, LBW};
use sekitei_model::{
    media_domain_with, ComponentSpec, CppProblem, Goal, InterfaceSpec, LevelScenario, LevelSpec,
    LinkClass, MediaConfig, MediaDomain, Network, NodeId, ResourceDef, SpecVar, StreamSource,
};

/// Maximum bandwidth the server can produce (paper §4.1).
pub const SERVER_CAPACITY: f64 = 200.0;
/// Client's minimum bandwidth demand (paper §4.1).
pub const CLIENT_DEMAND: f64 = 90.0;

/// Network size of the Table 2 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetSize {
    /// 2 nodes (Figure 3).
    Tiny,
    /// 6 nodes (Figure 9).
    Small,
    /// 93 nodes (Figure 10).
    Large,
}

impl NetSize {
    /// All sizes in Table 2 order.
    pub const ALL: [NetSize; 3] = [NetSize::Tiny, NetSize::Small, NetSize::Large];

    /// Row label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            NetSize::Tiny => "Tiny",
            NetSize::Small => "Small",
            NetSize::Large => "Large",
        }
    }
}

fn assemble(net: Network, domain: MediaDomain, server: NodeId, client: NodeId) -> CppProblem {
    let p = CppProblem {
        network: net,
        resources: domain.resources,
        interfaces: domain.interfaces,
        components: domain.components,
        sources: vec![StreamSource::up_to("M", server, "ibw", SERVER_CAPACITY)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: client }],
    };
    debug_assert!(p.validate().is_ok());
    p
}

/// The Figure 3 two-node problem: server on `n0` (200 units of M, 30 CPU),
/// client on `n1`, one 70-unit WAN link. The greedy planner (scenario A)
/// fails; leveled scenarios find the 7-action plan of Figure 4.
pub fn tiny(sc: LevelScenario) -> CppProblem {
    tiny_with(MediaConfig::default(), sc)
}

/// [`tiny`] with explicit domain constants.
pub fn tiny_with(cfg: MediaConfig, sc: LevelScenario) -> CppProblem {
    let caps = Capacities::default();
    let net = generators::line(&[LinkClass::Wan], &caps);
    let server = net.node_by_name("n0").unwrap();
    let client = net.node_by_name("n1").unwrap();
    assemble(net, media_domain_with(cfg, sc), server, client)
}

/// The Figure 9 six-node problem. The server-client path is
/// `srv -LAN- a -LAN- b -WAN- c -LAN- cli` (plus a distractor node); the
/// 10-action shortest plan splits at `b`/merges at `c` and reserves 100
/// units of LAN bandwidth, while the 13-action optimal plan splits at the
/// server and reserves only 65.
pub fn small(sc: LevelScenario) -> CppProblem {
    small_with(MediaConfig::default(), sc)
}

/// [`small`] with explicit domain constants.
pub fn small_with(cfg: MediaConfig, sc: LevelScenario) -> CppProblem {
    let caps = Capacities::default();
    let mut net =
        generators::line(&[LinkClass::Lan, LinkClass::Lan, LinkClass::Wan, LinkClass::Lan], &caps);
    // distractor node hanging off the path (present in Figure 9's network,
    // absent from every sensible plan)
    let a = net.node_by_name("n1").unwrap();
    let x = net.add_node("x", [(CPU, caps.node_cpu)]);
    net.add_link(a, x, LinkClass::Lan, [(LBW, caps.lan_bw)]);
    let server = net.node_by_name("n0").unwrap();
    let client = net.node_by_name("n4").unwrap();
    assemble(net, media_domain_with(cfg, sc), server, client)
}

/// The Figure 10 93-node transit-stub problem (GT-ITM structural model):
/// 3 transit nodes, 3 stub domains each, 10 nodes per stub. Server and
/// client sit one LAN hop inside two different stubs of the same transit
/// node, so the shortest data path is `LAN, WAN, WAN, LAN` — most of the
/// 93 nodes never participate in a plan but cannot be statically pruned.
pub fn large(sc: LevelScenario) -> CppProblem {
    large_with(MediaConfig::default(), sc)
}

/// [`large`] with explicit domain constants.
pub fn large_with(cfg: MediaConfig, sc: LevelScenario) -> CppProblem {
    let ts = generators::transit_stub(&TransitStubConfig::default());
    // stub tree construction always links member 1 to the gateway
    let server = ts.members[0][0][1];
    let client = ts.members[0][1][1];
    debug_assert_eq!(crate::algo::shortest_path(&ts.net, server, client).map(|p| p.len()), Some(4));
    assemble(ts.net, media_domain_with(cfg, sc), server, client)
}

/// The paper's Figure 1 network verbatim: eight nodes, the *Server* on
/// node 7, the *Client* on node 0, and a low-bandwidth link between nodes
/// 1 and 4 that forces the transformation pipeline into the data path.
/// Side nodes 2, 3, 5 and 6 pad the topology exactly as drawn.
pub fn figure1(sc: LevelScenario) -> CppProblem {
    let caps = Capacities::default();
    let mut net = Network::new();
    let n: Vec<NodeId> =
        (0..8).map(|i| net.add_node(format!("n{i}"), [(CPU, caps.node_cpu)])).collect();
    // main path: 7 — 4 — 1 — 0, with 4—1 the 70-unit bottleneck
    net.add_link(n[7], n[4], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    net.add_link(n[4], n[1], LinkClass::Wan, [(LBW, caps.wan_bw)]);
    net.add_link(n[1], n[0], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    // side spurs as in the figure
    net.add_link(n[4], n[5], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    net.add_link(n[5], n[6], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    net.add_link(n[1], n[2], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    net.add_link(n[2], n[3], LinkClass::Lan, [(LBW, caps.lan_bw)]);
    let server = n[7];
    let client = n[0];
    assemble(net, media_domain_with(MediaConfig::default(), sc), server, client)
}

/// Table 2 row selector.
pub fn problem(size: NetSize, sc: LevelScenario) -> CppProblem {
    match size {
        NetSize::Tiny => tiny(sc),
        NetSize::Small => small(sc),
        NetSize::Large => large(sc),
    }
}

// ------------------------------------------------------------------------
// Figure 5: cost-function tradeoff
// ------------------------------------------------------------------------

/// Client demand of the [`tradeoff`] problem (units of the T stream).
pub const TRADEOFF_DEMAND: f64 = 63.0;

/// Minimal text-delivery domain for the Figure 5 experiment: interfaces
/// `T` and `Z`, components `TClient`, `Zip`, `Unzip`. `link_cost_weight`
/// scales the bandwidth-proportional part of crossing costs relative to
/// placement costs.
pub fn text_domain(link_cost_weight: f64, demand: f64) -> MediaDomain {
    let cfg = MediaConfig { link_cost_weight, client_demand: demand, ..MediaConfig::default() };
    let ibw = |i: &str| Expr::var(SpecVar::iface(i, "ibw"));
    let cpu = || Expr::var(SpecVar::node(CPU));
    let t_levels = LevelSpec::new(vec![demand, demand + 7.0]).unwrap();

    let stream = |name: &str, factor: f64| {
        let cost = Expr::c(cfg.action_cost_weight)
            + ibw(name) * Expr::c(cfg.link_cost_weight / cfg.cost_div);
        InterfaceSpec::bandwidth_stream(name, "ibw", LBW)
            .with_cross_cost(cost)
            .with_levels("ibw", t_levels.scaled(factor))
    };
    let place_cost = |processed: Expr<SpecVar>| {
        Expr::c(cfg.action_cost_weight) + processed / Expr::c(cfg.cost_div)
    };

    let tclient = ComponentSpec::new("TClient")
        .requires("T")
        .condition(Cond::new(ibw("T"), CmpOp::Ge, Expr::c(demand)))
        .with_cost(place_cost(ibw("T")));
    let zip = ComponentSpec::new("Zip")
        .requires("T")
        .implements("Z")
        .condition(Cond::new(cpu(), CmpOp::Ge, ibw("T") / Expr::c(cfg.cpu_light_div)))
        .effect(sekitei_model::Effect::new(
            SpecVar::iface("Z", "ibw"),
            sekitei_model::AssignOp::Set,
            ibw("T") * Expr::c(cfg.zip_ratio),
        ))
        .effect(sekitei_model::Effect::new(
            SpecVar::node(CPU),
            sekitei_model::AssignOp::Sub,
            ibw("T") / Expr::c(cfg.cpu_light_div),
        ))
        .with_cost(place_cost(ibw("T")));
    let unzip = ComponentSpec::new("Unzip")
        .requires("Z")
        .implements("T")
        .condition(Cond::new(
            cpu(),
            CmpOp::Ge,
            ibw("Z") / Expr::c(cfg.cpu_light_div * cfg.zip_ratio),
        ))
        .effect(sekitei_model::Effect::new(
            SpecVar::iface("T", "ibw"),
            sekitei_model::AssignOp::Set,
            ibw("Z") / Expr::c(cfg.zip_ratio),
        ))
        .effect(sekitei_model::Effect::new(
            SpecVar::node(CPU),
            sekitei_model::AssignOp::Sub,
            ibw("Z") / Expr::c(cfg.cpu_light_div * cfg.zip_ratio),
        ))
        .with_cost(place_cost(ibw("Z")));

    MediaDomain {
        resources: vec![ResourceDef::node(CPU), ResourceDef::link(LBW)],
        interfaces: vec![stream("T", 1.0), stream("Z", cfg.zip_ratio)],
        components: vec![tclient, zip, unzip],
        config: cfg,
    }
}

/// The Figure 5 problem: deliver `T` from server `S` to client `C`, either
/// over a 3-link high-bandwidth path (`S-a-b-C`) or over a 2-link
/// low-bandwidth path (`S-d-C`, 40 units — enough for the compressed `Z`
/// stream, not for raw `T`). Which plan is optimal depends on
/// `link_cost_weight`: cheap bandwidth favours the long raw path, expensive
/// bandwidth favours compressing (crossover near `w ≈ 0.83` at the default
/// constants).
pub fn tradeoff(link_cost_weight: f64) -> CppProblem {
    let domain = text_domain(link_cost_weight, TRADEOFF_DEMAND);
    tradeoff_with_domain(domain)
}

/// Per-hop latency of the [`tradeoff`] network's long (LAN) path links.
pub const TRADEOFF_LAN_DELAY: f64 = 12.0;
/// Per-hop latency of the [`tradeoff`] network's short (WAN) path links.
pub const TRADEOFF_WAN_DELAY: f64 = 4.0;

/// [`tradeoff`] with an end-to-end deadline: interfaces accumulate `lat`
/// across links (LAN hops are slow satellite-style links at 12 units,
/// WAN hops fast at 4) and the client imposes `lat <= deadline`. With a
/// loose deadline the cost function decides as in Figure 5; with a tight
/// one the 36-unit-latency long path is discarded during replay (paper
/// §3.2.3) regardless of its cost advantage.
pub fn tradeoff_deadline(link_cost_weight: f64, deadline: f64) -> CppProblem {
    let mut domain = text_domain(link_cost_weight, TRADEOFF_DEMAND);
    sekitei_model::add_latency(
        &mut domain,
        sekitei_model::LatencyConfig { proc_delay: 2.0, deadline },
        &["TClient"],
    );
    tradeoff_with_domain(domain)
}

fn tradeoff_with_domain(domain: MediaDomain) -> CppProblem {
    let caps = Capacities::default();
    let mut net = Network::new();
    let s = net.add_node("S", [(CPU, caps.node_cpu)]);
    let a = net.add_node("a", [(CPU, caps.node_cpu)]);
    let b = net.add_node("b", [(CPU, caps.node_cpu)]);
    let c = net.add_node("C", [(CPU, caps.node_cpu)]);
    let d = net.add_node("d", [(CPU, caps.node_cpu)]);
    let delay = sekitei_model::media::DELAY;
    // high-bandwidth (but high-latency) 3-link path
    net.add_link(s, a, LinkClass::Lan, [(LBW, caps.lan_bw), (delay, TRADEOFF_LAN_DELAY)]);
    net.add_link(a, b, LinkClass::Lan, [(LBW, caps.lan_bw), (delay, TRADEOFF_LAN_DELAY)]);
    net.add_link(b, c, LinkClass::Lan, [(LBW, caps.lan_bw), (delay, TRADEOFF_LAN_DELAY)]);
    // low-bandwidth low-latency 2-link path
    net.add_link(s, d, LinkClass::Wan, [(LBW, 40.0), (delay, TRADEOFF_WAN_DELAY)]);
    net.add_link(d, c, LinkClass::Wan, [(LBW, 40.0), (delay, TRADEOFF_WAN_DELAY)]);

    let p = CppProblem {
        network: net,
        resources: domain.resources,
        interfaces: domain.interfaces,
        components: domain.components,
        sources: vec![StreamSource::up_to("T", s, "ibw", 70.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "TClient".into(), node: c }],
    };
    debug_assert!(p.validate().is_ok());
    p
}

// ------------------------------------------------------------------------
// Churn parameters (fault injection per scenario)
// ------------------------------------------------------------------------

/// Per-scenario fault-injection parameters for the churn engine
/// (`crates/churn`): how often each mutation class fires, how deep
/// bandwidth degradation cuts, and which nodes are exempt from crashes.
///
/// The ranges are calibrated so that a degraded instance stays *repairable*
/// for the scenario's media domain: the client's 90-unit demand needs
/// `0.65 · 90 = 58.5` units of compressed bandwidth across a bottleneck
/// link and `0.27 · 90 ≈ 24.3` CPU on a processing node, so degrade floors
/// sit above those (crashes, by contrast, are allowed to render an
/// instance temporarily unrepairable — that is what availability measures).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnProfile {
    /// Relative weight of link bandwidth degradation events.
    pub degrade_weight: u32,
    /// Relative weight of link recovery events (applies only while at
    /// least one link is degraded).
    pub recover_weight: u32,
    /// Relative weight of node crash events (0 disables crashes).
    pub crash_weight: u32,
    /// Relative weight of node rejoin events (applies only while at least
    /// one node is down).
    pub rejoin_weight: u32,
    /// Relative weight of gradual CPU drift events.
    pub drift_weight: u32,
    /// Degraded link capacity as a fraction of baseline, `[lo, hi)`.
    pub degrade_range: (f64, f64),
    /// Drifted node CPU as a fraction of baseline, `[lo, hi)`.
    pub drift_range: (f64, f64),
    /// Simulated time units between consecutive events.
    pub gap: u64,
    /// Nodes that never crash (typically the stream source and the goal
    /// node — losing either makes the problem trivially unsolvable).
    pub protected: Vec<NodeId>,
}

/// The churn profile for a canonical scenario.
///
/// * **Tiny** has no redundancy at all (one link, two nodes), so crashes
///   are disabled and degradation is mild — every fault is repairable and
///   a well-behaved maintenance loop keeps availability at 100%.
/// * **Small** is a line topology: crashing a path node partitions
///   server from client until it rejoins, so availability dips below
///   100% under crash-heavy seeds.
/// * **Large** is transit-stub with real redundancy; crashes usually
///   reroute instead of partitioning.
pub fn churn_profile(size: NetSize, problem: &CppProblem) -> ChurnProfile {
    let protected = vec![problem.sources[0].node, problem.goals[0].node];
    match size {
        NetSize::Tiny => ChurnProfile {
            degrade_weight: 4,
            recover_weight: 3,
            crash_weight: 0,
            rejoin_weight: 0,
            drift_weight: 2,
            degrade_range: (0.86, 0.96),
            drift_range: (0.88, 1.0),
            gap: 10,
            protected,
        },
        NetSize::Small => ChurnProfile {
            degrade_weight: 4,
            recover_weight: 3,
            crash_weight: 1,
            rejoin_weight: 3,
            drift_weight: 2,
            degrade_range: (0.84, 0.95),
            drift_range: (0.85, 1.0),
            gap: 10,
            protected,
        },
        NetSize::Large => ChurnProfile {
            degrade_weight: 5,
            recover_weight: 4,
            crash_weight: 2,
            rejoin_weight: 4,
            drift_weight: 3,
            degrade_range: (0.5, 0.9),
            drift_range: (0.7, 1.0),
            gap: 10,
            protected,
        },
    }
}

// ------------------------------------------------------------------------
// Randomized instances (fuzzing and throughput benchmarks)
// ------------------------------------------------------------------------

/// Which random graph model a [`random_media`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RandomModel {
    /// Waxman geometric random graph.
    Waxman,
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert,
}

/// Parameters for [`random_media`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomMediaConfig {
    /// Graph model.
    pub model: RandomModel,
    /// Node count (≥ 4).
    pub nodes: usize,
    /// Uniform capacities.
    pub capacities: Capacities,
    /// Level scenario for the media domain.
    pub scenario: LevelScenario,
    /// Client demand.
    pub demand: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomMediaConfig {
    fn default() -> Self {
        RandomMediaConfig {
            model: RandomModel::Waxman,
            nodes: 12,
            capacities: Capacities::default(),
            scenario: LevelScenario::C,
            demand: CLIENT_DEMAND,
            seed: 1,
        }
    }
}

/// A random media-delivery instance: the media domain attached to a random
/// connected network, server on the first node, client on the last. Fully
/// deterministic given the config — the workload generator behind the
/// fuzz tests and the throughput benchmarks.
pub fn random_media(cfg: &RandomMediaConfig) -> CppProblem {
    assert!(cfg.nodes >= 4, "need at least 4 nodes");
    let net = match cfg.model {
        RandomModel::Waxman => generators::waxman(cfg.nodes, 0.5, 0.3, cfg.seed, &cfg.capacities),
        RandomModel::BarabasiAlbert => {
            generators::barabasi_albert(cfg.nodes, 2, cfg.seed, &cfg.capacities)
        }
    };
    let server = NodeId(0);
    let client = NodeId((cfg.nodes - 1) as u32);
    let media = media_domain_with(
        MediaConfig { client_demand: cfg.demand, ..MediaConfig::default() },
        cfg.scenario,
    );
    let p = CppProblem {
        network: net,
        resources: media.resources,
        interfaces: media.interfaces,
        components: media.components,
        sources: vec![StreamSource::up_to("M", server, "ibw", SERVER_CAPACITY)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: client }],
    };
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn tiny_shape() {
        let p = tiny(LevelScenario::C);
        assert_eq!(p.network.num_nodes(), 2);
        assert_eq!(p.network.num_links(), 1);
        p.validate().unwrap();
        assert_eq!(p.sources[0].node, NodeId(0));
        assert_eq!(p.goals[0].node, NodeId(1));
    }

    #[test]
    fn small_shape() {
        let p = small(LevelScenario::C);
        assert_eq!(p.network.num_nodes(), 6);
        p.validate().unwrap();
        let path = algo::shortest_path(&p.network, p.sources[0].node, p.goals[0].node).unwrap();
        assert_eq!(path.len(), 4);
        let classes: Vec<_> = path.links.iter().map(|&l| p.network.link(l).class).collect();
        assert_eq!(classes, vec![LinkClass::Lan, LinkClass::Lan, LinkClass::Wan, LinkClass::Lan]);
    }

    #[test]
    fn large_shape() {
        let p = large(LevelScenario::C);
        assert_eq!(p.network.num_nodes(), 93);
        p.validate().unwrap();
        let path = algo::shortest_path(&p.network, p.sources[0].node, p.goals[0].node).unwrap();
        assert_eq!(path.len(), 4);
        let classes: Vec<_> = path.links.iter().map(|&l| p.network.link(l).class).collect();
        assert_eq!(classes, vec![LinkClass::Lan, LinkClass::Wan, LinkClass::Wan, LinkClass::Lan]);
    }

    #[test]
    fn all_scenarios_validate() {
        for size in NetSize::ALL {
            for sc in LevelScenario::ALL {
                problem(size, sc).validate().unwrap();
            }
        }
    }

    #[test]
    fn large_is_deterministic() {
        let a = large(LevelScenario::B);
        let b = large(LevelScenario::B);
        assert_eq!(a.network, b.network);
    }

    #[test]
    fn tradeoff_shape() {
        let p = tradeoff(1.0);
        p.validate().unwrap();
        assert_eq!(p.network.num_nodes(), 5);
        assert_eq!(p.network.num_links(), 5);
        // the short path cannot carry raw T (63 > 40), can carry Z (31.5)
        let s = p.sources[0].node;
        let c = p.goals[0].node;
        let short = algo::dijkstra(&p.network, s, c, |_| 1.0).unwrap();
        assert_eq!(short.0.len(), 2);
        for &l in &short.0.links {
            assert_eq!(p.network.link_capacity(l, LBW), 40.0);
        }
    }

    #[test]
    fn tradeoff_deadline_validates() {
        let p = tradeoff_deadline(0.3, 20.0);
        p.validate().unwrap();
        // the delay resource is registered and carried by every link
        assert!(p.resource(sekitei_model::media::DELAY).is_some());
        for (l, d) in p.network.links() {
            assert!(p.network.link_capacity(l, sekitei_model::media::DELAY) > 0.0, "{d:?}");
        }
        let tc = p.components.iter().find(|c| c.name == "TClient").unwrap();
        assert_eq!(tc.conditions.len(), 2);
    }

    #[test]
    fn text_domain_cost_scales_with_link_weight() {
        let cheap = text_domain(0.1, TRADEOFF_DEMAND);
        let pricey = text_domain(3.0, TRADEOFF_DEMAND);
        let eval = |d: &MediaDomain| d.interfaces[0].cross_cost.eval(&mut |_: &SpecVar| 63.0);
        assert!(eval(&cheap) < eval(&pricey));
    }

    #[test]
    fn labels() {
        assert_eq!(NetSize::Tiny.label(), "Tiny");
        assert_eq!(NetSize::Large.label(), "Large");
    }

    #[test]
    fn figure1_shape() {
        let p = figure1(LevelScenario::C);
        p.validate().unwrap();
        assert_eq!(p.network.num_nodes(), 8);
        assert_eq!(p.network.num_links(), 7);
        // server n7, client n0, 3-hop path through the 70-unit 4—1 link
        assert_eq!(p.network.node(p.sources[0].node).name, "n7");
        assert_eq!(p.network.node(p.goals[0].node).name, "n0");
        let path = algo::shortest_path(&p.network, p.sources[0].node, p.goals[0].node).unwrap();
        assert_eq!(path.len(), 3);
        let bottleneck = p
            .network
            .link_between(
                p.network.node_by_name("n4").unwrap(),
                p.network.node_by_name("n1").unwrap(),
            )
            .unwrap();
        assert_eq!(p.network.link_capacity(bottleneck, LBW), 70.0);
    }

    #[test]
    fn random_media_deterministic_and_valid() {
        for model in [RandomModel::Waxman, RandomModel::BarabasiAlbert] {
            let cfg = RandomMediaConfig { model, nodes: 15, seed: 7, ..Default::default() };
            let a = random_media(&cfg);
            let b = random_media(&cfg);
            a.validate().unwrap();
            assert_eq!(a.network, b.network);
            assert_eq!(a.network.num_nodes(), 15);
            assert!(algo::is_connected(&a.network));
            assert_eq!(a.goals[0].node, NodeId(14));
        }
    }

    #[test]
    fn churn_profiles_protect_endpoints() {
        for size in NetSize::ALL {
            let p = problem(size, LevelScenario::C);
            let prof = churn_profile(size, &p);
            assert!(prof.protected.contains(&p.sources[0].node));
            assert!(prof.protected.contains(&p.goals[0].node));
            assert!(prof.degrade_range.0 < prof.degrade_range.1);
            assert!(prof.degrade_range.1 <= 1.0);
            assert!(prof.gap > 0);
        }
        // Tiny cannot survive any node loss: crashes must be off
        let tiny = problem(NetSize::Tiny, LevelScenario::C);
        assert_eq!(churn_profile(NetSize::Tiny, &tiny).crash_weight, 0);
    }

    #[test]
    fn random_media_varies_with_seed() {
        let base = RandomMediaConfig::default();
        let a = random_media(&RandomMediaConfig { seed: 1, ..base });
        let b = random_media(&RandomMediaConfig { seed: 2, ..base });
        assert_ne!(a.network, b.network);
    }
}
