//! Structural statistics of a network — used by the Figure 10 regeneration
//! binary and useful for sanity-checking generated topologies.

use crate::algo;
use sekitei_model::{LinkClass, Network};

/// Summary statistics of a network's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Node count.
    pub nodes: usize,
    /// Undirected link count.
    pub links: usize,
    /// LAN link count.
    pub lan_links: usize,
    /// WAN link count.
    pub wan_links: usize,
    /// Minimum node degree.
    pub min_degree: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Hop diameter (None when disconnected).
    pub diameter: Option<usize>,
    /// Whether the network is connected.
    pub connected: bool,
}

/// Compute [`NetworkStats`].
pub fn network_stats(net: &Network) -> NetworkStats {
    let degrees: Vec<usize> = net.node_ids().map(|n| net.incident(n).len()).collect();
    let (lan, wan) = net.links().fold((0usize, 0usize), |(l, w), (_, d)| match d.class {
        LinkClass::Lan => (l + 1, w),
        LinkClass::Wan => (l, w + 1),
        LinkClass::Other => (l, w),
    });
    let connected = algo::is_connected(net);
    NetworkStats {
        nodes: net.num_nodes(),
        links: net.num_links(),
        lan_links: lan,
        wan_links: wan,
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        mean_degree: if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
        },
        diameter: if connected { algo::diameter(net) } else { None },
        connected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{self, Capacities};

    #[test]
    fn stats_of_line() {
        let net = generators::line(
            &[LinkClass::Lan, LinkClass::Wan, LinkClass::Lan],
            &Capacities::default(),
        );
        let s = network_stats(&net);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.links, 3);
        assert_eq!(s.lan_links, 2);
        assert_eq!(s.wan_links, 1);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(3));
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_transit_stub() {
        let ts = generators::transit_stub(&generators::TransitStubConfig::default());
        let s = network_stats(&ts.net);
        assert_eq!(s.nodes, 93);
        assert!(s.connected);
        assert!(s.wan_links >= 9 + 2); // 9 uplinks + core ring
        assert!(s.lan_links >= 81); // 9 stubs × (10-1) tree edges
    }
}
