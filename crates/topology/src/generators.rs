//! Network generators.
//!
//! The paper's 93-node *Large* network was produced with the GeorgiaTech
//! ITM tool [Zegura et al., Infocom'96]; the tool is not available as a
//! library, so [`transit_stub`] reimplements its structural model: a core
//! of *transit domains* (WAN-connected routers) with *stub domains* (LAN
//! clouds) hanging off each transit node. [`waxman`] provides the classic
//! flat random model used inside domains, and [`line()`]/[`ring`]/[`star`]
//! cover deterministic micro-topologies for tests.

use crate::algo;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sekitei_model::{LinkClass, Network, NodeId};

/// Resource capacities applied uniformly by the generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacities {
    /// CPU capacity of every node.
    pub node_cpu: f64,
    /// Bandwidth of LAN (intra-stub) links.
    pub lan_bw: f64,
    /// Bandwidth of WAN (transit and transit-stub) links.
    pub wan_bw: f64,
}

impl Default for Capacities {
    /// The paper's §4.1 values: LAN 150, WAN 70, CPU 30.
    fn default() -> Self {
        Capacities { node_cpu: 30.0, lan_bw: 150.0, wan_bw: 70.0 }
    }
}

fn add_node(net: &mut Network, name: String, caps: &Capacities) -> NodeId {
    net.add_node(name, [(sekitei_model::resource::names::CPU, caps.node_cpu)])
}

fn add_link(net: &mut Network, a: NodeId, b: NodeId, class: LinkClass, caps: &Capacities) {
    let bw = match class {
        LinkClass::Lan => caps.lan_bw,
        _ => caps.wan_bw,
    };
    net.add_link(a, b, class, [(sekitei_model::resource::names::LBW, bw)]);
}

/// A line `n0 - n1 - … - n(k-1)` with the given per-link classes
/// (`classes.len()` links, `classes.len() + 1` nodes).
pub fn line(classes: &[LinkClass], caps: &Capacities) -> Network {
    let mut net = Network::new();
    let nodes: Vec<_> =
        (0..=classes.len()).map(|i| add_node(&mut net, format!("n{i}"), caps)).collect();
    for (i, &c) in classes.iter().enumerate() {
        add_link(&mut net, nodes[i], nodes[i + 1], c, caps);
    }
    net
}

/// A ring of `n` nodes (all links the same class).
pub fn ring(n: usize, class: LinkClass, caps: &Capacities) -> Network {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut net = Network::new();
    let nodes: Vec<_> = (0..n).map(|i| add_node(&mut net, format!("n{i}"), caps)).collect();
    for i in 0..n {
        add_link(&mut net, nodes[i], nodes[(i + 1) % n], class, caps);
    }
    net
}

/// A star: hub `n0` with `n - 1` leaves.
pub fn star(n: usize, class: LinkClass, caps: &Capacities) -> Network {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut net = Network::new();
    let hub = add_node(&mut net, "n0".into(), caps);
    for i in 1..n {
        let leaf = add_node(&mut net, format!("n{i}"), caps);
        add_link(&mut net, hub, leaf, class, caps);
    }
    net
}

/// Waxman random graph: nodes scattered on the unit square; edge
/// probability `alpha * exp(-d / (beta * sqrt(2)))` for distance `d`.
/// A random spanning tree guarantees connectivity first.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64, caps: &Capacities) -> Network {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.random::<f64>(), rng.random::<f64>())).collect();
    let nodes: Vec<_> = (0..n).map(|i| add_node(&mut net, format!("w{i}"), caps)).collect();
    // spanning tree: attach each node to a random earlier node
    for i in 1..n {
        let j = rng.random_range(0..i);
        add_link(&mut net, nodes[i], nodes[j], LinkClass::Wan, caps);
    }
    // Waxman extra edges
    for i in 0..n {
        for j in (i + 1)..n {
            if net.link_between(nodes[i], nodes[j]).is_some() {
                continue;
            }
            let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
            let p = alpha * (-d / (beta * std::f64::consts::SQRT_2)).exp();
            if rng.random::<f64>() < p {
                add_link(&mut net, nodes[i], nodes[j], LinkClass::Wan, caps);
            }
        }
    }
    net
}

/// Barabási–Albert preferential-attachment graph: each new node attaches
/// to `m` existing nodes with probability proportional to their degree.
/// Produces the heavy-tailed degree distributions typical of router-level
/// internet maps — a rougher alternative to [`transit_stub`].
pub fn barabasi_albert(n: usize, m: usize, seed: u64, caps: &Capacities) -> Network {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    let nodes: Vec<_> = (0..n).map(|i| add_node(&mut net, format!("b{i}"), caps)).collect();
    // degree-weighted endpoint pool (each edge contributes both endpoints)
    let mut pool: Vec<usize> = Vec::new();
    // seed clique over the first m+1 nodes
    for i in 0..=m {
        for j in (i + 1)..=m {
            add_link(&mut net, nodes[i], nodes[j], LinkClass::Wan, caps);
            pool.push(i);
            pool.push(j);
        }
    }
    for i in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m {
            let pick = pool[rng.random_range(0..pool.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
            guard += 1;
            if guard > 64 * m {
                // fall back to uniform choice among untaken nodes
                for j in 0..i {
                    if targets.len() == m {
                        break;
                    }
                    if !targets.contains(&j) {
                        targets.push(j);
                    }
                }
            }
        }
        for &t in &targets {
            add_link(&mut net, nodes[i], nodes[t], LinkClass::Wan, caps);
            pool.push(i);
            pool.push(t);
        }
    }
    net
}

/// Configuration of the transit-stub generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Transit (core) nodes, connected in a ring plus random chords.
    pub transit_nodes: usize,
    /// Probability of a chord between two non-adjacent transit nodes.
    pub transit_extra_edge_prob: f64,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit: usize,
    /// Nodes per stub domain.
    pub stub_size: usize,
    /// Probability of an extra intra-stub edge beyond the spanning tree.
    pub stub_extra_edge_prob: f64,
    /// Uniform capacities.
    pub capacities: Capacities,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for TransitStubConfig {
    /// The configuration reproducing the paper's 93-node Figure 10 network:
    /// 3 transit nodes × 3 stubs each × 10 nodes per stub + 3 core = 93.
    fn default() -> Self {
        TransitStubConfig {
            transit_nodes: 3,
            transit_extra_edge_prob: 0.3,
            stubs_per_transit: 3,
            stub_size: 10,
            stub_extra_edge_prob: 0.15,
            capacities: Capacities::default(),
            seed: 0x05EB_17E1,
        }
    }
}

/// A generated transit-stub network plus the structural indices scenario
/// builders need.
#[derive(Debug, Clone)]
pub struct TransitStub {
    /// The network.
    pub net: Network,
    /// Core transit nodes.
    pub transit: Vec<NodeId>,
    /// `gateways[t][s]` = the stub node of stub `s` of transit node `t`
    /// that carries the WAN uplink.
    pub gateways: Vec<Vec<NodeId>>,
    /// `members[t][s]` = all nodes of that stub (gateway first).
    pub members: Vec<Vec<Vec<NodeId>>>,
}

/// Generate a transit-stub network (GT-ITM structural model).
///
/// Transit nodes form a ring (guaranteeing core connectivity) with random
/// chords; each stub is a random tree plus extra LAN edges, and its
/// gateway connects to its transit node by a WAN link.
pub fn transit_stub(cfg: &TransitStubConfig) -> TransitStub {
    assert!(cfg.transit_nodes >= 1);
    assert!(cfg.stub_size >= 1);
    let caps = &cfg.capacities;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Network::new();

    let transit: Vec<_> =
        (0..cfg.transit_nodes).map(|i| add_node(&mut net, format!("t{i}"), caps)).collect();
    if cfg.transit_nodes > 1 {
        for i in 0..cfg.transit_nodes {
            let j = (i + 1) % cfg.transit_nodes;
            if net.link_between(transit[i], transit[j]).is_none() {
                add_link(&mut net, transit[i], transit[j], LinkClass::Wan, caps);
            }
        }
        for i in 0..cfg.transit_nodes {
            for j in (i + 2)..cfg.transit_nodes {
                if net.link_between(transit[i], transit[j]).is_none()
                    && rng.random::<f64>() < cfg.transit_extra_edge_prob
                {
                    add_link(&mut net, transit[i], transit[j], LinkClass::Wan, caps);
                }
            }
        }
    }

    let mut gateways = Vec::with_capacity(cfg.transit_nodes);
    let mut members = Vec::with_capacity(cfg.transit_nodes);
    for (t, &tn) in transit.iter().enumerate() {
        let mut t_gws = Vec::with_capacity(cfg.stubs_per_transit);
        let mut t_members = Vec::with_capacity(cfg.stubs_per_transit);
        for s in 0..cfg.stubs_per_transit {
            let nodes: Vec<_> = (0..cfg.stub_size)
                .map(|i| add_node(&mut net, format!("s{t}_{s}_{i}"), caps))
                .collect();
            // random spanning tree rooted at the gateway (nodes[0])
            for i in 1..cfg.stub_size {
                let j = rng.random_range(0..i);
                add_link(&mut net, nodes[i], nodes[j], LinkClass::Lan, caps);
            }
            // extra LAN edges
            for i in 0..cfg.stub_size {
                for j in (i + 1)..cfg.stub_size {
                    if net.link_between(nodes[i], nodes[j]).is_none()
                        && rng.random::<f64>() < cfg.stub_extra_edge_prob
                    {
                        add_link(&mut net, nodes[i], nodes[j], LinkClass::Lan, caps);
                    }
                }
            }
            // WAN uplink
            add_link(&mut net, nodes[0], tn, LinkClass::Wan, caps);
            t_gws.push(nodes[0]);
            t_members.push(nodes);
        }
        gateways.push(t_gws);
        members.push(t_members);
    }

    let ts = TransitStub { net, transit, gateways, members };
    debug_assert!(algo::is_connected(&ts.net), "transit-stub must be connected");
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let net = line(&[LinkClass::Lan, LinkClass::Wan, LinkClass::Lan], &Capacities::default());
        assert_eq!(net.num_nodes(), 4);
        assert_eq!(net.num_links(), 3);
        assert_eq!(net.link(sekitei_model::LinkId(1)).class, LinkClass::Wan);
        assert_eq!(net.link_capacity(sekitei_model::LinkId(0), "lbw"), 150.0);
        assert_eq!(net.link_capacity(sekitei_model::LinkId(1), "lbw"), 70.0);
    }

    #[test]
    fn ring_and_star() {
        let caps = Capacities::default();
        let r = ring(5, LinkClass::Lan, &caps);
        assert_eq!(r.num_nodes(), 5);
        assert_eq!(r.num_links(), 5);
        assert!(algo::is_connected(&r));
        let s = star(6, LinkClass::Wan, &caps);
        assert_eq!(s.num_links(), 5);
        assert_eq!(s.incident(NodeId(0)).len(), 5);
        assert!(algo::is_connected(&s));
    }

    #[test]
    fn waxman_connected_and_deterministic() {
        let caps = Capacities::default();
        let a = waxman(30, 0.4, 0.3, 42, &caps);
        let b = waxman(30, 0.4, 0.3, 42, &caps);
        assert!(algo::is_connected(&a));
        assert_eq!(a.num_links(), b.num_links());
        assert!(a.num_links() >= 29); // at least the spanning tree
        let c = waxman(30, 0.4, 0.3, 43, &caps);
        // different seed almost surely differs in edge count
        assert!(algo::is_connected(&c));
    }

    #[test]
    fn barabasi_albert_shape() {
        let caps = Capacities::default();
        let net = barabasi_albert(50, 2, 11, &caps);
        assert_eq!(net.num_nodes(), 50);
        // clique(3) + 2 per new node = 3 + 47*2
        assert_eq!(net.num_links(), 3 + 47 * 2);
        assert!(algo::is_connected(&net));
        // preferential attachment: max degree well above the minimum
        let degs: Vec<usize> = net.node_ids().map(|n| net.incident(n).len()).collect();
        let max = *degs.iter().max().unwrap();
        assert!(max >= 8, "hub degree {max} too small for BA");
        // deterministic
        let again = barabasi_albert(50, 2, 11, &caps);
        assert_eq!(net, again);
    }

    #[test]
    fn transit_stub_default_is_93_nodes() {
        let ts = transit_stub(&TransitStubConfig::default());
        assert_eq!(ts.net.num_nodes(), 93);
        assert!(algo::is_connected(&ts.net));
        assert_eq!(ts.transit.len(), 3);
        assert_eq!(ts.gateways.len(), 3);
        assert_eq!(ts.gateways[0].len(), 3);
        assert_eq!(ts.members[0][0].len(), 10);
    }

    #[test]
    fn transit_stub_structure() {
        let ts = transit_stub(&TransitStubConfig::default());
        // every gateway has a WAN uplink to its transit node
        for (t, gws) in ts.gateways.iter().enumerate() {
            for &gw in gws {
                let l = ts.net.link_between(gw, ts.transit[t]).expect("uplink");
                assert_eq!(ts.net.link(l).class, LinkClass::Wan);
            }
        }
        // intra-stub links are LAN
        for stubs in &ts.members {
            for nodes in stubs {
                for &a in nodes {
                    for &b in nodes {
                        if a != b {
                            if let Some(l) = ts.net.link_between(a, b) {
                                assert_eq!(ts.net.link(l).class, LinkClass::Lan);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn transit_stub_deterministic() {
        let a = transit_stub(&TransitStubConfig::default());
        let b = transit_stub(&TransitStubConfig::default());
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn transit_stub_single_transit() {
        let cfg = TransitStubConfig {
            transit_nodes: 1,
            stubs_per_transit: 2,
            stub_size: 4,
            ..TransitStubConfig::default()
        };
        let ts = transit_stub(&cfg);
        assert_eq!(ts.net.num_nodes(), 1 + 2 * 4);
        assert!(algo::is_connected(&ts.net));
    }
}
