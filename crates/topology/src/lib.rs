//! # sekitei-topology
//!
//! Network topology substrate: generators (GT-ITM-style transit-stub,
//! Waxman, deterministic micro-topologies), graph algorithms, structural
//! statistics, and the canonical CPP scenarios of the paper's evaluation
//! (Tiny / Small / Large / Figure 5 tradeoff).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod generators;
pub mod scenarios;
pub mod stats;

pub use algo::{diameter, dijkstra, is_connected, shortest_path, Path};
pub use generators::{
    barabasi_albert, line, ring, star, transit_stub, waxman, Capacities, TransitStub,
    TransitStubConfig,
};
pub use scenarios::NetSize;
pub use stats::{network_stats, NetworkStats};
