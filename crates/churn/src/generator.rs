//! Seeded churn-event generation.
//!
//! The generator is a small weighted state machine over a
//! [`ChurnProfile`](sekitei_topology::scenarios::ChurnProfile): each tick
//! it picks an event class (degrade / recover / crash / rejoin / drift)
//! by relative weight among the classes that currently have a target —
//! recovery needs a degraded link, rejoin needs a crashed node, crashes
//! never hit protected nodes or nodes already down — then picks a uniform
//! target and magnitude. Everything derives from one [`SplitMix64`]
//! stream, so a `(network, profile, seed, count)` quadruple always yields
//! the same trace, byte for byte.

use crate::event::{ChurnEvent, Mutation};
use sekitei_model::resource::names::{CPU, LBW};
use sekitei_model::{LinkId, Network, NodeId};
use sekitei_topology::scenarios::ChurnProfile;
use std::collections::BTreeSet;

// Re-exported here (in addition to the crate root) because older callers
// reached the generator's RNG as `churn::generator::SplitMix64`; the
// implementation itself now lives in `sekitei-util` so the anytime SLS
// lane draws from the same audited stream.
pub use sekitei_util::SplitMix64;

/// One decimal place: keeps generated traces short and hand-editable
/// without affecting feasibility at scenario magnitudes.
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Generate `count` events against `net` (treated as the pristine
/// baseline) under `profile`, deterministically from `seed`.
///
/// Degradation targets link `lbw`, drift targets node `cpu` — the two
/// capacities every canonical scenario prices. Magnitudes are fractions
/// of the *baseline* capacity, so repeated events fluctuate rather than
/// compound, and the profile's range floor bounds how bad the network
/// can get (the scenario profiles calibrate it so churn stays repairable
/// where the topology has no redundancy).
pub fn generate(net: &Network, profile: &ChurnProfile, seed: u64, count: usize) -> Vec<ChurnEvent> {
    let mut rng = SplitMix64::new(seed);
    let mut degraded: BTreeSet<LinkId> = BTreeSet::new();
    let mut down: BTreeSet<NodeId> = BTreeSet::new();
    let mut events = Vec::with_capacity(count);

    for i in 0..count {
        let t = (i as u64 + 1) * profile.gap;
        let alive = |n: NodeId| !down.contains(&n);

        let degradable: Vec<LinkId> = net
            .link_ids()
            .filter(|&l| {
                let d = net.link(l);
                net.link_capacity(l, LBW) > 0.0 && alive(d.a) && alive(d.b)
            })
            .collect();
        let recoverable: Vec<LinkId> = degraded.iter().copied().collect();
        let crashable: Vec<NodeId> =
            net.node_ids().filter(|&n| alive(n) && !profile.protected.contains(&n)).collect();
        let rejoinable: Vec<NodeId> = down.iter().copied().collect();
        let driftable: Vec<NodeId> =
            net.node_ids().filter(|&n| alive(n) && net.node_capacity(n, CPU) > 0.0).collect();

        let weights = [
            if degradable.is_empty() { 0 } else { profile.degrade_weight },
            if recoverable.is_empty() { 0 } else { profile.recover_weight },
            if crashable.is_empty() { 0 } else { profile.crash_weight },
            if rejoinable.is_empty() { 0 } else { profile.rejoin_weight },
            if driftable.is_empty() { 0 } else { profile.drift_weight },
        ];
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        if total == 0 {
            break; // no class has a target; profile is degenerate
        }
        let mut pick = rng.below(total);
        let class = weights
            .iter()
            .position(|&w| {
                if pick < w as u64 {
                    true
                } else {
                    pick -= w as u64;
                    false
                }
            })
            .expect("total > 0");

        let mutation = match class {
            0 => {
                let link = degradable[rng.below(degradable.len() as u64) as usize];
                let frac = rng.in_range(profile.degrade_range.0, profile.degrade_range.1);
                degraded.insert(link);
                Mutation::SetLink {
                    link,
                    res: LBW.into(),
                    value: round1(net.link_capacity(link, LBW) * frac),
                }
            }
            1 => {
                let link = recoverable[rng.below(recoverable.len() as u64) as usize];
                degraded.remove(&link);
                Mutation::SetLink { link, res: LBW.into(), value: net.link_capacity(link, LBW) }
            }
            2 => {
                let node = crashable[rng.below(crashable.len() as u64) as usize];
                down.insert(node);
                // incident links are zeroed by the crash and restored by
                // the rejoin; they are no longer "degraded"
                for l in net.incident(node) {
                    degraded.remove(l);
                }
                Mutation::Crash { node }
            }
            3 => {
                let node = rejoinable[rng.below(rejoinable.len() as u64) as usize];
                down.remove(&node);
                Mutation::Rejoin { node }
            }
            _ => {
                let node = driftable[rng.below(driftable.len() as u64) as usize];
                let frac = rng.in_range(profile.drift_range.0, profile.drift_range.1);
                Mutation::SetNode {
                    node,
                    res: CPU.into(),
                    value: round1(net.node_capacity(node, CPU) * frac),
                }
            }
        };
        events.push(ChurnEvent { t, mutation });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::render_trace;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios::{self, NetSize};

    #[test]
    fn splitmix_reference_values() {
        // reference sequence for seed 1234567 from the published algorithm;
        // duplicated from sekitei-util so a drift in the re-export (e.g. a
        // local reimplementation sneaking back in) fails here too
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        let u = SplitMix64::new(42).unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn generation_is_deterministic() {
        let p = scenarios::small(LevelScenario::C);
        let prof = scenarios::churn_profile(NetSize::Small, &p);
        let a = generate(&p.network, &prof, 7, 50);
        let b = generate(&p.network, &prof, 7, 50);
        assert_eq!(a, b);
        assert_eq!(render_trace(&a, &p.network), render_trace(&b, &p.network));
        let c = generate(&p.network, &prof, 8, 50);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn generated_events_respect_invariants() {
        let p = scenarios::small(LevelScenario::C);
        let prof = scenarios::churn_profile(NetSize::Small, &p);
        let events = generate(&p.network, &prof, 99, 200);
        assert_eq!(events.len(), 200);
        let mut down: BTreeSet<NodeId> = BTreeSet::new();
        let mut prev_t = 0;
        for ev in &events {
            assert!(ev.t > prev_t, "strictly increasing timestamps");
            prev_t = ev.t;
            match &ev.mutation {
                Mutation::Crash { node } => {
                    assert!(!prof.protected.contains(node), "protected node crashed");
                    assert!(down.insert(*node), "double crash of {node}");
                }
                Mutation::Rejoin { node } => {
                    assert!(down.remove(node), "rejoin of a live node {node}");
                }
                Mutation::SetLink { value, .. } => assert!(*value >= 0.0),
                Mutation::SetNode { value, .. } => assert!(*value >= 0.0),
            }
        }
    }

    #[test]
    fn tiny_profile_generates_no_crashes() {
        let p = scenarios::tiny(LevelScenario::C);
        let prof = scenarios::churn_profile(NetSize::Tiny, &p);
        let events = generate(&p.network, &prof, 7, 100);
        assert_eq!(events.len(), 100);
        assert!(!events.iter().any(|e| matches!(e.mutation, Mutation::Crash { .. })));
    }
}
