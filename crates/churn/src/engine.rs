//! The closed maintenance loop: deploy, watch the network churn, detect
//! violations with the simulator, repair with the adaptation planner.
//!
//! Per event the engine (1) applies the mutation to its working copy of
//! the problem's network, (2) re-validates the *current* deployment with
//! [`sekitei_sim::simulate`] — the independent oracle, not the planner's
//! own model — (3) on violation classifies which placements / crossings /
//! goals broke, and (4) repairs: first via [`adapt_problem`] (keep/migrate
//! pricing around the existing placements), falling back to scratch
//! replanning, validating every candidate in the simulator before
//! adopting it. A failed repair leaves the deployment down until a later
//! event (typically a recovery or rejoin) makes it valid or repairable
//! again — the engine retries on every event while down.
//!
//! Determinism contract: with a deadline-free [`PlannerConfig`] (the
//! default here — worst-case search is bounded by the deterministic
//! [`PlannerConfig::max_nodes`] budget instead of wall-clock), the full
//! event log and summary are identical across runs. Wall-clock repair
//! latency is still *measured*, but kept out of the deterministic
//! rendering — [`ChurnSummary::render_timing`] is a separate, explicitly
//! non-reproducible report.

use crate::event::{apply, ChurnEvent};
use sekitei_cert::{check_certificate, rebind, PlanCertificate};
use sekitei_compile::{compile, ActionKind, PlanningTask};
use sekitei_model::{adapt_problem, AdaptConfig, CppProblem};
use sekitei_planner::{plan_diff, Plan, Planner, PlannerConfig};
use sekitei_sim::{existing_from_plan, plan_ops, plan_sources, simulate, DeployOp, SourceValue};
use std::time::{Duration, Instant};

/// Closed-loop configuration.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Planner configuration for the initial plan and every repair.
    pub planner: PlannerConfig,
    /// Keep/migrate cost model for adaptation repairs.
    pub adapt: AdaptConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            planner: PlannerConfig {
                // deterministic search bound (see module docs) plus
                // graceful degradation, so a repair under pressure yields
                // a degraded plan rather than an outage
                max_nodes: 300_000,
                degrade: true,
                ..PlannerConfig::default()
            },
            adapt: AdaptConfig::default(),
        }
    }
}

/// Which route produced a repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairRoute {
    /// Adaptation around the existing placements.
    Adapt,
    /// Scratch replanning (adaptation failed or produced an invalid plan).
    Scratch,
}

/// A successful repair.
#[derive(Debug, Clone)]
pub struct Repair {
    /// How the repaired plan was obtained.
    pub route: RepairRoute,
    /// Placements unchanged from the previous deployment.
    pub kept: usize,
    /// Components that moved to a different node.
    pub moved: usize,
    /// True when the planner returned a degraded (relaxed-bound) plan.
    pub degraded: bool,
    /// The repair's certificate, rebound onto a fresh compile of the
    /// *mutated, unadapted* problem and checked before adoption. The
    /// engine refuses to adopt a candidate whose certificate does not
    /// re-check, so an adopted repair always carries one.
    pub certificate: Option<PlanCertificate>,
    /// Repair wall-clock (measured; excluded from deterministic output).
    pub wall: Duration,
}

/// What happened at one event.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The current deployment still validates.
    Healthy,
    /// The deployment broke and was repaired.
    Repaired(Repair),
    /// The deployment broke (or stayed broken) and no repair was found.
    Down {
        /// Wall-clock spent on the failed repair attempt.
        wall: Duration,
    },
}

/// Per-event log entry.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// The event.
    pub event: ChurnEvent,
    /// Broken deployment sites (placements `C@n`, crossings `I:a→b`,
    /// goals `goal(C@n)`), deduplicated, in violation order. Empty when
    /// healthy.
    pub broken: Vec<String>,
    /// The outcome.
    pub outcome: Outcome,
}

impl EventRecord {
    /// Render one deterministic log line (wall-clock omitted).
    pub fn render(&self, problem: &CppProblem) -> String {
        let mut line = format!("{:<28}", crate::event::render_event(&self.event, &problem.network));
        match &self.outcome {
            Outcome::Healthy => line.push_str(" ok"),
            Outcome::Repaired(r) => {
                let route = match r.route {
                    RepairRoute::Adapt => "adapt",
                    RepairRoute::Scratch => "scratch",
                };
                line.push_str(&format!(
                    " broken [{}] repaired via {route} (kept {}, moved {}{})",
                    self.broken.join(", "),
                    r.kept,
                    r.moved,
                    if r.degraded { ", degraded" } else { "" },
                ));
            }
            Outcome::Down { .. } => {
                line.push_str(&format!(
                    " broken [{}] DOWN (no repair found)",
                    self.broken.join(", ")
                ));
            }
        }
        line
    }
}

/// Aggregate maintenance statistics over a run.
#[derive(Debug, Clone, Default)]
pub struct ChurnSummary {
    /// Events processed.
    pub events: usize,
    /// Events that found the current deployment invalid.
    pub faults: usize,
    /// Successful adaptation repairs.
    pub adapt_repairs: usize,
    /// Successful scratch repairs.
    pub scratch_repairs: usize,
    /// Repairs that adopted a degraded plan.
    pub degraded_repairs: usize,
    /// Events where no repair was found.
    pub failed_repairs: usize,
    /// Repairs whose certificate was rebound and re-checked against the
    /// mutated network before adoption (always equals `repairs()` — the
    /// engine rejects candidates that fail re-certification).
    pub recertified_repairs: usize,
    /// Placements kept across all repairs.
    pub kept: usize,
    /// Components moved across all repairs.
    pub moved: usize,
    /// Simulated time units the deployment was valid.
    pub up_time: u64,
    /// Total simulated time (last event time + 1; 1 for an empty trace).
    pub total_time: u64,
    /// Wall-clock of every repair attempt, successful or not (measured;
    /// excluded from deterministic output).
    pub repair_walls: Vec<Duration>,
}

impl ChurnSummary {
    /// Successful repairs (either route).
    pub fn repairs(&self) -> usize {
        self.adapt_repairs + self.scratch_repairs
    }

    /// Fraction of simulated time the deployment was valid.
    pub fn availability(&self) -> f64 {
        self.up_time as f64 / self.total_time as f64
    }

    /// Render the deterministic summary table.
    pub fn render(&self) -> String {
        format!(
            "events          {}\n\
             faults          {}\n\
             repairs         {} (adapt {}, scratch {}, degraded {}, recertified {})\n\
             failed repairs  {}\n\
             plan churn      kept {}, moved {}\n\
             availability    {:.1}% ({}/{} time units)\n",
            self.events,
            self.faults,
            self.repairs(),
            self.adapt_repairs,
            self.scratch_repairs,
            self.degraded_repairs,
            self.recertified_repairs,
            self.failed_repairs,
            self.kept,
            self.moved,
            100.0 * self.availability(),
            self.up_time,
            self.total_time,
        )
    }

    /// Render measured repair latency (min/median/max). Wall-clock, hence
    /// *not* deterministic — callers keep it out of reproducible output
    /// (the CLI sends it to stderr).
    pub fn render_timing(&self) -> String {
        if self.repair_walls.is_empty() {
            return "repair latency  (no repair attempts)\n".into();
        }
        let mut walls = self.repair_walls.clone();
        walls.sort();
        format!(
            "repair latency  min {:?}, median {:?}, max {:?} over {} attempts\n",
            walls[0],
            walls[walls.len() / 2],
            walls[walls.len() - 1],
            walls.len(),
        )
    }
}

/// Full result of a closed-loop run.
#[derive(Debug)]
pub struct ChurnReport {
    /// Per-event log.
    pub records: Vec<EventRecord>,
    /// Aggregates.
    pub summary: ChurnSummary,
    /// Certificate of the initial (pre-churn) deployment, exactly as the
    /// planner emitted it.
    pub initial_certificate: Option<PlanCertificate>,
}

/// A live deployment: the plan plus its simulator realization.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The plan (CompIds valid against the *base* problem — adaptation
    /// only appends resources and rewrites cost formulas).
    pub plan: Plan,
    /// Simulator operations.
    pub ops: Vec<DeployOp>,
    /// Concrete source injections.
    pub sources: Vec<SourceValue>,
}

impl Deployment {
    fn new(problem: &CppProblem, task: &PlanningTask, plan: Plan) -> Self {
        let ops = plan_ops(problem, &plan);
        let sources = plan_sources(problem, task, &plan);
        Deployment { plan, ops, sources }
    }
}

/// Why a closed-loop run could not start.
#[derive(Debug)]
pub enum ChurnError {
    /// The initial problem failed to compile/plan.
    Plan(String),
    /// The initial problem is unsolvable — nothing to maintain.
    Unsolvable,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Plan(e) => write!(f, "initial planning failed: {e}"),
            ChurnError::Unsolvable => write!(f, "initial problem is unsolvable"),
        }
    }
}

impl std::error::Error for ChurnError {}

/// Run the closed loop: plan `problem`, then process `events` in order.
///
/// Availability accounting: the deployment's validity during
/// `[t_prev, t_ev)` is its state *after* processing the previous event;
/// repairs are instantaneous in simulated time (downtime accrues only
/// while no repair exists). The horizon is `last_t + 1`, so the final
/// post-event state contributes one unit.
pub fn run(
    problem: &CppProblem,
    events: &[ChurnEvent],
    cfg: &ChurnConfig,
) -> Result<ChurnReport, ChurnError> {
    let _span = sekitei_obs::span("churn_run");
    let planner = Planner::new(cfg.planner);
    let mut current = problem.clone();
    let baseline = problem.network.clone();

    let outcome = planner.plan(&current).map_err(|e| ChurnError::Plan(e.to_string()))?;
    let plan = outcome.plan.ok_or(ChurnError::Unsolvable)?;
    let initial_certificate = plan.certificate.clone();
    let mut dep = Deployment::new(&current, &outcome.task, plan);
    debug_assert!(simulate(&current, &dep.sources, &dep.ops).ok);

    let mut records = Vec::with_capacity(events.len());
    let mut summary = ChurnSummary { events: events.len(), ..ChurnSummary::default() };
    let mut valid = true;
    let mut prev_t = 0u64;

    for ev in events {
        if valid {
            summary.up_time += ev.t.saturating_sub(prev_t);
        }
        prev_t = ev.t;
        apply(&ev.mutation, &mut current.network, &baseline);

        let _ev_span = sekitei_obs::span("churn_event");
        let report = {
            let _g = sekitei_obs::span("validate");
            simulate(&current, &dep.sources, &dep.ops)
        };
        if report.ok {
            // either still healthy, or a recovery/rejoin just made the
            // old deployment valid again after a failed repair
            valid = true;
            records.push(EventRecord {
                event: ev.clone(),
                broken: Vec::new(),
                outcome: Outcome::Healthy,
            });
            continue;
        }

        summary.faults += 1;
        sekitei_obs::event("churn_fault", 1);
        let broken = {
            let _g = sekitei_obs::span("classify");
            classify(&current, &dep.ops, &report.violations)
        };
        let t0 = Instant::now();
        let repaired = {
            let _g = sekitei_obs::span("repair");
            repair(&planner, &cfg.planner, &current, &dep, &cfg.adapt)
        };
        let wall = t0.elapsed();
        // wall-clock stays out of the deterministic stdout rendering; the
        // trace is where timing per event lives (`--trace-json` on churn)
        sekitei_obs::event("repair_wall_ns", wall.as_nanos() as u64);
        summary.repair_walls.push(wall);

        let outcome = match repaired {
            Some((route, new_dep)) => {
                let diff = plan_diff(&dep.plan, &new_dep.plan);
                let repair = Repair {
                    route,
                    kept: diff.kept.len(),
                    moved: diff.moved.len(),
                    degraded: new_dep.plan.degraded,
                    certificate: new_dep.plan.certificate.clone(),
                    wall,
                };
                summary.kept += repair.kept;
                summary.moved += repair.moved;
                summary.degraded_repairs += usize::from(repair.degraded);
                summary.recertified_repairs += usize::from(repair.certificate.is_some());
                match route {
                    RepairRoute::Adapt => {
                        summary.adapt_repairs += 1;
                        sekitei_obs::event("repair_adapt", 1);
                    }
                    RepairRoute::Scratch => {
                        summary.scratch_repairs += 1;
                        sekitei_obs::event("repair_scratch", 1);
                    }
                }
                dep = new_dep;
                valid = true;
                Outcome::Repaired(repair)
            }
            None => {
                summary.failed_repairs += 1;
                sekitei_obs::event("repair_failed", 1);
                valid = false;
                Outcome::Down { wall }
            }
        };
        records.push(EventRecord { event: ev.clone(), broken, outcome });
    }

    if valid {
        summary.up_time += 1;
    }
    summary.total_time = events.last().map_or(1, |e| e.t + 1);
    Ok(ChurnReport { records, summary, initial_certificate })
}

/// Attempt a repair of `dep` against the mutated `current` problem:
/// adaptation first, scratch as fallback. Every candidate is validated in
/// the simulator **against the unadapted problem** before adoption (the
/// marker resources only appear in cost formulas, so ops and sources
/// carry over unchanged).
fn repair(
    planner: &Planner,
    planner_cfg: &PlannerConfig,
    current: &CppProblem,
    dep: &Deployment,
    adapt_cfg: &AdaptConfig,
) -> Option<(RepairRoute, Deployment)> {
    let existing = existing_from_plan(current, &dep.plan);
    let adapted = adapt_problem(current, &existing, adapt_cfg);
    // anytime mode seeds the SLS incumbent near the pre-churn deployment:
    // the greedy constructor breaks ties toward the current plan's action
    // kinds, so a repair under pressure starts from "move as little as
    // possible" rather than from scratch
    let hint: Vec<ActionKind> = if planner_cfg.anytime {
        dep.plan.steps.iter().map(|s| s.kind.clone()).collect()
    } else {
        Vec::new()
    };
    if let Some((task, plan)) = plan_for_repair(planner, planner_cfg, &adapted, &hint) {
        let d = Deployment::new(&adapted, &task, plan);
        if simulate(current, &d.sources, &d.ops).ok {
            if let Some(d) = recertify(current, &task, d) {
                return Some((RepairRoute::Adapt, d));
            }
        }
    }
    let (task, plan) = plan_for_repair(planner, planner_cfg, current, &hint)?;
    let d = Deployment::new(current, &task, plan);
    if !simulate(current, &d.sources, &d.ops).ok {
        return None;
    }
    recertify(current, &task, d).map(|d| (RepairRoute::Scratch, d))
}

/// Re-certify a repair candidate against the mutated network: rebind the
/// planner's certificate from the task it was planned against (which may
/// be the *adapted* problem's, whose marker resources shift every index)
/// onto a fresh compile of the unadapted `current` problem, then run the
/// independent checker on the result. A candidate that cannot produce a
/// checkable certificate is rejected — the loop falls through to the next
/// route or reports the deployment down, so every adopted repair is
/// auditable offline against the network it actually runs on.
fn recertify(
    current: &CppProblem,
    planned_task: &PlanningTask,
    mut d: Deployment,
) -> Option<Deployment> {
    let cert = d.plan.certificate.as_ref()?;
    let fresh = compile(current).ok()?;
    let rebound = rebind(cert, planned_task, &fresh).ok()?;
    check_certificate(&fresh, &rebound).ok()?;
    d.plan.certificate = Some(rebound);
    Some(d)
}

/// One repair-planning attempt: the exact planner, or the anytime
/// portfolio (hinted toward the pre-churn deployment) when configured.
fn plan_for_repair(
    planner: &Planner,
    planner_cfg: &PlannerConfig,
    problem: &CppProblem,
    hint: &[ActionKind],
) -> Option<(PlanningTask, Plan)> {
    if planner_cfg.anytime {
        let task = compile(problem).ok()?;
        let a = sekitei_anytime::plan_task_hinted(problem, task, planner_cfg, Instant::now(), hint);
        let plan = a.outcome.plan?;
        Some((a.outcome.task, plan))
    } else {
        let o = planner.plan(problem).ok()?;
        let plan = o.plan?;
        Some((o.task, plan))
    }
}

/// Map violations to deployment sites: the op at the violating step, or
/// the goal itself. Deduplicated, order of first occurrence.
fn classify(
    problem: &CppProblem,
    ops: &[DeployOp],
    violations: &[sekitei_sim::Violation],
) -> Vec<String> {
    use sekitei_sim::Violation;
    let name = |n: sekitei_model::NodeId| problem.network.node(n).name.as_str();
    let site = |step: usize| match &ops[step] {
        DeployOp::Place { component, node } => format!("{component}@{}", name(*node)),
        DeployOp::Cross { iface, dir } => {
            format!("{iface}:{}→{}", name(dir.from), name(dir.to))
        }
    };
    let mut out: Vec<String> = Vec::new();
    for v in violations {
        let s = match v {
            Violation::MissingInput { step, .. }
            | Violation::ConditionViolated { step, .. }
            | Violation::ResourceNegative { step, .. }
            | Violation::PlacementForbidden { step, .. }
            | Violation::UnknownName { step, .. } => site(*step),
            Violation::GoalUnmet { component, node } => {
                format!("goal({component}@{})", name(*node))
            }
        };
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}
