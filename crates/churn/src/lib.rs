//! # sekitei-churn
//!
//! Deterministic fault injection and closed-loop deployment maintenance —
//! the dynamic counterpart to the one-shot planner, exercising the
//! adaptation encoding of [`sekitei_model::adapt_problem`] against a
//! network that actually changes (the paper's §6 future-work item).
//!
//! Three layers:
//!
//! * [`event`] — timestamped network mutations (link degradation and
//!   recovery, node crash and rejoin, CPU drift) with a hand-writable
//!   textual trace format, applied to a mutable [`sekitei_model::Network`].
//! * [`generator`] — a seeded ([`generator::SplitMix64`]) weighted event
//!   generator parameterized by the per-scenario
//!   [`sekitei_topology::scenarios::ChurnProfile`].
//! * [`engine`] — the monitor/repair loop: re-validate the deployment in
//!   the simulator after every event, classify what broke, repair via
//!   adaptation with scratch-planning fallback, and account availability
//!   and plan churn.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod generator;

pub use engine::{
    run, ChurnConfig, ChurnError, ChurnReport, ChurnSummary, Deployment, EventRecord, Outcome,
    Repair, RepairRoute,
};
pub use event::{apply, parse_trace, render_trace, ChurnEvent, Mutation, TraceError};
pub use generator::{generate, SplitMix64};
