//! Timestamped network mutations and their textual trace format.
//!
//! A churn trace is a sequence of events applied to a mutable
//! [`Network`]. Traces are plain text — one event per line, `#` comments,
//! node names instead of ids — so a run is replayable from a file and a
//! regression case is hand-writable in a test string:
//!
//! ```text
//! # tiny scenario, one degradation cycle
//! @10 link n0 n1 lbw 60.2
//! @20 node n1 cpu 26.4
//! @30 crash n2
//! @40 rejoin n2
//! @50 link n0 n1 lbw 70
//! ```
//!
//! Crash/rejoin act on whole nodes: a crash zeroes every resource of the
//! node *and of its incident links* (an unreachable node cannot serve
//! traffic either), a rejoin restores both from the pristine baseline
//! network — which also discards any degradation those links carried
//! before the crash, matching the "replaced hardware" reading of a
//! rejoin.

use sekitei_model::{LinkId, Network, NodeId};

/// A single network mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Set a link resource capacity (degradation when below baseline,
    /// recovery when back at it).
    SetLink {
        /// The link.
        link: LinkId,
        /// Resource name (e.g. `lbw`).
        res: String,
        /// New capacity.
        value: f64,
    },
    /// Set a node resource capacity (CPU drift and the like).
    SetNode {
        /// The node.
        node: NodeId,
        /// Resource name (e.g. `cpu`).
        res: String,
        /// New capacity.
        value: f64,
    },
    /// Zero all resources of a node and its incident links.
    Crash {
        /// The node.
        node: NodeId,
    },
    /// Restore a crashed node (and its incident links) to baseline.
    Rejoin {
        /// The node.
        node: NodeId,
    },
}

/// A mutation scheduled at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// Simulated time (arbitrary units, monotonically non-decreasing
    /// within a trace).
    pub t: u64,
    /// The mutation.
    pub mutation: Mutation,
}

/// Apply a mutation to `net`. `baseline` is the pristine network the
/// trace started from; [`Mutation::Rejoin`] restores from it.
pub fn apply(m: &Mutation, net: &mut Network, baseline: &Network) {
    match m {
        Mutation::SetLink { link, res, value } => {
            net.set_link_capacity(*link, res.clone(), *value);
        }
        Mutation::SetNode { node, res, value } => {
            net.set_node_capacity(*node, res.clone(), *value);
        }
        Mutation::Crash { node } => {
            let res: Vec<String> = net.node(*node).resources.keys().cloned().collect();
            for r in res {
                net.set_node_capacity(*node, r, 0.0);
            }
            for l in net.incident(*node).to_vec() {
                let res: Vec<String> = net.link(l).resources.keys().cloned().collect();
                for r in res {
                    net.set_link_capacity(l, r, 0.0);
                }
            }
        }
        Mutation::Rejoin { node } => {
            for (r, v) in baseline.node(*node).resources.clone() {
                net.set_node_capacity(*node, r, v);
            }
            for l in net.incident(*node).to_vec() {
                for (r, v) in baseline.link(l).resources.clone() {
                    net.set_link_capacity(l, r, v);
                }
            }
        }
    }
}

/// Render one event as a trace line (no trailing newline).
pub fn render_event(ev: &ChurnEvent, net: &Network) -> String {
    let name = |n: NodeId| net.node(n).name.as_str();
    match &ev.mutation {
        Mutation::SetLink { link, res, value } => {
            let l = net.link(*link);
            format!("@{} link {} {} {res} {value}", ev.t, name(l.a), name(l.b))
        }
        Mutation::SetNode { node, res, value } => {
            format!("@{} node {} {res} {value}", ev.t, name(*node))
        }
        Mutation::Crash { node } => format!("@{} crash {}", ev.t, name(*node)),
        Mutation::Rejoin { node } => format!("@{} rejoin {}", ev.t, name(*node)),
    }
}

/// Render a whole trace (inverse of [`parse_trace`]).
pub fn render_trace(events: &[ChurnEvent], net: &Network) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&render_event(ev, net));
        out.push('\n');
    }
    out
}

/// A trace parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Parse a textual trace against a network (node names are resolved, link
/// events must reference an existing link). Blank lines and `#` comments
/// are skipped.
pub fn parse_trace(src: &str, net: &Network) -> Result<Vec<ChurnEvent>, TraceError> {
    let mut out = Vec::new();
    let mut prev_t = 0u64;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| TraceError { line: i + 1, msg };
        let mut tok = line.split_whitespace();
        let t: u64 = tok
            .next()
            .and_then(|w| w.strip_prefix('@'))
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| err("expected `@<time>`".into()))?;
        if t < prev_t {
            return Err(err(format!("time {t} goes backwards (previous {prev_t})")));
        }
        prev_t = t;
        let node = |tok: &mut std::str::SplitWhitespace| -> Result<NodeId, TraceError> {
            let w = tok
                .next()
                .ok_or_else(|| TraceError { line: i + 1, msg: "expected node name".into() })?;
            net.node_by_name(w)
                .ok_or_else(|| TraceError { line: i + 1, msg: format!("unknown node `{w}`") })
        };
        let mutation = match tok.next() {
            Some("link") => {
                let a = node(&mut tok)?;
                let b = node(&mut tok)?;
                let link = net
                    .link_between(a, b)
                    .ok_or_else(|| err("no link between those nodes".into()))?;
                let res =
                    tok.next().ok_or_else(|| err("expected resource name".into()))?.to_string();
                let value = tok
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("expected numeric capacity".into()))?;
                Mutation::SetLink { link, res, value }
            }
            Some("node") => {
                let n = node(&mut tok)?;
                let res =
                    tok.next().ok_or_else(|| err("expected resource name".into()))?.to_string();
                let value = tok
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("expected numeric capacity".into()))?;
                Mutation::SetNode { node: n, res, value }
            }
            Some("crash") => Mutation::Crash { node: node(&mut tok)? },
            Some("rejoin") => Mutation::Rejoin { node: node(&mut tok)? },
            other => return Err(err(format!("unknown event kind {other:?}"))),
        };
        if let Some(extra) = tok.next() {
            return Err(err(format!("trailing token `{extra}`")));
        }
        out.push(ChurnEvent { t, mutation });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::resource::names::{CPU, LBW};
    use sekitei_model::LinkClass;

    fn net() -> Network {
        let mut net = Network::new();
        let a = net.add_node("n0", [(CPU, 30.0)]);
        let b = net.add_node("n1", [(CPU, 30.0)]);
        let c = net.add_node("n2", [(CPU, 20.0)]);
        net.add_link(a, b, LinkClass::Wan, [(LBW, 70.0)]);
        net.add_link(b, c, LinkClass::Lan, [(LBW, 150.0)]);
        net
    }

    #[test]
    fn trace_round_trip() {
        let net = net();
        let src = "\
# a comment
@10 link n0 n1 lbw 60.2

@20 node n1 cpu 26.4
@30 crash n2
@40 rejoin n2
@50 link n0 n1 lbw 70
";
        let events = parse_trace(src, &net).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[0].mutation,
            Mutation::SetLink { link: LinkId(0), res: LBW.into(), value: 60.2 }
        );
        assert_eq!(events[2], ChurnEvent { t: 30, mutation: Mutation::Crash { node: NodeId(2) } });
        // render → parse is the identity
        let rendered = render_trace(&events, &net);
        assert_eq!(parse_trace(&rendered, &net).unwrap(), events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let net = net();
        for (src, line, needle) in [
            ("link n0 n1 lbw 60", 1, "@<time>"),
            ("@5 link n0 n2 lbw 60", 1, "no link"),
            ("@5 crash ghost", 1, "unknown node"),
            ("@9 crash n2\n@5 crash n2", 2, "backwards"),
            ("@5 teleport n2", 1, "unknown event"),
            ("@5 node n0 cpu ten", 1, "numeric"),
            ("@5 crash n2 n1", 1, "trailing"),
        ] {
            let e = parse_trace(src, &net).unwrap_err();
            assert_eq!(e.line, line, "{src}");
            assert!(e.to_string().contains(needle), "{src} → {e}");
        }
    }

    #[test]
    fn crash_zeroes_node_and_incident_links_rejoin_restores() {
        let baseline = net();
        let mut n = baseline.clone();
        apply(
            &Mutation::SetLink { link: LinkId(0), res: LBW.into(), value: 55.0 },
            &mut n,
            &baseline,
        );
        apply(&Mutation::Crash { node: NodeId(1) }, &mut n, &baseline);
        assert_eq!(n.node_capacity(NodeId(1), CPU), 0.0);
        assert_eq!(n.link_capacity(LinkId(0), LBW), 0.0);
        assert_eq!(n.link_capacity(LinkId(1), LBW), 0.0);
        assert_eq!(n.node_capacity(NodeId(0), CPU), 30.0, "other nodes untouched");
        apply(&Mutation::Rejoin { node: NodeId(1) }, &mut n, &baseline);
        // rejoin restores the *baseline*, erasing the pre-crash degradation
        assert_eq!(n.link_capacity(LinkId(0), LBW), 70.0);
        assert_eq!(n.link_capacity(LinkId(1), LBW), 150.0);
        assert_eq!(n.node_capacity(NodeId(1), CPU), 30.0);
    }
}
