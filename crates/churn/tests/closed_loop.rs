//! End-to-end closed-loop maintenance tests: generated and hand-written
//! traces against the canonical scenarios.

use sekitei_churn::{engine, generate, parse_trace, ChurnConfig, Outcome, RepairRoute};
use sekitei_model::LevelScenario;
use sekitei_topology::scenarios::{self, NetSize};

fn render_run(report: &engine::ChurnReport, problem: &sekitei_model::CppProblem) -> String {
    let mut out = String::new();
    for r in &report.records {
        out.push_str(&r.render(problem));
        out.push('\n');
    }
    out.push_str(&report.summary.render());
    out
}

#[test]
fn tiny_generated_churn_stays_available() {
    let p = scenarios::tiny(LevelScenario::C);
    let prof = scenarios::churn_profile(NetSize::Tiny, &p);
    let events = generate(&p.network, &prof, 7, 30);
    let report = engine::run(&p, &events, &ChurnConfig::default()).unwrap();
    assert!(
        report.summary.repairs() >= 1,
        "tiny churn must force at least one repair:\n{}",
        render_run(&report, &p)
    );
    assert_eq!(
        report.summary.failed_repairs,
        0,
        "tiny profile is calibrated to stay repairable:\n{}",
        render_run(&report, &p)
    );
    assert!(
        (report.summary.availability() - 1.0).abs() < 1e-12,
        "availability {} != 100%:\n{}",
        report.summary.availability(),
        render_run(&report, &p)
    );
}

#[test]
fn small_generated_churn_is_deterministic() {
    let p = scenarios::small(LevelScenario::C);
    let prof = scenarios::churn_profile(NetSize::Small, &p);
    let cfg = ChurnConfig::default();
    let run = || {
        let events = generate(&p.network, &prof, 7, 50);
        let report = engine::run(&p, &events, &cfg).unwrap();
        render_run(&report, &p)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "event log + summary must be reproducible");
    assert!(a.contains("availability"), "{a}");
}

#[test]
fn hand_written_degradation_triggers_adapt_repair() {
    // Tiny/C: the optimal deployment reserves 65 of the 70-unit WAN link.
    // Squeezing the link to 60 invalidates it; at 60 the compressed path
    // still fits, so adaptation must repair without an outage.
    let p = scenarios::tiny(LevelScenario::C);
    let trace = "\
@10 link n0 n1 lbw 60
@20 link n0 n1 lbw 70
";
    let events = parse_trace(trace, &p.network).unwrap();
    let report = engine::run(&p, &events, &ChurnConfig::default()).unwrap();
    assert_eq!(report.summary.faults, 1);
    let repair = match &report.records[0].outcome {
        Outcome::Repaired(r) => r,
        other => panic!("expected a repair, got {other:?}"),
    };
    assert_eq!(repair.route, RepairRoute::Adapt);
    assert!(!report.records[0].broken.is_empty(), "breakage must be classified");
    assert!((report.summary.availability() - 1.0).abs() < 1e-12);
}

#[test]
fn partitioning_crash_downs_deployment_until_rejoin() {
    // Small is a line: crashing path node n2 partitions server (n0) from
    // client (n4) — no repair can exist until the rejoin at t=30.
    let p = scenarios::small(LevelScenario::C);
    let trace = "\
@10 crash n2
@30 rejoin n2
@40 node x cpu 30
";
    let events = parse_trace(trace, &p.network).unwrap();
    let report = engine::run(&p, &events, &ChurnConfig::default()).unwrap();
    assert_eq!(report.summary.failed_repairs, 1);
    assert!(matches!(report.records[0].outcome, Outcome::Down { .. }));
    // the rejoin restores the old deployment without replanning
    assert!(matches!(report.records[1].outcome, Outcome::Healthy), "{:?}", report.records[1]);
    assert!(matches!(report.records[2].outcome, Outcome::Healthy));
    // down exactly for [10, 30): availability = (41 - 20) / 41
    assert_eq!(report.summary.up_time, 21);
    assert_eq!(report.summary.total_time, 41);
}

#[test]
fn empty_trace_is_all_uptime() {
    let p = scenarios::tiny(LevelScenario::B);
    let report = engine::run(&p, &[], &ChurnConfig::default()).unwrap();
    assert_eq!(report.summary.events, 0);
    assert_eq!(report.summary.total_time, 1);
    assert!((report.summary.availability() - 1.0).abs() < 1e-12);
    assert!(report.summary.render_timing().contains("no repair attempts"));
}

#[test]
fn every_repair_is_recertified_against_the_mutated_network() {
    let p = scenarios::tiny(LevelScenario::C);
    let prof = scenarios::churn_profile(NetSize::Tiny, &p);
    let events = generate(&p.network, &prof, 7, 30);
    let report = engine::run(&p, &events, &ChurnConfig::default()).unwrap();
    assert!(report.summary.repairs() >= 1, "seed 7 must force a repair");
    assert_eq!(
        report.summary.recertified_repairs,
        report.summary.repairs(),
        "the engine must refuse any repair it cannot re-certify"
    );

    // the initial deployment's certificate checks against the pristine task
    let init = report.initial_certificate.as_ref().expect("initial plan carries a certificate");
    let task0 = sekitei_compile::compile(&p).unwrap();
    sekitei_cert::check_certificate(&task0, init).unwrap();

    // replay the mutations and re-check every adopted repair with the
    // independent checker against the network as it was at that event
    let baseline = p.network.clone();
    let mut current = p.clone();
    let mut checked = 0usize;
    for (r, ev) in report.records.iter().zip(&events) {
        sekitei_churn::apply(&ev.mutation, &mut current.network, &baseline);
        if let Outcome::Repaired(rep) = &r.outcome {
            let cert = rep.certificate.as_ref().expect("adopted repairs carry a certificate");
            let task = sekitei_compile::compile(&current).unwrap();
            assert_eq!(
                cert.task_fingerprint,
                task.fingerprint(),
                "repair certificate must be bound to the mutated network, not the pre-churn one"
            );
            let check = sekitei_cert::check_certificate(&task, cert).unwrap();
            assert_eq!(check.outcome, sekitei_cert::OutcomeClass::ChurnRepair);
            assert!(!check.gap_proved, "repairs are feasibility-only certificates");
            checked += 1;
        }
    }
    assert_eq!(checked, report.summary.repairs());
}

#[test]
fn stale_certificate_fails_against_mutated_network() {
    // hand-built staleness: certify the pre-churn deployment, squeeze the
    // WAN link below the plan's 65-unit reservation, and demand the old
    // certificate fail against the mutated network
    let p = scenarios::tiny(LevelScenario::C);
    let report = engine::run(&p, &[], &ChurnConfig::default()).unwrap();
    let cert = report.initial_certificate.unwrap();

    let mut mutated = p.clone();
    let trace = parse_trace("@1 link n0 n1 lbw 60\n", &p.network).unwrap();
    sekitei_churn::apply(&trace[0].mutation, &mut mutated.network, &p.network);
    let task = sekitei_compile::compile(&mutated).unwrap();

    // first line of defence: the task fingerprint covers capacities
    let err = sekitei_cert::check_certificate(&task, &cert).unwrap_err();
    assert!(
        matches!(err, sekitei_cert::CertViolation::FingerprintMismatch { .. }),
        "stale certificate must fail the fingerprint check, got: {err}"
    );

    // even a forged fingerprint cannot survive: the capacity change
    // shifts ground-action enumeration (name mismatch at the old index)
    // and the claimed ledger was computed against the old 70-unit
    // capacity (execution mismatch if the indices happen to line up)
    let mut forged = cert.clone();
    forged.task_fingerprint = task.fingerprint();
    let err = sekitei_cert::check_certificate(&task, &forged).unwrap_err();
    assert!(
        matches!(
            err,
            sekitei_cert::CertViolation::ActionNameMismatch { .. }
                | sekitei_cert::CertViolation::UnknownAction { .. }
                | sekitei_cert::CertViolation::ResourceNegative { .. }
                | sekitei_cert::CertViolation::ConditionFailed { .. }
                | sekitei_cert::CertViolation::LedgerMismatch { .. }
        ),
        "forged fingerprint must still fail, got: {err}"
    );

    // rebinding matches actions by *name*, so it survives the index
    // shuffle — and must then fail in execution, because the plan
    // reserves 65 units on a link that now has 60
    let old_task = sekitei_compile::compile(&p).unwrap();
    let err = sekitei_cert::rebind(&cert, &old_task, &task).unwrap_err();
    assert!(
        matches!(
            err,
            sekitei_cert::CertViolation::ResourceNegative { .. }
                | sekitei_cert::CertViolation::ConditionFailed { .. }
        ),
        "rebound stale plan must fail execution on the squeezed link, got: {err}"
    );
}

#[test]
fn unsolvable_initial_problem_is_an_error() {
    // Scenario A (unleveled) is the paper's canonical greedy failure.
    // With graceful degradation (the churn default) a relaxed-bound plan
    // exists, so maintenance can start; without it, the run must refuse.
    let p = scenarios::tiny(LevelScenario::A);
    let mut cfg = ChurnConfig::default();
    cfg.planner.degrade = false;
    let err = engine::run(&p, &[], &cfg).unwrap_err();
    assert!(err.to_string().contains("unsolvable"), "{err}");

    let degraded = engine::run(&p, &[], &ChurnConfig::default()).unwrap();
    assert!((degraded.summary.availability() - 1.0).abs() < 1e-12);
}
