//! Regenerates Figure 5 — the effect of cost functions on plan choice.
//!
//! Sweeps the relative price of link bandwidth vs node resources. Cheap
//! bandwidth favours the raw 3-link path for the T stream; expensive
//! bandwidth favours compressing onto the 2-link path with Zip/Unzip.
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_topology::scenarios;

fn main() {
    println!(
        "{:>8}  {:>8}  {:>10}  {:>12}  plan shape",
        "w_link", "actions", "cost LB", "crossings"
    );
    for w in [0.1, 0.3, 0.5, 0.7, 0.83, 1.0, 1.5, 2.0, 3.0] {
        let p = scenarios::tradeoff(w);
        let o = Planner::new(PlannerConfig::default()).plan(&p).unwrap();
        match &o.plan {
            Some(plan) => {
                let zips = plan.steps.iter().filter(|s| s.name.contains("Zip")).count();
                let shape = if zips > 0 { "compress (2-link path)" } else { "raw (3-link path)" };
                println!(
                    "{:>8.2}  {:>8}  {:>10.2}  {:>12}  {}",
                    w,
                    plan.len(),
                    plan.cost_lower_bound,
                    plan.crossings(),
                    shape
                );
            }
            None => println!("{w:>8.2}  no plan"),
        }
    }
}
