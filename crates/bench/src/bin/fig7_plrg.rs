//! Regenerates Figure 7 — a slice of the per-proposition logical
//! regression graph (PLRG) for the Figure 3 problem: goal-relevant
//! propositions with their minimum logical costs and the actions that
//! support them.
use sekitei_compile::compile;
use sekitei_model::{LevelScenario, PropId};
use sekitei_planner::Plrg;
use sekitei_topology::scenarios;

fn main() {
    let p = scenarios::tiny(LevelScenario::C);
    let task = compile(&p).unwrap();
    let plrg = Plrg::build(&task);
    let (np, na) = plrg.sizes();
    println!(
        "PLRG for the Figure 3 problem (scenario C): {np} proposition nodes, {na} action nodes\n"
    );

    println!("{:<28}{:>10}  supported by", "proposition", "cost ≥");
    let mut rows: Vec<(f64, PropId)> = (0..task.num_props())
        .map(PropId::from_index)
        .filter(|&pr| plrg.relevant_props[pr.index()])
        .map(|pr| (plrg.prop_cost(pr), pr))
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    for (cost, pr) in rows {
        // cheapest supporting action (the PLRG edge Figure 7 draws)
        let best = task.achievers(pr).iter().filter(|&&a| plrg.relevant_actions[a.index()]).min_by(
            |&&a, &&b| {
                plrg.action_value[a.index()].partial_cmp(&plrg.action_value[b.index()]).unwrap()
            },
        );
        let support = match best {
            Some(&a) => task.action(a).name.clone(),
            None => "(initial state)".to_string(),
        };
        println!("{:<28}{:>10.2}  {}", task.prop_name(pr), cost, support);
    }
}
