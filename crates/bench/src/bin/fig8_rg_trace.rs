//! Regenerates Figure 8 — propagation of optimistic resource maps while
//! replaying a plan tail in the main regression graph. Prints the interval
//! state after each action of the Figure 4 plan, replayed both in
//! mid-search mode (intervals seeded from the actions' own optimistic
//! maps) and from the concrete initial state.
use sekitei_compile::compile;
use sekitei_model::{ActionId, LevelScenario};
use sekitei_planner::replay_tail;
use sekitei_topology::scenarios;

fn main() {
    let p = scenarios::tiny(LevelScenario::C);
    let task = compile(&p).unwrap();
    let pick = |pat: &str, frag: &str| -> ActionId {
        task.action_ids()
            .find(|&a| {
                let n = &task.action(a).name;
                n.contains(pat) && n.contains(frag)
            })
            .expect("action")
    };
    let tail = [
        pick("place(Splitter,n0)", "[M=1"),
        pick("place(Zip,n0)", "[T=1"),
        pick("cross(Z,n0→n1)", "in=1,out=1"),
        pick("cross(I,n0→n1)", "in=1,out=1"),
        pick("place(Unzip,n1)", "[Z=1"),
        pick("place(Merger,n1)", "[T=1,I=1"),
        pick("place(Client,n1)", "[M=1]"),
    ];

    for (mode, init) in [
        ("optimistic maps only (mid-search)", None),
        ("from the initial state (terminal check)", Some(task.init_values.as_slice())),
    ] {
        println!("=== replay {mode} ===");
        for k in 1..=tail.len() {
            let map = replay_tail(&task, &tail[..k], init).expect("the Figure 4 tail is feasible");
            println!("after {}:", task.action(tail[k - 1]).name);
            let mut entries: Vec<_> = map.iter().collect();
            entries.sort_by_key(|(v, _)| v.index());
            for (v, iv) in entries {
                println!("    {:<14} {}", task.gvar_name(*v), iv);
            }
        }
        println!();
    }
}
