//! Regenerates Table 2 — the scalability evaluation: for each network size
//! (Tiny / Small / Large) and level scenario (A–E), the plan's cost lower
//! bound, its action count, the reserved LAN bandwidth, and the planner's
//! work (ground actions, PLRG/SLRG/RG sizes, wall time).
//!
//! Rows are independent planning runs, so by default they execute through
//! [`Planner::plan_batch`] on scoped worker threads (results are
//! deterministic either way); pass `--sequential` for clean per-row timing
//! measurements.

use sekitei_model::{CppProblem, LevelScenario};
use sekitei_planner::{plan_metrics, PlanOutcome, Planner, PlannerConfig};
use sekitei_topology::scenarios::{self, NetSize};

fn format_row(size: NetSize, sc: LevelScenario, p: &CppProblem, o: &PlanOutcome) -> String {
    let s = &o.stats;
    let work = format!(
        "{:>9}{:>8}/{:<6}{:>8}{:>9}/{:<7}{:>7.0}/{:<7.0}",
        s.total_actions,
        s.plrg_props,
        s.plrg_actions,
        s.slrg_nodes,
        s.rg_nodes,
        s.rg_open_left,
        s.total_time.as_secs_f64() * 1e3,
        s.search_time.as_secs_f64() * 1e3,
    );
    match &o.plan {
        Some(plan) => {
            let m = plan_metrics(p, &o.task, plan);
            let lan = if m.reserved_lan_bw > 0.0 {
                format!("{:.1}", m.reserved_lan_bw)
            } else {
                "N/A".to_string()
            };
            format!(
                "{:<7}{:<4}{:>12.1}{:>9}{:>10}{}",
                size.label(),
                sc.label(),
                plan.cost_lower_bound,
                plan.len(),
                lan,
                work
            )
        }
        None => format!(
            "{:<7}{:<4}{:>12}{:>9}{:>10}{}{}",
            size.label(),
            sc.label(),
            "-",
            "no plan",
            "-",
            work,
            if s.budget_exhausted { "  (budget)" } else { "" }
        ),
    }
}

fn main() {
    let sequential = std::env::args().any(|a| a == "--sequential");
    let grid: Vec<(NetSize, LevelScenario)> = NetSize::ALL
        .into_iter()
        .flat_map(|size| LevelScenario::ALL.into_iter().map(move |sc| (size, sc)))
        .collect();

    println!(
        "{:<7}{:<4}{:>12}{:>9}{:>10}{:>9}{:>15}{:>8}{:>17}{:>15}",
        "Net",
        "Sc",
        "lower-bound",
        "actions",
        "LAN bw",
        "#acts",
        "PLRG p/a",
        "SLRG",
        "RG created/open",
        "time tot/search"
    );

    let problems: Vec<CppProblem> =
        grid.iter().map(|&(size, sc)| scenarios::problem(size, sc)).collect();
    let planner = Planner::new(PlannerConfig::default());
    let t0 = std::time::Instant::now();
    let outcomes = if sequential {
        planner.plan_batch_with(&problems, 1)
    } else {
        planner.plan_batch(&problems)
    };
    let wall = t0.elapsed();

    for ((&(size, sc), p), o) in grid.iter().zip(&problems).zip(&outcomes) {
        println!("{}", format_row(size, sc, p, o.as_ref().expect("scenario grids compile")));
    }
    println!(
        "\ngrid wall time: {:.0} ms ({})",
        wall.as_secs_f64() * 1e3,
        if sequential { "sequential".to_string() } else { "parallel batch".to_string() }
    );
    println!(
        "\nPaper reference (Table 2): B finds shortest plans (bounds 7/10/11 = action\n\
         counts, LAN reservation 100); C-E find the cost-optimal 13-action plans\n\
         reserving 65 units; A fails everywhere; work grows with levels (E >> D)."
    );
}
