//! Regenerates Table 1 — the resource level scenarios.
use sekitei_model::{LevelScenario, LevelSpec};

fn render(cuts: Vec<f64>) -> String {
    LevelSpec::new(cuts).unwrap().to_string()
}

fn main() {
    println!("{:<10}{:<55}Levels of link bandwidth", "Scenario", "Levels of bandwidth of M");
    for sc in LevelScenario::ALL {
        println!(
            "{:<10}{:<55}{}",
            sc.label(),
            render(sc.m_cutpoints()),
            render(sc.link_cutpoints())
        );
    }
    println!("\nBandwidth levels of interfaces T, I, and Z are proportional to M's:");
    let m = LevelSpec::new(LevelScenario::D.m_cutpoints()).unwrap();
    for (name, f) in [("T", 0.7), ("I", 0.3), ("Z", 0.35)] {
        println!("  {name} (×{f}): {}", m.scaled(f));
    }
}
