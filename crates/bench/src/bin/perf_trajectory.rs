//! Per-phase performance trajectory of the planner pipeline.
//!
//! Runs every network size (Tiny / Small / Large) under every level
//! scenario (A–E), timing the four pipeline phases separately:
//!
//! * `compile` — grounding + leveling + static pruning,
//! * `plrg`    — per-proposition cost fixpoint,
//! * `slrg`    — cumulative wall time of uncached set-cost A* queries,
//! * `rg`      — main regression search minus the SLRG share.
//!
//! Each combination runs `REPS` times and the minimum wall per phase is
//! kept (least scheduler noise). Results go to stdout as a table and to
//! `BENCH_planner.json` in the current directory as machine-readable
//! records `{phase, scenario, wall_ms, nodes, budget_exhausted}` — the
//! file the repo's committed baselines under `crates/bench/baselines/`
//! are snapshots of. `budget_exhausted` flags rows whose search aborted
//! on a budget (Large/A burns its full 2M-node cap), so their `wall_ms`
//! measures the budget, not the instance.
//!
//! `rg-par2` / `rg-par4` time the batch-synchronous parallel search
//! (`--search-threads`) on the Small and Large topologies. They measure
//! the *full* search wall: SLRG queries interleave with expansion across
//! the workers, so the sequential `slrg`/`rg` split is impossible —
//! compare them against the sequential `slrg + rg` sum.
//!
//! `rg-prune` is the same full sequential search wall with the pruning
//! layer on (dominance + symmetry breaking + g-aware reopening, the
//! `PlannerConfig` default); compare its node counts against the `rg`
//! rows to see what the layer removes. The budget-exhausted rows are the
//! headline: Small/A and Large/A terminate via drain mode instead of
//! burning their full budgets.
//!
//! A fifth pair of phases times the serving path end to end over a real
//! socket (Tiny and Small scenarios only):
//!
//! * `serve-cold` — first request against a freshly started server: the
//!   full decode + compile + search pipeline plus framing,
//! * `serve-warm` — the identical repeat request: an outcome-cache hit,
//!   so just hashing plus framing.
//!
//! A sixth pair compares the two repair routes of the churn engine after
//! a bottleneck-link degradation (Tiny and Small, solvable scenarios):
//!
//! * `adapt-repair`   — replan the *adapted* problem (keep/migrate cost
//!   structure around the existing placements),
//! * `scratch-repair` — replan the mutated problem from scratch.
//!
//! A seventh pair prices the proof-carrying-plan layer on every size
//! (scenarios with a plan, planned once outside the timed region):
//!
//! * `cert-emit`  — package a `PlanCertificate` from the ledger the
//!   planner already produced (witness scan + ledger copy),
//! * `cert-check` — the independent checker re-deriving the execution
//!   from the compiled task (`nodes` = ledger entries re-derived).

use sekitei_compile::compile;
use sekitei_model::resource::names::LBW;
use sekitei_model::{adapt_problem, AdaptConfig, LevelScenario, LinkClass};
use sekitei_planner::{rg, Planner, Plrg, RgConfig, Slrg};
use sekitei_sim::existing_from_plan;
use sekitei_topology::scenarios::{self, NetSize};
use std::time::Instant;

const REPS: usize = 5;

#[derive(Clone, Copy)]
struct PhaseRow {
    wall_ms: f64,
    nodes: usize,
    /// The measured run aborted on a search budget (node cap, reject cap
    /// or deadline) — its wall time bounds the budget, not the instance.
    budget_exhausted: bool,
}

/// One full pipeline run; returns [compile, plrg, slrg, rg] rows.
fn run_once(size: NetSize, sc: LevelScenario) -> [PhaseRow; 4] {
    let p = scenarios::problem(size, sc);

    let t = Instant::now();
    let task = compile(&p).expect("scenario compiles");
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let plrg = Plrg::build(&task);
    let plrg_ms = t.elapsed().as_secs_f64() * 1e3;
    let (pp, pa) = plrg.sizes();

    let mut slrg = Slrg::new(&task, &plrg, 50_000);
    let cfg = RgConfig::default();
    let t = Instant::now();
    let r = rg::search(&task, &plrg, &mut slrg, &cfg);
    let search_ms = t.elapsed().as_secs_f64() * 1e3;
    let slrg_ms = slrg.stats().time.as_secs_f64() * 1e3;
    let rg_ms = (search_ms - slrg_ms).max(0.0);

    [
        PhaseRow { wall_ms: compile_ms, nodes: task.num_actions(), budget_exhausted: false },
        PhaseRow { wall_ms: plrg_ms, nodes: pp + pa, budget_exhausted: false },
        PhaseRow { wall_ms: slrg_ms, nodes: slrg.stats().nodes, budget_exhausted: false },
        PhaseRow { wall_ms: rg_ms, nodes: r.nodes_created, budget_exhausted: r.budget_exhausted },
    ]
}

/// One parallel-search run (`rg-parN`): the full search wall on `threads`
/// workers. The result (plan, counters, bound) is bit-identical to the
/// sequential search; only the wall clock differs.
fn run_par(size: NetSize, sc: LevelScenario, threads: usize) -> PhaseRow {
    let p = scenarios::problem(size, sc);
    let task = compile(&p).expect("scenario compiles");
    let plrg = Plrg::build(&task);
    let mut slrg = Slrg::new(&task, &plrg, 50_000);
    let cfg = RgConfig::default();
    let t = Instant::now();
    let r = rg::search_with_threads(&task, &plrg, &mut slrg, &cfg, threads);
    PhaseRow {
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        nodes: r.nodes_created,
        budget_exhausted: r.budget_exhausted,
    }
}

/// One pruned-search run (`rg-prune`): the full sequential search wall
/// with dominance, symmetry breaking and g-aware reopening on.
fn run_pruned(size: NetSize, sc: LevelScenario) -> PhaseRow {
    let p = scenarios::problem(size, sc);
    let task = compile(&p).expect("scenario compiles");
    let plrg = Plrg::build(&task);
    let mut slrg = Slrg::new(&task, &plrg, 50_000);
    let cfg = RgConfig { dominance: true, symmetry: true, reopen: true, ..RgConfig::default() };
    let t = Instant::now();
    let r = rg::search(&task, &plrg, &mut slrg, &cfg);
    PhaseRow {
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        nodes: r.nodes_created,
        budget_exhausted: r.budget_exhausted,
    }
}

/// One anytime portfolio run (`anytime-<N>ms`): the exact search raced
/// against the SLS lane under a deadline, on the adversarial unleveled
/// scenario where the plain search returns nothing. Returns the full
/// wall plus the reported optimality gap (deterministic for the fixed
/// default `sls_seed`).
fn run_anytime(size: NetSize, deadline_ms: u64) -> (PhaseRow, f64) {
    let p = scenarios::problem(size, LevelScenario::A);
    let cfg = sekitei_planner::PlannerConfig {
        degrade: true,
        anytime: true,
        deadline: Some(std::time::Duration::from_millis(deadline_ms)),
        ..Default::default()
    };
    let t = Instant::now();
    let a = sekitei_anytime::plan(&p, &cfg).expect("scenario compiles");
    let row = PhaseRow {
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        nodes: a.outcome.stats.rg_nodes,
        budget_exhausted: a.outcome.stats.budget_exhausted,
    };
    (row, a.outcome.stats.optimality_gap.unwrap_or(f64::NAN))
}

/// One cold/warm serving measurement: fresh server (so the caches really
/// are cold), one connection, one cold request, then the warm repeat.
fn serve_once(size: NetSize, sc: LevelScenario) -> [PhaseRow; 2] {
    use sekitei_server::{Connection, Server, ServerConfig};

    let server = Server::bind("127.0.0.1:0", ServerConfig { workers: 2, ..Default::default() })
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());

    let p = scenarios::problem(size, sc);
    let mut conn = Connection::connect(addr).expect("connect");

    let t = Instant::now();
    let (cold, via) = conn.plan(&p).expect("cold request");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!via.is_warm(), "fresh server cannot have the outcome cached");

    let t = Instant::now();
    let (_, via) = conn.plan(&p).expect("warm request");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    // budget-exhaustion is deterministic and caches; only deadline-tripped
    // outcomes (wall-clock luck) are deliberately uncacheable
    assert!(
        via.is_warm() || cold.stats.deadline_hit,
        "identical repeat of a deadline-free run must hit the outcome cache"
    );

    drop(conn);
    handle.shutdown();
    join.join().expect("server thread").expect("clean shutdown");

    let nodes = cold.stats.rg_nodes as usize;
    let budget_exhausted = cold.stats.budget_exhausted;
    [
        PhaseRow { wall_ms: cold_ms, nodes, budget_exhausted },
        PhaseRow { wall_ms: warm_ms, nodes, budget_exhausted },
    ]
}

/// One repair-route comparison: plan, squeeze the tightest WAN link to
/// 86% of baseline (enough to invalidate deployments that reserve most of
/// it, mild enough to stay repairable at fine level granularity), then
/// time adaptation-based repair vs scratch replanning of the mutated
/// problem. `None` when the scenario has no initial plan (A — nothing to
/// repair) or the squeezed instance is unsolvable (coarse levels force
/// the full conservative reservation, e.g. Tiny/B).
fn repair_once(size: NetSize, sc: LevelScenario) -> Option<[PhaseRow; 2]> {
    let p = scenarios::problem(size, sc);
    // repair-grade planner: graceful degradation on, like the churn engine
    let planner =
        Planner::new(sekitei_planner::PlannerConfig { degrade: true, ..Default::default() });
    let initial = planner.plan(&p).ok()?.plan?;

    let mut q = p.clone();
    let wan = q.network.link_ids().filter(|&l| q.network.link(l).class == LinkClass::Wan).min_by(
        |&a, &b| q.network.link_capacity(a, LBW).total_cmp(&q.network.link_capacity(b, LBW)),
    )?;
    q.network.set_link_capacity(wan, LBW, q.network.link_capacity(wan, LBW) * 0.86);

    let existing = existing_from_plan(&p, &initial);
    let adapted = adapt_problem(&q, &existing, &AdaptConfig::default());

    let t = Instant::now();
    let a = planner.plan(&adapted).expect("adapted problem compiles");
    let adapt_ms = t.elapsed().as_secs_f64() * 1e3;
    a.plan.as_ref()?;

    let t = Instant::now();
    let s = planner.plan(&q).expect("mutated problem compiles");
    let scratch_ms = t.elapsed().as_secs_f64() * 1e3;
    s.plan.as_ref()?;

    Some([
        PhaseRow {
            wall_ms: adapt_ms,
            nodes: a.stats.rg_nodes,
            budget_exhausted: a.stats.budget_exhausted,
        },
        PhaseRow {
            wall_ms: scratch_ms,
            nodes: s.stats.rg_nodes,
            budget_exhausted: s.stats.budget_exhausted,
        },
    ])
}

/// One certificate-layer measurement: plan once (degrade on, like the
/// serving path), then time packaging the certificate from the existing
/// ledger (`cert-emit`) and independently re-checking it against the
/// compiled task (`cert-check`), min of `REPS` each. `None` when the
/// scenario yields no plan.
fn cert_once(size: NetSize, sc: LevelScenario) -> Option<[PhaseRow; 2]> {
    let p = scenarios::problem(size, sc);
    let planner =
        Planner::new(sekitei_planner::PlannerConfig { degrade: true, ..Default::default() });
    let o = planner.plan(&p).ok()?;
    let plan = o.plan?;
    let cert = plan.certificate.as_ref()?;
    let actions: Vec<_> = plan.steps.iter().map(|s| s.action).collect();

    let mut emit_ms = f64::INFINITY;
    let mut check_ms = f64::INFINITY;
    let mut entries = 0usize;
    for _ in 0..REPS {
        let t = Instant::now();
        let emitted = sekitei_cert::emit(
            &o.task,
            &actions,
            &plan.execution.source_values,
            &plan.execution.ledger,
            cert.outcome,
            cert.bound,
        );
        emit_ms = emit_ms.min(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let report = sekitei_cert::check_certificate(&o.task, &emitted)
            .expect("issued certificate verifies");
        check_ms = check_ms.min(t.elapsed().as_secs_f64() * 1e3);
        entries = report.ledger_entries;
    }
    Some([
        PhaseRow { wall_ms: emit_ms, nodes: plan.steps.len(), budget_exhausted: false },
        PhaseRow { wall_ms: check_ms, nodes: entries, budget_exhausted: false },
    ])
}

/// Cross-check the wall-clock phase accounting above against the tracing
/// layer before benching: with tracing on, the per-phase self times summed
/// from the trace must fit inside the `plan` span, which must fit inside
/// the wall clock around it. Panics (aborting the bench) if the trace
/// over-counts. Drains and disables tracing on exit so every measurement
/// below runs with tracing off.
fn obs_self_check() {
    sekitei_obs::enable();
    let _ = sekitei_obs::take_trace();
    let p = scenarios::problem(NetSize::Tiny, LevelScenario::C);
    let t = Instant::now();
    let outcome = Planner::default().plan(&p).expect("tiny/C plans");
    let wall_ns = t.elapsed().as_nanos() as u64;
    assert!(outcome.plan.is_some(), "tiny/C is solvable");
    let trace = sekitei_obs::take_trace();
    sekitei_obs::disable();

    let total = trace.span_total_ns("plan");
    let phases: u64 =
        ["compile", "plrg", "slrg", "rg", "concretize"].iter().map(|n| trace.span_self_ns(n)).sum();
    assert!(total > 0, "tracing recorded no `plan` span");
    assert!(phases <= total, "phase self-times over-count the pipeline: {phases} ns > {total} ns");
    assert!(total <= wall_ns, "`plan` span exceeds the wall clock: {total} ns > {wall_ns} ns");
    eprintln!(
        "obs self-check: phase sum {:.3} ms ≤ plan span {:.3} ms ≤ wall {:.3} ms",
        phases as f64 / 1e6,
        total as f64 / 1e6,
        wall_ns as f64 / 1e6
    );
}

fn main() {
    obs_self_check();
    const PHASES: [&str; 4] = ["compile", "plrg", "slrg", "rg"];
    let mut records: Vec<(String, &'static str, PhaseRow)> = Vec::new();

    println!(
        "{:<10}{:<9}{:>12}{:>10}   (min of {REPS} reps)",
        "scenario", "phase", "wall_ms", "nodes"
    );
    for size in NetSize::ALL {
        for sc in LevelScenario::ALL {
            let mut best: Option<[PhaseRow; 4]> = None;
            for _ in 0..REPS {
                let rows = run_once(size, sc);
                best = Some(match best {
                    None => rows,
                    Some(mut b) => {
                        for (bi, ri) in b.iter_mut().zip(rows) {
                            if ri.wall_ms < bi.wall_ms {
                                *bi = ri;
                            }
                        }
                        b
                    }
                });
            }
            let label = format!("{}/{}", size.label(), sc.label());
            for (phase, row) in PHASES.iter().zip(best.unwrap()) {
                println!("{:<10}{:<9}{:>12.3}{:>10}", label, phase, row.wall_ms, row.nodes);
                records.push((label.clone(), phase, row));
            }
        }
    }

    // parallel search on the two sizes where the frontier is wide enough
    // to matter; Tiny searches finish in microseconds and would only
    // measure round-barrier overhead
    const PAR_PHASES: [(&str, usize); 2] = [("rg-par2", 2), ("rg-par4", 4)];
    for size in [NetSize::Small, NetSize::Large] {
        for sc in LevelScenario::ALL {
            let label = format!("{}/{}", size.label(), sc.label());
            for (phase, threads) in PAR_PHASES {
                let mut best: Option<PhaseRow> = None;
                for _ in 0..REPS {
                    let row = run_par(size, sc, threads);
                    best = Some(match best {
                        None => row,
                        Some(b) if row.wall_ms < b.wall_ms => row,
                        Some(b) => b,
                    });
                }
                let row = best.unwrap();
                println!("{:<10}{:<9}{:>12.3}{:>10}", label, phase, row.wall_ms, row.nodes);
                records.push((label.clone(), phase, row));
            }
        }
    }

    // the anytime portfolio on the adversarial unleveled scenario: the
    // plain search of the `rg` rows returns nothing there, the portfolio
    // returns a sim-validated incumbent with a measured gap; the gap is
    // deterministic (fixed sls_seed), the wall is min-of-reps
    const ANYTIME_PHASES: [(&str, u64); 3] =
        [("anytime-10ms", 10), ("anytime-50ms", 50), ("anytime-250ms", 250)];
    for size in [NetSize::Small, NetSize::Large] {
        let label = format!("{}/A", size.label());
        for (phase, deadline_ms) in ANYTIME_PHASES {
            let mut best: Option<(PhaseRow, f64)> = None;
            for _ in 0..REPS {
                let (row, gap) = run_anytime(size, deadline_ms);
                best = Some(match best {
                    None => (row, gap),
                    Some(b) if row.wall_ms < b.0.wall_ms => (row, gap),
                    Some(b) => b,
                });
            }
            let (row, gap) = best.unwrap();
            println!(
                "{:<10}{:<14}{:>7.3}{:>10}   gap ≤ {:.2}",
                label, phase, row.wall_ms, row.nodes, gap
            );
            records.push((label.clone(), phase, row));
        }
    }

    // the pruning layer on the same two sizes: node counts against the
    // `rg` rows show what dominance + symmetry + drain mode remove
    for size in [NetSize::Small, NetSize::Large] {
        for sc in LevelScenario::ALL {
            let label = format!("{}/{}", size.label(), sc.label());
            let mut best: Option<PhaseRow> = None;
            for _ in 0..REPS {
                let row = run_pruned(size, sc);
                best = Some(match best {
                    None => row,
                    Some(b) if row.wall_ms < b.wall_ms => row,
                    Some(b) => b,
                });
            }
            let row = best.unwrap();
            println!("{:<10}{:<9}{:>12.3}{:>10}", label, "rg-prune", row.wall_ms, row.nodes);
            records.push((label.clone(), "rg-prune", row));
        }
    }

    const SERVE_PHASES: [&str; 2] = ["serve-cold", "serve-warm"];
    for size in [NetSize::Tiny, NetSize::Small] {
        for sc in LevelScenario::ALL {
            let mut best: Option<[PhaseRow; 2]> = None;
            for _ in 0..REPS {
                let rows = serve_once(size, sc);
                best = Some(match best {
                    None => rows,
                    Some(mut b) => {
                        for (bi, ri) in b.iter_mut().zip(rows) {
                            if ri.wall_ms < bi.wall_ms {
                                *bi = ri;
                            }
                        }
                        b
                    }
                });
            }
            let label = format!("{}/{}", size.label(), sc.label());
            for (phase, row) in SERVE_PHASES.iter().zip(best.unwrap()) {
                println!("{:<10}{:<11}{:>10.3}{:>10}", label, phase, row.wall_ms, row.nodes);
                records.push((label.clone(), phase, row));
            }
        }
    }

    const REPAIR_PHASES: [&str; 2] = ["adapt-repair", "scratch-repair"];
    for size in [NetSize::Tiny, NetSize::Small] {
        for sc in LevelScenario::ALL {
            let mut best: Option<[PhaseRow; 2]> = None;
            for _ in 0..REPS {
                let Some(rows) = repair_once(size, sc) else { break };
                best = Some(match best {
                    None => rows,
                    Some(mut b) => {
                        for (bi, ri) in b.iter_mut().zip(rows) {
                            if ri.wall_ms < bi.wall_ms {
                                *bi = ri;
                            }
                        }
                        b
                    }
                });
            }
            let Some(best) = best else { continue };
            let label = format!("{}/{}", size.label(), sc.label());
            for (phase, row) in REPAIR_PHASES.iter().zip(best) {
                println!("{:<10}{:<15}{:>6.3}{:>10}", label, phase, row.wall_ms, row.nodes);
                records.push((label.clone(), phase, row));
            }
        }
    }

    // certificate layer on every size: emission packages the planner's
    // own ledger, the check re-derives it independently — both are
    // microseconds next to the search that produced the plan
    const CERT_PHASES: [&str; 2] = ["cert-emit", "cert-check"];
    for size in NetSize::ALL {
        for sc in LevelScenario::ALL {
            let Some(rows) = cert_once(size, sc) else { continue };
            let label = format!("{}/{}", size.label(), sc.label());
            for (phase, row) in CERT_PHASES.iter().zip(rows) {
                println!("{:<10}{:<11}{:>10.3}{:>10}", label, phase, row.wall_ms, row.nodes);
                records.push((label.clone(), phase, row));
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, (scenario, phase, row)) in records.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"phase\": \"{}\", \"scenario\": \"{}\", \"wall_ms\": {:.3}, \"nodes\": {}, \
             \"budget_exhausted\": {}}}{}\n",
            phase,
            scenario,
            row.wall_ms,
            row.nodes,
            row.budget_exhausted,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    eprintln!("wrote BENCH_planner.json ({} records)", records.len());
}
