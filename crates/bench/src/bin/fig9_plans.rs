//! Regenerates Figure 9 — suboptimal (scenario B) and optimal (scenario C)
//! plans for the Small network, with their LAN bandwidth reservations.
use sekitei_model::LevelScenario;
use sekitei_planner::{plan_metrics, Planner, PlannerConfig};
use sekitei_topology::scenarios;

fn main() {
    let planner = Planner::new(PlannerConfig::default());
    for (label, sc) in
        [("suboptimal (scenario B)", LevelScenario::B), ("optimal (scenario C)", LevelScenario::C)]
    {
        let p = scenarios::small(sc);
        let o = planner.plan(&p).unwrap();
        let plan = o.plan.expect("Small is solvable");
        let m = plan_metrics(&p, &o.task, &plan);
        println!("=== {label}: {} actions ===", plan.len());
        print!("{plan}");
        println!(
            "reserved LAN bandwidth: {:.1} units per link (paper: {})",
            m.reserved_lan_bw,
            if sc == LevelScenario::B { 100 } else { 65 }
        );
        println!();
    }
}
