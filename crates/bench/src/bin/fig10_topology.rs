//! Regenerates Figure 10 — the 93-node transit-stub network.
use sekitei_model::LevelScenario;
use sekitei_topology::{network_stats, scenarios, shortest_path, transit_stub, TransitStubConfig};

fn main() {
    let ts = transit_stub(&TransitStubConfig::default());
    let s = network_stats(&ts.net);
    println!("GT-ITM-style transit-stub network (paper Figure 10):");
    println!(
        "  nodes: {} ({} transit, {} stub)",
        s.nodes,
        ts.transit.len(),
        s.nodes - ts.transit.len()
    );
    println!("  links: {} ({} LAN, {} WAN)", s.links, s.lan_links, s.wan_links);
    println!("  degree: min {}, mean {:.2}, max {}", s.min_degree, s.mean_degree, s.max_degree);
    println!("  diameter: {} hops", s.diameter.unwrap());
    println!(
        "  stub domains: {} × {} nodes",
        ts.gateways.iter().map(Vec::len).sum::<usize>(),
        ts.members[0][0].len()
    );

    let p = scenarios::large(LevelScenario::C);
    let path = shortest_path(&p.network, p.sources[0].node, p.goals[0].node).unwrap();
    let names: Vec<_> = path.nodes.iter().map(|&n| p.network.node(n).name.clone()).collect();
    println!("\nserver-to-client data path ({} hops): {}", path.len(), names.join(" → "));
    println!(
        "most of the {} nodes never participate in a plan but cannot be statically pruned.",
        s.nodes
    );
}
