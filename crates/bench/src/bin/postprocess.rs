//! The original Sekitei's post-processing step vs level-driven optimality
//! (paper §2.3: "a post-processing step attempted to achieve this latter
//! goal, but this is not enough").
//!
//! On the Small network, scenario B's structurally-suboptimal 10-action
//! plan can be *trimmed* by source minimization (100 → 90 processed units,
//! LAN reservation 100 → 90), but its structure still wastes the LAN
//! links; scenario C's 13-action plan reserves 65 even before trimming and
//! 58.5 after — the paper's "ideal" value. And on the Tiny problem under
//! scenario A, there is no plan to post-process at all.
use sekitei_compile::compile;
use sekitei_model::{GVarId, Interval, LevelScenario, LinkClass};
use sekitei_planner::{minimize_sources, replay_tail, ConcreteExecution, Planner, PlannerConfig};
use sekitei_topology::scenarios;

fn lan_reservation(
    p: &sekitei_model::CppProblem,
    task: &sekitei_compile::PlanningTask,
    exec: &ConcreteExecution,
) -> f64 {
    let mut worst: f64 = 0.0;
    for (i, gv) in task.gvars.iter().enumerate() {
        if let sekitei_compile::GVarData::LinkRes { res, link } = gv {
            let def = &p.resources[*res as usize];
            if def.name == sekitei_model::resource::names::LBW
                && p.network.link(*link).class == LinkClass::Lan
            {
                if let Some(&left) = exec.final_state.get(&GVarId::from_index(i)) {
                    worst = worst.max(p.network.link_capacity(*link, &def.name) - left);
                }
            }
        }
    }
    worst
}

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    println!(
        "{:<26}{:>9}{:>12}{:>14}{:>16}",
        "plan", "actions", "processed", "LAN reserved", "after trimming"
    );
    for (label, sc) in
        [("Small / scenario B", LevelScenario::B), ("Small / scenario C", LevelScenario::C)]
    {
        let p = scenarios::small(sc);
        let o = planner.plan(&p).unwrap();
        let plan = o.plan.expect("solvable");
        let greedy_lan = lan_reservation(&p, &o.task, &plan.execution);
        let actions: Vec<_> = plan.steps.iter().map(|s| s.action).collect();
        let task = compile(&p).unwrap();
        let map = replay_tail(&task, &actions, Some(&task.init_values)).unwrap();
        let trimmed = minimize_sources(&task, &actions, &map).unwrap();
        let trimmed_lan = lan_reservation(&p, &task, &trimmed);
        println!(
            "{label:<26}{:>9}{:>12.1}{:>14.1}{:>16.1}",
            plan.len(),
            plan.execution.source_values[0].1,
            greedy_lan,
            trimmed_lan
        );
        let _ = Interval::nonneg();
    }

    println!();
    let a = scenarios::tiny(LevelScenario::A);
    let o = planner.plan(&a).unwrap();
    assert!(o.plan.is_none());
    println!("Tiny / scenario A (the original greedy Sekitei): no plan — post-processing");
    println!("never applies, which is exactly why the paper moved optimization into the");
    println!("planner via resource levels.");
}
