//! Regenerates the Figure 3 / Figure 4 experiment (Scenario 1, §2.3):
//! in the resource-constrained two-node network the greedy planner finds
//! no plan, while the leveled planner finds the 7-action plan of Figure 4.
use sekitei_model::LevelScenario;
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_sim::validate_plan;
use sekitei_topology::scenarios;

fn main() {
    let planner = Planner::new(PlannerConfig::default());

    println!("Figure 3 network: n0 (200 units of M, 30 CPU) --70-- n1 (client, needs 90)\n");

    let greedy = scenarios::tiny(LevelScenario::A);
    let o = planner.plan(&greedy).unwrap();
    println!(
        "original greedy Sekitei (scenario A): {}",
        if o.plan.is_some() {
            "PLAN FOUND (unexpected!)"
        } else {
            "no plan — processing all 200 units needs 40 CPU"
        }
    );

    let leveled = scenarios::tiny(LevelScenario::C);
    let o = planner.plan(&leveled).unwrap();
    let plan = o.plan.expect("leveled planner must solve Scenario 1");
    println!("\nleveled planner (scenario C) — the Figure 4 plan:");
    print!("{plan}");
    let report = validate_plan(&leveled, &o.task, &plan);
    assert!(report.ok);
    println!("\nexecuted in the simulator: OK, real cost {:.2}", report.total_cost);
}
