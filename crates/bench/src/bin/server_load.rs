//! `server_load` — sustained serving throughput and tail latency.
//!
//! Starts a planning server in-process on an ephemeral port, drives the
//! seeded load generator at it, and writes `BENCH_server.json` with the
//! throughput, latency and outcome-class rows, plus two measured curves:
//!
//! - `hit_curve` rows — outcome-cache hit rate vs cache capacity under
//!   the same Zipf mix, one fresh server per capacity point (this is the
//!   CLOCK eviction policy earning its keep: hot heads stay resident
//!   well below corpus size).
//! - a `shed` row — priority shedding under deliberate queue pressure
//!   (more connections than workers, a small queue cap, every 3rd
//!   request `Low` priority).
//!
//! The deterministic report goes to stdout (byte-identical per seed),
//! timing to stderr.
//!
//! Usage: `server_load [REQUESTS] [CONNECTIONS] [SEED] [SHARDS]`
//! (defaults: 100000 requests, 4 connections, seed 0xC0FFEE, 2 shards).

use sekitei_model::LevelScenario;
use sekitei_server::{
    loadgen, request_shutdown, LoadgenConfig, ScenarioItem, Server, ServerConfig,
};
use sekitei_topology::scenarios::{self, NetSize};
use std::net::SocketAddr;

fn corpus() -> Vec<ScenarioItem> {
    [LevelScenario::A, LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E]
        .into_iter()
        .map(|sc| ScenarioItem::new(format!("Tiny/{sc:?}"), scenarios::problem(NetSize::Tiny, sc)))
        .collect()
}

fn spawn_server(cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let connections: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
    let shards: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let corpus = corpus();

    // main throughput run: sharded server, closed loop, deep pipeline
    let (addr, join) = spawn_server(ServerConfig {
        workers: connections.max(1),
        shards,
        ..ServerConfig::default()
    });
    let cfg = LoadgenConfig {
        requests,
        connections,
        seed,
        zipf_s: 1.1,
        pipeline: 8,
        rate_per_s: None,
        burst: 1,
        verify_every: 1_000,
        low_every: 0,
    };
    let report = loadgen::run(&cfg, addr, &corpus).expect("loadgen run");
    print!("{}", report.deterministic);
    eprint!("{}", report.timing);
    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");

    // hit-rate-vs-capacity curve: a fresh server per capacity point so
    // each measurement starts cold; the corpus has 5 distinct keys, so
    // capacities below 5 measure what CLOCK keeps resident under Zipf
    let sweep_requests = (requests / 5).clamp(2_000, 20_000);
    let mut extra_rows = String::new();
    for cache_cap in [1usize, 2, 3, 4, 5, 8] {
        let (addr, join) = spawn_server(ServerConfig {
            workers: connections.max(1),
            shards,
            cache_cap,
            ..ServerConfig::default()
        });
        let cfg = LoadgenConfig {
            requests: sweep_requests,
            connections,
            seed,
            zipf_s: 1.1,
            pipeline: 8,
            rate_per_s: None,
            burst: 1,
            verify_every: 0,
            low_every: 0,
        };
        let r = loadgen::run(&cfg, addr, &corpus).expect("hit-curve run");
        let hit_rate = r.cache_hits as f64 / r.completed.max(1) as f64;
        eprintln!(
            "hit_curve cache_cap={cache_cap}: {} hits / {} requests = {hit_rate:.3}",
            r.cache_hits, r.completed
        );
        extra_rows.push_str(&format!(
            ",\n  {{\"row\": \"hit_curve\", \"cache_cap\": {cache_cap}, \"requests\": {}, \
\"cache_hits\": {}, \"coalesced\": {}, \"hit_rate\": {hit_rate:.4}}}",
            r.completed, r.cache_hits, r.coalesced
        ));
        request_shutdown(addr).expect("shutdown");
        join.join().unwrap().expect("server exits cleanly");
    }

    // shed run: deliberate queue pressure (4x more connections than
    // workers, small queue cap) with every 3rd request Low priority —
    // measures that the priority gate sheds the low class first
    let shed_requests = (requests / 25).clamp(1_000, 4_000);
    let (addr, join) = spawn_server(ServerConfig {
        workers: 2,
        shards: 1,
        queue_cap: 8,
        ..ServerConfig::default()
    });
    let cfg = LoadgenConfig {
        requests: shed_requests,
        connections: 8,
        seed,
        zipf_s: 1.1,
        pipeline: 4,
        rate_per_s: None,
        burst: 1,
        verify_every: 0,
        low_every: 3,
    };
    let r = loadgen::run(&cfg, addr, &corpus).expect("shed run");
    eprintln!("shed low_every=3: {} shed / {} requests ({} errors)", r.shed, r.completed, r.errors);
    extra_rows.push_str(&format!(
        ",\n  {{\"row\": \"shed\", \"low_every\": 3, \"queue_cap\": 8, \"workers\": 2, \
\"connections\": 8, \"requests\": {}, \"shed\": {}, \"errors\": {}}}",
        r.completed, r.shed, r.errors
    ));
    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");

    // splice the curve and shed rows into the main run's JSON array
    let base = report.bench_json.trim_end();
    let base = base.strip_suffix("\n]").expect("bench json ends with array close");
    let json = format!("{base}{extra_rows}\n]\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");
}
