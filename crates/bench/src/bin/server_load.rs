//! `server_load` — sustained serving throughput and tail latency.
//!
//! Starts a planning server in-process on an ephemeral port, drives the
//! seeded load generator at it, and writes `BENCH_server.json` with the
//! throughput, latency and outcome-class rows. The deterministic report
//! goes to stdout (byte-identical per seed), timing to stderr.
//!
//! Usage: `server_load [REQUESTS] [CONNECTIONS] [SEED]`
//! (defaults: 100000 requests, 4 connections, seed 0xC0FFEE).

use sekitei_model::LevelScenario;
use sekitei_server::{
    loadgen, request_shutdown, LoadgenConfig, ScenarioItem, Server, ServerConfig,
};
use sekitei_topology::scenarios::{self, NetSize};

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let connections: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: connections.max(1), ..ServerConfig::default() },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let join = std::thread::spawn(move || server.run());

    let corpus: Vec<ScenarioItem> =
        [LevelScenario::A, LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E]
            .into_iter()
            .map(|sc| {
                ScenarioItem::new(format!("Tiny/{sc:?}"), scenarios::problem(NetSize::Tiny, sc))
            })
            .collect();

    let cfg = LoadgenConfig {
        requests,
        connections,
        seed,
        zipf_s: 1.1,
        pipeline: 8,
        rate_per_s: None,
        burst: 1,
        verify_every: 1_000,
    };
    let report = loadgen::run(&cfg, addr, &corpus).expect("loadgen run");

    print!("{}", report.deterministic);
    eprint!("{}", report.timing);
    std::fs::write("BENCH_server.json", &report.bench_json).expect("write BENCH_server.json");
    eprintln!("wrote BENCH_server.json");

    request_shutdown(addr).expect("shutdown");
    join.join().unwrap().expect("server exits cleanly");
}
