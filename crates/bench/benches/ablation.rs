//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * (a) leveling on/off — scenario A vs C grounding+search cost,
//! * (b) SLRG heuristic vs the cheaper PLRG-max bound,
//! * (c) optimistic-map replay pruning on/off,
//! * (d) cutpoint-count sweep — how planner work scales with the number
//!   of levels (the paper's §4.3 discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sekitei_model::{LevelScenario, MediaConfig};
use sekitei_planner::{Heuristic, Planner, PlannerConfig};
use sekitei_topology::scenarios;
use std::hint::black_box;

fn bench_heuristic(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_heuristic");
    g.sample_size(10);
    let p = scenarios::small(LevelScenario::C);
    for (label, h) in
        [("slrg", Heuristic::Slrg), ("plrg_max", Heuristic::PlrgMax), ("blind", Heuristic::Blind)]
    {
        let planner = Planner::new(PlannerConfig { heuristic: h, ..PlannerConfig::default() });
        g.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| {
                let o = planner.plan(black_box(p)).unwrap();
                assert!(o.plan.is_some());
                o
            });
        });
    }
    g.finish();
}

fn bench_replay_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_replay_pruning");
    g.sample_size(10);
    let p = scenarios::small(LevelScenario::C);
    for (label, on) in [("on", true), ("off", false)] {
        let planner =
            Planner::new(PlannerConfig { replay_pruning: on, ..PlannerConfig::default() });
        g.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| planner.plan(black_box(p)).unwrap());
        });
    }
    g.finish();
}

fn bench_cutpoint_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cutpoints");
    g.sample_size(10);
    let planner = Planner::new(PlannerConfig::default());
    // refine the M levels around the demand: k cutpoints between 80 and 120
    for k in [1usize, 2, 4, 8] {
        let mut p = scenarios::small(LevelScenario::A);
        let cuts: Vec<f64> =
            (0..k).map(|i| 80.0 + 40.0 * (i as f64 + 1.0) / (k as f64 + 1.0)).collect();
        let spec = sekitei_model::LevelSpec::new(cuts).unwrap();
        for iface in &mut p.interfaces {
            let factor = match iface.name.as_str() {
                "M" => 1.0,
                "T" => MediaConfig::default().split_t,
                "I" => 1.0 - MediaConfig::default().split_t,
                _ => MediaConfig::default().split_t * MediaConfig::default().zip_ratio,
            };
            iface.levels.insert("ibw".into(), spec.scaled(factor));
        }
        g.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| planner.plan(black_box(p)).unwrap());
        });
    }
    g.finish();
}

fn bench_leveling_onoff(c: &mut Criterion) {
    // compile-time (grounding) cost of leveling, isolated from search
    let mut g = c.benchmark_group("ablation_grounding_levels");
    g.sample_size(20);
    for sc in [LevelScenario::A, LevelScenario::C, LevelScenario::E] {
        let p = scenarios::small(sc);
        g.bench_with_input(BenchmarkId::from_parameter(sc.label()), &p, |b, p| {
            b.iter(|| sekitei_compile::compile(black_box(p)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_heuristic,
    bench_replay_pruning,
    bench_cutpoint_sweep,
    bench_leveling_onoff
);
criterion_main!(benches);
