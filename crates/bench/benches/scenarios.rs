//! Full-planning benchmarks across the Table 2 grid — the timing
//! counterpart of the paper's column 9, plus the Figure 5 tradeoff.
//! Scenario A rows are bounded "no plan" searches and are benchmarked
//! with a small budget so the suite stays fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sekitei_model::LevelScenario;
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_topology::scenarios::{self, NetSize};
use std::hint::black_box;

fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for size in NetSize::ALL {
        for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
            let p = scenarios::problem(size, sc);
            let planner = Planner::new(PlannerConfig::default());
            let id = format!("{}/{}", size.label(), sc.label());
            g.bench_with_input(BenchmarkId::from_parameter(id), &p, |b, p| {
                b.iter(|| {
                    let o = planner.plan(black_box(p)).unwrap();
                    assert!(o.plan.is_some());
                    o
                });
            });
        }
    }
    g.finish();
}

fn bench_scenario_a(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_scenario_a_no_plan");
    g.sample_size(10);
    let planner = Planner::new(PlannerConfig {
        max_nodes: 50_000,
        max_candidate_rejects: 500,
        ..PlannerConfig::default()
    });
    for size in [NetSize::Tiny, NetSize::Small] {
        let p = scenarios::problem(size, LevelScenario::A);
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &p, |b, p| {
            b.iter(|| {
                let o = planner.plan(black_box(p)).unwrap();
                assert!(o.plan.is_none());
                o
            });
        });
    }
    g.finish();
}

fn bench_tradeoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_tradeoff");
    g.sample_size(20);
    let planner = Planner::new(PlannerConfig::default());
    for w in [0.25, 1.5] {
        let p = scenarios::tradeoff(w);
        g.bench_with_input(BenchmarkId::from_parameter(format!("w{w}")), &p, |b, p| {
            b.iter(|| planner.plan(black_box(p)).unwrap());
        });
    }
    g.finish();
}

fn bench_random_throughput(c: &mut Criterion) {
    // the workload-generator suite: plan a batch of random instances —
    // measures throughput on varied topologies rather than one fixture
    use sekitei_topology::scenarios::{random_media, RandomMediaConfig, RandomModel};
    let mut g = c.benchmark_group("random_instances");
    g.sample_size(10);
    for (label, model) in
        [("waxman", RandomModel::Waxman), ("barabasi", RandomModel::BarabasiAlbert)]
    {
        let instances: Vec<_> = (0..16)
            .map(|seed| {
                random_media(&RandomMediaConfig { model, nodes: 12, seed, ..Default::default() })
            })
            .collect();
        let planner = Planner::new(PlannerConfig {
            max_nodes: 100_000,
            max_candidate_rejects: 1_000,
            ..PlannerConfig::default()
        });
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut solved = 0;
                for p in &instances {
                    if planner.plan(black_box(p)).unwrap().plan.is_some() {
                        solved += 1;
                    }
                }
                solved
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_grid, bench_scenario_a, bench_tradeoff, bench_random_throughput);
criterion_main!(benches);
