//! Substrate microbenchmarks: interval arithmetic, expression evaluation,
//! spec parsing/printing, wire codec, topology generation, graph search,
//! and the deployment simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sekitei_model::{Interval, LevelScenario};
use sekitei_topology::{scenarios, transit_stub, TransitStubConfig};
use std::hint::black_box;

fn bench_interval_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_ops");
    let a = Interval::new(27.0, 30.0);
    let b = Interval::new(31.5, 35.0);
    g.bench_function("add_mul_min_intersect", |bch| {
        bch.iter(|| {
            let x = black_box(a).add(&black_box(b));
            let y = x.mul(&black_box(a));
            let z = y.min_i(&black_box(b));
            z.intersect(&black_box(a))
        });
    });
    g.finish();
}

fn bench_expr_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("expr_eval");
    let p = scenarios::tiny(LevelScenario::C);
    let merger = p.components.iter().find(|c| c.name == "Merger").unwrap().clone();
    g.bench_function("merger_conditions_point", |b| {
        b.iter(|| {
            let mut env = |v: &sekitei_model::SpecVar| match v {
                sekitei_model::SpecVar::Iface { iface, .. } if iface == "T" => 63.0,
                sekitei_model::SpecVar::Iface { .. } => 27.0,
                _ => 30.0,
            };
            merger.conditions.iter().all(|c| c.holds(&mut env))
        });
    });
    g.bench_function("merger_conditions_interval", |b| {
        b.iter(|| {
            let mut env = |v: &sekitei_model::SpecVar| match v {
                sekitei_model::SpecVar::Iface { iface, .. } if iface == "T" => {
                    Interval::new(63.0, 70.0)
                }
                sekitei_model::SpecVar::Iface { .. } => Interval::new(27.0, 30.0),
                _ => Interval::new(0.0, 30.0),
            };
            merger.conditions.iter().all(|c| c.possibly(&mut env))
        });
    });
    g.finish();
}

fn bench_spec_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("spec_codec");
    g.sample_size(20);
    let p = scenarios::large(LevelScenario::D);
    let text = sekitei_spec::print_problem(&p);
    let wire = sekitei_spec::encode(&p);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_large_text", |b| {
        b.iter(|| sekitei_spec::parse_problem(black_box(&text)).unwrap());
    });
    g.bench_function("print_large", |b| {
        b.iter(|| sekitei_spec::print_problem(black_box(&p)));
    });
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("wire_decode_large", |b| {
        b.iter(|| sekitei_spec::decode(black_box(&wire)).unwrap());
    });
    g.bench_function("wire_encode_large", |b| {
        b.iter(|| sekitei_spec::encode(black_box(&p)));
    });
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.sample_size(20);
    g.bench_function("transit_stub_93", |b| {
        b.iter(|| transit_stub(black_box(&TransitStubConfig::default())));
    });
    for n in [100usize, 400] {
        g.bench_with_input(BenchmarkId::new("waxman", n), &n, |b, &n| {
            b.iter(|| {
                sekitei_topology::waxman(n, 0.4, 0.2, 7, &sekitei_topology::Capacities::default())
            });
        });
    }
    let ts = transit_stub(&TransitStubConfig::default());
    let from = ts.members[0][0][1];
    let to = ts.members[2][2][5];
    g.bench_function("bfs_93", |b| {
        b.iter(|| sekitei_topology::shortest_path(black_box(&ts.net), from, to).unwrap());
    });
    g.bench_function("dijkstra_93", |b| {
        b.iter(|| sekitei_topology::dijkstra(black_box(&ts.net), from, to, |_| 1.0).unwrap());
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    let p = scenarios::small(LevelScenario::C);
    let o = sekitei_planner::Planner::default().plan(&p).unwrap();
    let plan = o.plan.unwrap();
    let ops = sekitei_sim::plan_ops(&p, &plan);
    let sources = sekitei_sim::plan_sources(&p, &o.task, &plan);
    g.bench_function("execute_small_plan", |b| {
        b.iter(|| {
            let r = sekitei_sim::simulate(black_box(&p), &sources, &ops);
            assert!(r.ok);
            r
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_interval_ops,
    bench_expr_eval,
    bench_spec_codec,
    bench_topology,
    bench_simulator
);
criterion_main!(benches);
