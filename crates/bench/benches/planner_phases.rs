//! Microbenchmarks of the planner's three phases (paper §3.2): grounding,
//! PLRG construction, SLRG goal-set costing, and the full RG search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sekitei_compile::compile;
use sekitei_model::LevelScenario;
use sekitei_planner::{Planner, PlannerConfig, Plrg, SetKey, Slrg};
use sekitei_topology::scenarios::{self, NetSize};
use std::hint::black_box;

fn sizes() -> Vec<(NetSize, LevelScenario)> {
    vec![
        (NetSize::Tiny, LevelScenario::C),
        (NetSize::Small, LevelScenario::C),
        (NetSize::Large, LevelScenario::C),
    ]
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    for (size, sc) in sizes() {
        let p = scenarios::problem(size, sc);
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &p, |b, p| {
            b.iter(|| compile(black_box(p)).unwrap());
        });
    }
    g.finish();
}

fn bench_plrg(c: &mut Criterion) {
    let mut g = c.benchmark_group("plrg_build");
    g.sample_size(20);
    for (size, sc) in sizes() {
        let task = compile(&scenarios::problem(size, sc)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &task, |b, task| {
            b.iter(|| Plrg::build(black_box(task)));
        });
    }
    g.finish();
}

fn bench_slrg(c: &mut Criterion) {
    let mut g = c.benchmark_group("slrg_goal_query");
    g.sample_size(20);
    for (size, sc) in sizes() {
        let task = compile(&scenarios::problem(size, sc)).unwrap();
        let plrg = Plrg::build(&task);
        let goal = SetKey::new(task.goal_props.clone());
        g.bench_function(BenchmarkId::from_parameter(size.label()), |b| {
            b.iter(|| {
                // fresh oracle per iteration: measure the uncached query
                let mut slrg = Slrg::new(&task, &plrg, 50_000);
                black_box(slrg.achievement_cost(black_box(&goal)))
            });
        });
    }
    g.finish();
}

fn bench_full_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_end_to_end");
    g.sample_size(10);
    for (size, sc) in sizes() {
        let p = scenarios::problem(size, sc);
        let planner = Planner::new(PlannerConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(size.label()), &p, |b, p| {
            b.iter(|| planner.plan(black_box(p)).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compile, bench_plrg, bench_slrg, bench_full_plan);
criterion_main!(benches);
