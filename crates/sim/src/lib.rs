//! # sekitei-sim
//!
//! Deployment execution simulator: instantiates plans on a network,
//! propagates streams through component formulas, charges CPU and link
//! bandwidth, and verifies goals and QoS. Serves as the independent
//! soundness oracle for [`sekitei_planner`] (every plan the planner
//! returns must execute here without violations) and as the stand-in for
//! the paper's Partitionable Services runtime.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapter;
pub mod engine;

pub use adapter::{existing_from_plan, flow_report, plan_ops, plan_sources, validate_plan};
pub use engine::{simulate, DeployOp, DeploymentReport, SourceValue, StepTrace, Violation};
