//! Adapter from planner [`Plan`]s to simulator operations.

use crate::engine::{simulate, DeployOp, DeploymentReport, SourceValue};
use sekitei_compile::{ActionKind, GVarData, PlanningTask};
use sekitei_model::CppProblem;
use sekitei_planner::Plan;
use std::collections::BTreeMap;

/// Convert a plan's steps into simulator operations.
pub fn plan_ops(problem: &CppProblem, plan: &Plan) -> Vec<DeployOp> {
    plan.steps
        .iter()
        .map(|s| match &s.kind {
            ActionKind::Place { comp, node } => {
                DeployOp::Place { component: problem.component(*comp).name.clone(), node: *node }
            }
            ActionKind::Cross { iface, dir } => {
                DeployOp::Cross { iface: problem.iface(*iface).name.clone(), dir: *dir }
            }
        })
        .collect()
}

/// Recover the concrete source injections chosen by the planner's greedy
/// concretization.
pub fn plan_sources(problem: &CppProblem, task: &PlanningTask, plan: &Plan) -> Vec<SourceValue> {
    let mut out = Vec::new();
    for &(v, value) in &plan.execution.source_values {
        if let GVarData::IfaceProp { iface, prop, node } = task.gvars[v.index()] {
            let spec = problem.iface(iface);
            let mut properties: BTreeMap<String, f64> = BTreeMap::new();
            properties.insert(spec.properties[prop as usize].clone(), value);
            // carry any further source-declared properties at their max
            if let Some(src) =
                problem.sources.iter().find(|s| s.iface == spec.name && s.node == node)
            {
                for (k, iv) in &src.properties {
                    properties.entry(k.clone()).or_insert(iv.hi);
                }
            }
            out.push(SourceValue { iface: spec.name.clone(), node, properties });
        }
    }
    out
}

/// Extract the deployment state a plan leaves behind — input for
/// [`sekitei_model::adapt_problem`] when the environment later changes.
pub fn existing_from_plan(problem: &CppProblem, plan: &Plan) -> sekitei_model::ExistingDeployment {
    let placements = plan
        .steps
        .iter()
        .filter_map(|s| match &s.kind {
            ActionKind::Place { comp, node } => Some(sekitei_model::ExistingPlacement {
                component: problem.component(*comp).name.clone(),
                node: *node,
            }),
            ActionKind::Cross { .. } => None,
        })
        .collect();
    sekitei_model::ExistingDeployment { placements, streams: Vec::new() }
}

/// Execute a planner-produced plan in the simulator and report.
///
/// This is the workspace's end-to-end soundness check: the planner's
/// interval reasoning and the simulator's concrete spec interpretation
/// must agree that the plan is feasible.
pub fn validate_plan(problem: &CppProblem, task: &PlanningTask, plan: &Plan) -> DeploymentReport {
    let ops = plan_ops(problem, plan);
    let sources = plan_sources(problem, task, plan);
    simulate(problem, &sources, &ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_planner::{Planner, PlannerConfig};
    use sekitei_topology::scenarios;

    #[test]
    fn planner_plans_validate_in_simulator() {
        let planner = Planner::new(PlannerConfig::default());
        for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
            let p = scenarios::tiny(sc);
            let outcome = planner.plan(&p).unwrap();
            let plan = outcome.plan.expect("solvable");
            let report = validate_plan(&p, &outcome.task, &plan);
            assert!(report.ok, "scenario {sc:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn simulator_real_cost_at_least_lower_bound() {
        let planner = Planner::default();
        let p = scenarios::tiny(LevelScenario::C);
        let outcome = planner.plan(&p).unwrap();
        let plan = outcome.plan.unwrap();
        let report = validate_plan(&p, &outcome.task, &plan);
        assert!(
            report.total_cost >= plan.cost_lower_bound - 1e-6,
            "real {} < bound {}",
            report.total_cost,
            plan.cost_lower_bound
        );
    }

    #[test]
    fn ops_and_sources_shapes() {
        let planner = Planner::default();
        let p = scenarios::tiny(LevelScenario::C);
        let outcome = planner.plan(&p).unwrap();
        let plan = outcome.plan.unwrap();
        let ops = plan_ops(&p, &plan);
        assert_eq!(ops.len(), plan.len());
        let sources = plan_sources(&p, &outcome.task, &plan);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].iface, "M");
        assert!((sources[0].properties["ibw"] - 100.0).abs() < 1e-9);
    }
}

/// Render a compact flow report: per link, which streams reserve how much
/// bandwidth — the Figure 9 "reserved LAN bw" data at full resolution.
pub fn flow_report(problem: &CppProblem, report: &crate::engine::DeploymentReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut by_link: std::collections::BTreeMap<(u32, &str), Vec<(&str, f64)>> =
        std::collections::BTreeMap::new();
    for (link, res, iface, amount) in &report.link_flows {
        by_link.entry((link.0, res.as_str())).or_default().push((iface.as_str(), *amount));
    }
    for ((link, res), flows) in by_link {
        let l = problem.network.link(sekitei_model::LinkId(link));
        let total: f64 = flows.iter().map(|(_, a)| a).sum();
        let cap = problem.network.link_capacity(sekitei_model::LinkId(link), res);
        let parts: Vec<String> = flows.iter().map(|(i, a)| format!("{i}={a:.1}")).collect();
        let _ = writeln!(
            out,
            "{}-{} {res}: {:.1}/{:.1} ({})",
            problem.network.node(l.a).name,
            problem.network.node(l.b).name,
            total,
            cap,
            parts.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod flow_tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_planner::Planner;
    use sekitei_topology::scenarios;

    #[test]
    fn link_flows_attribute_streams() {
        let p = scenarios::tiny(LevelScenario::C);
        let o = Planner::default().plan(&p).unwrap();
        let plan = o.plan.unwrap();
        let report = validate_plan(&p, &o.task, &plan);
        assert!(report.ok);
        // the single WAN link carries exactly Z (35) and I (30)
        let mut flows: Vec<(&str, f64)> =
            report.link_flows.iter().map(|(_, _, i, a)| (i.as_str(), *a)).collect();
        flows.sort_by(|a, b| a.0.cmp(b.0));
        assert_eq!(flows.len(), 2, "{flows:?}");
        assert_eq!(flows[0].0, "I");
        assert!((flows[0].1 - 30.0).abs() < 1e-9);
        assert_eq!(flows[1].0, "Z");
        assert!((flows[1].1 - 35.0).abs() < 1e-9);
        // rendered report mentions both
        let text = flow_report(&p, &report);
        assert!(text.contains("I=30.0"), "{text}");
        assert!(text.contains("Z=35.0"), "{text}");
        assert!(text.contains("65.0/70.0"), "{text}");
    }

    #[test]
    fn trace_covers_every_step() {
        let p = scenarios::small(LevelScenario::C);
        let o = Planner::default().plan(&p).unwrap();
        let plan = o.plan.unwrap();
        let report = validate_plan(&p, &o.task, &plan);
        assert_eq!(report.trace.len(), plan.len());
        for (i, t) in report.trace.iter().enumerate() {
            assert_eq!(t.step, i);
            assert!(!t.op.is_empty());
        }
        // crossings record link bandwidth writes
        assert!(report.trace.iter().any(|t| t.op.starts_with("cross") && !t.writes.is_empty()));
    }
}
