//! The deployment execution engine.
//!
//! Interprets a sequence of deployment operations against a
//! [`CppProblem`], evaluating the component/interface formulas **directly
//! from the specifications** — independently of the planner's compiled
//! task, ground variables and interval machinery. This makes the engine a
//! genuine soundness oracle: a plan accepted by the planner must execute
//! here without violations, end with all goals met, and leave no resource
//! negative.
//!
//! It stands in for the Partitionable Services runtime of the paper
//! (which actually deploys components and opens stream connections): the
//! engine instantiates components, wires streams, charges CPU and link
//! bandwidth, and reports delivered QoS.

use sekitei_model::{AssignOp, CppProblem, DirLink, LinkId, NodeId, Placement, SpecVar};
use std::collections::{BTreeMap, HashMap};

/// A deployment operation (the engine's own vocabulary — deliberately not
/// the planner's ground actions).
#[derive(Debug, Clone, PartialEq)]
pub enum DeployOp {
    /// Instantiate component `component` on `node`.
    Place {
        /// Component name.
        component: String,
        /// Host node.
        node: NodeId,
    },
    /// Send stream `iface` across a directed link traversal.
    Cross {
        /// Interface name.
        iface: String,
        /// Directed link.
        dir: DirLink,
    },
}

impl std::fmt::Display for DeployOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployOp::Place { component, node } => write!(f, "place {component} on {node}"),
            DeployOp::Cross { iface, dir } => write!(f, "cross {iface} over {dir}"),
        }
    }
}

/// An injected stream source: interface `iface` exists at `node` with the
/// given property values.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceValue {
    /// Interface name.
    pub iface: String,
    /// Node.
    pub node: NodeId,
    /// Concrete property values.
    pub properties: BTreeMap<String, f64>,
}

/// A violation found during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A required input stream is absent at the node.
    MissingInput {
        /// Step index.
        step: usize,
        /// Interface name.
        iface: String,
    },
    /// A deployment/crossing condition evaluated false.
    ConditionViolated {
        /// Step index.
        step: usize,
        /// Rendered condition.
        condition: String,
    },
    /// A node or link resource went negative.
    ResourceNegative {
        /// Step index.
        step: usize,
        /// Rendered resource location.
        resource: String,
        /// The (negative) balance.
        balance: f64,
    },
    /// A component was placed on a node its placement restriction forbids.
    PlacementForbidden {
        /// Step index.
        step: usize,
        /// Component name.
        component: String,
    },
    /// The operation references an unknown component or interface.
    UnknownName {
        /// Step index.
        step: usize,
        /// The name.
        name: String,
    },
    /// A goal was not met after all operations executed.
    GoalUnmet {
        /// Component name.
        component: String,
        /// Required node.
        node: NodeId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingInput { step, iface } => {
                write!(f, "step {step}: input stream {iface} missing")
            }
            Violation::ConditionViolated { step, condition } => {
                write!(f, "step {step}: condition violated: {condition}")
            }
            Violation::ResourceNegative { step, resource, balance } => {
                write!(f, "step {step}: {resource} driven to {balance}")
            }
            Violation::PlacementForbidden { step, component } => {
                write!(f, "step {step}: {component} placement forbidden")
            }
            Violation::UnknownName { step, name } => {
                write!(f, "step {step}: unknown name `{name}`")
            }
            Violation::GoalUnmet { component, node } => {
                write!(f, "goal unmet: {component} not placed on {node}")
            }
        }
    }
}

/// What one operation wrote, for the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Step index.
    pub step: usize,
    /// Rendered operation.
    pub op: String,
    /// Written quantities: `(rendered target, new value)`.
    pub writes: Vec<(String, f64)>,
}

/// Execution report.
#[derive(Debug, Clone, Default)]
pub struct DeploymentReport {
    /// True iff no violations were found and all goals are met.
    pub ok: bool,
    /// All violations, in discovery order (execution continues past
    /// violations to gather a complete picture).
    pub violations: Vec<Violation>,
    /// Bandwidth-style usage per link resource: `(link, resource, used)`.
    pub link_usage: Vec<(LinkId, String, f64)>,
    /// Usage per node resource: `(node, resource, used)`.
    pub node_usage: Vec<(NodeId, String, f64)>,
    /// Delivered streams: `(iface, node, property, value)`.
    pub delivered: Vec<(String, NodeId, String, f64)>,
    /// The *real* total cost of the executed operations (cost formulas at
    /// concrete values — compare against the planner's lower bound).
    pub total_cost: f64,
    /// Per-link, per-stream bandwidth-style consumption:
    /// `(link, resource, interface, amount)` — which stream reserved what.
    pub link_flows: Vec<(LinkId, String, String, f64)>,
    /// Step-by-step execution trace.
    pub trace: Vec<StepTrace>,
}

/// Execute a deployment.
///
/// ```
/// use sekitei_model::{DirLink, LevelScenario, LinkId, NodeId};
/// use sekitei_sim::{simulate, DeployOp, SourceValue};
/// use sekitei_topology::scenarios;
///
/// let problem = scenarios::tiny(LevelScenario::C);
/// let source = SourceValue {
///     iface: "M".into(),
///     node: NodeId(0),
///     properties: [("ibw".to_string(), 100.0)].into(),
/// };
/// let dir = DirLink { link: LinkId(0), from: NodeId(0), to: NodeId(1) };
/// let ops = vec![
///     DeployOp::Place { component: "Splitter".into(), node: NodeId(0) },
///     DeployOp::Place { component: "Zip".into(), node: NodeId(0) },
///     DeployOp::Cross { iface: "Z".into(), dir },
///     DeployOp::Cross { iface: "I".into(), dir },
///     DeployOp::Place { component: "Unzip".into(), node: NodeId(1) },
///     DeployOp::Place { component: "Merger".into(), node: NodeId(1) },
///     DeployOp::Place { component: "Client".into(), node: NodeId(1) },
/// ];
/// let report = simulate(&problem, &[source], &ops);
/// assert!(report.ok, "{:?}", report.violations);
/// ```
pub fn simulate(
    problem: &CppProblem,
    sources: &[SourceValue],
    ops: &[DeployOp],
) -> DeploymentReport {
    let mut report = DeploymentReport::default();

    // resource ledgers, seeded with capacities
    let mut node_res: HashMap<(NodeId, String), f64> = HashMap::new();
    for (id, n) in problem.network.nodes() {
        for (k, &v) in &n.resources {
            node_res.insert((id, k.clone()), v);
        }
    }
    let mut link_res: HashMap<(LinkId, String), f64> = HashMap::new();
    for (id, l) in problem.network.links() {
        for (k, &v) in &l.resources {
            link_res.insert((id, k.clone()), v);
        }
    }

    // stream state: (iface, node) -> property -> value
    let mut streams: HashMap<(String, NodeId), BTreeMap<String, f64>> = HashMap::new();
    for s in sources {
        streams.insert((s.iface.clone(), s.node), s.properties.clone());
    }

    let mut placed: Vec<(String, NodeId)> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        match op {
            DeployOp::Place { component, node } => {
                let Some(cid) = problem.comp_id(component) else {
                    report
                        .violations
                        .push(Violation::UnknownName { step, name: component.clone() });
                    continue;
                };
                let spec = problem.component(cid);
                if let Placement::Only(allowed) = &spec.placement {
                    if !allowed.contains(&problem.network.node(*node).name) {
                        report.violations.push(Violation::PlacementForbidden {
                            step,
                            component: component.clone(),
                        });
                    }
                }
                // gather inputs
                let mut missing = false;
                for r in &spec.requires {
                    if !streams.contains_key(&(r.clone(), *node)) {
                        report.violations.push(Violation::MissingInput { step, iface: r.clone() });
                        missing = true;
                    }
                }
                if missing {
                    continue;
                }
                let env_streams = streams.clone();
                let mut env = |v: &SpecVar| -> f64 {
                    match v {
                        SpecVar::Iface { iface, prop } => env_streams
                            .get(&(iface.clone(), *node))
                            .and_then(|m| m.get(prop))
                            .copied()
                            .unwrap_or(0.0),
                        SpecVar::Node { res } => {
                            node_res.get(&(*node, res.clone())).copied().unwrap_or(0.0)
                        }
                        SpecVar::Link { .. } => 0.0,
                    }
                };
                for cond in &spec.conditions {
                    if !cond.holds(&mut env) {
                        report.violations.push(Violation::ConditionViolated {
                            step,
                            condition: cond.to_string(),
                        });
                    }
                }
                report.total_cost += spec.cost.eval(&mut env);
                let mut writes: Vec<(String, f64)> = Vec::new();
                // effects read the pre-state
                let values: Vec<f64> =
                    spec.effects.iter().map(|e| e.value.eval(&mut env)).collect();
                for (e, val) in spec.effects.iter().zip(values) {
                    match (&e.target, e.op) {
                        (SpecVar::Iface { iface, prop }, AssignOp::Set) => {
                            writes.push((format!("{prop}({iface})"), val));
                            streams
                                .entry((iface.clone(), *node))
                                .or_default()
                                .insert(prop.clone(), val);
                        }
                        (SpecVar::Iface { iface, prop }, AssignOp::Add) => {
                            *streams
                                .entry((iface.clone(), *node))
                                .or_default()
                                .entry(prop.clone())
                                .or_insert(0.0) += val;
                        }
                        (SpecVar::Iface { iface, prop }, AssignOp::Sub) => {
                            *streams
                                .entry((iface.clone(), *node))
                                .or_default()
                                .entry(prop.clone())
                                .or_insert(0.0) -= val;
                        }
                        (SpecVar::Node { res }, op) => {
                            let slot = node_res.entry((*node, res.clone())).or_insert(0.0);
                            match op {
                                AssignOp::Set => *slot = val,
                                AssignOp::Sub => *slot -= val,
                                AssignOp::Add => *slot += val,
                            }
                            writes.push((
                                format!("{res}({})", problem.network.node(*node).name),
                                *slot,
                            ));
                            if *slot < -sekitei_model::EPS {
                                report.violations.push(Violation::ResourceNegative {
                                    step,
                                    resource: format!(
                                        "{res}({})",
                                        problem.network.node(*node).name
                                    ),
                                    balance: *slot,
                                });
                            }
                        }
                        (SpecVar::Link { .. }, _) => {}
                    }
                }
                report.trace.push(StepTrace { step, op: op.to_string(), writes });
                placed.push((component.clone(), *node));
            }
            DeployOp::Cross { iface, dir } => {
                let Some(iid) = problem.iface_id(iface) else {
                    report.violations.push(Violation::UnknownName { step, name: iface.clone() });
                    continue;
                };
                let spec = problem.iface(iid);
                let Some(input) = streams.get(&(iface.clone(), dir.from)).cloned() else {
                    report.violations.push(Violation::MissingInput { step, iface: iface.clone() });
                    continue;
                };
                let mut env = |v: &SpecVar| -> f64 {
                    match v {
                        SpecVar::Iface { prop, .. } => input.get(prop).copied().unwrap_or(0.0),
                        SpecVar::Link { res } => {
                            link_res.get(&(dir.link, res.clone())).copied().unwrap_or(0.0)
                        }
                        SpecVar::Node { .. } => 0.0,
                    }
                };
                for cond in &spec.cross_conditions {
                    if !cond.holds(&mut env) {
                        report.violations.push(Violation::ConditionViolated {
                            step,
                            condition: cond.to_string(),
                        });
                    }
                }
                report.total_cost += spec.cross_cost.eval(&mut env);
                let mut writes: Vec<(String, f64)> = Vec::new();
                let values: Vec<f64> =
                    spec.cross_effects.iter().map(|e| e.value.eval(&mut env)).collect();
                // the crossed stream materializes at the destination with
                // the input's properties, then effects overwrite
                let mut out_props = input.clone();
                for (e, val) in spec.cross_effects.iter().zip(values) {
                    match (&e.target, e.op) {
                        (SpecVar::Iface { prop, .. }, op) => {
                            let slot = out_props.entry(prop.clone()).or_insert(0.0);
                            match op {
                                AssignOp::Set => *slot = val,
                                AssignOp::Sub => *slot -= val,
                                AssignOp::Add => *slot += val,
                            }
                        }
                        (SpecVar::Link { res }, op) => {
                            let slot = link_res.entry((dir.link, res.clone())).or_insert(0.0);
                            match op {
                                AssignOp::Set => *slot = val,
                                AssignOp::Sub => {
                                    *slot -= val;
                                    if val.abs() > sekitei_model::EPS {
                                        report.link_flows.push((
                                            dir.link,
                                            res.clone(),
                                            iface.clone(),
                                            val,
                                        ));
                                    }
                                }
                                AssignOp::Add => *slot += val,
                            }
                            writes.push((res.clone(), *slot));
                            if *slot < -sekitei_model::EPS {
                                let l = problem.network.link(dir.link);
                                report.violations.push(Violation::ResourceNegative {
                                    step,
                                    resource: format!(
                                        "{res}({}-{})",
                                        problem.network.node(l.a).name,
                                        problem.network.node(l.b).name
                                    ),
                                    balance: *slot,
                                });
                            }
                        }
                        (SpecVar::Node { .. }, _) => {}
                    }
                }
                for (k, v) in &out_props {
                    writes
                        .push((format!("{k}({iface})@{}", problem.network.node(dir.to).name), *v));
                }
                report.trace.push(StepTrace { step, op: op.to_string(), writes });
                streams.insert((iface.clone(), dir.to), out_props);
            }
        }
    }

    // goals
    for g in &problem.goals {
        let hit = placed.iter().any(|(c, n)| c == &g.component && *n == g.node)
            || problem.pre_placed.iter().any(|p| p.component == g.component && p.node == g.node);
        if !hit {
            report
                .violations
                .push(Violation::GoalUnmet { component: g.component.clone(), node: g.node });
        }
    }

    // usage summaries
    for ((node, res), bal) in &node_res {
        let cap = problem.network.node_capacity(*node, res);
        let used = cap - bal;
        if used.abs() > sekitei_model::EPS {
            report.node_usage.push((*node, res.clone(), used));
        }
    }
    for ((link, res), bal) in &link_res {
        let cap = problem.network.link_capacity(*link, res);
        let used = cap - bal;
        if used.abs() > sekitei_model::EPS {
            report.link_usage.push((*link, res.clone(), used));
        }
    }
    report.node_usage.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    report.link_usage.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    for ((iface, node), props) in &streams {
        for (prop, val) in props {
            report.delivered.push((iface.clone(), *node, prop.clone(), *val));
        }
    }
    report.delivered.sort_by(|a, b| (&a.0, a.1, &a.2).partial_cmp(&(&b.0, b.1, &b.2)).unwrap());

    report.ok = report.violations.is_empty();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::{LevelScenario, LinkClass};
    use sekitei_topology::scenarios;

    fn tiny_ops(problem: &CppProblem) -> (Vec<SourceValue>, Vec<DeployOp>) {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let link = problem.network.link_between(n0, n1).unwrap();
        let dir = DirLink { link, from: n0, to: n1 };
        let src = SourceValue {
            iface: "M".into(),
            node: n0,
            properties: [("ibw".to_string(), 100.0)].into(),
        };
        let ops = vec![
            DeployOp::Place { component: "Splitter".into(), node: n0 },
            DeployOp::Place { component: "Zip".into(), node: n0 },
            DeployOp::Cross { iface: "Z".into(), dir },
            DeployOp::Cross { iface: "I".into(), dir },
            DeployOp::Place { component: "Unzip".into(), node: n1 },
            DeployOp::Place { component: "Merger".into(), node: n1 },
            DeployOp::Place { component: "Client".into(), node: n1 },
        ];
        (vec![src], ops)
    }

    #[test]
    fn figure4_executes_cleanly() {
        let p = scenarios::tiny(LevelScenario::C);
        let (src, ops) = tiny_ops(&p);
        let r = simulate(&p, &src, &ops);
        assert!(r.ok, "{:?}", r.violations);
        // M delivered at 100 units on n1
        assert!(r.delivered.iter().any(|(i, n, p, v)| i == "M"
            && *n == NodeId(1)
            && p == "ibw"
            && (*v - 100.0).abs() < 1e-9));
        // link carries Z(35) + I(30)
        let bw: f64 = r.link_usage.iter().map(|(_, _, u)| u).sum();
        assert!((bw - 65.0).abs() < 1e-9, "{bw}");
        // real cost exceeds any lower bound: 7 ops with positive costs
        assert!(r.total_cost > 7.0);
    }

    #[test]
    fn overload_at_200_units_reports_violations() {
        let p = scenarios::tiny(LevelScenario::A);
        let (mut src, ops) = tiny_ops(&p);
        src[0].properties.insert("ibw".into(), 200.0);
        let r = simulate(&p, &src, &ops);
        assert!(!r.ok);
        // Splitter CPU condition violated (paper §2.3: needs 40 of 30)
        assert!(
            r.violations.iter().any(|v| matches!(v, Violation::ConditionViolated { step: 0, .. })),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn missing_input_detected() {
        let p = scenarios::tiny(LevelScenario::C);
        let ops = vec![DeployOp::Place { component: "Merger".into(), node: NodeId(0) }];
        let r = simulate(&p, &[], &ops);
        assert!(!r.ok);
        assert!(r.violations.iter().any(|v| matches!(v, Violation::MissingInput { .. })));
        // and the goal is unmet
        assert!(r.violations.iter().any(|v| matches!(v, Violation::GoalUnmet { .. })));
    }

    #[test]
    fn direct_cross_caps_bandwidth_and_fails_demand() {
        let p = scenarios::tiny(LevelScenario::C);
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let link = p.network.link_between(n0, n1).unwrap();
        let src = SourceValue {
            iface: "M".into(),
            node: n0,
            properties: [("ibw".to_string(), 100.0)].into(),
        };
        let ops = vec![
            DeployOp::Cross { iface: "M".into(), dir: DirLink { link, from: n0, to: n1 } },
            DeployOp::Place { component: "Client".into(), node: n1 },
        ];
        let r = simulate(&p, &[src], &ops);
        assert!(!r.ok);
        // delivered M is min(100, 70) = 70 < 90
        assert!(r
            .delivered
            .iter()
            .any(|(i, n, _, v)| i == "M" && *n == n1 && (*v - 70.0).abs() < 1e-9));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ConditionViolated { step: 1, .. })));
    }

    #[test]
    fn unknown_names_reported() {
        let p = scenarios::tiny(LevelScenario::C);
        let ops = vec![DeployOp::Place { component: "Ghost".into(), node: NodeId(0) }];
        let r = simulate(&p, &[], &ops);
        assert!(r.violations.iter().any(|v| matches!(v, Violation::UnknownName { .. })));
    }

    #[test]
    fn placement_restriction_enforced() {
        let mut p = scenarios::tiny(LevelScenario::C);
        let idx = p.comp_id("Client").unwrap().index();
        p.components[idx].placement = Placement::Only(vec!["n0".into()]);
        let (src, ops) = tiny_ops(&p);
        let r = simulate(&p, &src, &ops);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::PlacementForbidden { step: 6, .. })));
    }

    #[test]
    fn pre_placed_goal_counts() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.pre_placed
            .push(sekitei_model::PrePlacement { component: "Client".into(), node: NodeId(1) });
        let r = simulate(&p, &[], &[]);
        // goal met via pre-placement; no ops, no usage
        assert!(r.ok, "{:?}", r.violations);
        assert!(r.link_usage.is_empty());
    }

    #[test]
    fn wan_lan_usage_split() {
        // build a 2-link line LAN + WAN and push a stream across both
        let p = scenarios::small(LevelScenario::C);
        let _ = LinkClass::Lan;
        let (_, _) = (p.network.num_nodes(), p.network.num_links());
    }
}
