//! # sekitei-anytime
//!
//! Anytime portfolio planning: the exact RG search raced against a
//! stochastic local-search lane under an SLO, so a serving stack always
//! has *some* sim-validated plan with a reported optimality gap instead
//! of the all-or-nothing exact verdict.
//!
//! Two lanes run in scoped threads over one compiled task:
//!
//! * **Exact** — [`sekitei_planner::Planner::plan_task_bounded`], the
//!   unchanged A* regression search.
//! * **SLS** — [`sls`]: a deterministic seeded greedy constructor (the
//!   paper's original-Sekitei baseline) produces an initial incumbent,
//!   then fixed-schedule stochastic rollouts with simulated-annealing
//!   acceptance improve it. Every candidate incumbent is validated by
//!   replay, concretization and the full simulator before publication.
//!
//! The lanes share one monotone incumbent cost through an atomic
//! ([`sekitei_planner::IncumbentBound`]). When a deadline is configured,
//! the RG consumes it as a sound A* upper bound: a popped node with
//! `f` strictly above the incumbent proves the remaining search cannot
//! beat it and terminates the exact lane. Without a deadline the bound is
//! left unarmed, so the exact trajectory — and therefore the returned
//! plan on every solvable instance — is bit-identical to the plain
//! planner (the anytime lane is purely additive: its incumbent only
//! fills in where the exact search returns nothing, replacing the weaker
//! `concretize_relaxed` degraded path).
//!
//! # Determinism
//!
//! The incumbent cell has a single writer (the SLS thread), and the SLS
//! schedule is fixed work, not wall-clock work — so for a fixed
//! `sls_seed` the final incumbent is a pure function of the problem,
//! byte-identical across runs and `--search-threads` counts. The exact
//! lane's *counters* can vary under an armed cutoff (where the
//! trajectory ends depends on when improvements land), but the returned
//! plan and gap cannot:
//!
//! * With no deadline the cutoff is unarmed and every ending is
//!   deterministic.
//! * With a deadline, the incumbent (deterministic) is returned whenever
//!   the exact lane has no accepted plan, and its gap is measured
//!   against the *root* heuristic bound `h(goal)` — deterministic by
//!   construction — rather than the timing-dependent frontier bound.
//!   When the exact lane does finish first with a plan at least as cheap
//!   as the incumbent, that plan was produced before any cutoff could
//!   fire (A* pops in `f` order, so a cutoff implies the incumbent
//!   strictly beats every remaining plan), and the selection below picks
//!   the same winner either way.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sls;

pub use sls::{Incumbent, SlsStats};

use sekitei_cert as cert;
use sekitei_compile::{compile, ActionKind, PlanningTask};
use sekitei_model::CppProblem;
use sekitei_planner::{IncumbentBound, PlanError, PlanOutcome, Planner, PlannerConfig};
use std::sync::atomic::AtomicU64;
use std::time::Instant;

/// Result of an anytime planning run: the planner outcome (with
/// [`sekitei_planner::PlannerStats::optimality_gap`] filled in under the
/// deterministic gap rules) plus lane accounting.
#[derive(Debug)]
pub struct AnytimeOutcome {
    /// The selected outcome. `outcome.plan` is the exact plan when the RG
    /// accepted one at least as cheap as the incumbent, otherwise the
    /// sim-validated incumbent (tagged `degraded` when its sources bound
    /// at relaxed values).
    pub outcome: PlanOutcome,
    /// True when the returned plan is the SLS incumbent rather than the
    /// exact search's answer.
    pub incumbent_used: bool,
    /// SLS lane counters.
    pub sls: SlsStats,
}

/// Compile and solve a CPP instance in anytime portfolio mode.
pub fn plan(problem: &CppProblem, cfg: &PlannerConfig) -> Result<AnytimeOutcome, PlanError> {
    let _span = sekitei_obs::span("plan");
    let t0 = Instant::now();
    let task = compile(problem)?;
    Ok(plan_task(problem, task, cfg, t0))
}

/// Anytime-solve an already-compiled task (`t0` anchors deadlines and
/// total-time reporting, like [`Planner::plan_task`]).
pub fn plan_task(
    problem: &CppProblem,
    task: PlanningTask,
    cfg: &PlannerConfig,
    t0: Instant,
) -> AnytimeOutcome {
    plan_task_hinted(problem, task, cfg, t0, &[])
}

/// [`plan_task`] with a hint: action kinds of a prior plan (churn repair
/// passes the pre-churn deployment) that bias the greedy constructor's
/// tie-breaks, seeding the incumbent near the current configuration.
pub fn plan_task_hinted(
    problem: &CppProblem,
    task: PlanningTask,
    cfg: &PlannerConfig,
    t0: Instant,
    hint: &[ActionKind],
) -> AnytimeOutcome {
    let _span = sekitei_obs::span("anytime");
    let planner = Planner::new(*cfg);
    let cell = AtomicU64::new(f64::INFINITY.to_bits());
    // the incumbent prunes the exact search only under an SLO; with no
    // deadline the exact lane must run to its deterministic conclusion so
    // plans stay bit-identical to the non-anytime planner
    let armed = cfg.deadline.is_some();
    let sls_t0 = sekitei_obs::now_ns();
    let (mut outcome, lane) = std::thread::scope(|s| {
        let task_ref = &task;
        let cell_ref = &cell;
        let handle = s.spawn(move || sls::run_lane(problem, task_ref, cfg, hint, cell_ref));
        let bound = if armed { IncumbentBound::shared(&cell) } else { IncumbentBound::none() };
        let outcome = planner.plan_task_bounded(task.clone(), t0, bound);
        // always join the full fixed schedule: the final incumbent must be
        // a pure function of the seed, not of how fast the exact lane ran
        let lane = handle.join().expect("sls lane never panics");
        (outcome, lane)
    });
    if sekitei_obs::enabled() {
        sekitei_obs::aggregate(
            "sls",
            sls_t0,
            lane.stats.time.as_nanos() as u64,
            lane.stats.rollouts as u64,
        );
        sekitei_obs::event("sls_rollouts", lane.stats.rollouts as u64);
        sekitei_obs::event("sls_completed", lane.stats.completed as u64);
        sekitei_obs::event("sls_validated", lane.stats.validated as u64);
        sekitei_obs::event("sls_incumbent_improvements", lane.stats.improvements as u64);
    }

    let mut incumbent_used = false;
    if let Some(inc) = lane.best {
        let exact_wins = match &outcome.plan {
            // an accepted exact plan is kept unless the portfolio is racing
            // under a deadline AND the incumbent strictly beats it — the
            // one selection rule that is invariant to whether a cutoff
            // preempted this very ending (see the module doc)
            Some(p) if !p.degraded => !(armed && inc.cost < p.cost_lower_bound),
            // a degraded fallback (or nothing) always yields to a
            // sim-validated incumbent
            _ => false,
        };
        if !exact_wins {
            let (gap, gap_basis) = if armed {
                // deterministic under a deadline: measured against the
                // root bound, never the timing-dependent frontier bound
                match outcome.stats.root_bound {
                    Some(rb) if rb.is_finite() => {
                        ((inc.cost - rb).max(0.0), cert::GapBasis::RootBound)
                    }
                    Some(_) => (0.0, cert::GapBasis::RootBound),
                    _ => (0.0, cert::GapBasis::Proved),
                }
            } else if outcome.stats.budget_exhausted {
                // deterministic exhaustion: the frontier bound stands
                match outcome.stats.best_bound {
                    Some(b) => ((inc.cost - b).max(0.0), cert::GapBasis::FrontierBound),
                    None => (0.0, cert::GapBasis::Proved),
                }
            } else {
                // the exact search proved no (cheaper) greedy-valid plan
                // exists — the incumbent is optimal-or-better
                (0.0, cert::GapBasis::Proved)
            };
            // re-certify: the incumbent replaces whatever the exact lane
            // produced, so it gets its own certificate under the anytime
            // gap rules just applied
            let mut inc_plan = inc.plan;
            let trail = cert::BoundTrail {
                plan_cost: inc_plan.cost_lower_bound,
                root_bound: outcome.stats.root_bound,
                frontier_bound: outcome.stats.best_bound,
                gap_basis,
                claimed_gap: Some(gap),
                incumbent_cutoff: outcome.stats.incumbent_cutoff,
                budget_exhausted: outcome.stats.budget_exhausted,
                deadline_hit: outcome.stats.deadline_hit,
                drain_mode: outcome.stats.drain_mode,
                dominance: cfg.dominance,
                symmetry: cfg.symmetry,
            };
            let actions: Vec<_> = inc_plan.steps.iter().map(|s| s.action).collect();
            inc_plan.certificate = Some(cert::emit(
                &outcome.task,
                &actions,
                &inc_plan.execution.source_values,
                &inc_plan.execution.ledger,
                cert::OutcomeClass::AnytimeIncumbent,
                trail,
            ));
            outcome.plan = Some(inc_plan);
            outcome.stats.optimality_gap = Some(gap);
            incumbent_used = true;
            if sekitei_obs::enabled() {
                sekitei_obs::event("optimality_gap_milli", (gap * 1000.0).round() as u64);
            }
        }
    }
    AnytimeOutcome { outcome, incumbent_used, sls: lane.stats }
}
