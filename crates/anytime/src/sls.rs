//! The stochastic local-search lane: seeded greedy regression rollouts
//! with simulated-annealing-style acceptance, every candidate incumbent
//! validated end-to-end before publication.
//!
//! A *rollout* is one pass of the paper's original-Sekitei greedy
//! regression: start from the goal set, repeatedly pick the open
//! proposition with the largest PLRG bound (the exact search's branching
//! rule) and commit one achiever for it, until the set empties (a
//! candidate) or no achiever survives the feasibility filters (a dead
//! end). The *seed* rollout commits the `cost + h` argmin at every step —
//! the deterministic greedy baseline, biased toward a caller-provided
//! hint plan (churn repair passes the pre-churn plan's action kinds).
//! Subsequent rollouts randomize the commitment: with tunable
//! probabilities they copy an action from the current SA reference
//! solution (the "move set over placements and routings" — re-rolling a
//! neighbor of the reference), take the greedy argmin, or explore
//! uniformly. A completed rollout becomes the new SA reference if it is
//! cheaper, or with probability `exp(−Δ/T)` under a decaying temperature
//! — the acceptance shape of the genetic/annealing optimizers this lane
//! is modeled on.
//!
//! Publication is gated hard: a candidate becomes the incumbent only if
//! its tail replays from the concrete initial state, concretizes (greedy
//! first, relaxed as the degraded fallback) **and** passes the full
//! simulator ([`sekitei_sim::validate_plan`]). The incumbent cost cell is
//! written by this thread alone — the exact RG lane only reads it — so
//! for a fixed seed the entire incumbent trajectory is a pure function of
//! the problem, byte-identical across runs and RG thread counts.

use sekitei_compile::{ActionKind, PlanningTask};
use sekitei_model::{ActionId, CppProblem, PropId};
use sekitei_planner::{
    concretize, concretize_relaxed, replay_tail, ConcretizeFail, Plan, PlannerConfig, Plrg,
    ReplayScratch, SetId, Slrg,
};
use sekitei_util::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stochastic rollouts per restart (after the deterministic seed
/// rollout). Fixed — the lane's work is a schedule, not a wall-clock
/// loop, so the final incumbent never depends on machine speed.
const ROLLOUTS_PER_RESTART: usize = 48;

/// Probability of copying an action from the SA reference solution when
/// one is available (the local-search "move around the reference" step).
const P_BIAS: f64 = 0.30;

/// Probability mass of the greedy argmin commitment (measured after the
/// bias band: a uniform draw below `P_BIAS` re-rolls the reference,
/// below `P_BIAS + P_GREEDY` follows the heuristic, above explores).
const P_GREEDY: f64 = 0.40;

/// Limited-discrepancy sweep bounds: deviation positions tried (the
/// first `DEVIATE_POSITIONS` regression steps) × alternative ranks per
/// position. The sweep is deterministic and runs once, before the
/// stochastic restarts.
const DEVIATE_POSITIONS: usize = 12;
const DEVIATE_RANKS: usize = 2;
const DEVIATE_WINDOW: usize = 3;

/// Initial SA temperature (relative-cost units) and per-rollout decay.
const SA_TEMP0: f64 = 0.30;
const SA_DECAY: f64 = 0.85;

/// Failure-centered repair: rounds of deterministic mixed-rank window
/// enumeration around the deepest tail's execution-failure point, and
/// how far (in regression picks) the window start may sit from it.
const REPAIR_ROUNDS: usize = 8;
const REPAIR_JITTER: usize = 2;
const REPAIR_WINDOW_MAX: usize = 3;

/// A validated anytime incumbent.
#[derive(Debug, Clone)]
pub struct Incumbent {
    /// The sim-validated plan (`degraded` marks relaxed source binding).
    pub plan: Plan,
    /// Its cost lower bound — the quantity compared against RG `f`.
    pub cost: f64,
}

/// Counters of one SLS lane run.
#[derive(Debug, Clone, Default)]
pub struct SlsStats {
    /// Rollouts attempted (including the seed rollout per restart).
    pub rollouts: usize,
    /// Rollouts that reached an empty open set (candidate plans).
    pub completed: usize,
    /// Candidates taken through full validation (replay + concretize +
    /// simulator) because they beat the incumbent cost.
    pub validated: usize,
    /// Incumbent improvements published to the shared cell.
    pub improvements: usize,
    /// Candidates dropped because their tail does not replay from the
    /// concrete initial state.
    pub replay_failures: usize,
    /// Candidates dropped because neither greedy nor relaxed
    /// concretization produced an execution.
    pub concretize_failures: usize,
    /// Candidates dropped by the simulator.
    pub sim_failures: usize,
    /// Cost of the first (deterministic greedy seed) incumbent, when the
    /// seed rollout validated.
    pub seed_cost: Option<f64>,
    /// Wall time of the whole lane. Observational.
    pub time: std::time::Duration,
}

/// Everything the lane hands back to the facade.
#[derive(Debug)]
pub(crate) struct LaneResult {
    pub best: Option<Incumbent>,
    pub stats: SlsStats,
}

impl LaneResult {
    fn empty() -> LaneResult {
        LaneResult { best: None, stats: SlsStats::default() }
    }
}

/// Run the lane to completion. `cell` is the shared incumbent cost
/// (`f64::to_bits`, `+∞` when none); this thread is its only writer.
pub(crate) fn run_lane(
    problem: &CppProblem,
    task: &PlanningTask,
    cfg: &PlannerConfig,
    hint: &[ActionKind],
    cell: &AtomicU64,
) -> LaneResult {
    let t0 = std::time::Instant::now();
    let goal_props: Vec<_> =
        task.goal_props.iter().copied().filter(|&p| !task.initially(p)).collect();
    if goal_props.is_empty() {
        return LaneResult::empty(); // trivial task; the exact lane owns it
    }
    let plrg = Plrg::build(task);
    if !plrg.solvable(task) {
        return LaneResult::empty();
    }
    let mut slrg = Slrg::new(task, &plrg, cfg.slrg_budget);
    let goal = slrg.pool_mut().intern(goal_props);

    let mut engine = Engine {
        problem,
        task,
        plrg: &plrg,
        slrg,
        scratch: ReplayScratch::new(task),
        goal,
        // plans worth validating are far shorter than the ground action
        // count; the duplicate-action rule bounds depth anyway, this just
        // stops hopeless rollouts early
        max_depth: 48.min(task.num_actions()),
        hint,
        best: None,
        deepest: None,
        evaluated: std::collections::HashMap::new(),
        stats: SlsStats::default(),
    };
    let mut rng = SplitMix64::new(cfg.sls_seed);

    // the seeded greedy constructor: the original-Sekitei baseline
    if let Some((tail, g)) = engine.rollout(&mut rng, Mode::Greedy, &[]) {
        engine.evaluate(&tail, g, cell);
        if engine.best.is_some() {
            engine.stats.seed_cost = Some(g);
        }
    }

    // limited-discrepancy sweep: greedy except one step, systematically
    // over positions and alternative ranks. On problems where exact
    // execution rejects the pure greedy structure (the unleveled
    // scenario A family), the fix is typically one substitution — e.g.
    // decompress-on-arrival instead of shipping the raw stream — and this
    // deterministic pass finds every such single substitution
    for len in 1..=DEVIATE_WINDOW {
        for rank in 1..=DEVIATE_RANKS {
            for at in 0..DEVIATE_POSITIONS {
                let mode = Mode::Deviate { at, rank, len };
                if let Some((tail, g)) = engine.rollout(&mut rng, mode, &[]) {
                    engine.evaluate(&tail, g, cell);
                }
            }
        }
    }

    // failure-centered repair: when even the best tail dies mid-execution
    // (the unleveled scenarios, where a feasible plan needs a coordinated
    // multi-step substitution like compress → ship → decompress that no
    // single deviation expresses), enumerate mixed-rank deviation windows
    // centered on the failure's own pick index. Execution order is the
    // reverse of pick order, so a failure at execution step `depth − 1`
    // points at pick index `len − depth` — the window lands exactly where
    // the repair has to go. Hill-climb on execution depth: recenter on
    // every strictly deeper tail, stop when a full sweep finds none.
    'repair: for _round in 0..REPAIR_ROUNDS {
        let Some((anchor, depth, _)) = engine.deepest.clone() else { break };
        if depth >= usize::MAX - 1 {
            break; // executes end-to-end; nothing left to repair
        }
        let target = anchor.len().saturating_sub(depth.min(anchor.len()));
        let lo = target.saturating_sub(REPAIR_JITTER);
        let hi = (target + REPAIR_JITTER).min(anchor.len());
        for at in lo..=hi {
            for len in 2..=REPAIR_WINDOW_MAX {
                for code in 1..3usize.pow(len as u32) {
                    let mut ranks = [0u8; REPAIR_WINDOW_MAX];
                    let mut c = code;
                    for r in ranks.iter_mut().take(len) {
                        *r = (c % 3) as u8;
                        c /= 3;
                    }
                    let mode = Mode::Repair { at, len, ranks };
                    if let Some((tail, g)) = engine.rollout(&mut rng, mode, &anchor) {
                        if engine.evaluate(&tail, g, cell) > depth {
                            continue 'repair; // recenter on the deeper tail
                        }
                    }
                }
            }
        }
        break; // a full sweep found nothing deeper
    }

    for _restart in 0..cfg.sls_restarts {
        // each restart re-anchors the SA reference on the incumbent when
        // one exists, else on the deepest-executing candidate so far —
        // the execution-depth gradient is what walks an infeasible greedy
        // family toward a structure the exact executor accepts
        let (mut reference, mut ref_depth, mut ref_cost) = match (&engine.best, &engine.deepest) {
            (Some(b), _) => {
                let tail: Vec<ActionId> = b.plan.steps.iter().map(|s| s.action).collect();
                (tail, usize::MAX, b.cost)
            }
            (None, Some((tail, depth, g))) => (tail.clone(), *depth, *g),
            (None, None) => (Vec::new(), 0, f64::INFINITY),
        };
        let mut temp = SA_TEMP0;
        for _iter in 0..ROLLOUTS_PER_RESTART {
            if let Some((tail, g)) = engine.rollout(&mut rng, Mode::Stochastic, &reference) {
                let depth = engine.evaluate(&tail, g, cell);
                let cost_sa = |rng: &mut SplitMix64, ref_cost: f64, temp: f64| {
                    g < ref_cost || {
                        let scale = if ref_cost.is_finite() { ref_cost.max(1e-9) } else { 1.0 };
                        let delta = if ref_cost.is_finite() { (g - ref_cost) / scale } else { 0.0 };
                        rng.unit() < (-delta / temp).exp()
                    }
                };
                // acceptance: once an incumbent exists the lane anneals on
                // cost alone (cheaper wins, costlier with probability
                // exp(−Δ/T) under the decaying temperature — the shape of
                // the annealing optimizers this lane is modeled on).
                // Before one exists it is lexicographic on the
                // execution-depth fitness: strictly deeper always wins,
                // equal depth falls back to the cost rule
                let accept = if engine.best.is_some() {
                    cost_sa(&mut rng, ref_cost, temp)
                } else {
                    depth > ref_depth || (depth == ref_depth && cost_sa(&mut rng, ref_cost, temp))
                };
                if accept {
                    reference = tail;
                    ref_depth = depth;
                    ref_cost = g;
                }
            }
            temp *= SA_DECAY;
        }
    }

    engine.stats.time = t0.elapsed();
    LaneResult { best: engine.best, stats: engine.stats }
}

enum Mode {
    /// Deterministic `cost + h` argmin at every step (the seed).
    Greedy,
    /// Greedy everywhere except steps `at .. at + len`, which take the
    /// `rank`-th best candidate — one arm of the limited-discrepancy
    /// sweep. Windows longer than one step cover coordinated
    /// substitutions (a deviated pick whose new subgoals must also be
    /// achieved non-greedily, e.g. decompress-on-arrival plus shipping
    /// the compressed stream).
    Deviate {
        /// First regression step of the deviation window.
        at: usize,
        /// Greedy-order rank taken inside the window (1 = second best).
        rank: usize,
        /// Window length in regression steps.
        len: usize,
    },
    /// Failure-centered repair arm: copy the reference's picks verbatim
    /// before the window, take the given greedy-order ranks inside it,
    /// then splice the *rest of the reference* back in by scanning
    /// forward for its next pick still offered as a candidate. Unlike
    /// [`Mode::Deviate`] (greedy continuation), this preserves the whole
    /// surviving structure of the reference around the substitution.
    Repair {
        /// First pick index of the deviation window.
        at: usize,
        /// Window length (uses `ranks[..len]`).
        len: usize,
        /// Greedy-order rank taken at each window step (0 = greedy).
        ranks: [u8; REPAIR_WINDOW_MAX],
    },
    /// Randomized commitment: bias / greedy / explore bands.
    Stochastic,
}

struct Engine<'t> {
    problem: &'t CppProblem,
    task: &'t PlanningTask,
    plrg: &'t Plrg,
    slrg: Slrg<'t>,
    scratch: ReplayScratch,
    goal: SetId,
    max_depth: usize,
    hint: &'t [ActionKind],
    best: Option<Incumbent>,
    /// Deepest-executing completed rollout seen so far (tail, execution
    /// depth, cost) — the SA anchor while no incumbent exists. Carried
    /// across restarts so each one resumes from the best partial
    /// structure instead of re-deriving it.
    deepest: Option<(Vec<ActionId>, usize, f64)>,
    /// Evaluation cache: deterministic tail fingerprint → execution
    /// depth. Point lookups only, so map iteration order never matters.
    evaluated: std::collections::HashMap<u64, usize>,
    stats: SlsStats,
}

impl<'t> Engine<'t> {
    /// One greedy-regression rollout. Returns the execution-ordered tail
    /// and its cost lower bound, or `None` on a dead end.
    fn rollout(
        &mut self,
        rng: &mut SplitMix64,
        mode: Mode,
        reference: &[ActionId],
    ) -> Option<(Vec<ActionId>, f64)> {
        self.stats.rollouts += 1;
        let mut set = self.goal;
        // actions in pick order; execution order is the reverse (each
        // regression step commits the action that runs *before* the tail
        // built so far — same orientation as the RG's parent links)
        let mut picks: Vec<ActionId> = Vec::new();
        let mut tail_exec: Vec<ActionId> = Vec::new();
        let mut g = 0.0;
        let mut cands: Vec<(ActionId, f64, SetId, bool)> = Vec::new();
        // propositions this rollout has already committed an achiever for.
        // A candidate whose preconditions re-introduce one is *rework* —
        // the cross ping-pong cycles (ship M over a link, then ship it
        // right back) that the exact search's closed set forbids but a
        // memoryless greedy rollout happily walks until the depth cap
        let mut achieved: Vec<PropId> = Vec::new();

        // regression-order view of the reference, and how many of its
        // picks this rollout replays verbatim before mutating. Copying a
        // prefix pins the open-set trajectory to the reference's, so the
        // mutation happens at exactly one chosen depth — and because the
        // execution order is the reverse of the pick order, deep copy
        // points mutate the *early execution steps*, which is where a
        // tail that fails mid-execution needs its repair.
        let ref_picks: Vec<ActionId> = reference.iter().rev().copied().collect();
        let follow = if matches!(mode, Mode::Stochastic) && !ref_picks.is_empty() {
            rng.below(ref_picks.len() as u64 + 1) as usize
        } else {
            0
        };
        // repair-mode scan cursor into `ref_picks` for the post-window
        // splice (starts at the window: the picks it displaced may no
        // longer apply, scanning forward skips them naturally)
        let mut cursor = match mode {
            Mode::Repair { at, .. } => at,
            _ => 0,
        };

        while set != SetId::EMPTY {
            if picks.len() >= self.max_depth {
                return None;
            }
            // the exact search's branching rule: the open proposition with
            // the largest PLRG bound (ties to the largest id)
            let target = {
                let props = self.slrg.pool().props_of(set);
                *props
                    .iter()
                    .max_by(|&&a, &&b| {
                        self.plrg
                            .prop_cost(a)
                            .partial_cmp(&self.plrg.prop_cost(b))
                            .unwrap()
                            .then(a.cmp(&b))
                    })
                    .expect("non-empty open set")
            };
            tail_exec.clear();
            tail_exec.extend(picks.iter().rev());
            self.scratch.begin_expansion(&tail_exec);
            cands.clear();
            for &a in self.task.achievers(target) {
                if !self.plrg.usable(a) || picks.contains(&a) {
                    continue;
                }
                let act = self.task.action(a);
                let child = self
                    .slrg
                    .pool_mut()
                    .regress(set, &act.adds, &act.preconds, |p| self.task.initially(p));
                let h = self.slrg.achievement_cost_id(child).bound;
                if !h.is_finite() {
                    continue;
                }
                // same optimistic-map feasibility filter the RG applies to
                // children — rollouts never waste depth on tails the exact
                // search would prune immediately
                if self.scratch.child_tail_fails(self.task, a, &tail_exec) {
                    continue;
                }
                let rework = act.preconds.iter().any(|p| achieved.contains(p));
                cands.push((a, act.cost + h, child, rework));
            }
            if cands.is_empty() {
                return None;
            }
            let pick = match mode {
                Mode::Greedy => self.greedy_pick(&cands, &picks),
                Mode::Deviate { at, rank, len } if (at..at + len).contains(&picks.len()) => {
                    self.ranked_pick(&cands, &picks, rank)
                }
                Mode::Deviate { .. } => self.greedy_pick(&cands, &picks),
                Mode::Repair { at, len, ranks } => {
                    let i = picks.len();
                    if i < at {
                        // exact prefix copy — the trajectory matches the
                        // reference's, so its pick is offered unless the
                        // reference itself came from a different filter
                        // state (then fall back to greedy)
                        match cands.iter().position(|&(a, ..)| Some(&a) == ref_picks.get(i)) {
                            Some(p) => p,
                            None => self.greedy_pick(&cands, &picks),
                        }
                    } else if i < at + len {
                        self.ranked_pick(&cands, &picks, ranks[i - at] as usize)
                    } else {
                        // splice the surviving remainder of the reference
                        // back in: next reference pick still on offer
                        match (cursor..ref_picks.len())
                            .find(|&j| cands.iter().any(|&(a, ..)| a == ref_picks[j]))
                        {
                            Some(j) => {
                                cursor = j + 1;
                                cands.iter().position(|&(a, ..)| a == ref_picks[j]).unwrap()
                            }
                            None => self.greedy_pick(&cands, &picks),
                        }
                    }
                }
                Mode::Stochastic
                    if picks.len() < follow
                        && cands.iter().any(|&(a, ..)| a == ref_picks[picks.len()]) =>
                {
                    let want = ref_picks[picks.len()];
                    cands.iter().position(|&(a, ..)| a == want).unwrap()
                }
                Mode::Stochastic => {
                    let u = rng.unit();
                    let biased: Vec<usize> = if reference.is_empty() {
                        Vec::new()
                    } else {
                        (0..cands.len()).filter(|&i| reference.contains(&cands[i].0)).collect()
                    };
                    if u < P_BIAS && !biased.is_empty() {
                        biased[rng.below(biased.len() as u64) as usize]
                    } else if u < P_BIAS + P_GREEDY {
                        self.greedy_pick(&cands, &picks)
                    } else {
                        // uniform exploration, but over the non-redundant
                        // candidates when any exist: re-placing a component
                        // already placed elsewhere in this rollout almost
                        // always dies at exact execution, and rework picks
                        // walk the ping-pong cycles
                        let fresh: Vec<usize> = (0..cands.len())
                            .filter(|&i| !self.dup_place(cands[i].0, &picks) && !cands[i].3)
                            .collect();
                        if fresh.is_empty() {
                            rng.below(cands.len() as u64) as usize
                        } else {
                            fresh[rng.below(fresh.len() as u64) as usize]
                        }
                    }
                }
            };
            let (a, _, child, _) = cands[pick];
            g += self.task.action(a).cost;
            picks.push(a);
            achieved.push(target);
            set = child;
        }
        self.stats.completed += 1;
        picks.reverse();
        Some((picks, g))
    }

    /// Deterministic greedy commitment: avoid duplicate component
    /// placements and rework first, then minimum `cost + h`, ties broken
    /// toward hinted action kinds (churn's pre-churn plan), then the
    /// lowest action id.
    fn greedy_pick(&self, cands: &[(ActionId, f64, SetId, bool)], picks: &[ActionId]) -> usize {
        let mut best = 0usize;
        let mut best_key = self.pick_key(cands[0], picks);
        for (i, &c) in cands.iter().enumerate().skip(1) {
            let key = self.pick_key(c, picks);
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    /// The `rank`-th candidate in greedy order (clamped to the last) —
    /// the single-step alternative a discrepancy arm commits to.
    fn ranked_pick(
        &self,
        cands: &[(ActionId, f64, SetId, bool)],
        picks: &[ActionId],
        rank: usize,
    ) -> usize {
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by_key(|&i| self.pick_key(cands[i], picks));
        order[rank.min(order.len() - 1)]
    }

    /// `(duplicate-placement, rework, score-bits, !hinted, id)` —
    /// lexicographic minimum is the greedy choice. Scores are finite and
    /// non-negative, so their IEEE bit patterns order like the values.
    fn pick_key(
        &self,
        (a, score, _, rework): (ActionId, f64, SetId, bool),
        picks: &[ActionId],
    ) -> (bool, bool, u64, bool, ActionId) {
        (self.dup_place(a, picks), rework, score.to_bits(), !self.hinted(a), a)
    }

    /// True when `a` places a component some earlier pick already placed
    /// on a different node — legal, but it rarely survives exact
    /// execution, so both the greedy and explore bands steer around it.
    fn dup_place(&self, a: ActionId, picks: &[ActionId]) -> bool {
        let ActionKind::Place { comp, .. } = self.task.action(a).kind else {
            return false;
        };
        picks.iter().any(
            |&p| matches!(self.task.action(p).kind, ActionKind::Place { comp: c, .. } if c == comp),
        )
    }

    fn hinted(&self, a: ActionId) -> bool {
        !self.hint.is_empty() && self.hint.contains(&self.task.action(a).kind)
    }

    /// Evaluate a completed rollout: while no incumbent exists this
    /// computes the execution-depth fitness signal (publishing as a side
    /// effect when the tail executes end-to-end); once one exists it only
    /// validates candidates that beat the incumbent cost. Results are
    /// cached per tail, so the biased rollout phases re-deriving the same
    /// tail pay a hash lookup instead of a replay + concretize +
    /// simulate pipeline.
    fn evaluate(&mut self, tail: &[ActionId], g: f64, cell: &AtomicU64) -> usize {
        let current = self.best.as_ref().map_or(f64::INFINITY, |b| b.cost);
        if self.best.is_some() && g >= current {
            return 0; // cannot publish, and the depth gradient has retired
        }
        let key = tail_hash(tail);
        if let Some(&d) = self.evaluated.get(&key) {
            return d;
        }
        self.stats.validated += 1;
        let depth = match replay_tail(self.task, tail, Some(&self.task.init_values)) {
            Err(_) => {
                self.stats.replay_failures += 1;
                0
            }
            Ok(map) => match concretize(self.task, tail, &map) {
                Ok(exec) => {
                    if self.publish(tail, g, exec, false, cell) {
                        usize::MAX
                    } else {
                        tail.len() // executes, but the simulator objects
                    }
                }
                Err(e1) => match concretize_relaxed(self.task, tail, &map) {
                    Ok(exec) => {
                        if self.publish(tail, g, exec, true, cell) {
                            usize::MAX - 1
                        } else {
                            tail.len()
                        }
                    }
                    Err(e2) => {
                        self.stats.concretize_failures += 1;
                        fail_step(&e1).max(fail_step(&e2)) + 1
                    }
                },
            },
        };
        // deepest-partial anchor for the repair and SA phases
        let better = match &self.deepest {
            None => true,
            Some((_, d, c)) => depth > *d || (depth == *d && g < *c),
        };
        if better {
            self.deepest = Some((tail.to_vec(), depth, g));
        }
        self.evaluated.insert(key, depth);
        depth
    }

    /// Sim-validate a concrete execution and publish it as the incumbent.
    fn publish(
        &mut self,
        tail: &[ActionId],
        g: f64,
        exec: sekitei_planner::ConcreteExecution,
        degraded: bool,
        cell: &AtomicU64,
    ) -> bool {
        let mut plan = Plan::from_actions(self.task, tail, g, exec);
        plan.degraded = degraded;
        if !sekitei_sim::validate_plan(self.problem, self.task, &plan).ok {
            self.stats.sim_failures += 1;
            return false;
        }
        self.best = Some(Incumbent { plan, cost: g });
        self.stats.improvements += 1;
        // single-writer monotone publish; the RG lane reads Relaxed — a
        // stale read only delays its cutoff, never unsounds it
        cell.store(g.to_bits(), Ordering::Release);
        true
    }
}

/// Deterministic tail fingerprint for the evaluation cache (std hashers
/// are randomly seeded per process, which would break replayability of
/// the lane's counters).
fn tail_hash(tail: &[ActionId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &a in tail {
        h ^= a.index() as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The step index a concretization failure occurred at.
fn fail_step(e: &ConcretizeFail) -> usize {
    match e {
        ConcretizeFail::ConditionFailed { step, .. }
        | ConcretizeFail::ResourceExhausted { step, .. }
        | ConcretizeFail::UndefinedRead { step, .. } => *step,
    }
}
