//! Contract tests for the anytime portfolio facade.
//!
//! * Without a deadline the portfolio is purely additive: on instances
//!   the exact search solves, the returned plan is identical to the
//!   plain planner's.
//! * Under a deadline, previously all-or-nothing instances (the
//!   unleveled scenario-A family) return a sim-validated incumbent with
//!   a finite optimality gap.
//! * For a fixed `sls_seed` the returned plan and gap are byte-identical
//!   across repeated runs and `search_threads` settings.

use proptest::prelude::*;
use sekitei_model::{
    media_domain_with, CppProblem, Goal, LevelScenario, MediaConfig, NodeId, StreamSource,
};
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_sim::validate_plan;
use sekitei_topology::{scenarios, waxman, Capacities};
use std::time::Duration;

fn anytime_cfg(deadline_ms: Option<u64>) -> PlannerConfig {
    PlannerConfig {
        degrade: true,
        anytime: true,
        deadline: deadline_ms.map(Duration::from_millis),
        ..PlannerConfig::default()
    }
}

/// Render the parts of an outcome that must be reproducible.
fn fingerprint(a: &sekitei_anytime::AnytimeOutcome) -> String {
    format!(
        "plan={:?} gap={:?} incumbent={}",
        a.outcome.plan.as_ref().map(|p| format!("{p}")),
        a.outcome.stats.optimality_gap.map(f64::to_bits),
        a.incumbent_used,
    )
}

#[test]
fn no_deadline_matches_plain_planner() {
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
        let problem = scenarios::small(sc);
        let cfg = anytime_cfg(None);
        let a = sekitei_anytime::plan(&problem, &cfg).expect("compiles");
        let exact =
            Planner::new(PlannerConfig { anytime: false, ..cfg }).plan(&problem).expect("compiles");
        match (&a.outcome.plan, &exact.plan) {
            (Some(x), Some(y)) if !y.degraded => {
                assert_eq!(format!("{x}"), format!("{y}"), "{sc:?}: plan diverged");
                assert!(!a.incumbent_used, "{sc:?}: incumbent replaced an exact plan");
            }
            // exact returned nothing usable: the portfolio may fill in
            (_, None) | (_, Some(_)) => {}
        }
    }
}

#[test]
fn deadline_small_a_returns_validated_incumbent() {
    let problem = scenarios::small(LevelScenario::A);
    let a = sekitei_anytime::plan(&problem, &anytime_cfg(Some(250))).expect("compiles");
    let plan = a.outcome.plan.as_ref().expect("anytime plan on Small/A");
    let gap = a.outcome.stats.optimality_gap.expect("gap reported");
    assert!(gap.is_finite() && gap >= 0.0, "bad gap {gap}");
    let report = validate_plan(&problem, &a.outcome.task, plan);
    assert!(report.ok, "incumbent failed simulation: {:?}", report.violations);
}

#[test]
fn incumbent_certificate_verifies_with_its_reported_gap() {
    let problem = scenarios::small(LevelScenario::A);
    let a = sekitei_anytime::plan(&problem, &anytime_cfg(Some(250))).expect("compiles");
    let plan = a.outcome.plan.as_ref().expect("anytime plan on Small/A");
    let cert = plan.certificate.as_ref().expect("anytime plan carries a certificate");
    let rep = sekitei_cert::check_certificate(&a.outcome.task, cert).unwrap();
    if a.incumbent_used {
        assert_eq!(rep.outcome, sekitei_cert::OutcomeClass::AnytimeIncumbent);
    }
    // the certified gap is the reported gap, not a parallel claim
    assert_eq!(cert.bound.claimed_gap, a.outcome.stats.optimality_gap);
}

#[test]
fn deadline_large_a_returns_validated_incumbent() {
    let problem = scenarios::large(LevelScenario::A);
    let a = sekitei_anytime::plan(&problem, &anytime_cfg(Some(250))).expect("compiles");
    let plan = a.outcome.plan.as_ref().expect("anytime plan on Large/A");
    let gap = a.outcome.stats.optimality_gap.expect("gap reported");
    assert!(gap.is_finite() && gap >= 0.0, "bad gap {gap}");
    let report = validate_plan(&problem, &a.outcome.task, plan);
    assert!(report.ok, "incumbent failed simulation: {:?}", report.violations);
}

#[test]
fn gap_zero_when_exact_search_proves_optimality() {
    // solvable leveled instance with a generous deadline: the exact lane
    // accepts its optimal plan (a cutoff cannot preempt an acceptance at
    // `f` at or below the incumbent — pops rise in `f` order), so the
    // reported gap must be exactly zero
    let problem = scenarios::small(LevelScenario::C);
    let a = sekitei_anytime::plan(&problem, &anytime_cfg(Some(5_000))).expect("compiles");
    let plan = a.outcome.plan.as_ref().expect("plan on Small/C");
    assert!(!plan.degraded);
    assert_eq!(a.outcome.stats.optimality_gap, Some(0.0));
}

#[test]
fn byte_identity_across_runs_and_thread_counts() {
    let problem = scenarios::small(LevelScenario::A);
    let mut prints = Vec::new();
    for threads in [1usize, 2, 4] {
        for _run in 0..2 {
            let cfg = PlannerConfig { search_threads: threads, ..anytime_cfg(Some(250)) };
            let a = sekitei_anytime::plan(&problem, &cfg).expect("compiles");
            prints.push(fingerprint(&a));
        }
    }
    for p in &prints[1..] {
        assert_eq!(p, &prints[0], "anytime outcome varies across runs/threads");
    }
}

#[test]
fn hinted_planning_returns_validated_plan() {
    // repair-style call: hint the lane with the action kinds of an
    // existing plan (churn passes the pre-churn deployment)
    let problem = scenarios::small(LevelScenario::C);
    let cfg = anytime_cfg(Some(250));
    let base = sekitei_anytime::plan(&problem, &cfg).expect("compiles");
    let hint: Vec<_> = base
        .outcome
        .plan
        .as_ref()
        .expect("base plan")
        .steps
        .iter()
        .map(|s| s.kind.clone())
        .collect();
    let task = sekitei_compile::compile(&problem).expect("compiles");
    let a =
        sekitei_anytime::plan_task_hinted(&problem, task, &cfg, std::time::Instant::now(), &hint);
    let plan = a.outcome.plan.as_ref().expect("hinted plan");
    let report = validate_plan(&problem, &a.outcome.task, plan);
    assert!(report.ok, "hinted plan failed simulation: {:?}", report.violations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random-topology portfolio contract: any returned plan simulates
    /// cleanly, the gap is present and non-negative whenever the
    /// portfolio reports one, the incumbent is never worse than the
    /// greedy seed that opened the lane, and the whole outcome is
    /// deterministic.
    #[test]
    fn anytime_contract(seed in 0u64..5_000, n in 6usize..14,
                        demand in 60.0..100.0f64, sc_idx in 0..5usize) {
        let caps = Capacities { node_cpu: 40.0, lan_bw: 120.0, wan_bw: 120.0 };
        let net = waxman(n, 0.5, 0.3, seed, &caps);
        let cfg_media = MediaConfig { client_demand: demand.round(), ..MediaConfig::default() };
        let d = media_domain_with(cfg_media, LevelScenario::ALL[sc_idx]);
        let p = CppProblem {
            network: net,
            resources: d.resources,
            interfaces: d.interfaces,
            components: d.components,
            sources: vec![StreamSource::up_to("M", NodeId(0), "ibw", 200.0)],
            pre_placed: vec![],
            goals: vec![Goal { component: "Client".into(), node: NodeId((n - 1) as u32) }],
        };
        let cfg = anytime_cfg(Some(100));
        let a = sekitei_anytime::plan(&p, &cfg).expect("compiles");
        let b = sekitei_anytime::plan(&p, &cfg).expect("compiles");
        prop_assert_eq!(fingerprint(&a), fingerprint(&b), "nondeterministic outcome");
        if let Some(plan) = &a.outcome.plan {
            let report = validate_plan(&p, &a.outcome.task, plan);
            prop_assert!(report.ok, "plan failed simulation: {:?}\n{}", report.violations, plan);
            prop_assert!(plan.cost_lower_bound <= report.total_cost + 1e-6);
            if let Some(gap) = a.outcome.stats.optimality_gap {
                prop_assert!(gap.is_finite() && gap >= 0.0);
            }
            if let Some(seed_cost) = a.sls.seed_cost {
                prop_assert!(
                    plan.cost_lower_bound <= seed_cost + 1e-9,
                    "returned plan worse than the greedy seed: {} > {}",
                    plan.cost_lower_bound, seed_cost
                );
            }
        }
    }
}
