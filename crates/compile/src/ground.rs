//! Grounding and leveling: [`compile`] turns a validated
//! [`CppProblem`] into a [`PlanningTask`].
//!
//! For every component × node (respecting placement restrictions) and every
//! interface × directed link, the compiler enumerates the combinations of
//! resource levels mentioned by the action schema (paper §3.1 "leveled
//! actions"), keeping only combinations that pass the *static pruning
//! procedure*: conditions must be possibly-satisfiable over the level
//! intervals, consumption must possibly fit capacities, and computed output
//! ranges must intersect the declared output levels. Each surviving
//! combination becomes one ground action carrying its optimistic resource
//! map and a lower-bound cost.

use crate::task::{ActionKind, GVarData, GroundAction, PlanningTask, PropData};
use sekitei_model::{
    AssignOp, CompId, CppProblem, DirLink, GVarId, IfaceId, Interval, LevelSpec, Locus, ModelError,
    NodeId, Placement, PropId, SpecVar,
};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Hard cap on level combinations per action schema — a guard against
/// accidentally exponential level products, not a tuning knob.
const MAX_COMBOS: usize = 200_000;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The problem failed structural validation.
    Model(ModelError),
    /// A single action schema produced too many level combinations.
    TooManyCombinations {
        /// Which schema exploded.
        schema: String,
        /// How many combinations it would have produced.
        count: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Model(e) => write!(f, "invalid problem: {e}"),
            CompileError::TooManyCombinations { schema, count } => {
                write!(f, "schema `{schema}` yields {count} level combinations (max {MAX_COMBOS})")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ModelError> for CompileError {
    fn from(e: ModelError) -> Self {
        CompileError::Model(e)
    }
}

/// Compile a CPP instance into a leveled planning task.
///
/// ```
/// use sekitei_model::LevelScenario;
/// use sekitei_topology::scenarios;
///
/// let problem = scenarios::tiny(LevelScenario::C);
/// let task = sekitei_compile::compile(&problem).unwrap();
/// assert!(task.num_actions() > 0);
/// // leveling multiplied the action schemas (paper Table 2, col 5)
/// let unleveled = sekitei_compile::compile(&scenarios::tiny(LevelScenario::A)).unwrap();
/// assert!(task.num_actions() > unleveled.num_actions());
/// ```
pub fn compile(problem: &CppProblem) -> Result<PlanningTask, CompileError> {
    problem.validate()?;
    let _span = sekitei_obs::span("compile");
    let start = Instant::now();
    let mut ctx = Ctx { p: problem, task: PlanningTask::default(), pruned: 0 };
    {
        let _g = sekitei_obs::span("ground-place");
        ctx.ground_place_actions()?;
    }
    {
        let _g = sekitei_obs::span("ground-cross");
        ctx.ground_cross_actions()?;
    }
    {
        let _g = sekitei_obs::span("finalize");
        ctx.build_initial_state();
        ctx.build_goals();
        ctx.finalize(start);
    }
    {
        let _g = sekitei_obs::span("symmetry");
        ctx.task.orbits = crate::symmetry::node_orbits(&ctx.task, problem.network.num_nodes());
        ctx.task.sig_classes =
            crate::symmetry::signature_classes(&ctx.task, problem.network.num_nodes());
    }
    sekitei_obs::event("ground_actions", ctx.task.num_actions() as u64);
    sekitei_obs::event("level_combos_pruned", ctx.pruned as u64);
    sekitei_obs::event(
        "symmetry_orbits",
        ctx.task.orbits.orbits().filter(|m| m.len() > 1).count() as u64,
    );
    Ok(ctx.task)
}

struct Ctx<'p> {
    p: &'p CppProblem,
    task: PlanningTask,
    pruned: usize,
}

/// Iterate the cartesian product of `dims[i]` choices per slot.
fn for_each_combo(dims: &[usize], mut f: impl FnMut(&[usize])) {
    if dims.contains(&0) {
        return;
    }
    let mut idx = vec![0usize; dims.len()];
    loop {
        f(&idx);
        let mut k = dims.len();
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < dims[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn combo_count(dims: &[usize]) -> usize {
    dims.iter().product()
}

impl<'p> Ctx<'p> {
    // ------------------------------------------------------------- interning

    fn intern_prop(&mut self, data: PropData) -> PropId {
        if let Some(&id) = self.task.prop_index.get(&data) {
            return id;
        }
        let id = PropId::from_index(self.task.props.len());
        self.task.props.push(data);
        self.task.prop_names.push(self.render_prop(&data));
        self.task.prop_index.insert(data, id);
        id
    }

    fn intern_gvar(&mut self, data: GVarData) -> GVarId {
        if let Some(&id) = self.task.gvar_index.get(&data) {
            return id;
        }
        let id = GVarId::from_index(self.task.gvars.len());
        self.task.gvars.push(data);
        self.task.gvar_names.push(self.render_gvar(&data));
        self.task.gvar_index.insert(data, id);
        id
    }

    fn render_prop(&self, data: &PropData) -> String {
        match data {
            PropData::Placed { comp, node } => format!(
                "placed({},{})",
                self.p.component(*comp).name,
                self.p.network.node(*node).name
            ),
            PropData::Avail { iface, node, level } => format!(
                "avail({},{},L{})",
                self.p.iface(*iface).name,
                self.p.network.node(*node).name,
                level
            ),
        }
    }

    fn render_gvar(&self, data: &GVarData) -> String {
        match data {
            GVarData::IfaceProp { iface, prop, node } => {
                let spec = self.p.iface(*iface);
                format!(
                    "{}({},{})",
                    spec.properties[*prop as usize],
                    spec.name,
                    self.p.network.node(*node).name
                )
            }
            GVarData::NodeRes { res, node } => format!(
                "{}({})",
                self.p.resources[*res as usize].name,
                self.p.network.node(*node).name
            ),
            GVarData::LinkRes { res, link } => {
                let l = self.p.network.link(*link);
                format!(
                    "{}({}-{})",
                    self.p.resources[*res as usize].name,
                    self.p.network.node(l.a).name,
                    self.p.network.node(l.b).name
                )
            }
        }
    }

    fn res_index(&self, name: &str, locus: Locus) -> u16 {
        self.p
            .resources
            .iter()
            .position(|r| r.name == name && r.locus == locus)
            .expect("validated resource") as u16
    }

    /// Level spec of an interface's primary (first) property; trivial when
    /// the interface has no properties.
    fn primary_levels(&self, iface: IfaceId) -> LevelSpec {
        let spec = self.p.iface(iface);
        match spec.properties.first() {
            Some(p) => spec.levels_of(p),
            None => LevelSpec::trivial(),
        }
    }

    fn primary_var(&mut self, iface: IfaceId, node: NodeId) -> Option<GVarId> {
        if self.p.iface(iface).properties.is_empty() {
            None
        } else {
            Some(self.intern_gvar(GVarData::IfaceProp { iface, prop: 0, node }))
        }
    }

    /// `Avail` effect propositions with degradable downward closure.
    fn avail_adds(&mut self, iface: IfaceId, node: NodeId, level: usize) -> Vec<PropId> {
        let degradable = self.p.iface(iface).degradable;
        let lo = if degradable { 0 } else { level };
        (lo..=level)
            .map(|l| self.intern_prop(PropData::Avail { iface, node, level: l as u8 }))
            .collect()
    }

    // ------------------------------------------------------ place grounding

    fn ground_place_actions(&mut self) -> Result<(), CompileError> {
        for ci in 0..self.p.components.len() {
            let comp = CompId::from_index(ci);
            for node in self.p.network.node_ids().collect::<Vec<_>>() {
                if let Placement::Only(names) = &self.p.components[ci].placement {
                    let nname = &self.p.network.node(node).name;
                    if !names.contains(nname) {
                        continue;
                    }
                }
                self.ground_place_at(comp, node)?;
            }
        }
        Ok(())
    }

    fn ground_place_at(&mut self, comp: CompId, node: NodeId) -> Result<(), CompileError> {
        let spec = self.p.component(comp).clone();

        // interface-name → id within this component's scope
        let req: Vec<IfaceId> =
            spec.requires.iter().map(|n| self.p.iface_id(n).expect("validated")).collect();
        let outs: Vec<IfaceId> =
            spec.implements.iter().map(|n| self.p.iface_id(n).expect("validated")).collect();

        // node resources mentioned anywhere in the schema's formulas
        let mut node_res: Vec<u16> = Vec::new();
        let mut collect = |v: &SpecVar| {
            if let SpecVar::Node { res } = v {
                let idx = self.res_index(res, Locus::Node);
                if !node_res.contains(&idx) {
                    node_res.push(idx);
                }
            }
        };
        for c in &spec.conditions {
            c.for_each_var(&mut collect);
        }
        for e in &spec.effects {
            e.for_each_var(&mut collect);
        }
        spec.cost.for_each_var(&mut collect);

        // ground the formulas once per (comp, node)
        let iface_in_scope: HashMap<&str, IfaceId> =
            spec.scope().map(|n| (n, self.p.iface_id(n).expect("validated"))).collect();
        let gv = |ctx: &mut Self, v: &SpecVar| -> GVarId {
            match v {
                SpecVar::Iface { iface, prop } => {
                    let id = iface_in_scope[iface.as_str()];
                    let pidx =
                        ctx.p.iface(id).properties.iter().position(|p| p == prop).unwrap() as u8;
                    ctx.intern_gvar(GVarData::IfaceProp { iface: id, prop: pidx, node })
                }
                SpecVar::Node { res } => {
                    let idx = ctx.res_index(res, Locus::Node);
                    ctx.intern_gvar(GVarData::NodeRes { res: idx, node })
                }
                SpecVar::Link { .. } => unreachable!("validated: no link vars in place formulas"),
            }
        };
        let conditions: Vec<_> =
            spec.conditions.iter().map(|c| c.map_vars(&mut |v| gv(self, v))).collect();
        let effects: Vec<_> =
            spec.effects.iter().map(|e| e.map_vars(&mut |v| gv(self, v))).collect();
        let cost_expr = spec.cost.map_vars(&mut |v| gv(self, v));

        let in_vars: Vec<Option<GVarId>> = req.iter().map(|&r| self.primary_var(r, node)).collect();
        let in_specs: Vec<LevelSpec> = req.iter().map(|&r| self.primary_levels(r)).collect();
        let res_vars: Vec<GVarId> = node_res
            .iter()
            .map(|&r| self.intern_gvar(GVarData::NodeRes { res: r, node }))
            .collect();
        let res_specs: Vec<LevelSpec> =
            node_res.iter().map(|&r| self.p.resources[r as usize].levels.clone()).collect();
        let res_caps: Vec<f64> = node_res
            .iter()
            .map(|&r| self.p.network.node_capacity(node, &self.p.resources[r as usize].name))
            .collect();
        let res_static: Vec<bool> =
            node_res.iter().map(|&r| !self.p.resources[r as usize].consumable).collect();
        let out_vars: Vec<Option<GVarId>> =
            outs.iter().map(|&o| self.primary_var(o, node)).collect();
        let out_specs: Vec<LevelSpec> = outs.iter().map(|&o| self.primary_levels(o)).collect();

        let dims: Vec<usize> = in_specs
            .iter()
            .map(LevelSpec::num_levels)
            .chain(res_specs.iter().map(LevelSpec::num_levels))
            .collect();
        let count = combo_count(&dims);
        if count > MAX_COMBOS {
            return Err(CompileError::TooManyCombinations {
                schema: format!("place({},{})", spec.name, self.p.network.node(node).name),
                count,
            });
        }

        let comp_name = spec.name.clone();
        let node_name = self.p.network.node(node).name.clone();
        let mut emitted: Vec<GroundAction> = Vec::new();

        for_each_combo(&dims, |combo| {
            let (in_levels, res_levels) = combo.split_at(in_specs.len());

            // optimistic map for this level assignment
            let mut map: HashMap<GVarId, Interval> = HashMap::new();
            let mut optimistic: Vec<(GVarId, Interval)> = Vec::new();
            let mut levels: Vec<(GVarId, u8)> = Vec::new();
            for (k, &l) in in_levels.iter().enumerate() {
                if let Some(v) = in_vars[k] {
                    let iv = in_specs[k].requirement(l);
                    map.insert(v, iv);
                    optimistic.push((v, iv));
                    levels.push((v, l as u8));
                }
            }
            let mut feasible = true;
            for (k, &l) in res_levels.iter().enumerate() {
                // a consumable resource may have been drained to any
                // value below its capacity; a static property has exactly
                // its declared value
                let avail = if res_static[k] {
                    Interval::point(res_caps[k])
                } else {
                    Interval::new(0.0, res_caps[k])
                };
                let iv = res_specs[k].requirement(l).intersect(&avail);
                if iv.is_empty() {
                    feasible = false;
                    break;
                }
                map.insert(res_vars[k], iv);
                optimistic.push((res_vars[k], iv));
                if !res_specs[k].is_trivial() {
                    levels.push((res_vars[k], l as u8));
                }
            }
            if !feasible {
                self.pruned += 1;
                return;
            }

            let mut env = |v: &GVarId| map.get(v).copied().unwrap_or_else(Interval::nonneg);
            if !conditions.iter().all(|c| c.possibly(&mut env)) {
                self.pruned += 1;
                return;
            }

            // evaluate effects against the pre-state
            let mut produced: HashMap<GVarId, Interval> = HashMap::new();
            for eff in &effects {
                let val = {
                    let mut env = |v: &GVarId| map.get(v).copied().unwrap_or_else(Interval::nonneg);
                    eff.value.eval_interval(&mut env)
                };
                match eff.op {
                    AssignOp::Set => {
                        produced.insert(eff.target, val);
                    }
                    AssignOp::Sub => {
                        let pre = map.get(&eff.target).copied().unwrap_or_else(Interval::nonneg);
                        let post = pre.sub(&val).clamp_nonneg();
                        if post.is_empty() {
                            feasible = false;
                            break;
                        }
                    }
                    AssignOp::Add => {}
                }
            }
            if !feasible {
                self.pruned += 1;
                return;
            }

            // enumerate output levels from the computed ranges
            let mut out_options: Vec<Vec<usize>> = Vec::with_capacity(outs.len());
            for (k, ov) in out_vars.iter().enumerate() {
                match ov {
                    Some(v) => {
                        let computed = produced.get(v).copied().unwrap_or_else(Interval::nonneg);
                        let opts = out_specs[k].intersecting_half_open(&computed);
                        if opts.is_empty() {
                            feasible = false;
                            break;
                        }
                        out_options.push(opts);
                    }
                    None => out_options.push(vec![0]),
                }
            }
            if !feasible {
                self.pruned += 1;
                return;
            }

            let out_dims: Vec<usize> = out_options.iter().map(Vec::len).collect();
            for_each_combo(&out_dims, |out_combo| {
                let out_levels: Vec<usize> =
                    out_combo.iter().enumerate().map(|(k, &i)| out_options[k][i]).collect();

                // full map including produced outputs, for the cost bound
                let mut full = map.clone();
                let mut post: Vec<(GVarId, Interval)> = Vec::new();
                for (k, ov) in out_vars.iter().enumerate() {
                    if let Some(v) = ov {
                        let claimed = out_specs[k].requirement(out_levels[k]);
                        let computed = produced.get(v).copied().unwrap_or_else(Interval::nonneg);
                        full.insert(*v, computed.intersect(&claimed));
                        post.push((*v, claimed));
                    }
                }
                let cost = {
                    let mut env =
                        |v: &GVarId| full.get(v).copied().unwrap_or_else(Interval::nonneg);
                    cost_expr.eval_interval(&mut env).lo.max(0.0)
                };

                let mut lv = levels.clone();
                for (k, ov) in out_vars.iter().enumerate() {
                    if let Some(v) = ov {
                        lv.push((*v, out_levels[k] as u8));
                    }
                }

                let lv_str: Vec<String> = in_levels
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| !in_specs[*k].is_trivial())
                    .map(|(k, &l)| format!("{}={}", self.p.iface(req[k]).name, l))
                    .chain(
                        out_levels
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| !out_specs[*k].is_trivial())
                            .map(|(k, &l)| format!("→{}={}", self.p.iface(outs[k]).name, l)),
                    )
                    .collect();
                let name = if lv_str.is_empty() {
                    format!("place({comp_name},{node_name})")
                } else {
                    format!("place({comp_name},{node_name})[{}]", lv_str.join(","))
                };

                emitted.push(GroundAction {
                    name,
                    kind: ActionKind::Place { comp, node },
                    preconds: Vec::new(), // filled below (needs &mut self)
                    adds: Vec::new(),
                    conditions: conditions.clone(),
                    effects: effects.clone(),
                    optimistic: optimistic.clone(),
                    post,
                    levels: lv,
                    cost,
                });
                // stash the level choices for pre/add construction
                let idx = emitted.len() - 1;
                emitted[idx].preconds =
                    in_levels.to_vec().iter().map(|&l| PropId(l as u32)).collect();
                emitted[idx].adds = out_levels.iter().map(|&l| PropId(l as u32)).collect();
            });
        });

        // second pass: translate the stashed level choices into real props
        for mut act in emitted {
            let in_levels: Vec<usize> = act.preconds.iter().map(|p| p.0 as usize).collect();
            let out_levels: Vec<usize> = act.adds.iter().map(|p| p.0 as usize).collect();
            let mut preconds: Vec<PropId> = req
                .iter()
                .zip(&in_levels)
                .map(|(&r, &l)| {
                    self.intern_prop(PropData::Avail { iface: r, node, level: l as u8 })
                })
                .collect();
            preconds.sort_unstable();
            preconds.dedup();
            let mut adds = vec![self.intern_prop(PropData::Placed { comp, node })];
            for (&o, &l) in outs.iter().zip(&out_levels) {
                adds.extend(self.avail_adds(o, node, l));
            }
            adds.sort_unstable();
            adds.dedup();
            act.preconds = preconds;
            act.adds = adds;
            self.task.actions.push(act);
        }
        Ok(())
    }

    // ------------------------------------------------------ cross grounding

    fn ground_cross_actions(&mut self) -> Result<(), CompileError> {
        for ii in 0..self.p.interfaces.len() {
            let iface = IfaceId::from_index(ii);
            for dir in self.p.network.directed_links().collect::<Vec<_>>() {
                self.ground_cross_at(iface, dir)?;
            }
        }
        Ok(())
    }

    fn ground_cross_at(&mut self, iface: IfaceId, dir: DirLink) -> Result<(), CompileError> {
        let spec = self.p.iface(iface).clone();

        // link resources mentioned in cross formulas
        let mut link_res: Vec<u16> = Vec::new();
        let mut collect = |v: &SpecVar| {
            if let SpecVar::Link { res } = v {
                let idx = self.res_index(res, Locus::Link);
                if !link_res.contains(&idx) {
                    link_res.push(idx);
                }
            }
        };
        for c in &spec.cross_conditions {
            c.for_each_var(&mut collect);
        }
        for e in &spec.cross_effects {
            e.for_each_var(&mut collect);
        }
        spec.cross_cost.for_each_var(&mut collect);

        // readers reference the `from` side; effect targets on the
        // interface reference the `to` side (the stream after crossing)
        let gv = |ctx: &mut Self, v: &SpecVar, write: bool| -> GVarId {
            match v {
                SpecVar::Iface { prop, .. } => {
                    let pidx =
                        ctx.p.iface(iface).properties.iter().position(|p| p == prop).unwrap() as u8;
                    let node = if write { dir.to } else { dir.from };
                    ctx.intern_gvar(GVarData::IfaceProp { iface, prop: pidx, node })
                }
                SpecVar::Link { res } => {
                    let idx = ctx.res_index(res, Locus::Link);
                    ctx.intern_gvar(GVarData::LinkRes { res: idx, link: dir.link })
                }
                SpecVar::Node { .. } => unreachable!("validated: no node vars in cross formulas"),
            }
        };
        let conditions: Vec<_> =
            spec.cross_conditions.iter().map(|c| c.map_vars(&mut |v| gv(self, v, false))).collect();
        let effects: Vec<_> = spec
            .cross_effects
            .iter()
            .map(|e| {
                let value = e.value.map_vars(&mut |v| gv(self, v, false));
                // link-resource targets are consumed in place; interface
                // targets materialize on the destination node
                let target = gv(self, &e.target, matches!(e.target, SpecVar::Iface { .. }));
                sekitei_model::Effect { target, op: e.op, value }
            })
            .collect();
        let cost_expr = spec.cross_cost.map_vars(&mut |v| gv(self, v, false));

        let in_var = self.primary_var(iface, dir.from);
        let out_var = self.primary_var(iface, dir.to);
        let level_spec = self.primary_levels(iface);
        let res_vars: Vec<GVarId> = link_res
            .iter()
            .map(|&r| self.intern_gvar(GVarData::LinkRes { res: r, link: dir.link }))
            .collect();
        let res_specs: Vec<LevelSpec> =
            link_res.iter().map(|&r| self.p.resources[r as usize].levels.clone()).collect();
        let res_caps: Vec<f64> = link_res
            .iter()
            .map(|&r| self.p.network.link_capacity(dir.link, &self.p.resources[r as usize].name))
            .collect();
        let res_static: Vec<bool> =
            link_res.iter().map(|&r| !self.p.resources[r as usize].consumable).collect();

        let dims: Vec<usize> = std::iter::once(level_spec.num_levels())
            .chain(res_specs.iter().map(LevelSpec::num_levels))
            .collect();
        let count = combo_count(&dims);
        if count > MAX_COMBOS {
            return Err(CompileError::TooManyCombinations {
                schema: format!("cross({},{dir})", spec.name),
                count,
            });
        }

        let iface_name = spec.name.clone();
        let from_name = self.p.network.node(dir.from).name.clone();
        let to_name = self.p.network.node(dir.to).name.clone();
        struct Pending {
            l_in: usize,
            l_out: usize,
            link_levels: Vec<usize>,
            optimistic: Vec<(GVarId, Interval)>,
            post: Vec<(GVarId, Interval)>,
            levels: Vec<(GVarId, u8)>,
            cost: f64,
        }
        let mut emitted: Vec<Pending> = Vec::new();

        for_each_combo(&dims, |combo| {
            let l_in = combo[0];
            let link_levels = &combo[1..];

            let mut map: HashMap<GVarId, Interval> = HashMap::new();
            let mut optimistic: Vec<(GVarId, Interval)> = Vec::new();
            let mut levels: Vec<(GVarId, u8)> = Vec::new();
            let iv_in = level_spec.requirement(l_in);
            if let Some(v) = in_var {
                map.insert(v, iv_in);
                optimistic.push((v, iv_in));
                if !level_spec.is_trivial() {
                    levels.push((v, l_in as u8));
                }
            }
            let mut feasible = true;
            for (k, &l) in link_levels.iter().enumerate() {
                // a consumable resource may have been drained to any
                // value below its capacity; a static property has exactly
                // its declared value
                let avail = if res_static[k] {
                    Interval::point(res_caps[k])
                } else {
                    Interval::new(0.0, res_caps[k])
                };
                let iv = res_specs[k].requirement(l).intersect(&avail);
                if iv.is_empty() {
                    feasible = false;
                    break;
                }
                map.insert(res_vars[k], iv);
                optimistic.push((res_vars[k], iv));
                if !res_specs[k].is_trivial() {
                    levels.push((res_vars[k], l as u8));
                }
            }
            if !feasible {
                self.pruned += 1;
                return;
            }

            {
                let mut env = |v: &GVarId| map.get(v).copied().unwrap_or_else(Interval::nonneg);
                if !conditions.iter().all(|c| c.possibly(&mut env)) {
                    self.pruned += 1;
                    return;
                }
            }

            // computed delivery range of the primary property
            let mut delivered = Interval::nonneg();
            for eff in &effects {
                let val = {
                    let mut env = |v: &GVarId| map.get(v).copied().unwrap_or_else(Interval::nonneg);
                    eff.value.eval_interval(&mut env)
                };
                match eff.op {
                    AssignOp::Set => {
                        if Some(eff.target) == out_var {
                            delivered = val;
                        }
                    }
                    AssignOp::Sub => {
                        let pre = map.get(&eff.target).copied().unwrap_or_else(Interval::nonneg);
                        if pre.sub(&val).clamp_nonneg().is_empty() {
                            feasible = false;
                            break;
                        }
                    }
                    AssignOp::Add => {}
                }
            }
            if !feasible {
                self.pruned += 1;
                return;
            }

            let cost = {
                let mut env = |v: &GVarId| map.get(v).copied().unwrap_or_else(Interval::nonneg);
                cost_expr.eval_interval(&mut env).lo.max(0.0)
            };

            let out_opts = if out_var.is_some() {
                level_spec.intersecting_half_open(&delivered)
            } else {
                vec![0]
            };
            if out_opts.is_empty() {
                self.pruned += 1;
                return;
            }
            for l_out in out_opts {
                let mut post = Vec::new();
                let mut lv = levels.clone();
                if let Some(v) = out_var {
                    post.push((v, level_spec.requirement(l_out)));
                    if !level_spec.is_trivial() {
                        lv.push((v, l_out as u8));
                    }
                }
                emitted.push(Pending {
                    l_in,
                    l_out,
                    link_levels: link_levels.to_vec(),
                    optimistic: optimistic.clone(),
                    post,
                    levels: lv,
                    cost,
                });
            }
        });

        for pend in emitted {
            let pre =
                self.intern_prop(PropData::Avail { iface, node: dir.from, level: pend.l_in as u8 });
            let mut adds = self.avail_adds(iface, dir.to, pend.l_out);
            adds.sort_unstable();
            adds.dedup();
            let mut lv_str = Vec::new();
            if !level_spec.is_trivial() {
                lv_str.push(format!("in={},out={}", pend.l_in, pend.l_out));
            }
            for (k, &l) in pend.link_levels.iter().enumerate() {
                if !res_specs[k].is_trivial() {
                    lv_str.push(format!("{}={l}", self.p.resources[link_res[k] as usize].name));
                }
            }
            let name = if lv_str.is_empty() {
                format!("cross({iface_name},{from_name}→{to_name})")
            } else {
                format!("cross({iface_name},{from_name}→{to_name})[{}]", lv_str.join(","))
            };
            self.task.actions.push(GroundAction {
                name,
                kind: ActionKind::Cross { iface, dir },
                preconds: vec![pre],
                adds,
                conditions: conditions.clone(),
                effects: effects.clone(),
                optimistic: pend.optimistic,
                post: pend.post,
                levels: pend.levels,
                cost: pend.cost,
            });
        }
        Ok(())
    }

    // --------------------------------------------------------- init & goals

    fn build_initial_state(&mut self) {
        // stream sources: every level their producible range reaches
        for s in self.p.sources.clone() {
            let iface = self.p.iface_id(&s.iface).expect("validated");
            let spec = self.primary_levels(iface);
            if let Some(primary) = self.p.iface(iface).properties.first().cloned() {
                let range = s.properties.get(&primary).copied().unwrap_or_else(Interval::nonneg);
                for l in spec.intersecting(&range) {
                    let p =
                        self.intern_prop(PropData::Avail { iface, node: s.node, level: l as u8 });
                    self.task.init_props.push(p);
                }
                // initial values for every declared source property (the
                // primary gets its producible range; further properties —
                // e.g. accumulated latency — default to a point 0)
                let props: Vec<String> = self.p.iface(iface).properties.clone();
                for (pi, pname) in props.iter().enumerate() {
                    let v = self.intern_gvar(GVarData::IfaceProp {
                        iface,
                        prop: pi as u8,
                        node: s.node,
                    });
                    let value = s.properties.get(pname).copied().unwrap_or_else(|| {
                        if pi == 0 {
                            Interval::nonneg()
                        } else {
                            Interval::point(0.0)
                        }
                    });
                    while self.task.init_values.len() < self.task.gvars.len() {
                        self.task.init_values.push(None);
                    }
                    self.task.init_values[v.index()] = Some(value);
                }
            } else {
                let p = self.intern_prop(PropData::Avail { iface, node: s.node, level: 0 });
                self.task.init_props.push(p);
            }
        }
        for pp in self.p.pre_placed.clone() {
            let comp = self.p.comp_id(&pp.component).expect("validated");
            let p = self.intern_prop(PropData::Placed { comp, node: pp.node });
            self.task.init_props.push(p);
        }
        self.task.init_props.sort_unstable();
        self.task.init_props.dedup();
    }

    fn build_goals(&mut self) {
        for g in self.p.goals.clone() {
            let comp = self.p.comp_id(&g.component).expect("validated");
            let p = self.intern_prop(PropData::Placed { comp, node: g.node });
            self.task.goal_props.push(p);
        }
        self.task.goal_props.sort_unstable();
        self.task.goal_props.dedup();
    }

    fn finalize(&mut self, start: Instant) {
        let np = self.task.props.len();
        self.task.init_mask = vec![false; np];
        for &p in &self.task.init_props {
            self.task.init_mask[p.index()] = true;
        }
        // initial numeric state: capacities for every interned resource var
        self.task.init_values.resize(self.task.gvars.len(), None);
        for (i, gv) in self.task.gvars.iter().enumerate() {
            match gv {
                GVarData::NodeRes { res, node } => {
                    let cap =
                        self.p.network.node_capacity(*node, &self.p.resources[*res as usize].name);
                    self.task.init_values[i] = Some(Interval::point(cap));
                }
                GVarData::LinkRes { res, link } => {
                    let cap =
                        self.p.network.link_capacity(*link, &self.p.resources[*res as usize].name);
                    self.task.init_values[i] = Some(Interval::point(cap));
                }
                GVarData::IfaceProp { .. } => {} // sources already set
            }
        }
        // achievers index (flat CSR)
        self.task.achievers = crate::task::AchieverIndex::build(np, &self.task.actions);
        self.task.stats = crate::task::CompileStats {
            actions: self.task.actions.len(),
            pruned: self.pruned,
            props: np,
            gvars: self.task.gvars.len(),
            compile_time: start.elapsed(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::{ActionId, LevelScenario};
    use sekitei_topology::scenarios;

    #[test]
    fn compile_tiny_scenario_a() {
        let p = scenarios::tiny(LevelScenario::A);
        let t = compile(&p).unwrap();
        assert!(t.num_actions() > 0);
        assert!(!t.goal_props.is_empty());
        assert!(!t.init_props.is_empty());
        // without levels there is exactly one place action per (comp, node)
        let places =
            t.actions.iter().filter(|a| matches!(a.kind, ActionKind::Place { .. })).count();
        assert_eq!(places, 5 * 2); // 5 components × 2 nodes
    }

    #[test]
    fn leveling_multiplies_actions() {
        let a = compile(&scenarios::tiny(LevelScenario::A)).unwrap().num_actions();
        let b = compile(&scenarios::tiny(LevelScenario::B)).unwrap().num_actions();
        let d = compile(&scenarios::tiny(LevelScenario::D)).unwrap().num_actions();
        let e = compile(&scenarios::tiny(LevelScenario::E)).unwrap().num_actions();
        assert!(a < b && b < d && d < e, "{a} < {b} < {d} < {e} expected");
    }

    #[test]
    fn high_m_cross_pruned_on_weak_link() {
        // paper §3.2.1: crossing the 70-unit link with M at levels above
        // [30,70) is pruned — the delivered range cannot reach level 2+.
        let p = scenarios::tiny(LevelScenario::D);
        let t = compile(&p).unwrap();
        let m = p.iface_id("M").unwrap();
        for a in &t.actions {
            if let ActionKind::Cross { iface, .. } = a.kind {
                if iface == m {
                    for &(_, iv) in &a.post {
                        assert!(iv.lo < 90.0, "M cross claiming ≥90 must be pruned: {}", a.name);
                    }
                }
            }
        }
    }

    #[test]
    fn merger_ratio_prunes_mismatched_levels() {
        let p = scenarios::tiny(LevelScenario::D);
        let t = compile(&p).unwrap();
        let merger = p.comp_id("Merger").unwrap();
        let ti = p.iface_id("T").unwrap();
        let ii = p.iface_id("I").unwrap();
        let t_spec = p.iface(ti).levels_of("ibw");
        let i_spec = p.iface(ii).levels_of("ibw");
        for a in &t.actions {
            if let ActionKind::Place { comp, .. } = a.kind {
                if comp == merger {
                    // the surviving (T, I) level pair must have ratio-
                    // compatible intervals: 3·T ∩ 7·I ≠ ∅
                    let mut t_iv = None;
                    let mut i_iv = None;
                    for &(v, iv) in &a.optimistic {
                        match t.gvars[v.index()] {
                            GVarData::IfaceProp { iface, .. } if iface == ti => t_iv = Some(iv),
                            GVarData::IfaceProp { iface, .. } if iface == ii => i_iv = Some(iv),
                            _ => {}
                        }
                    }
                    let (t_iv, i_iv) = (t_iv.unwrap(), i_iv.unwrap());
                    let lhs = t_iv.mul(&Interval::point(3.0));
                    let rhs = i_iv.mul(&Interval::point(7.0));
                    assert!(lhs.intersects(&rhs), "{}", a.name);
                }
            }
        }
        let _ = (t_spec, i_spec);
    }

    #[test]
    fn initial_state_has_source_levels() {
        let p = scenarios::tiny(LevelScenario::D);
        let t = compile(&p).unwrap();
        let m = p.iface_id("M").unwrap();
        let src = p.sources[0].node;
        // 200 units reach all five levels
        for l in 0..5u8 {
            let pid = t.prop_id(&PropData::Avail { iface: m, node: src, level: l });
            assert!(pid.is_some_and(|pid| t.initially(pid)), "level {l} missing");
        }
        // and the source var carries [0, 200]
        let v = t.gvar_id(&GVarData::IfaceProp { iface: m, prop: 0, node: src }).unwrap();
        assert_eq!(t.init_values[v.index()], Some(Interval::new(0.0, 200.0)));
    }

    #[test]
    fn goal_is_client_placement() {
        let p = scenarios::tiny(LevelScenario::C);
        let t = compile(&p).unwrap();
        assert_eq!(t.goal_props.len(), 1);
        let g = t.prop(t.goal_props[0]);
        let cl = p.comp_id("Client").unwrap();
        assert_eq!(g, PropData::Placed { comp: cl, node: p.goals[0].node });
        assert!(!t.initially(t.goal_props[0]));
    }

    #[test]
    fn costs_are_lower_bounds_at_level_lo() {
        // Merger at T=[63,70),I=[27,30) costs 1 + 90/10 = 10 (paper §3.1)
        let p = scenarios::tiny(LevelScenario::C);
        let t = compile(&p).unwrap();
        let merger = p.comp_id("Merger").unwrap();
        let found = t.actions.iter().any(|a| {
            matches!(a.kind, ActionKind::Place { comp, .. } if comp == merger)
                && a.post.iter().any(|(_, iv)| iv.lo == 90.0)
                && (a.cost - 10.0).abs() < 1e-9
        });
        assert!(found, "expected a Merger action with cost 10");
    }

    #[test]
    fn achievers_cover_all_adds() {
        let p = scenarios::tiny(LevelScenario::C);
        let t = compile(&p).unwrap();
        for (i, a) in t.actions.iter().enumerate() {
            for &pr in &a.adds {
                assert!(t.achievers(pr).contains(&ActionId::from_index(i)));
            }
        }
    }

    #[test]
    fn degradable_closure_in_adds() {
        let p = scenarios::tiny(LevelScenario::D);
        let t = compile(&p).unwrap();
        let m = p.iface_id("M").unwrap();
        // a Merger producing M at level 3 also adds levels 0..=2
        let act = t
            .actions
            .iter()
            .find(|a| {
                matches!(a.kind, ActionKind::Place { comp, .. }
                    if p.component(comp).name == "Merger")
                    && a.post.iter().any(|(_, iv)| iv.lo == 90.0 && (iv.hi - 100.0).abs() < 1e-3)
            })
            .expect("level-3 merger");
        let mut avail_levels: Vec<u8> = act
            .adds
            .iter()
            .filter_map(|&pr| match t.prop(pr) {
                PropData::Avail { iface, level, .. } if iface == m => Some(level),
                _ => None,
            })
            .collect();
        avail_levels.sort_unstable();
        assert_eq!(avail_levels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn compile_rejects_invalid_problem() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.goals.clear();
        assert!(matches!(compile(&p), Err(CompileError::Model(_))));
    }

    #[test]
    fn combo_helper() {
        let mut seen = Vec::new();
        for_each_combo(&[2, 3], |c| seen.push((c[0], c[1])));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], (0, 0));
        assert_eq!(seen[5], (1, 2));
        let mut none = 0;
        for_each_combo(&[2, 0], |_| none += 1);
        assert_eq!(none, 0);
        let mut empty = 0;
        for_each_combo(&[], |_| empty += 1);
        assert_eq!(empty, 1); // one empty combination
        assert_eq!(combo_count(&[2, 3]), 6);
    }
}
