//! # sekitei-compile
//!
//! Compilation of CPP specifications into leveled AI-planning tasks:
//! grounding of `place`/`cross` action schemas over the network, level
//! enumeration with static pruning (paper §3.1), optimistic resource maps,
//! and lower-bound action costs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ground;
pub mod symmetry;
pub mod task;

pub use ground::{compile, CompileError};
pub use symmetry::{node_orbits, signature_classes, NodeOrbits};
pub use task::{
    AchieverIndex, ActionKind, CompileStats, GVarData, GroundAction, PlanningTask, PropData,
};
