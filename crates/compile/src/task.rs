//! Compiled planning task: ground propositions, ground numeric variables,
//! and leveled ground actions with optimistic resource maps.
//!
//! The compilation (see [`crate::ground`]) turns a validated
//! [`CppProblem`](sekitei_model::CppProblem) into the AI-style planning
//! problem of paper §2.2/§3.1: `place(component, node)` and
//! `cross(interface, link)` actions, each instantiated once per feasible
//! combination of resource levels, carrying
//!
//! * propositional preconditions/effects (used by the logical phases),
//! * numeric conditions/effects over ground variables (used by replay),
//! * an *optimistic resource map* — the level intervals the action assumes,
//! * a lower-bound cost evaluated at those intervals.

use sekitei_model::{
    ActionId, CompId, Cond, DirLink, Effect, GVarId, IfaceId, Interval, LevelIdx, LinkId, NodeId,
    PropId,
};
use std::collections::HashMap;
use std::fmt;

/// A ground proposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropData {
    /// Component `comp` is deployed on `node`.
    Placed {
        /// Component.
        comp: CompId,
        /// Host node.
        node: NodeId,
    },
    /// Interface `iface` is available on `node` with its (single leveled)
    /// property in level `level`. Degradable interfaces add downward
    /// closure at the *effect* side, so preconditions match exactly.
    Avail {
        /// Interface.
        iface: IfaceId,
        /// Node where the stream is available.
        node: NodeId,
        /// Property level (for multi-property interfaces, levels of the
        /// lexicographically first leveled property; further properties are
        /// handled numerically).
        level: LevelIdx,
    },
}

/// A ground numeric variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GVarData {
    /// Property `prop` (index into the interface's property list) of
    /// `iface` as materialized on `node`.
    IfaceProp {
        /// Interface.
        iface: IfaceId,
        /// Property index within the interface spec.
        prop: u8,
        /// Node.
        node: NodeId,
    },
    /// Node resource (index into the problem's resource catalog).
    NodeRes {
        /// Catalog index.
        res: u16,
        /// Node.
        node: NodeId,
    },
    /// Link resource.
    LinkRes {
        /// Catalog index.
        res: u16,
        /// Link.
        link: LinkId,
    },
}

/// What a ground action does, semantically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// Deploy `comp` on `node`.
    Place {
        /// Component.
        comp: CompId,
        /// Host node.
        node: NodeId,
    },
    /// Send stream `iface` across a directed link.
    Cross {
        /// Interface.
        iface: IfaceId,
        /// Directed link traversal.
        dir: DirLink,
    },
}

/// A fully ground, leveled action.
#[derive(Debug, Clone)]
pub struct GroundAction {
    /// Human-readable rendering, e.g. `place(Splitter,n0)[M=1]`.
    pub name: String,
    /// Semantic kind.
    pub kind: ActionKind,
    /// Propositional preconditions (sorted, deduplicated).
    pub preconds: Vec<PropId>,
    /// Propositional add effects (sorted; includes degradable closure).
    pub adds: Vec<PropId>,
    /// Numeric preconditions, over ground variables.
    pub conditions: Vec<Cond<GVarId>>,
    /// Numeric effects (all value expressions read the pre-state).
    pub effects: Vec<Effect<GVarId>>,
    /// Optimistic resource map: interval assumed for each variable the
    /// action *reads or consumes*, from its level assignment (paper §3.1).
    pub optimistic: Vec<(GVarId, Interval)>,
    /// Post-effect constraints: produced variables must land in these
    /// intervals (the action's declared output levels).
    pub post: Vec<(GVarId, Interval)>,
    /// Level assignment, for display/statistics.
    pub levels: Vec<(GVarId, LevelIdx)>,
    /// Lower bound of the user cost formula over the optimistic map.
    pub cost: f64,
}

/// Compilation statistics (feeds Table 2 column 5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Ground actions emitted after leveling and pruning.
    pub actions: usize,
    /// Level combinations discarded by the static pruning procedure.
    pub pruned: usize,
    /// Ground propositions created.
    pub props: usize,
    /// Ground numeric variables created.
    pub gvars: usize,
    /// Compilation wall time.
    pub compile_time: std::time::Duration,
}

/// Flattened (CSR) achiever index: one contiguous array of action ids plus
/// per-proposition offsets. Search loops iterate borrowed `&[ActionId]`
/// slices straight out of the arena — no per-proposition `Vec` headers, no
/// pointer chasing, cache-friendly sequential reads.
#[derive(Debug, Clone, Default)]
pub struct AchieverIndex {
    /// All achiever lists back to back, grouped by proposition, each group
    /// in ascending action order.
    flat: Vec<ActionId>,
    /// `offsets[p]..offsets[p+1]` bounds proposition `p`'s group.
    offsets: Vec<u32>,
}

impl AchieverIndex {
    /// Build the index by counting-sort over every action's add list.
    pub fn build(num_props: usize, actions: &[GroundAction]) -> Self {
        let mut offsets = vec![0u32; num_props + 1];
        for a in actions {
            for &p in &a.adds {
                offsets[p.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut flat = vec![ActionId::from_index(0); offsets[num_props] as usize];
        let mut cursor: Vec<u32> = offsets[..num_props].to_vec();
        for (i, a) in actions.iter().enumerate() {
            for &p in &a.adds {
                flat[cursor[p.index()] as usize] = ActionId::from_index(i);
                cursor[p.index()] += 1;
            }
        }
        AchieverIndex { flat, offsets }
    }

    /// Actions adding proposition `p`, in ascending action order.
    pub fn of(&self, p: PropId) -> &[ActionId] {
        &self.flat[self.offsets[p.index()] as usize..self.offsets[p.index() + 1] as usize]
    }

    /// Number of indexed propositions.
    pub fn num_props(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total achiever entries across all propositions.
    pub fn num_entries(&self) -> usize {
        self.flat.len()
    }
}

/// The compiled planning task.
#[derive(Debug, Clone, Default)]
pub struct PlanningTask {
    /// Ground propositions (index = `PropId`).
    pub props: Vec<PropData>,
    /// Human-readable proposition names (parallel to `props`).
    pub prop_names: Vec<String>,
    /// Ground actions (index = `ActionId`).
    pub actions: Vec<GroundAction>,
    /// Ground numeric variables (index = `GVarId`).
    pub gvars: Vec<GVarData>,
    /// Human-readable variable names (parallel to `gvars`).
    pub gvar_names: Vec<String>,
    /// Initially true propositions (sorted).
    pub init_props: Vec<PropId>,
    /// Initial membership bitmap (index = `PropId`).
    pub init_mask: Vec<bool>,
    /// Initial numeric state: `Some(interval)` for variables with a defined
    /// initial value (resource capacities as points, source stream
    /// properties as their producible ranges), `None` otherwise.
    pub init_values: Vec<Option<Interval>>,
    /// Goal propositions (sorted).
    pub goal_props: Vec<PropId>,
    /// Achievers of every proposition, in one flat CSR arena.
    pub achievers: AchieverIndex,
    /// Network-node equivalence classes under verified task automorphisms
    /// (see [`crate::symmetry`]); the search uses them to expand one
    /// placement representative per orbit. Derived data — excluded from
    /// [`PlanningTask::fingerprint`].
    pub orbits: crate::symmetry::NodeOrbits,
    /// Unverified signature-level node classes (see
    /// [`crate::symmetry::signature_classes`]); the search's lossy drain
    /// mode coarsens its symmetry rule to these. Derived data — excluded
    /// from [`PlanningTask::fingerprint`].
    pub sig_classes: crate::symmetry::NodeOrbits,
    /// Compilation statistics.
    pub stats: CompileStats,
    pub(crate) prop_index: HashMap<PropData, PropId>,
    pub(crate) gvar_index: HashMap<GVarData, GVarId>,
}

impl PlanningTask {
    /// Number of ground actions.
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// A structural content fingerprint (FNV-1a over the ground names,
    /// initial state and goals). Compilation is deterministic, so equal
    /// problems compile to equal fingerprints — a cheap identity for
    /// task caches and cross-process sanity checks that doesn't require
    /// hashing the whole struct.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0xff; // separator so field boundaries can't alias
            h = h.wrapping_mul(0x100000001b3);
        };
        for n in &self.prop_names {
            eat(n.as_bytes());
        }
        for a in &self.actions {
            eat(a.name.as_bytes());
            eat(&a.cost.to_bits().to_le_bytes());
        }
        for n in &self.gvar_names {
            eat(n.as_bytes());
        }
        for p in &self.init_props {
            eat(&(p.index() as u64).to_le_bytes());
        }
        for v in &self.init_values {
            match v {
                None => eat(&[0]),
                Some(iv) => {
                    eat(&iv.lo.to_bits().to_le_bytes());
                    eat(&iv.hi.to_bits().to_le_bytes());
                }
            }
        }
        for p in &self.goal_props {
            eat(&(p.index() as u64).to_le_bytes());
        }
        h
    }

    /// Number of ground propositions.
    pub fn num_props(&self) -> usize {
        self.props.len()
    }

    /// Action by id.
    pub fn action(&self, a: ActionId) -> &GroundAction {
        &self.actions[a.index()]
    }

    /// Proposition data by id.
    pub fn prop(&self, p: PropId) -> PropData {
        self.props[p.index()]
    }

    /// Proposition id lookup.
    pub fn prop_id(&self, data: &PropData) -> Option<PropId> {
        self.prop_index.get(data).copied()
    }

    /// Ground variable id lookup.
    pub fn gvar_id(&self, data: &GVarData) -> Option<GVarId> {
        self.gvar_index.get(data).copied()
    }

    /// True iff `p` holds initially.
    pub fn initially(&self, p: PropId) -> bool {
        self.init_mask[p.index()]
    }

    /// Actions adding proposition `p` (borrowed straight from the CSR
    /// arena, ascending action order).
    pub fn achievers(&self, p: PropId) -> &[ActionId] {
        self.achievers.of(p)
    }

    /// Render a proposition for diagnostics.
    pub fn prop_name(&self, p: PropId) -> &str {
        &self.prop_names[p.index()]
    }

    /// Render a ground variable for diagnostics.
    pub fn gvar_name(&self, v: GVarId) -> &str {
        &self.gvar_names[v.index()]
    }

    /// Iterate all action ids.
    pub fn action_ids(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.actions.len()).map(ActionId::from_index)
    }
}

impl fmt::Display for GroundAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_data_hash_and_eq() {
        let a = PropData::Avail { iface: IfaceId(0), node: NodeId(3), level: 2 };
        let b = PropData::Avail { iface: IfaceId(0), node: NodeId(3), level: 2 };
        let c = PropData::Avail { iface: IfaceId(0), node: NodeId(3), level: 1 };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut m = HashMap::new();
        m.insert(a, PropId(0));
        assert_eq!(m.get(&b), Some(&PropId(0)));
    }

    #[test]
    fn task_defaults_empty() {
        let t = PlanningTask::default();
        assert_eq!(t.num_actions(), 0);
        assert_eq!(t.num_props(), 0);
        assert!(t.prop_id(&PropData::Placed { comp: CompId(0), node: NodeId(0) }).is_none());
    }
}
