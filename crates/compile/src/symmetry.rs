//! Compile-time network-node symmetry detection.
//!
//! Transit-stub WANs are full of interchangeable machines: stub nodes with
//! the same capacities, the same link signature and the same placement
//! possibilities generate search branches that differ only by a renaming
//! of nodes. This module partitions the network nodes of a compiled
//! [`PlanningTask`] into *orbits* — equivalence classes under verified
//! automorphisms of the ground task — so the search can expand a single
//! representative per orbit (`sekitei-planner`, `rg.rs` achiever
//! enumeration).
//!
//! The computation is a two-stage sieve:
//!
//! 1. **Candidate classes** by cheap invariant signature: initial node
//!    resource values, the multiset of incident-link resource values,
//!    per-node ground-action mention counts, and whether the node is
//!    pinned by the initial state or the goal (source/client nodes are
//!    never symmetric to anything).
//! 2. **Exact verification**: for each candidate class with minimum
//!    member `r`, every transposition `(r, x)` is checked to be a full
//!    automorphism of the *compiled* task — it must map every ground
//!    variable, every initial proposition/value and every goal onto
//!    themselves, and map every ground action (kind, preconditions, adds,
//!    numeric conditions/effects, optimistic map, post levels, bitwise
//!    cost) onto an existing ground action. Members that fail fall back
//!    to singleton orbits.
//!
//! Verified transpositions against a common representative compose:
//! `(x, y) = (r, x)(r, y)(r, x)`, so every pairwise swap inside an orbit
//! is itself an automorphism — exactly the property the search-side
//! canonicalization rule needs.

use crate::task::{ActionKind, GVarData, GroundAction, PlanningTask, PropData};
use sekitei_model::{Cond, Effect, Expr, GVarId, Interval, LinkId, NodeId, PropId};
use std::collections::HashMap;

/// Node equivalence classes of a compiled task. Default = no nodes, every
/// lookup returns an empty sibling list (safe for hand-built tasks that
/// never ran [`node_orbits`]).
#[derive(Debug, Clone, Default)]
pub struct NodeOrbits {
    /// Orbit index per node.
    orbit_of: Vec<u32>,
    /// Orbit members, each sorted ascending.
    members: Vec<Vec<NodeId>>,
}

const NO_SIBLINGS: &[NodeId] = &[];

impl NodeOrbits {
    /// Every node in its own singleton orbit (no exploitable symmetry).
    pub fn trivial(num_nodes: usize) -> NodeOrbits {
        NodeOrbits {
            orbit_of: (0..num_nodes as u32).collect(),
            members: (0..num_nodes).map(|n| vec![NodeId::from_index(n)]).collect(),
        }
    }

    /// Number of network nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.orbit_of.len()
    }

    /// Number of orbits.
    pub fn orbit_count(&self) -> usize {
        self.members.len()
    }

    /// True when at least one orbit has two or more members — the gate
    /// for the search-side symmetry rule.
    pub fn nontrivial(&self) -> bool {
        self.members.iter().any(|m| m.len() > 1)
    }

    /// All members of `n`'s orbit (ascending, includes `n` itself). Nodes
    /// outside the covered range get an empty list.
    pub fn siblings(&self, n: NodeId) -> &[NodeId] {
        match self.orbit_of.get(n.index()) {
            Some(&o) => &self.members[o as usize],
            None => NO_SIBLINGS,
        }
    }

    /// Iterate the orbits (each sorted ascending).
    pub fn orbits(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        self.members.iter().map(|m| m.as_slice())
    }
}

/// FNV-1a 64-bit running hash for structural action fingerprints.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn u32(&mut self, x: u32) {
        for b in x.to_le_bytes() {
            self.u8(b);
        }
    }
    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.u8(b);
        }
    }
}

/// Undirected link endpoints, derived from the cross actions (the only
/// ground structures that mention links together with nodes). Links that
/// never appear under a cross action are inert to the task and map to
/// themselves.
struct LinkTable {
    endpoints: HashMap<LinkId, (NodeId, NodeId)>,
    by_ends: HashMap<(NodeId, NodeId), Vec<LinkId>>,
}

impl LinkTable {
    fn build(task: &PlanningTask) -> LinkTable {
        let mut endpoints = HashMap::new();
        let mut by_ends: HashMap<(NodeId, NodeId), Vec<LinkId>> = HashMap::new();
        for act in &task.actions {
            if let ActionKind::Cross { dir, .. } = &act.kind {
                let ends = (dir.from.min(dir.to), dir.from.max(dir.to));
                if endpoints.insert(dir.link, ends).is_none() {
                    by_ends.entry(ends).or_default().push(dir.link);
                }
            }
        }
        LinkTable { endpoints, by_ends }
    }
}

/// The transposition `(u, v)` lifted to every ground id space. With
/// `u == v` this is the identity (used to build the action fingerprint
/// index). Every mapping returns `None` when the image does not exist in
/// the compiled task — which makes the candidate transposition fail
/// verification, never silently mismap.
struct Swap<'t> {
    task: &'t PlanningTask,
    links: &'t LinkTable,
    u: NodeId,
    v: NodeId,
}

impl<'t> Swap<'t> {
    fn node(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            n
        }
    }

    fn link(&self, l: LinkId) -> Option<LinkId> {
        let Some(&(a, b)) = self.links.endpoints.get(&l) else {
            return Some(l); // inert link: no action mentions it
        };
        let (ma, mb) = (self.node(a), self.node(b));
        let ends = (ma.min(mb), ma.max(mb));
        if ends == (a, b) {
            return Some(l); // both endpoints fixed (or swapped in place)
        }
        match self.links.by_ends.get(&ends).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            // missing or ambiguous (multigraph): refuse to guess
            _ => None,
        }
    }

    fn prop(&self, p: PropId) -> Option<PropId> {
        let data = match self.task.prop(p) {
            PropData::Placed { comp, node } => PropData::Placed { comp, node: self.node(node) },
            PropData::Avail { iface, node, level } => {
                PropData::Avail { iface, node: self.node(node), level }
            }
        };
        self.task.prop_id(&data)
    }

    fn gvar(&self, g: GVarId) -> Option<GVarId> {
        let data = match self.task.gvars[g.index()] {
            GVarData::IfaceProp { iface, prop, node } => {
                GVarData::IfaceProp { iface, prop, node: self.node(node) }
            }
            GVarData::NodeRes { res, node } => GVarData::NodeRes { res, node: self.node(node) },
            GVarData::LinkRes { res, link } => GVarData::LinkRes { res, link: self.link(link)? },
        };
        self.task.gvar_id(&data)
    }

    fn kind(&self, k: &ActionKind) -> Option<ActionKind> {
        Some(match k {
            ActionKind::Place { comp, node } => {
                ActionKind::Place { comp: *comp, node: self.node(*node) }
            }
            ActionKind::Cross { iface, dir } => ActionKind::Cross {
                iface: *iface,
                dir: sekitei_model::DirLink {
                    link: self.link(dir.link)?,
                    from: self.node(dir.from),
                    to: self.node(dir.to),
                },
            },
        })
    }

    fn hash_expr(&self, e: &Expr<GVarId>, h: &mut Fnv) -> Option<()> {
        match e {
            Expr::Const(c) => {
                h.u8(0);
                h.u64(c.to_bits());
            }
            Expr::Var(v) => {
                h.u8(1);
                h.u32(self.gvar(*v)?.index() as u32);
            }
            Expr::Add(a, b) => {
                h.u8(2);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Sub(a, b) => {
                h.u8(3);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Mul(a, b) => {
                h.u8(4);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Div(a, b) => {
                h.u8(5);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Min(a, b) => {
                h.u8(6);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Max(a, b) => {
                h.u8(7);
                self.hash_expr(a, h)?;
                self.hash_expr(b, h)?;
            }
            Expr::Neg(a) => {
                h.u8(8);
                self.hash_expr(a, h)?;
            }
        }
        Some(())
    }

    /// Structural fingerprint of an action's image under the swap.
    /// Prop/var *sets* are hashed in sorted-image order so the fingerprint
    /// is independent of declaration order; condition/effect *lists* keep
    /// their order (compilation emits them in schema order, which is
    /// identical across symmetric groundings).
    fn action_hash(&self, act: &GroundAction) -> Option<u64> {
        let mut h = Fnv::new();
        match self.kind(&act.kind)? {
            ActionKind::Place { comp, node } => {
                h.u8(0);
                h.u32(comp.index() as u32);
                h.u32(node.index() as u32);
            }
            ActionKind::Cross { iface, dir } => {
                h.u8(1);
                h.u32(iface.index() as u32);
                h.u32(dir.link.index() as u32);
                h.u32(dir.from.index() as u32);
                h.u32(dir.to.index() as u32);
            }
        }
        let mut props: Vec<u32> = Vec::with_capacity(act.preconds.len().max(act.adds.len()));
        for group in [&act.preconds, &act.adds] {
            props.clear();
            for &p in group {
                props.push(self.prop(p)?.index() as u32);
            }
            props.sort_unstable();
            h.u8(0xb7); // group separator
            for &p in &props {
                h.u32(p);
            }
        }
        for c in &act.conditions {
            h.u8(0xc0);
            self.hash_expr(&c.lhs, &mut h)?;
            h.u8(cmp_tag(c));
            self.hash_expr(&c.rhs, &mut h)?;
        }
        for e in &act.effects {
            h.u8(0xe0);
            h.u32(self.gvar(e.target)?.index() as u32);
            h.u8(assign_tag(e));
            self.hash_expr(&e.value, &mut h)?;
        }
        let mut ivs: Vec<(u32, u64, u64)> = Vec::new();
        for group in [&act.optimistic, &act.post] {
            ivs.clear();
            for &(v, iv) in group.iter() {
                ivs.push((self.gvar(v)?.index() as u32, iv.lo.to_bits(), iv.hi.to_bits()));
            }
            ivs.sort_unstable();
            h.u8(0xa0);
            for &(v, lo, hi) in &ivs {
                h.u32(v);
                h.u64(lo);
                h.u64(hi);
            }
        }
        let mut lvls: Vec<(u32, u8)> = Vec::new();
        for &(v, l) in &act.levels {
            lvls.push((self.gvar(v)?.index() as u32, l));
        }
        lvls.sort_unstable();
        for &(v, l) in &lvls {
            h.u32(v);
            h.u8(l);
        }
        h.u64(act.cost.to_bits());
        Some(h.0)
    }

    /// Exact structural equality of `a`'s image with `b` (collision guard
    /// behind the fingerprint index).
    fn mapped_equals(&self, a: &GroundAction, b: &GroundAction) -> bool {
        match self.kind(&a.kind) {
            Some(k) if k == b.kind => {}
            _ => return false,
        }
        if a.cost.to_bits() != b.cost.to_bits() {
            return false;
        }
        let mut ok = true;
        let mut map_props = |group: &[PropId]| -> Vec<PropId> {
            let mut out: Vec<PropId> = group
                .iter()
                .map(|&p| {
                    self.prop(p).unwrap_or_else(|| {
                        ok = false;
                        p
                    })
                })
                .collect();
            out.sort_unstable();
            out
        };
        let (pre, adds) = (map_props(&a.preconds), map_props(&a.adds));
        if !ok || pre != b.preconds || adds != b.adds {
            return false;
        }
        let mut map_var = |v: &GVarId| {
            self.gvar(*v).unwrap_or_else(|| {
                ok = false;
                *v
            })
        };
        let conds: Vec<Cond<GVarId>> =
            a.conditions.iter().map(|c| c.map_vars(&mut map_var)).collect();
        let effs: Vec<Effect<GVarId>> =
            a.effects.iter().map(|e| e.map_vars(&mut map_var)).collect();
        if !ok || conds != b.conditions || effs != b.effects {
            return false;
        }
        let sort_ivs = |g: &[(GVarId, Interval)], mapped: bool| -> Option<Vec<(u32, u64, u64)>> {
            let mut out = Vec::with_capacity(g.len());
            for &(v, iv) in g {
                let v = if mapped { self.gvar(v)? } else { v };
                out.push((v.index() as u32, iv.lo.to_bits(), iv.hi.to_bits()));
            }
            out.sort_unstable();
            Some(out)
        };
        match (sort_ivs(&a.optimistic, true), sort_ivs(&b.optimistic, false)) {
            (Some(x), Some(y)) if x == y => {}
            _ => return false,
        }
        match (sort_ivs(&a.post, true), sort_ivs(&b.post, false)) {
            (Some(x), Some(y)) if x == y => {}
            _ => return false,
        }
        let sort_lvls = |g: &[(GVarId, u8)], mapped: bool| -> Option<Vec<(u32, u8)>> {
            let mut out = Vec::with_capacity(g.len());
            for &(v, l) in g {
                let v = if mapped { self.gvar(v)? } else { v };
                out.push((v.index() as u32, l));
            }
            out.sort_unstable();
            Some(out)
        };
        matches!(
            (sort_lvls(&a.levels, true), sort_lvls(&b.levels, false)),
            (Some(x), Some(y)) if x == y
        )
    }
}

fn cmp_tag(c: &Cond<GVarId>) -> u8 {
    use sekitei_model::CmpOp::*;
    match c.op {
        Le => 0,
        Lt => 1,
        Ge => 2,
        Gt => 3,
        Eq => 4,
    }
}

fn assign_tag(e: &Effect<GVarId>) -> u8 {
    use sekitei_model::AssignOp::*;
    match e.op {
        Set => 0,
        Sub => 1,
        Add => 2,
    }
}

/// Stage-1 sieve shared by [`node_orbits`] and [`signature_classes`]:
/// group unpinned nodes by the cheap invariant signature (initial node
/// resources, incident-link resource multiset, ground-action mention
/// counts). Returns the groups; pinned and singleton-signature nodes are
/// simply absent.
fn signature_groups(task: &PlanningTask, num_nodes: usize, links: &LinkTable) -> Vec<Vec<NodeId>> {
    let mut pinned = vec![false; num_nodes];
    let mark = |p: PropId, pinned: &mut Vec<bool>| {
        let n = match task.prop(p) {
            PropData::Placed { node, .. } => node,
            PropData::Avail { node, .. } => node,
        };
        if n.index() < pinned.len() {
            pinned[n.index()] = true;
        }
    };
    for &p in &task.init_props {
        mark(p, &mut pinned);
    }
    for &p in &task.goal_props {
        mark(p, &mut pinned);
    }

    // per-node initial resource values
    let mut node_res: Vec<Vec<(u16, u64, u64)>> = vec![Vec::new(); num_nodes];
    let mut link_res: HashMap<LinkId, Vec<(u16, u64, u64)>> = HashMap::new();
    for (i, data) in task.gvars.iter().enumerate() {
        let iv = task.init_values[i].map(|iv| (iv.lo.to_bits(), iv.hi.to_bits()));
        match *data {
            GVarData::NodeRes { res, node } if node.index() < num_nodes => {
                let (lo, hi) = iv.unwrap_or((u64::MAX, u64::MAX));
                node_res[node.index()].push((res, lo, hi));
            }
            GVarData::LinkRes { res, link } => {
                let (lo, hi) = iv.unwrap_or((u64::MAX, u64::MAX));
                link_res.entry(link).or_default().push((res, lo, hi));
            }
            _ => {}
        }
    }
    for v in &mut node_res {
        v.sort_unstable();
    }
    let link_sig: HashMap<LinkId, u64> = link_res
        .into_iter()
        .map(|(l, mut v)| {
            v.sort_unstable();
            let mut h = Fnv::new();
            for (r, lo, hi) in v {
                h.u32(r as u32);
                h.u64(lo);
                h.u64(hi);
            }
            (l, h.0)
        })
        .collect();

    // per-node action mention counts + incident link signature multiset
    let mut mentions = vec![(0u32, 0u32, 0u32); num_nodes]; // (place, cross-out, cross-in)
    let mut incident: Vec<Vec<u64>> = vec![Vec::new(); num_nodes];
    for (&l, &(a, b)) in &links.endpoints {
        let sig = link_sig.get(&l).copied().unwrap_or(0);
        if a.index() < num_nodes {
            incident[a.index()].push(sig);
        }
        if b.index() < num_nodes {
            incident[b.index()].push(sig);
        }
    }
    for v in &mut incident {
        v.sort_unstable();
    }
    for act in &task.actions {
        match &act.kind {
            ActionKind::Place { node, .. } if node.index() < num_nodes => {
                mentions[node.index()].0 += 1;
            }
            ActionKind::Cross { dir, .. } => {
                if dir.from.index() < num_nodes {
                    mentions[dir.from.index()].1 += 1;
                }
                if dir.to.index() < num_nodes {
                    mentions[dir.to.index()].2 += 1;
                }
            }
            _ => {}
        }
    }

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut group_of_sig: HashMap<u64, usize> = HashMap::new();
    for n in 0..num_nodes {
        if pinned[n] {
            continue; // sources/clients/pre-placed hosts stay singleton
        }
        let mut h = Fnv::new();
        for &(r, lo, hi) in &node_res[n] {
            h.u32(r as u32);
            h.u64(lo);
            h.u64(hi);
        }
        h.u8(0xee);
        for &s in &incident[n] {
            h.u64(s);
        }
        h.u8(0xef);
        let (p, o, i) = mentions[n];
        h.u32(p);
        h.u32(o);
        h.u32(i);
        let g = *group_of_sig.entry(h.0).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(NodeId::from_index(n));
    }
    groups
}

/// Compute the node orbits of a compiled task over a network of
/// `num_nodes` nodes.
pub fn node_orbits(task: &PlanningTask, num_nodes: usize) -> NodeOrbits {
    if num_nodes == 0 {
        return NodeOrbits::default();
    }
    let links = LinkTable::build(task);
    let groups = signature_groups(task, num_nodes, &links);

    // ---- stage 2: exact transposition verification ----
    // fingerprint index of every action under the identity map
    let identity = Swap { task, links: &links, u: NodeId::from_index(0), v: NodeId::from_index(0) };
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut indexable = true;
    for (i, act) in task.actions.iter().enumerate() {
        match identity.action_hash(act) {
            Some(h) => index.entry(h).or_default().push(i as u32),
            None => {
                indexable = false; // ambiguous multigraph link: bail out
                break;
            }
        }
    }

    let mut orbit_of = vec![u32::MAX; num_nodes];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let push_orbit = |orbit_of: &mut Vec<u32>, members: &mut Vec<Vec<NodeId>>, ns: Vec<NodeId>| {
        let o = members.len() as u32;
        for &n in &ns {
            orbit_of[n.index()] = o;
        }
        members.push(ns);
    };

    if indexable {
        for group in &groups {
            if group.len() < 2 {
                continue;
            }
            // a signature group can contain several genuine orbits (e.g.
            // twin leaves of *different* parents all share one signature):
            // chain representatives — each member joins the first orbit
            // whose representative it verifiably swaps with, else founds a
            // new one
            let mut orbits: Vec<Vec<NodeId>> = Vec::new();
            for &x in group.iter() {
                let found = orbits.iter_mut().find(|orbit| {
                    let swap = Swap { task, links: &links, u: orbit[0], v: x };
                    transposition_ok(task, &swap, &index)
                });
                match found {
                    Some(orbit) => orbit.push(x),
                    None => orbits.push(vec![x]),
                }
            }
            for orbit in orbits {
                if orbit.len() > 1 {
                    push_orbit(&mut orbit_of, &mut members, orbit);
                }
            }
        }
    }
    // everything unassigned (pinned, failed, singleton-signature) becomes
    // its own orbit
    for n in 0..num_nodes {
        if orbit_of[n] == u32::MAX {
            push_orbit(&mut orbit_of, &mut members, vec![NodeId::from_index(n)]);
        }
    }
    NodeOrbits { orbit_of, members }
}

/// The stage-1 signature partition as a [`NodeOrbits`] — *unverified*
/// equivalence classes by local invariants only (capacities, incident-link
/// resource multiset, action mention counts). Unlike [`node_orbits`], the
/// classes are generally **not** task automorphisms: two stub leaves in
/// different stubs share a signature but occupy different graph positions.
/// The search therefore uses these classes only in its lossy drain mode,
/// where a pruned branch costs completeness of the *unsolvability* verdict
/// but never plan validity (candidates still validate against the initial
/// state). Pinned nodes stay singletons, exactly as in the verified
/// orbits.
pub fn signature_classes(task: &PlanningTask, num_nodes: usize) -> NodeOrbits {
    if num_nodes == 0 {
        return NodeOrbits::default();
    }
    let links = LinkTable::build(task);
    let mut orbit_of = vec![u32::MAX; num_nodes];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for group in signature_groups(task, num_nodes, &links) {
        if group.len() < 2 {
            continue;
        }
        let o = members.len() as u32;
        for &n in &group {
            orbit_of[n.index()] = o;
        }
        members.push(group);
    }
    for (n, o) in orbit_of.iter_mut().enumerate() {
        if *o == u32::MAX {
            *o = members.len() as u32;
            members.push(vec![NodeId::from_index(n)]);
        }
    }
    NodeOrbits { orbit_of, members }
}

/// Is the lifted transposition a full automorphism of the compiled task?
fn transposition_ok(task: &PlanningTask, swap: &Swap<'_>, index: &HashMap<u64, Vec<u32>>) -> bool {
    // ground variables must map bijectively with bit-identical initial
    // values (the swap is an involution, so totality + value match in one
    // direction suffices)
    for i in 0..task.gvars.len() {
        let Some(j) = swap.gvar(GVarId::from_index(i)) else { return false };
        match (&task.init_values[i], &task.init_values[j.index()]) {
            (None, None) => {}
            (Some(a), Some(b))
                if a.lo.to_bits() == b.lo.to_bits() && a.hi.to_bits() == b.hi.to_bits() => {}
            _ => return false,
        }
    }
    // initial and goal propositions must be setwise invariant
    for &p in &task.init_props {
        match swap.prop(p) {
            Some(q) if task.initially(q) => {}
            _ => return false,
        }
    }
    for &p in &task.goal_props {
        match swap.prop(p) {
            Some(q) if task.goal_props.binary_search(&q).is_ok() => {}
            _ => return false,
        }
    }
    // every ground action must map onto an existing ground action
    for act in &task.actions {
        let Some(h) = swap.action_hash(act) else { return false };
        let Some(cands) = index.get(&h) else { return false };
        if !cands.iter().any(|&c| swap.mapped_equals(act, &task.actions[c as usize])) {
            return false;
        }
    }
    true
}
