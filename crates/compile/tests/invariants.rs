//! Property-based invariants of the grounding/leveling compiler: every
//! ground action the compiler emits must be internally consistent, and the
//! compiled task must be a faithful skeleton of the problem.

use proptest::prelude::*;
use sekitei_compile::{compile, ActionKind, GVarData, PlanningTask, PropData};
use sekitei_model::{CppProblem, Interval, LevelScenario, MediaConfig};
use sekitei_topology::scenarios;

fn check_invariants(_p: &CppProblem, task: &PlanningTask) -> Result<(), TestCaseError> {
    // proposition table is consistent with the index
    for (i, pd) in task.props.iter().enumerate() {
        let id = task.prop_id(pd).expect("interned");
        prop_assert_eq!(id.index(), i);
    }
    // goals and inits are valid ids; init mask matches the list
    for &g in &task.goal_props {
        prop_assert!(g.index() < task.num_props());
    }
    for (i, &m) in task.init_mask.iter().enumerate() {
        let in_list = task.init_props.binary_search(&sekitei_model::PropId(i as u32)).is_ok();
        prop_assert_eq!(m, in_list);
    }

    for a in &task.actions {
        // sorted, deduplicated propositional lists
        prop_assert!(a.preconds.windows(2).all(|w| w[0] < w[1]), "{}", a.name);
        prop_assert!(a.adds.windows(2).all(|w| w[0] < w[1]), "{}", a.name);
        // non-negative finite lower-bound cost
        prop_assert!(a.cost.is_finite() && a.cost >= 0.0, "{}: cost {}", a.name, a.cost);
        // optimistic intervals non-empty
        for (v, iv) in &a.optimistic {
            prop_assert!(!iv.is_empty(), "{}: {} empty", a.name, task.gvar_name(*v));
        }
        for (v, iv) in &a.post {
            prop_assert!(!iv.is_empty(), "{}: post {} empty", a.name, task.gvar_name(*v));
        }
        // kind ↔ proposition consistency
        match &a.kind {
            ActionKind::Place { comp, node } => {
                let placed = task
                    .prop_id(&PropData::Placed { comp: *comp, node: *node })
                    .expect("placed prop interned");
                prop_assert!(a.adds.contains(&placed), "{}", a.name);
            }
            ActionKind::Cross { iface, dir } => {
                // precondition availability on the from-side
                prop_assert!(
                    a.preconds.iter().any(|&p| matches!(
                        task.prop(p),
                        PropData::Avail { iface: i2, node, .. }
                            if i2 == *iface && node == dir.from
                    )),
                    "{}",
                    a.name
                );
                // all adds land on the to-side
                for &add in &a.adds {
                    let lands_on_to = matches!(
                        task.prop(add),
                        PropData::Avail { node, .. } if node == dir.to
                    );
                    prop_assert!(lands_on_to, "{} adds off the to-side", a.name);
                }
            }
        }
        // every numeric variable referenced is interned
        for c in &a.conditions {
            c.for_each_var(&mut |v| assert!(v.index() < task.gvars.len()));
        }
        for e in &a.effects {
            e.for_each_var(&mut |v| assert!(v.index() < task.gvars.len()));
        }
    }

    // achievers index is exactly inverse of adds
    for pi in 0..task.num_props() {
        let p = sekitei_model::PropId(pi as u32);
        for &a in task.achievers(p) {
            prop_assert!(task.action(a).adds.contains(&p));
        }
    }

    // every resource-typed gvar has a concrete initial value
    for (i, gv) in task.gvars.iter().enumerate() {
        match gv {
            GVarData::NodeRes { .. } | GVarData::LinkRes { .. } => {
                let iv = task.init_values[i].expect("resources always have capacities");
                prop_assert!(!iv.is_empty());
            }
            GVarData::IfaceProp { .. } => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn media_grounding_invariants(demand in 40.0..130.0f64,
                                  split in 3..8usize,
                                  sc_idx in 0..5usize) {
        let cfg = MediaConfig {
            client_demand: demand.round(),
            split_t: split as f64 / 10.0,
            ..MediaConfig::default()
        };
        let p = scenarios::small_with(cfg, LevelScenario::ALL[sc_idx]);
        let task = compile(&p).unwrap();
        check_invariants(&p, &task)?;
    }

    #[test]
    fn source_range_respected(max in 50.0..400.0f64) {
        let mut p = scenarios::tiny(LevelScenario::D);
        let max = max.round();
        p.sources[0].properties.insert("ibw".into(), Interval::new(0.0, max));
        let task = compile(&p).unwrap();
        check_invariants(&p, &task)?;
        // the source var's initial value is the declared range
        let m = p.iface_id("M").unwrap();
        let v = task
            .gvar_id(&GVarData::IfaceProp { iface: m, prop: 0, node: p.sources[0].node })
            .unwrap();
        prop_assert_eq!(task.init_values[v.index()], Some(Interval::new(0.0, max)));
        // initial avail levels exactly cover the range
        let spec = p.iface(m).levels_of("ibw");
        for l in 0..spec.num_levels() {
            let pid = task.prop_id(&PropData::Avail {
                iface: m,
                node: p.sources[0].node,
                level: l as u8,
            });
            let expected = spec.interval(l).intersects(&Interval::new(0.0, max));
            let actual = pid.is_some_and(|pid| task.initially(pid));
            prop_assert_eq!(actual, expected, "level {}", l);
        }
    }

    #[test]
    fn grounding_is_deterministic(sc_idx in 0..5usize) {
        let p = scenarios::small(LevelScenario::ALL[sc_idx]);
        let a = compile(&p).unwrap();
        let b = compile(&p).unwrap();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.num_actions(), b.num_actions());
        prop_assert_eq!(a.num_props(), b.num_props());
        for (x, y) in a.actions.iter().zip(&b.actions) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(x.cost, y.cost);
            prop_assert_eq!(&x.preconds, &y.preconds);
            prop_assert_eq!(&x.adds, &y.adds);
        }
    }
}

#[test]
fn fingerprint_separates_distinct_problems() {
    // the structural fingerprint is a cache identity: equal problems must
    // collide (checked per-scenario in `grounding_is_deterministic`), and
    // distinct scenarios must not
    let mut seen = std::collections::HashSet::new();
    for sc in LevelScenario::ALL {
        let fp = compile(&scenarios::tiny(sc)).unwrap().fingerprint();
        assert!(seen.insert(fp), "fingerprint collision for {sc:?}");
    }
    for sc in LevelScenario::ALL {
        let fp = compile(&scenarios::small(sc)).unwrap().fingerprint();
        assert!(seen.insert(fp), "fingerprint collision for small/{sc:?}");
    }
}

#[test]
fn tradeoff_and_latency_grounding_invariants() {
    for p in [
        scenarios::tradeoff(0.5),
        scenarios::tradeoff_deadline(0.5, 30.0),
        scenarios::large(LevelScenario::E),
    ] {
        let task = compile(&p).unwrap();
        check_invariants(&p, &task).unwrap();
    }
}

#[test]
fn combo_explosion_guarded() {
    // a component requiring 8 interfaces, each with 4 cutpoints (5 levels),
    // would ground to 5^8 ≈ 390k level combinations — the compiler must
    // refuse instead of hanging
    use sekitei_model::{
        ComponentSpec, CppProblem, Goal, InterfaceSpec, LevelSpec, LinkClass, Network, ResourceDef,
        StreamSource,
    };
    let mut net = Network::new();
    let a = net.add_node("a", [("cpu", 10.0)]);
    let b = net.add_node("b", [("cpu", 10.0)]);
    net.add_link(a, b, LinkClass::Lan, [("lbw", 100.0)]);

    let levels = LevelSpec::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
    let mut interfaces = Vec::new();
    let mut omnivore = ComponentSpec::new("Omnivore");
    let mut sources = Vec::new();
    for i in 0..8 {
        let name = format!("S{i}");
        interfaces.push(
            InterfaceSpec::bandwidth_stream(&name, "ibw", "lbw").with_levels("ibw", levels.clone()),
        );
        omnivore = omnivore.requires(&name);
        sources.push(StreamSource::up_to(&name, a, "ibw", 50.0));
    }
    let p = CppProblem {
        network: net,
        resources: vec![ResourceDef::node("cpu"), ResourceDef::link("lbw")],
        interfaces,
        components: vec![omnivore],
        sources,
        pre_placed: vec![],
        goals: vec![Goal { component: "Omnivore".into(), node: a }],
    };
    p.validate().unwrap();
    match compile(&p) {
        Err(sekitei_compile::CompileError::TooManyCombinations { count, .. }) => {
            assert!(count > 200_000);
        }
        other => panic!("expected combo guard, got {other:?}"),
    }
}

#[test]
fn rigid_interfaces_skip_degradable_closure() {
    // mark M non-degradable: producing level 3 must add ONLY level 3
    let mut p = scenarios::tiny(LevelScenario::D);
    let m_idx = p.iface_id("M").unwrap().index();
    p.interfaces[m_idx].degradable = false;
    let task = compile(&p).unwrap();
    let m = p.iface_id("M").unwrap();
    for a in &task.actions {
        if !a.name.starts_with("place(Merger") {
            continue;
        }
        let m_levels: Vec<u8> = a
            .adds
            .iter()
            .filter_map(|&pr| match task.prop(pr) {
                PropData::Avail { iface, level, .. } if iface == m => Some(level),
                _ => None,
            })
            .collect();
        assert_eq!(m_levels.len(), 1, "{}: {m_levels:?}", a.name);
    }
    // ... and the degradable default adds the closure
    let q = scenarios::tiny(LevelScenario::D);
    let task2 = compile(&q).unwrap();
    let closure_found = task2.actions.iter().any(|a| {
        a.name.starts_with("place(Merger")
            && a.adds
                .iter()
                .filter(
                    |&&pr| matches!(task2.prop(pr), PropData::Avail { iface, .. } if iface == m),
                )
                .count()
                > 1
    });
    assert!(closure_found);
}
