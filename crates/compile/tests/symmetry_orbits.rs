//! Node-equivalence-class computation on the benchmark topologies.
//!
//! The orbits feed the planner's symmetry-breaking rule, so the
//! properties asserted here are exactly what that rule's soundness
//! argument consumes: pinned (source/client) nodes are singletons, orbit
//! members agree bitwise on initial resource capacities, and the verified
//! transpositions really do map the ground action set onto itself
//! (checked indirectly: every orbit survived exact verification).

use sekitei_compile::{compile, GVarData, PropData};
use sekitei_model::{
    media_domain_with, CppProblem, Goal, Interval, LevelScenario, LinkClass, MediaConfig, NodeId,
    StreamSource,
};
use sekitei_topology::generators::{self, Capacities};
use sekitei_topology::scenarios;

/// Media delivery over a star: server on the hub `n0`, client on leaf
/// `n1`, leaves `n2..` identical in every respect — the canonical
/// maximum-symmetry instance.
fn star_problem(leaves: usize, sc: LevelScenario) -> CppProblem {
    let net = generators::star(1 + leaves, LinkClass::Lan, &Capacities::default());
    let domain = media_domain_with(MediaConfig::default(), sc);
    let p = CppProblem {
        network: net,
        resources: domain.resources,
        interfaces: domain.interfaces,
        components: domain.components,
        sources: vec![StreamSource::up_to("M", NodeId(0), "ibw", scenarios::SERVER_CAPACITY)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: NodeId(1) }],
    };
    p.validate().unwrap();
    p
}

/// Initial node-resource intervals of one node, sorted by catalog index.
fn res_profile(task: &sekitei_compile::PlanningTask, n: NodeId) -> Vec<(u16, u64, u64)> {
    let mut out = Vec::new();
    for (i, g) in task.gvars.iter().enumerate() {
        if let GVarData::NodeRes { res, node } = *g {
            if node == n {
                let iv = task.init_values[i].unwrap_or(Interval::nonneg());
                out.push((res, iv.lo.to_bits(), iv.hi.to_bits()));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Nodes mentioned by the initial state or the goal.
fn pinned_nodes(task: &sekitei_compile::PlanningTask) -> Vec<NodeId> {
    let mut out = Vec::new();
    for &p in task.init_props.iter().chain(&task.goal_props) {
        out.push(match task.prop(p) {
            PropData::Placed { node, .. } => node,
            PropData::Avail { node, .. } => node,
        });
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[test]
fn tiny_has_no_symmetry() {
    // two nodes: the source and the client — both pinned
    let task = compile(&scenarios::tiny(LevelScenario::C)).unwrap();
    assert_eq!(task.orbits.num_nodes(), 2);
    assert!(!task.orbits.nontrivial(), "pinned endpoints cannot be symmetric");
    assert_eq!(task.orbits.orbit_count(), 2);
}

#[test]
fn small_line_distractor_is_asymmetric() {
    // the Small line n0—n1—n2—n3—n4 plus the distractor x off n1: every
    // node has a distinct position (different link classes / endpoints),
    // so no two are interchangeable
    let task = compile(&scenarios::small(LevelScenario::B)).unwrap();
    assert_eq!(task.orbits.num_nodes(), 6);
    for orbit in task.orbits.orbits() {
        assert_eq!(orbit.len(), 1, "line topology must stay asymmetric: {orbit:?}");
    }
}

#[test]
fn large_transit_stub_finds_exactly_the_graph_twins() {
    // 93-node GT-ITM transit-stub: the random stub trees plus extra LAN
    // edges break almost all symmetry — the generated instance has exactly
    // two structural twin pairs (leaf nodes sharing a parent: s0_0_4/s0_0_7
    // and s0_2_5/s0_2_7), and the orbit computation must find both and
    // nothing more (any larger orbit would be an unsound merge)
    let task = compile(&scenarios::large(LevelScenario::A)).unwrap();
    assert_eq!(task.orbits.num_nodes(), 93);
    assert!(task.orbits.nontrivial(), "transit-stub twin leaves must be detected");
    let pairs: Vec<&[NodeId]> = task.orbits.orbits().filter(|m| m.len() > 1).collect();
    assert_eq!(pairs.len(), 2, "expected exactly the two twin-leaf pairs, got {pairs:?}");
    assert!(pairs.iter().all(|m| m.len() == 2));
}

#[test]
fn star_leaves_form_one_orbit() {
    // hub pinned by the source, n1 pinned by the goal; the remaining five
    // leaves are fully interchangeable and must land in a single orbit
    let task = compile(&star_problem(6, LevelScenario::C)).unwrap();
    assert_eq!(task.orbits.num_nodes(), 7);
    assert_eq!(task.orbits.siblings(NodeId(0)), &[NodeId(0)]);
    assert_eq!(task.orbits.siblings(NodeId(1)), &[NodeId(1)]);
    let expected: Vec<NodeId> = (2..7).map(NodeId).collect();
    assert_eq!(task.orbits.siblings(NodeId(4)), expected.as_slice());
    assert_eq!(task.orbits.orbit_count(), 3);
}

#[test]
fn pinned_nodes_are_singletons() {
    for make in
        [scenarios::tiny, scenarios::small, scenarios::large].iter().map(|f| f(LevelScenario::C))
    {
        let task = compile(&make).unwrap();
        for n in pinned_nodes(&task) {
            assert_eq!(task.orbits.siblings(n), &[n], "init/goal node {n} must be its own orbit");
        }
    }
}

#[test]
fn orbit_members_share_resource_profiles() {
    let task = compile(&scenarios::large(LevelScenario::B)).unwrap();
    for orbit in task.orbits.orbits() {
        let profile = res_profile(&task, orbit[0]);
        for &n in &orbit[1..] {
            assert_eq!(res_profile(&task, n), profile, "orbit {orbit:?} mixes capacities");
        }
    }
}

#[test]
fn orbit_members_are_sorted_and_partition_the_nodes() {
    let task = compile(&scenarios::large(LevelScenario::E)).unwrap();
    let mut seen = vec![false; task.orbits.num_nodes()];
    for orbit in task.orbits.orbits() {
        assert!(orbit.windows(2).all(|w| w[0] < w[1]), "orbit not sorted: {orbit:?}");
        for &n in orbit {
            assert!(!seen[n.index()], "node {n} in two orbits");
            seen[n.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "orbits must cover every node");
    // membership and siblings() agree
    for n in 0..task.orbits.num_nodes() {
        let n = NodeId::from_index(n);
        assert!(task.orbits.siblings(n).contains(&n));
    }
}

#[test]
fn capacity_perturbation_splits_an_orbit() {
    // make one symmetric node's CPU capacity unique: it must drop out of
    // its orbit while the rest keep theirs
    let base = compile(&scenarios::large(LevelScenario::A)).unwrap();
    let big = base
        .orbits
        .orbits()
        .filter(|m| m.len() > 1)
        .max_by_key(|m| m.len())
        .expect("nontrivial orbit")
        .to_vec();
    let victim = big[0];

    let mut p = scenarios::large(LevelScenario::A);
    let old = p.network.node_capacity(victim, "cpu");
    p.network.set_node_capacity(victim, "cpu", old + 1.0);
    let task = compile(&p).unwrap();
    assert_eq!(task.orbits.siblings(victim), &[victim], "perturbed node must be singleton");
    // the survivors (minus the victim) are still symmetric to each other
    let survivors = task.orbits.siblings(big[1]);
    assert!(survivors.len() >= big.len() - 1 && !survivors.contains(&victim));
}

#[test]
fn out_of_range_lookup_is_empty() {
    let task = compile(&scenarios::tiny(LevelScenario::B)).unwrap();
    assert_eq!(task.orbits.siblings(NodeId::from_index(999)), &[] as &[NodeId]);
    let t = sekitei_compile::PlanningTask::default();
    assert_eq!(t.orbits.num_nodes(), 0);
    assert_eq!(t.orbits.siblings(NodeId::from_index(0)), &[] as &[NodeId]);
}

// ---- unverified signature classes (drain-mode coarse symmetry) ----

#[test]
fn signature_classes_refine_into_orbits() {
    // every exact orbit sits inside one signature class: the stage-1
    // sieve is exactly what the exact verifier starts from
    for sc in [LevelScenario::A, LevelScenario::B, LevelScenario::E] {
        let task = compile(&scenarios::large(sc)).unwrap();
        for orbit in task.orbits.orbits() {
            let class = task.sig_classes.siblings(orbit[0]);
            for &n in orbit {
                assert!(class.contains(&n), "exact orbit {orbit:?} split across signature classes");
            }
        }
    }
}

#[test]
fn signature_classes_collapse_the_transit_stub_wan() {
    // the 93-node transit-stub WAN is full of equivalent stub nodes; the
    // signature sieve must compress it far below one-class-per-node even
    // though exact verification keeps only the graph twins
    let task = compile(&scenarios::large(LevelScenario::A)).unwrap();
    assert_eq!(task.sig_classes.num_nodes(), 93);
    assert!(
        task.sig_classes.orbit_count() <= 16,
        "expected heavy compression, got {} classes",
        task.sig_classes.orbit_count()
    );
    assert!(task.sig_classes.nontrivial());
    // classes partition the node set
    let mut seen = vec![false; task.sig_classes.num_nodes()];
    for class in task.sig_classes.orbits() {
        assert!(class.windows(2).all(|w| w[0] < w[1]), "class not sorted: {class:?}");
        for &n in class {
            assert!(!seen[n.index()], "node {n} in two classes");
            seen[n.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "classes must cover every node");
}

#[test]
fn signature_pinned_nodes_stay_singletons() {
    // lossy or not, pinned (source/goal) nodes must never merge: the
    // drain-mode symmetry rule still respects placements forced by the
    // problem statement
    for make in [scenarios::small as fn(LevelScenario) -> _, scenarios::large as fn(_) -> _] {
        let task = compile(&make(LevelScenario::B)).unwrap();
        for n in pinned_nodes(&task) {
            assert_eq!(
                task.sig_classes.siblings(n),
                &[n],
                "pinned node {n} merged into a signature class"
            );
        }
    }
}

#[test]
fn signature_class_members_share_resource_profiles() {
    let task = compile(&scenarios::large(LevelScenario::B)).unwrap();
    for class in task.sig_classes.orbits() {
        let profile = res_profile(&task, class[0]);
        for &n in &class[1..] {
            assert_eq!(res_profile(&task, n), profile, "class {class:?} mixes capacities");
        }
    }
}
