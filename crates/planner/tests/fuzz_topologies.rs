//! Randomized-topology fuzzing: attach the media domain to randomly
//! generated networks (Waxman, Barabási–Albert, transit-stub) with random
//! capacities, plant the server and client at random nodes, and verify the
//! planner's contract on every instance:
//!
//! * it never panics and always terminates within its budgets,
//! * every plan it returns executes cleanly in the independent simulator,
//! * the cost lower bound never exceeds the executed real cost,
//! * results are deterministic.

use proptest::prelude::*;
use sekitei_model::{
    media_domain_with, CppProblem, Goal, LevelScenario, MediaConfig, NodeId, StreamSource,
};
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_sim::validate_plan;
use sekitei_topology::{barabasi_albert, transit_stub, waxman, Capacities, TransitStubConfig};

fn attach_media(
    net: sekitei_model::Network,
    server: NodeId,
    client: NodeId,
    sc: LevelScenario,
    demand: f64,
) -> CppProblem {
    let cfg = MediaConfig { client_demand: demand, ..MediaConfig::default() };
    let d = media_domain_with(cfg, sc);
    CppProblem {
        network: net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", server, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: client }],
    }
}

fn check(p: &CppProblem) -> Result<bool, TestCaseError> {
    let planner = Planner::new(PlannerConfig {
        max_nodes: 100_000,
        max_candidate_rejects: 1_000,
        slrg_budget: 20_000,
        ..PlannerConfig::default()
    });
    let a = planner.plan(p).expect("compiles");
    let b = planner.plan(p).expect("compiles");
    match (&a.plan, &b.plan) {
        (Some(x), Some(y)) => {
            prop_assert_eq!(x.len(), y.len(), "nondeterministic plan length");
            prop_assert!((x.cost_lower_bound - y.cost_lower_bound).abs() < 1e-9);
        }
        (None, None) => {}
        _ => prop_assert!(false, "nondeterministic solvability"),
    }
    if let Some(plan) = &a.plan {
        let report = validate_plan(p, &a.task, plan);
        prop_assert!(report.ok, "plan failed simulation: {:?}\n{plan}", report.violations);
        prop_assert!(plan.cost_lower_bound <= report.total_cost + 1e-6);
    }
    Ok(a.plan.is_some())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn waxman_media_sound(seed in 0u64..10_000, n in 6usize..20,
                          cpu in 20.0..60.0f64, bw in 40.0..160.0f64,
                          demand in 50.0..110.0f64, sc_idx in 1..5usize) {
        let caps = Capacities { node_cpu: cpu.round(), lan_bw: bw.round(), wan_bw: bw.round() };
        let net = waxman(n, 0.5, 0.3, seed, &caps);
        let server = NodeId(0);
        let client = NodeId((n - 1) as u32);
        let p = attach_media(net, server, client, LevelScenario::ALL[sc_idx], demand.round());
        check(&p)?;
    }

    #[test]
    fn barabasi_media_sound(seed in 0u64..10_000, n in 8usize..24,
                            demand in 60.0..100.0f64, sc_idx in 1..5usize) {
        let caps = Capacities::default();
        let net = barabasi_albert(n, 2, seed, &caps);
        let server = NodeId(1);
        let client = NodeId((n - 1) as u32);
        let p = attach_media(net, server, client, LevelScenario::ALL[sc_idx], demand.round());
        check(&p)?;
    }

    #[test]
    fn transit_stub_media_sound(seed in 0u64..1_000, stubs in 1usize..3,
                                stub_size in 2usize..6, sc_idx in 1..4usize) {
        let cfg = TransitStubConfig {
            transit_nodes: 2,
            stubs_per_transit: stubs,
            stub_size,
            seed,
            ..TransitStubConfig::default()
        };
        let ts = transit_stub(&cfg);
        let server = ts.members[0][0][0];
        let client = *ts.members[1].last().unwrap().last().unwrap();
        let p = attach_media(ts.net, server, client, LevelScenario::ALL[sc_idx], 90.0);
        check(&p)?;
    }
}

#[test]
fn solvable_fraction_sanity() {
    // with generous capacities most random instances must be solvable —
    // a planner that silently fails everywhere would pass the pure
    // soundness checks above, so pin down completeness too
    let caps = Capacities { node_cpu: 60.0, lan_bw: 200.0, wan_bw: 200.0 };
    let mut solved = 0;
    let total = 20;
    for seed in 0..total {
        let net = waxman(10, 0.6, 0.4, seed, &caps);
        let p = attach_media(net, NodeId(0), NodeId(9), LevelScenario::C, 90.0);
        if check(&p).unwrap() {
            solved += 1;
        }
    }
    assert!(solved >= total * 9 / 10, "only {solved}/{total} solvable");
}
