//! Differential test: the optimized search core (interned `SetId`s, CSR
//! achievers, incremental tail replay) must be *behavior-identical* to the
//! original boxed-`SetKey` implementation preserved in
//! [`sekitei_planner::reference`] — same plans, same cost bounds, same
//! node/prune/reject counters, on every scenario of both benchmark
//! topologies and under every heuristic/pruning configuration.

use sekitei_compile::{compile, PlanningTask};
use sekitei_model::LevelScenario;
use sekitei_planner::reference::search_reference;
use sekitei_planner::rg::{search, Heuristic, RgConfig};
use sekitei_planner::{Plrg, Slrg};
use sekitei_topology::scenarios;

const SLRG_BUDGET: usize = 50_000;

fn assert_equivalent(task: &PlanningTask, cfg: &RgConfig, label: &str) {
    let plrg = Plrg::build(task);
    if !plrg.solvable(task) {
        // both pipelines would refuse before searching; nothing to compare
        return;
    }
    let mut slrg = Slrg::new(task, &plrg, SLRG_BUDGET);
    let opt = search(task, &plrg, &mut slrg, cfg);
    let reference = search_reference(task, &plrg, SLRG_BUDGET, cfg);

    assert_eq!(opt.nodes_created, reference.nodes_created, "{label}: nodes_created");
    assert_eq!(opt.open_left, reference.open_left, "{label}: open_left");
    assert_eq!(opt.replay_prunes, reference.replay_prunes, "{label}: replay_prunes");
    assert_eq!(opt.candidate_rejects, reference.candidate_rejects, "{label}: candidate_rejects");
    assert_eq!(opt.expansions, reference.expansions, "{label}: expansions");
    assert_eq!(opt.budget_exhausted, reference.budget_exhausted, "{label}: budget_exhausted");
    assert_eq!(slrg.stats().nodes, reference.slrg_nodes, "{label}: slrg nodes");
    assert_eq!(slrg.stats().cache_hits, reference.slrg_cache_hits, "{label}: slrg cache hits");

    match (&opt.plan, &reference.plan) {
        (None, None) => {}
        (Some((pa, ca, _)), Some((pb, cb, _))) => {
            assert_eq!(pa, pb, "{label}: plan actions");
            assert_eq!(ca.to_bits(), cb.to_bits(), "{label}: cost bound (bit-identical)");
        }
        (a, b) => panic!("{label}: plan presence differs: {:?} vs {:?}", a.is_some(), b.is_some()),
    }
}

fn check_all_scenarios(make: impl Fn(LevelScenario) -> sekitei_model::CppProblem, topo: &str) {
    for sc in LevelScenario::ALL {
        let task = compile(&make(sc)).unwrap();
        assert_equivalent(&task, &RgConfig::default(), &format!("{topo}/{sc:?}/default"));
    }
}

#[test]
fn tiny_all_scenarios_identical() {
    check_all_scenarios(scenarios::tiny, "tiny");
}

#[test]
fn small_all_scenarios_identical() {
    check_all_scenarios(scenarios::small, "small");
}

#[test]
fn tiny_scenario_a_still_fails_and_b_finds_seven_action_plan() {
    // the two paper-anchored outcomes, asserted against both pipelines
    let task_a = compile(&scenarios::tiny(LevelScenario::A)).unwrap();
    let plrg_a = Plrg::build(&task_a);
    let mut slrg_a = Slrg::new(&task_a, &plrg_a, SLRG_BUDGET);
    let ra = search(&task_a, &plrg_a, &mut slrg_a, &RgConfig::default());
    let ra_ref = search_reference(&task_a, &plrg_a, SLRG_BUDGET, &RgConfig::default());
    assert!(ra.plan.is_none() && ra_ref.plan.is_none(), "scenario A must fail in both");

    let task_b = compile(&scenarios::tiny(LevelScenario::B)).unwrap();
    let plrg_b = Plrg::build(&task_b);
    let mut slrg_b = Slrg::new(&task_b, &plrg_b, SLRG_BUDGET);
    let rb = search(&task_b, &plrg_b, &mut slrg_b, &RgConfig::default());
    let rb_ref = search_reference(&task_b, &plrg_b, SLRG_BUDGET, &RgConfig::default());
    let (plan, cost, _) = rb.plan.expect("B solves Tiny");
    let (plan_ref, cost_ref, _) = rb_ref.plan.expect("B solves Tiny (reference)");
    assert_eq!(plan.len(), 7);
    assert_eq!(plan, plan_ref);
    assert!((cost - 7.0).abs() < 1e-9, "paper Table 2 bound: {cost}");
    assert_eq!(cost.to_bits(), cost_ref.to_bits());
}

#[test]
fn equivalence_holds_without_replay_pruning() {
    let cfg = RgConfig { replay_pruning: false, ..RgConfig::default() };
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::E] {
        let task = compile(&scenarios::tiny(sc)).unwrap();
        assert_equivalent(&task, &cfg, &format!("tiny/{sc:?}/no-pruning"));
    }
}

#[test]
fn equivalence_holds_under_plrg_and_blind_heuristics() {
    for h in [Heuristic::PlrgMax, Heuristic::Blind] {
        let cfg = RgConfig { heuristic: h, ..RgConfig::default() };
        for sc in [LevelScenario::B, LevelScenario::D] {
            let task = compile(&scenarios::tiny(sc)).unwrap();
            assert_equivalent(&task, &cfg, &format!("tiny/{sc:?}/{h:?}"));
        }
    }
}

#[test]
fn equivalence_holds_under_tight_node_budget() {
    // budget-exhaustion paths must cut off at the same node, too
    let cfg = RgConfig { max_nodes: 40, ..RgConfig::default() };
    let task = compile(&scenarios::small(LevelScenario::E)).unwrap();
    assert_equivalent(&task, &cfg, "small/E/max_nodes=40");
}

#[test]
fn equivalence_holds_with_tracing_enabled() {
    // Instrumentation must be purely observational: the full pipeline with
    // tracing on produces bit-identical plans and counters to tracing off.
    use sekitei_planner::{Planner, PlannerConfig};
    for sc in LevelScenario::ALL {
        let problem = scenarios::tiny(sc);
        let planner = Planner::new(PlannerConfig::default());
        let base = planner.plan(&problem).unwrap();

        sekitei_obs::enable();
        let traced = planner.plan(&problem).unwrap();
        let trace = sekitei_obs::take_trace();
        sekitei_obs::disable();

        let label = format!("tiny/{sc:?}/traced");
        assert_eq!(base.stats.rg_nodes, traced.stats.rg_nodes, "{label}: rg_nodes");
        assert_eq!(base.stats.rg_open_left, traced.stats.rg_open_left, "{label}: open_left");
        assert_eq!(base.stats.replay_prunes, traced.stats.replay_prunes, "{label}: prunes");
        assert_eq!(
            base.stats.candidate_rejects, traced.stats.candidate_rejects,
            "{label}: rejects"
        );
        assert_eq!(base.stats.slrg_nodes, traced.stats.slrg_nodes, "{label}: slrg nodes");
        match (&base.plan, &traced.plan) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{label}: plan text");
                assert_eq!(
                    a.cost_lower_bound.to_bits(),
                    b.cost_lower_bound.to_bits(),
                    "{label}: cost bound (bit-identical)"
                );
            }
            (a, b) => {
                panic!("{label}: plan presence differs: {:?} vs {:?}", a.is_some(), b.is_some())
            }
        }
        // the traced run actually recorded the search phases
        for phase in ["plan", "plrg", "rg"] {
            assert!(trace.span_count(phase) >= 1, "{label}: no `{phase}` span recorded");
        }
    }
}
