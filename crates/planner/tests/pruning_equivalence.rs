//! Pruning soundness suite: with the full pruning layer on (dominance,
//! node-symmetry breaking, g-aware reopening), the search must return
//! plans whose *costs* are bit-identical to the boxed reference
//! implementation — which has no pruning at all — on every scenario the
//! reference solves, and must agree on solvability everywhere else. Node
//! counts are expected (and required) to drop; the budget-exhausted rows
//! additionally pin the ≥5× reduction the pruning layer exists for.
//!
//! The randomized half drives the same comparison over fuzzed Waxman
//! topologies through the full `Planner` facade: pruning may never change
//! solvability or the cost of the returned plan.

use proptest::prelude::*;
use sekitei_compile::{compile, PlanningTask};
use sekitei_model::{
    media_domain_with, CppProblem, Goal, LevelScenario, MediaConfig, NodeId, StreamSource,
};
use sekitei_planner::reference::search_reference;
use sekitei_planner::rg::{search, RgConfig};
use sekitei_planner::{Planner, PlannerConfig, Plrg, Slrg};
use sekitei_topology::{scenarios, waxman, Capacities};

const SLRG_BUDGET: usize = 50_000;

fn pruned_cfg() -> RgConfig {
    RgConfig { dominance: true, symmetry: true, reopen: true, ..RgConfig::default() }
}

/// Reference (no pruning) vs. optimized search with the pruning layer on:
/// same solvability, bit-identical plan cost, never more nodes. Returns
/// `(reference nodes, pruned nodes)` for ratio assertions.
fn assert_cost_preserved(task: &PlanningTask, label: &str) -> (usize, usize) {
    let plrg = Plrg::build(task);
    if !plrg.solvable(task) {
        return (0, 0);
    }
    let reference = search_reference(task, &plrg, SLRG_BUDGET, &RgConfig::default());
    let mut slrg = Slrg::new(task, &plrg, SLRG_BUDGET);
    let pruned = search(task, &plrg, &mut slrg, &pruned_cfg());

    match (&reference.plan, &pruned.plan) {
        (None, None) => {}
        (Some((_, cr, _)), Some((_, cp, _))) => {
            assert_eq!(cr.to_bits(), cp.to_bits(), "{label}: plan cost must stay bit-identical");
        }
        (a, b) => panic!("{label}: solvability differs: {:?} vs {:?}", a.is_some(), b.is_some()),
    }
    assert!(
        pruned.nodes_created <= reference.nodes_created,
        "{label}: pruning grew the search ({} -> {})",
        reference.nodes_created,
        pruned.nodes_created
    );
    (reference.nodes_created, pruned.nodes_created)
}

#[test]
fn tiny_all_scenarios_keep_reference_costs() {
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::tiny(sc)).unwrap();
        assert_cost_preserved(&task, &format!("tiny/{sc:?}"));
    }
}

#[test]
fn small_all_scenarios_keep_reference_costs() {
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::small(sc)).unwrap();
        let (base, pruned) = assert_cost_preserved(&task, &format!("small/{sc:?}"));
        if sc == LevelScenario::A {
            // the budget-exhausted row the pruning layer exists for: the
            // reject budget burns ≥5× fewer nodes under drain mode
            assert!(
                pruned * 5 <= base,
                "small/A: expected a >=5x node reduction, got {base} -> {pruned}"
            );
        }
    }
}

#[test]
fn figure1_all_scenarios_keep_reference_costs() {
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::figure1(sc)).unwrap();
        assert_cost_preserved(&task, &format!("figure1/{sc:?}"));
    }
}

#[test]
fn large_solved_scenarios_keep_reference_costs() {
    // Large/A is excluded: the reference burns its full 2M-node budget
    // there (minutes in the boxed implementation); its pruned-search
    // behavior is pinned by `thread_equivalence` and the bench trajectory
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E] {
        let task = compile(&scenarios::large(sc)).unwrap();
        assert_cost_preserved(&task, &format!("large/{sc:?}"));
    }
}

// ---- randomized: pruning never changes the facade's answer ----

fn attach_media(
    net: sekitei_model::Network,
    server: NodeId,
    client: NodeId,
    sc: LevelScenario,
    demand: f64,
) -> CppProblem {
    let cfg = MediaConfig { client_demand: demand, ..MediaConfig::default() };
    let d = media_domain_with(cfg, sc);
    CppProblem {
        network: net,
        resources: d.resources,
        interfaces: d.interfaces,
        components: d.components,
        sources: vec![StreamSource::up_to("M", server, "ibw", 200.0)],
        pre_placed: vec![],
        goals: vec![Goal { component: "Client".into(), node: client }],
    }
}

fn planner(prune: bool) -> Planner {
    Planner::new(PlannerConfig {
        max_nodes: 100_000,
        max_candidate_rejects: 1_000,
        slrg_budget: 20_000,
        dominance: prune,
        symmetry: prune,
        reopen: prune,
        ..PlannerConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dominance/symmetry/reopening may thin the search tree but never the
    /// answer: identical solvability, bit-identical plan cost.
    #[test]
    fn pruning_never_prunes_the_optimal_plan(
        seed in 0u64..10_000, n in 6usize..20,
        cpu in 20.0..60.0f64, bw in 40.0..160.0f64,
        demand in 50.0..110.0f64, sc_idx in 1..5usize,
    ) {
        let caps = Capacities { node_cpu: cpu.round(), lan_bw: bw.round(), wan_bw: bw.round() };
        let net = waxman(n, 0.5, 0.3, seed, &caps);
        let sc = LevelScenario::ALL[sc_idx];
        let p = attach_media(net, NodeId(0), NodeId((n - 1) as u32), sc, demand.round());
        let base = planner(false).plan(&p).expect("compiles");
        let pruned = planner(true).plan(&p).expect("compiles");
        match (&base.plan, &pruned.plan) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(
                    x.cost_lower_bound.to_bits(),
                    y.cost_lower_bound.to_bits(),
                    "pruning changed the plan cost"
                );
            }
            (a, b) => prop_assert!(
                false,
                "pruning changed solvability: {:?} vs {:?}",
                a.is_some(),
                b.is_some()
            ),
        }
        // NOTE: no node-count monotonicity here — on reject-capped
        // unsolvable instances, pruning a candidate-producing branch can
        // legitimately postpone the reject-budget terminator and grow the
        // count. The answer (solvability + cost) is the invariant.
    }
}
