//! Property test for the sharded-interning merge of the parallel RG
//! search: interning a sequence of sets through per-worker [`StagePool`]
//! overlays over a frozen base and then committing the fresh ones back in
//! canonical sequence order must produce *exactly* the `SetId → props`
//! mapping that sequential interning of the same sequence produces — same
//! ids per element, same pool contents, same pool length.

use proptest::prelude::*;
use sekitei_model::PropId;
use sekitei_planner::pool::{SetPool, StagePool};

/// A random canonical (sorted, deduped, non-empty) proposition set over a
/// small vocabulary — small enough that duplicates across the sequence are
/// common, which is the interesting case for interning.
fn arb_set() -> impl Strategy<Value = Vec<PropId>> {
    proptest::collection::vec(0u32..24, 1..6).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(PropId).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round-robin sharding across `workers` stage overlays, then an
    /// in-order commit, equals sequential interning.
    #[test]
    fn sharded_then_merged_equals_sequential(
        base_sets in proptest::collection::vec(arb_set(), 0..12),
        round_sets in proptest::collection::vec(arb_set(), 1..40),
        workers in 1usize..5,
    ) {
        // --- sequential oracle ---
        let mut seq = SetPool::new();
        for s in &base_sets {
            seq.intern_sorted(s);
        }
        let seq_ids: Vec<_> = round_sets.iter().map(|s| seq.intern_sorted(s)).collect();

        // --- sharded: freeze the base, fan out, commit in order ---
        let mut pool = SetPool::new();
        for s in &base_sets {
            pool.intern_sorted(s);
        }
        let mut stages: Vec<StagePool> = (0..workers).map(|_| StagePool::new()).collect();
        for st in &mut stages {
            st.reset(pool.len());
        }
        // worker w interns elements w, w+workers, ... against the frozen
        // base; fresh sets surface as owned props, known ones as base ids
        let worker_out: Vec<Result<sekitei_planner::SetId, Vec<PropId>>> = round_sets
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let st = &mut stages[i % workers];
                let id = st.intern_sorted(&pool, s);
                match st.as_base(id) {
                    Some(base) => Ok(base),
                    None => Err(st.props_of(&pool, id).to_vec()),
                }
            })
            .collect();
        // the committer replays the canonical sequence order
        let par_ids: Vec<_> = worker_out
            .into_iter()
            .map(|r| match r {
                Ok(id) => id,
                Err(props) => pool.intern_sorted(&props),
            })
            .collect();

        prop_assert_eq!(&par_ids, &seq_ids, "per-element ids diverged");
        prop_assert_eq!(pool.len(), seq.len(), "pool sizes diverged");
        for i in 0..round_sets.len() {
            prop_assert_eq!(
                pool.props_of(par_ids[i]),
                seq.props_of(seq_ids[i]),
                "props behind element {} diverged", i
            );
        }
    }

    /// A stage overlay never aliases: staged ids resolve to the props that
    /// were interned, and base hits resolve through the base pool.
    #[test]
    fn stage_overlay_is_consistent(
        base_sets in proptest::collection::vec(arb_set(), 0..8),
        sets in proptest::collection::vec(arb_set(), 1..20),
    ) {
        let mut pool = SetPool::new();
        for s in &base_sets {
            pool.intern_sorted(s);
        }
        let mut stage = StagePool::new();
        stage.reset(pool.len());
        for s in &sets {
            let id = stage.intern_sorted(&pool, s);
            prop_assert_eq!(stage.props_of(&pool, id), s.as_slice());
            if let Some(base) = stage.as_base(id) {
                prop_assert_eq!(pool.props_of(base), s.as_slice());
            }
            // re-interning is stable
            prop_assert_eq!(stage.intern_sorted(&pool, s), id);
        }
    }
}
