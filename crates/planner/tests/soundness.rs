//! Property-based soundness tests: every plan the planner returns must
//! execute cleanly in the independent deployment simulator, and the
//! planner's behaviour must be deterministic.

use proptest::prelude::*;
use sekitei_model::{LevelScenario, MediaConfig};
use sekitei_planner::{Heuristic, Planner, PlannerConfig};
use sekitei_sim::validate_plan;
use sekitei_topology::scenarios;

/// Randomized media configurations over the Tiny and Small networks: any
/// returned plan must validate; the planner must never panic.
fn check_config(cfg: MediaConfig, sc: LevelScenario, small: bool) -> Result<(), TestCaseError> {
    let problem =
        if small { scenarios::small_with(cfg, sc) } else { scenarios::tiny_with(cfg, sc) };
    let planner = Planner::new(PlannerConfig {
        max_nodes: 200_000,
        max_candidate_rejects: 2_000,
        ..PlannerConfig::default()
    });
    let outcome = planner.plan(&problem).expect("compiles");
    if let Some(plan) = &outcome.plan {
        let report = validate_plan(&problem, &outcome.task, plan);
        prop_assert!(
            report.ok,
            "cfg {cfg:?} sc {sc:?}: plan failed simulation: {:?}\n{plan}",
            report.violations
        );
        // the lower bound never exceeds the real executed cost
        prop_assert!(
            plan.cost_lower_bound <= report.total_cost + 1e-6,
            "bound {} > real {}",
            plan.cost_lower_bound,
            report.total_cost
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiny_random_configs_sound(demand in 40.0..130.0f64,
                                 split in 3..8usize,
                                 ratio in 2..9usize,
                                 sc_idx in 0..5usize) {
        let cfg = MediaConfig {
            client_demand: demand.round(),
            split_t: split as f64 / 10.0,
            zip_ratio: ratio as f64 / 10.0,
            ..MediaConfig::default()
        };
        check_config(cfg, LevelScenario::ALL[sc_idx], false)?;
    }

    #[test]
    fn small_random_configs_sound(demand in 60.0..110.0f64, sc_idx in 1..5usize) {
        let cfg = MediaConfig { client_demand: demand.round(), ..MediaConfig::default() };
        check_config(cfg, LevelScenario::ALL[sc_idx], true)?;
    }

    #[test]
    fn tradeoff_sound_and_monotone(w1 in 1..40usize, w2 in 41..120usize) {
        // soundness at two weights, and the cheaper-bandwidth plan never
        // uses compression when the pricier one doesn't
        let planner = Planner::default();
        let mut compressed = Vec::new();
        for w in [w1 as f64 / 20.0, w2 as f64 / 20.0] {
            let p = scenarios::tradeoff(w);
            let o = planner.plan(&p).expect("compiles");
            let plan = o.plan.expect("tradeoff always solvable");
            let report = validate_plan(&p, &o.task, &plan);
            prop_assert!(report.ok, "w={w}: {:?}", report.violations);
            compressed.push(plan.steps.iter().any(|s| s.name.contains("Zip")));
        }
        // w2 > w1: once bandwidth is pricier, compression can only appear,
        // never disappear
        prop_assert!(compressed[1] || !compressed[0], "{compressed:?}");
    }
}

#[test]
fn planning_is_deterministic() {
    for sc in LevelScenario::ALL {
        let p = scenarios::small(sc);
        let planner = Planner::default();
        let a = planner.plan(&p).unwrap();
        let b = planner.plan(&p).unwrap();
        match (&a.plan, &b.plan) {
            (Some(x), Some(y)) => {
                let xs: Vec<_> = x.steps.iter().map(|s| &s.name).collect();
                let ys: Vec<_> = y.steps.iter().map(|s| &s.name).collect();
                assert_eq!(xs, ys, "scenario {sc:?}");
                assert_eq!(x.cost_lower_bound, y.cost_lower_bound);
            }
            (None, None) => {}
            other => panic!("nondeterministic outcome {other:?}"),
        }
        assert_eq!(a.stats.rg_nodes, b.stats.rg_nodes, "scenario {sc:?}");
        assert_eq!(a.stats.slrg_nodes, b.stats.slrg_nodes, "scenario {sc:?}");
    }
}

#[test]
fn heuristics_agree_on_optimal_cost() {
    // SLRG and PLRG-max heuristics must find equally-cheap plans (A* with
    // different admissible heuristics); only the work differs.
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::D] {
        for small in [false, true] {
            let p = if small { scenarios::small(sc) } else { scenarios::tiny(sc) };
            let reference = Planner::new(PlannerConfig::default())
                .plan(&p)
                .unwrap()
                .plan
                .unwrap()
                .cost_lower_bound;
            for h in [Heuristic::PlrgMax, Heuristic::Blind] {
                let alt = Planner::new(PlannerConfig { heuristic: h, ..PlannerConfig::default() })
                    .plan(&p)
                    .unwrap()
                    .plan
                    .unwrap()
                    .cost_lower_bound;
                assert!(
                    (reference - alt).abs() < 1e-6,
                    "scenario {sc:?} small={small} {h:?}: {reference} vs {alt}"
                );
            }
        }
    }
}

#[test]
fn replay_pruning_only_affects_work_not_result() {
    for sc in [LevelScenario::B, LevelScenario::C] {
        let p = scenarios::tiny(sc);
        let with = Planner::default().plan(&p).unwrap();
        let without =
            Planner::new(PlannerConfig { replay_pruning: false, ..PlannerConfig::default() })
                .plan(&p)
                .unwrap();
        let (pw, pwo) = (with.plan.unwrap(), without.plan.unwrap());
        assert!((pw.cost_lower_bound - pwo.cost_lower_bound).abs() < 1e-6);
        assert_eq!(pw.len(), pwo.len());
    }
}

/// Exhaustive optimality check on a micro-instance: enumerate *every*
/// action sequence up to the known plan length, keep the valid ones
/// (propositionally executable, goal-reaching, replayable from the initial
/// state and concretizable), and verify the planner's plan matches the
/// cheapest one.
#[test]
fn planner_matches_brute_force_optimum() {
    use sekitei_compile::compile;
    use sekitei_model::ActionId;
    use sekitei_planner::{concretize::concretize, replay::replay_tail};

    // micro problem: deliver M over one adequate link — direct cross works,
    // but transformations are also available (and must lose on cost)
    let cfg = MediaConfig { client_demand: 60.0, ..MediaConfig::default() };
    let mut p = scenarios::tiny_with(cfg, LevelScenario::C);
    // raise the link capacity so the direct plan is feasible
    let link = p.network.link_between(sekitei_model::NodeId(0), sekitei_model::NodeId(1)).unwrap();
    {
        // rebuild with a fatter link (Network is append-only by design)
        let mut net = sekitei_model::Network::new();
        for (_, n) in p.network.nodes() {
            net.add_node(n.name.clone(), n.resources.clone().into_iter().collect::<Vec<_>>());
        }
        let l = p.network.link(link);
        net.add_link(l.a, l.b, l.class, [(sekitei_model::resource::names::LBW, 200.0)]);
        p.network = net;
    }

    let planner = Planner::default();
    let outcome = planner.plan(&p).unwrap();
    let plan = outcome.plan.expect("solvable");
    let task = compile(&p).unwrap();

    // exhaustive search over sequences up to the planner's plan length
    let max_len = plan.len();
    let ids: Vec<ActionId> = task.action_ids().collect();
    let mut best: Option<f64> = None;
    let mut stack: Vec<(Vec<ActionId>, Vec<bool>, f64)> = vec![(
        Vec::new(),
        {
            let mut s = vec![false; task.num_props()];
            for &ip in &task.init_props {
                s[ip.index()] = true;
            }
            s
        },
        0.0,
    )];
    while let Some((seq, state, cost)) = stack.pop() {
        if task.goal_props.iter().all(|g| state[g.index()]) {
            // candidate: must replay and concretize like the planner's own
            if let Ok(map) = replay_tail(&task, &seq, Some(&task.init_values)) {
                if concretize(&task, &seq, &map).is_ok() {
                    best = Some(best.map_or(cost, |b: f64| b.min(cost)));
                }
            }
        }
        if seq.len() == max_len {
            continue;
        }
        for &a in &ids {
            let act = task.action(a);
            if !act.preconds.iter().all(|p| state[p.index()]) {
                continue;
            }
            if act.adds.iter().all(|p| state[p.index()]) {
                continue; // no logical progress — skip to bound the search
            }
            let mut s2 = state.clone();
            for &ad in &act.adds {
                s2[ad.index()] = true;
            }
            let mut seq2 = seq.clone();
            seq2.push(a);
            stack.push((seq2, s2, cost + act.cost));
        }
    }

    let brute = best.expect("brute force must find a plan too");
    assert!(
        (plan.cost_lower_bound - brute).abs() < 1e-9,
        "planner {} vs brute-force optimum {}",
        plan.cost_lower_bound,
        brute
    );
    // and on this fat link the direct 2-action plan is the optimum
    assert_eq!(plan.len(), 2, "{plan}");
}

#[test]
fn rg_node_budget_reports_exhaustion() {
    // an absurdly small node budget cannot finish the Small search, and
    // the stats must say so instead of silently claiming unsolvability
    let p = scenarios::small(LevelScenario::C);
    let o =
        Planner::new(PlannerConfig { max_nodes: 3, ..PlannerConfig::default() }).plan(&p).unwrap();
    assert!(o.plan.is_none());
    assert!(o.stats.budget_exhausted);
}

#[test]
fn slrg_budget_only_slows_never_misleads() {
    // a starved SLRG budget degrades the heuristic to admissible lower
    // bounds: the plan and its cost must not change
    let p = scenarios::small(LevelScenario::C);
    let rich = Planner::new(PlannerConfig::default()).plan(&p).unwrap().plan.unwrap();
    let starved = Planner::new(PlannerConfig { slrg_budget: 3, ..PlannerConfig::default() })
        .plan(&p)
        .unwrap()
        .plan
        .unwrap();
    assert_eq!(rich.len(), starved.len());
    assert!((rich.cost_lower_bound - starved.cost_lower_bound).abs() < 1e-9);
}
