//! Cross-thread determinism suite: the batch-synchronous parallel RG
//! search (`--search-threads N`) must return the *same* answer as the
//! sequential search for every thread count — identical plan actions,
//! bit-identical cost lower bound and admissible frontier bound, and
//! identical RG counters (nodes, expansions, prunes, rejects, open list).
//! Only wall-clock timing and the purely observational `par_*` metrics may
//! differ. The `1`-thread run is additionally pinned to the boxed
//! reference implementation, anchoring the whole chain
//! `reference ≡ sequential ≡ parallel(N)`.

use sekitei_compile::{compile, PlanningTask};
use sekitei_model::LevelScenario;
use sekitei_planner::reference::search_reference;
use sekitei_planner::rg::{search_with_threads, Heuristic, RgConfig, RgResult};
use sekitei_planner::{Plrg, Slrg};
use sekitei_topology::scenarios;

const SLRG_BUDGET: usize = 50_000;
const THREADS: [usize; 3] = [2, 4, 8];

fn run(task: &PlanningTask, cfg: &RgConfig, threads: usize) -> Option<RgResult> {
    let plrg = Plrg::build(task);
    if !plrg.solvable(task) {
        return None;
    }
    let mut slrg = Slrg::new(task, &plrg, SLRG_BUDGET);
    Some(search_with_threads(task, &plrg, &mut slrg, cfg, threads))
}

fn assert_same(seq: &RgResult, par: &RgResult, label: &str) {
    assert_eq!(seq.nodes_created, par.nodes_created, "{label}: nodes_created");
    assert_eq!(seq.expansions, par.expansions, "{label}: expansions");
    assert_eq!(seq.open_left, par.open_left, "{label}: open_left");
    assert_eq!(seq.replay_prunes, par.replay_prunes, "{label}: replay_prunes");
    assert_eq!(seq.candidate_rejects, par.candidate_rejects, "{label}: candidate_rejects");
    assert_eq!(seq.budget_exhausted, par.budget_exhausted, "{label}: budget_exhausted");
    assert_eq!(seq.deadline_hit, par.deadline_hit, "{label}: deadline_hit");
    assert_eq!(seq.dominance_pruned, par.dominance_pruned, "{label}: dominance_pruned");
    assert_eq!(seq.symmetry_pruned, par.symmetry_pruned, "{label}: symmetry_pruned");
    assert_eq!(seq.reopened, par.reopened, "{label}: reopened");
    assert_eq!(seq.drain_mode, par.drain_mode, "{label}: drain_mode");
    assert_eq!(seq.drain_depth_pruned, par.drain_depth_pruned, "{label}: drain_depth_pruned");
    assert_eq!(
        seq.best_open_f.map(f64::to_bits),
        par.best_open_f.map(f64::to_bits),
        "{label}: best_open_f (bit-identical)"
    );
    match (&seq.plan, &par.plan) {
        (None, None) => {}
        (Some((pa, ca, _)), Some((pb, cb, _))) => {
            assert_eq!(pa, pb, "{label}: plan actions");
            assert_eq!(ca.to_bits(), cb.to_bits(), "{label}: plan cost (bit-identical)");
        }
        (a, b) => panic!("{label}: plan presence differs: {:?} vs {:?}", a.is_some(), b.is_some()),
    }
    match (&seq.fallback, &par.fallback) {
        (None, None) => {}
        (Some((pa, ca, _)), Some((pb, cb, _))) => {
            assert_eq!(pa, pb, "{label}: fallback actions");
            assert_eq!(ca.to_bits(), cb.to_bits(), "{label}: fallback cost");
        }
        (a, b) => {
            panic!("{label}: fallback presence differs: {:?} vs {:?}", a.is_some(), b.is_some())
        }
    }
}

fn check(task: &PlanningTask, cfg: &RgConfig, label: &str) {
    let Some(seq) = run(task, cfg, 1) else { return };
    for threads in THREADS {
        let par = run(task, cfg, threads).expect("solvability is thread-independent");
        assert_same(&seq, &par, &format!("{label}/t{threads}"));
    }
}

#[test]
fn tiny_all_scenarios_all_thread_counts() {
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::tiny(sc)).unwrap();
        check(&task, &RgConfig::default(), &format!("tiny/{sc:?}/default"));
    }
}

#[test]
fn small_all_scenarios_all_thread_counts() {
    // Small/A burns its full candidate-reject budget; cap nodes so the
    // suite stays fast while still exercising the exhaustion path at
    // every thread count.
    let cfg = RgConfig { max_nodes: 20_000, ..RgConfig::default() };
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::small(sc)).unwrap();
        check(&task, &cfg, &format!("small/{sc:?}/capped"));
    }
}

#[test]
fn pruning_layer_matches_across_thread_counts() {
    // full pruning stack — dominance, symmetry breaking, g-reopening and
    // (on Small/A, which exhausts its reject budget) the drain-mode flip
    // with its coarse symmetry and depth horizon — must replay
    // identically at every thread count
    let cfg = RgConfig { dominance: true, symmetry: true, reopen: true, ..RgConfig::default() };
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::small(sc)).unwrap();
        check(&task, &cfg, &format!("small/{sc:?}/pruned"));
    }
}

#[test]
fn heuristics_match_across_thread_counts() {
    for h in [Heuristic::PlrgMax, Heuristic::Blind] {
        let cfg = RgConfig { heuristic: h, max_nodes: 20_000, ..RgConfig::default() };
        for sc in [LevelScenario::B, LevelScenario::D] {
            let task = compile(&scenarios::tiny(sc)).unwrap();
            check(&task, &cfg, &format!("tiny/{sc:?}/{h:?}"));
        }
    }
}

#[test]
fn no_replay_pruning_matches_across_thread_counts() {
    let cfg = RgConfig { replay_pruning: false, ..RgConfig::default() };
    for sc in [LevelScenario::B, LevelScenario::C, LevelScenario::E] {
        let task = compile(&scenarios::tiny(sc)).unwrap();
        check(&task, &cfg, &format!("tiny/{sc:?}/no-pruning"));
    }
}

#[test]
fn tight_budgets_cut_off_identically() {
    // budget exhaustion must trip at the same committed pop / node for
    // every thread count, and report the same admissible bound
    for max_nodes in [40, 400] {
        let cfg = RgConfig { max_nodes, ..RgConfig::default() };
        let task = compile(&scenarios::small(LevelScenario::E)).unwrap();
        check(&task, &cfg, &format!("small/E/max_nodes={max_nodes}"));
    }
    let cfg = RgConfig { max_candidate_rejects: 3, ..RgConfig::default() };
    let task = compile(&scenarios::small(LevelScenario::A)).unwrap();
    check(&task, &cfg, "small/A/max_rejects=3");
}

#[test]
fn relaxed_fallback_matches_across_thread_counts() {
    // the degradation path: Tiny/A rejects every candidate but captures a
    // relaxed-bound fallback; it must be the same candidate at any width
    let cfg = RgConfig { relaxed_fallback: true, ..RgConfig::default() };
    let task = compile(&scenarios::tiny(LevelScenario::A)).unwrap();
    let seq = run(&task, &cfg, 1).unwrap();
    assert!(seq.fallback.is_some(), "Tiny/A must yield a degraded fallback");
    check(&task, &cfg, "tiny/A/fallback");
}

#[test]
fn parallel_matches_boxed_reference_on_tiny() {
    // close the chain: parallel(4) against the original boxed-SetKey
    // implementation directly, not just via the sequential middleman
    for sc in LevelScenario::ALL {
        let task = compile(&scenarios::tiny(sc)).unwrap();
        let plrg = Plrg::build(&task);
        if !plrg.solvable(&task) {
            continue;
        }
        let cfg = RgConfig::default();
        let mut slrg = Slrg::new(&task, &plrg, SLRG_BUDGET);
        let par = search_with_threads(&task, &plrg, &mut slrg, &cfg, 4);
        let reference = search_reference(&task, &plrg, SLRG_BUDGET, &cfg);
        let label = format!("tiny/{sc:?}/vs-reference");
        assert_eq!(par.nodes_created, reference.nodes_created, "{label}: nodes_created");
        assert_eq!(par.open_left, reference.open_left, "{label}: open_left");
        assert_eq!(par.replay_prunes, reference.replay_prunes, "{label}: replay_prunes");
        assert_eq!(par.candidate_rejects, reference.candidate_rejects, "{label}: rejects");
        assert_eq!(par.expansions, reference.expansions, "{label}: expansions");
        match (&par.plan, &reference.plan) {
            (None, None) => {}
            (Some((pa, ca, _)), Some((pb, cb, _))) => {
                assert_eq!(pa, pb, "{label}: plan actions");
                assert_eq!(ca.to_bits(), cb.to_bits(), "{label}: cost");
            }
            (a, b) => {
                panic!("{label}: plan presence differs: {:?} vs {:?}", a.is_some(), b.is_some())
            }
        }
    }
}

#[test]
fn facade_plan_matches_across_thread_counts() {
    // end-to-end through the Planner facade, the way the CLI/server/churn
    // reach the knob
    use sekitei_planner::{Planner, PlannerConfig};
    for sc in LevelScenario::ALL {
        let problem = scenarios::tiny(sc);
        let base = Planner::default().plan(&problem).unwrap();
        for threads in THREADS {
            let planner =
                Planner::new(PlannerConfig { search_threads: threads, ..Default::default() });
            let out = planner.plan(&problem).unwrap();
            let label = format!("facade tiny/{sc:?}/t{threads}");
            assert_eq!(base.stats.rg_nodes, out.stats.rg_nodes, "{label}: rg_nodes");
            assert_eq!(base.stats.rg_open_left, out.stats.rg_open_left, "{label}: open_left");
            assert_eq!(base.stats.replay_prunes, out.stats.replay_prunes, "{label}: prunes");
            assert_eq!(
                base.stats.candidate_rejects, out.stats.candidate_rejects,
                "{label}: rejects"
            );
            assert_eq!(
                base.stats.best_bound.map(f64::to_bits),
                out.stats.best_bound.map(f64::to_bits),
                "{label}: best_bound"
            );
            match (&base.plan, &out.plan) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "{label}: plan text");
                    assert_eq!(
                        a.cost_lower_bound.to_bits(),
                        b.cost_lower_bound.to_bits(),
                        "{label}: cost"
                    );
                }
                (a, b) => {
                    panic!("{label}: plan presence differs: {:?} vs {:?}", a.is_some(), b.is_some())
                }
            }
        }
    }
}
