//! Phase 1 — the per-proposition logical regression graph (paper §3.2.1).
//!
//! Computes, for every ground proposition, a lower bound on the cost of
//! achieving it from the initial state, ignoring both resource restrictions
//! (beyond those already folded into action leveling) and interactions
//! between actions: the cost of an action node is its own (lower-bound)
//! cost plus the **max** over its preconditions' costs, and the cost of a
//! proposition node is the **min** over its achievers. This is the classic
//! cost fixpoint (h_max with action costs), computed with a
//! generalized-Dijkstra sweep, and is *admissible* for the later phases.
//!
//! The "graph" itself is the goal-relevant slice: propositions and actions
//! reachable forward from the initial state *and* backward-relevant to the
//! goal — its node counts are what Table 2 columns 6 reports.

use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, PropId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The computed per-proposition cost structure.
#[derive(Debug, Clone)]
pub struct Plrg {
    /// `value[p]` = lower bound on the cost of achieving `p` from the
    /// initial state (`f64::INFINITY` if logically unreachable).
    pub value: Vec<f64>,
    /// `action_value[a]` = lower bound on the cost of a cheapest action
    /// sequence ending in `a` (infinite if `a` can never fire).
    pub action_value: Vec<f64>,
    /// Goal-relevant propositions (the PLRG's proposition nodes).
    pub relevant_props: Vec<bool>,
    /// Goal-relevant actions (the PLRG's action nodes).
    pub relevant_actions: Vec<bool>,
}

impl Plrg {
    /// Build the PLRG for a compiled task.
    pub fn build(task: &PlanningTask) -> Plrg {
        let np = task.num_props();
        let na = task.num_actions();

        // precondition index: prop -> actions requiring it
        let mut consumers: Vec<Vec<ActionId>> = vec![Vec::new(); np];
        for (i, a) in task.actions.iter().enumerate() {
            for &p in &a.preconds {
                consumers[p.index()].push(ActionId::from_index(i));
            }
        }

        let mut value = vec![f64::INFINITY; np];
        let mut action_value = vec![f64::INFINITY; na];
        let mut missing: Vec<u32> = task.actions.iter().map(|a| a.preconds.len() as u32).collect();
        let mut done = vec![false; np];

        let mut heap: BinaryHeap<(Reverse<u64>, PropId)> = BinaryHeap::new();
        for &p in &task.init_props {
            value[p.index()] = 0.0;
            heap.push((Reverse(0u64), p));
        }
        // actions with no propositional preconditions fire immediately
        let fire = |a: ActionId,
                    maxpre: f64,
                    value: &mut Vec<f64>,
                    action_value: &mut Vec<f64>,
                    heap: &mut BinaryHeap<(Reverse<u64>, PropId)>| {
            let av = maxpre + task.action(a).cost;
            if av < action_value[a.index()] {
                action_value[a.index()] = av;
                for &q in &task.action(a).adds {
                    if av < value[q.index()] {
                        value[q.index()] = av;
                        heap.push((Reverse(av.to_bits()), q));
                    }
                }
            }
        };
        for (i, &m) in missing.iter().enumerate() {
            if m == 0 {
                fire(ActionId::from_index(i), 0.0, &mut value, &mut action_value, &mut heap);
            }
        }

        while let Some((Reverse(bits), p)) = heap.pop() {
            let v = f64::from_bits(bits);
            if done[p.index()] || v > value[p.index()] {
                continue;
            }
            done[p.index()] = true;
            for &a in &consumers[p.index()] {
                missing[a.index()] -= 1;
                if missing[a.index()] == 0 {
                    // p is the last (and max-cost) precondition finalized
                    fire(a, value[p.index()], &mut value, &mut action_value, &mut heap);
                }
            }
        }

        // backward relevance sweep from the goals
        let mut relevant_props = vec![false; np];
        let mut relevant_actions = vec![false; na];
        let mut stack: Vec<PropId> = Vec::new();
        for &g in &task.goal_props {
            if value[g.index()].is_finite() && !relevant_props[g.index()] {
                relevant_props[g.index()] = true;
                stack.push(g);
            }
        }
        while let Some(p) = stack.pop() {
            for &a in task.achievers(p) {
                if !action_value[a.index()].is_finite() || relevant_actions[a.index()] {
                    continue;
                }
                relevant_actions[a.index()] = true;
                for &q in &task.action(a).preconds {
                    if value[q.index()].is_finite() && !relevant_props[q.index()] {
                        relevant_props[q.index()] = true;
                        stack.push(q);
                    }
                }
            }
        }

        Plrg { value, action_value, relevant_props, relevant_actions }
    }

    /// Lower bound on the cost of achieving `p` from the initial state.
    pub fn prop_cost(&self, p: PropId) -> f64 {
        self.value[p.index()]
    }

    /// Admissible estimate for a *set* of propositions: the max of the
    /// individual bounds (ignores that achievers cannot share work).
    pub fn set_cost(&self, props: &[PropId]) -> f64 {
        props.iter().fold(0.0, |m, &p| m.max(self.value[p.index()]))
    }

    /// True iff the goal is logically reachable (paper: unreachable goal ⇒
    /// the problem has no solution, report immediately).
    pub fn solvable(&self, task: &PlanningTask) -> bool {
        task.goal_props.iter().all(|&g| self.value[g.index()].is_finite())
    }

    /// True iff the action can ever fire and contributes to the goal.
    pub fn usable(&self, a: ActionId) -> bool {
        self.relevant_actions[a.index()]
    }

    /// PLRG node counts `(proposition nodes, action nodes)` — Table 2 col 6.
    pub fn sizes(&self) -> (usize, usize) {
        (
            self.relevant_props.iter().filter(|&&b| b).count(),
            self.relevant_actions.iter().filter(|&&b| b).count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn tiny_goal_reachable_with_finite_cost() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        assert!(plrg.solvable(&task));
        let g = task.goal_props[0];
        let c = plrg.prop_cost(g);
        assert!(c.is_finite() && c > 0.0);
        // the goal cost is a lower bound on the known 7-action plan cost
        assert!(c < 60.0, "goal bound {c} unreasonably large");
    }

    #[test]
    fn init_props_cost_zero() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        for &ip in &task.init_props {
            assert_eq!(plrg.prop_cost(ip), 0.0);
        }
    }

    #[test]
    fn unreachable_when_no_source() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.sources.clear();
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        assert!(!plrg.solvable(&task));
    }

    #[test]
    fn set_cost_is_max() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let g = task.goal_props[0];
        let i = task.init_props[0];
        assert_eq!(plrg.set_cost(&[g, i]), plrg.prop_cost(g));
        assert_eq!(plrg.set_cost(&[]), 0.0);
    }

    #[test]
    fn relevance_is_subset_of_reachable() {
        let p = scenarios::small(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        for (i, &rel) in plrg.relevant_actions.iter().enumerate() {
            if rel {
                assert!(plrg.action_value[i].is_finite());
            }
        }
        let (props, actions) = plrg.sizes();
        assert!(props > 0 && actions > 0);
        assert!(props <= task.num_props());
        assert!(actions <= task.num_actions());
    }

    #[test]
    fn costs_monotone_under_level_refinement() {
        // scenario B's coarse levels give a (weakly) smaller goal bound
        // than C's finer ones — B's lower bounds sit at interval lows of 0.
        let tb = compile(&scenarios::tiny(LevelScenario::B)).unwrap();
        let tc = compile(&scenarios::tiny(LevelScenario::C)).unwrap();
        let pb = Plrg::build(&tb);
        let pc = Plrg::build(&tc);
        let gb = pb.prop_cost(tb.goal_props[0]);
        let gc = pc.prop_cost(tc.goal_props[0]);
        assert!(gb <= gc, "coarse bound {gb} should not exceed fine bound {gc}");
    }
}
