//! Plans: the planner's deliverable.

use crate::concretize::ConcreteExecution;
use sekitei_compile::{ActionKind, GVarData, PlanningTask};
use sekitei_model::{ActionId, CppProblem, LinkClass};
use std::fmt;

/// One step of a deployment plan.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The ground action.
    pub action: ActionId,
    /// Rendered name (`place(Splitter,n0)[M=1,…]`).
    pub name: String,
    /// Semantic kind.
    pub kind: ActionKind,
    /// The action's lower-bound cost contribution.
    pub cost_lb: f64,
}

/// A validated deployment plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
    /// Lower bound on the plan cost (the quantity the planner optimizes —
    /// paper §4: "our algorithm optimizes the minimum cost of the plan").
    pub cost_lower_bound: f64,
    /// The concrete greedy execution that validated the plan.
    pub execution: ConcreteExecution,
    /// True when this plan came from the graceful-degradation path (a
    /// budget or deadline tripped and the planner returned the cheapest
    /// interval-feasible candidate with relaxed source binding) rather than
    /// the optimal greedy-validated search exit.
    pub degraded: bool,
    /// The machine-checkable certificate for this plan, attached by the
    /// planning facade (and re-issued by the anytime portfolio / churn
    /// re-certification). `None` only for plans assembled outside the
    /// facade, e.g. directly from a raw RG search result in tests.
    pub certificate: Option<sekitei_cert::PlanCertificate>,
}

impl Plan {
    /// Assemble from the RG result.
    pub fn from_actions(
        task: &PlanningTask,
        actions: &[ActionId],
        cost: f64,
        execution: ConcreteExecution,
    ) -> Plan {
        let steps = actions
            .iter()
            .map(|&a| {
                let act = task.action(a);
                PlanStep {
                    action: a,
                    name: act.name.clone(),
                    kind: act.kind.clone(),
                    cost_lb: act.cost,
                }
            })
            .collect();
        Plan { steps, cost_lower_bound: cost, execution, degraded: false, certificate: None }
    }

    /// Number of actions (Table 2 col 3).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty plan (goals already satisfied).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Count of `place` steps.
    pub fn placements(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s.kind, ActionKind::Place { .. })).count()
    }

    /// Count of `cross` steps.
    pub fn crossings(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s.kind, ActionKind::Cross { .. })).count()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan ({} actions, cost ≥ {:.2}){}:",
            self.len(),
            self.cost_lower_bound,
            if self.degraded { " [degraded]" } else { "" }
        )?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>2}. {}  (cost ≥ {:.2})", i + 1, s.name, s.cost_lb)?;
        }
        Ok(())
    }
}

/// Resource-usage metrics of a concrete plan execution — Table 2 col 4 and
/// the Figure 9 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanMetrics {
    /// Maximum bandwidth reserved on any single LAN link.
    pub reserved_lan_bw: f64,
    /// Maximum bandwidth reserved on any single WAN link.
    pub reserved_wan_bw: f64,
    /// Total CPU consumed across all nodes.
    pub total_cpu: f64,
    /// Total bandwidth reserved across all links.
    pub total_bw: f64,
}

/// Compute resource metrics by differencing the concrete final state
/// against the network capacities.
pub fn plan_metrics(problem: &CppProblem, task: &PlanningTask, plan: &Plan) -> PlanMetrics {
    let mut m = PlanMetrics::default();
    for (i, gv) in task.gvars.iter().enumerate() {
        let v = sekitei_model::GVarId::from_index(i);
        let Some(&fin) = plan.execution.final_state.get(&v) else { continue };
        match gv {
            GVarData::NodeRes { res, node } => {
                let def = &problem.resources[*res as usize];
                let used = problem.network.node_capacity(*node, &def.name) - fin;
                if def.name == sekitei_model::resource::names::CPU {
                    m.total_cpu += used.max(0.0);
                }
            }
            GVarData::LinkRes { res, link } => {
                let def = &problem.resources[*res as usize];
                let used = (problem.network.link_capacity(*link, &def.name) - fin).max(0.0);
                if def.name == sekitei_model::resource::names::LBW {
                    m.total_bw += used;
                    match problem.network.link(*link).class {
                        LinkClass::Lan => m.reserved_lan_bw = m.reserved_lan_bw.max(used),
                        LinkClass::Wan => m.reserved_wan_bw = m.reserved_wan_bw.max(used),
                        LinkClass::Other => {}
                    }
                }
            }
            GVarData::IfaceProp { .. } => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plrg::Plrg;
    use crate::rg::{search, RgConfig};
    use crate::slrg::Slrg;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn plan_for(sc: LevelScenario) -> (sekitei_model::CppProblem, PlanningTask, Plan) {
        let p = scenarios::tiny(sc);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 50_000);
        let r = search(&task, &plrg, &mut slrg, &RgConfig::default());
        let (actions, cost, exec) = r.plan.expect("solvable");
        let plan = Plan::from_actions(&task, &actions, cost, exec);
        (p, task, plan)
    }

    #[test]
    fn plan_shape_and_display() {
        let (_, _, plan) = plan_for(LevelScenario::C);
        assert_eq!(plan.len(), 7);
        assert_eq!(plan.placements(), 5);
        assert_eq!(plan.crossings(), 2);
        assert!(!plan.is_empty());
        let s = plan.to_string();
        assert!(s.contains("7 actions"));
        assert!(s.contains("place(Client,n1)"));
    }

    #[test]
    fn metrics_on_tiny() {
        let (p, task, plan) = plan_for(LevelScenario::C);
        let m = plan_metrics(&p, &task, &plan);
        // Z(35) + I(30) cross the single WAN link at 100 processed units
        assert!((m.reserved_wan_bw - 65.0).abs() < 1e-6, "{m:?}");
        assert_eq!(m.reserved_lan_bw, 0.0);
        // CPU: 27 at n0 (Splitter+Zip) + 27 at n1 (Unzip+Merger)
        assert!((m.total_cpu - 54.0).abs() < 1e-6, "{m:?}");
        assert!((m.total_bw - 65.0).abs() < 1e-6);
    }

    #[test]
    fn step_costs_sum_to_bound() {
        let (_, _, plan) = plan_for(LevelScenario::C);
        let sum: f64 = plan.steps.iter().map(|s| s.cost_lb).sum();
        assert!((sum - plan.cost_lower_bound).abs() < 1e-9);
    }
}
