//! Search-quality pruning primitives shared by the sequential and
//! parallel RG paths: the drain-mode dominance table over interned open
//! sets and the epoch-stamped used-node marker behind orbit symmetry
//! breaking.
//!
//! Both structures are *decision* state only — they never touch the set
//! pool, the heuristic memo or the node arena — so the parallel search can
//! keep them committer-owned and replay every verdict in commit order,
//! preserving thread-count determinism (see `crates/planner/src/rg_par.rs`).
//!
//! # Why there is no witness dominance outside drain mode
//!
//! An earlier revision also pruned *before* drain mode, with rich
//! per-set witnesses: an arrival at an already-seen open set was dropped
//! when some stored node reached it with no-larger `g`, a pointwise
//! no-tighter optimistic replay map, and a tail whose action multiset was
//! contained in the arrival's. That rule is sound for interval-level
//! feasibility — every interval-feasible completion of the arrival is an
//! interval-feasible completion of the witness at no greater cost — but
//! terminal acceptance is *not* interval-level: a candidate must replay
//! from the concrete initial state **and** survive greedy-max
//! concretization, which pushes `min(sup(level), availability, caps)`
//! through the plan *in tail order*. Greedy push amounts are neither
//! monotone under removing actions (fewer consumers ⇒ bigger pushes ⇒ a
//! squeezed link can newly overflow) nor invariant under reordering a
//! tail's actions, so a witness can shadow the one tail whose
//! concretization would have succeeded while its own candidates keep
//! getting rejected. This is not theoretical: on the Small/B repair
//! instance (WAN squeezed to 86 %), witness dominance turned a
//! 21,954-node solve into a 20,000-reject exhaustion over a million
//! nodes. Any tail-collapsing rule has this hole — even exact-multiset
//! witnesses differ in order — so dominance is confined to drain mode,
//! where lossiness is already the contract and every no-plan outcome is
//! reported as `budget_exhausted`, never as an unsolvability proof.

use crate::pool::SetId;
use sekitei_compile::{ActionKind, PlanningTask, PropData};
use sekitei_model::{ActionId, NodeId, PropId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper-bound hook for the anytime portfolio: a shared monotone incumbent
/// cost (f64 bits in an atomic, `+∞` when no incumbent exists) published
/// by the stochastic local-search lane and consulted by both RG paths at
/// pop/commit time.
///
/// Soundness: A* pops nodes in nondecreasing `f` order, so when the node
/// in hand satisfies `f > incumbent` *strictly*, every plan the remaining
/// search could return costs at least `f` — strictly worse than the
/// already-validated incumbent — and the whole search can stop. A node
/// whose `f` is below (or equal to) the incumbent is never cut, which is
/// exactly the "never prunes a node whose f is below the incumbent"
/// contract. Ties continue searching so an equal-cost exact plan is still
/// found and preferred.
///
/// The cutoff *terminates* the search rather than skipping individual
/// nodes: a skip would perturb the FIFO tie-break counters and desync the
/// sequential trajectory the parallel path replays. Termination leaves
/// the committed prefix byte-identical to an unbounded run; only where
/// the trajectory *ends* depends on the incumbent's arrival time, and the
/// planner facade's final-selection rule makes the returned plan and gap
/// invariant to that timing (see `crates/anytime`).
#[derive(Clone, Copy)]
pub struct IncumbentBound<'a>(Option<&'a AtomicU64>);

impl<'a> IncumbentBound<'a> {
    /// No incumbent sharing: every query answers "keep searching".
    pub fn none() -> Self {
        IncumbentBound(None)
    }

    /// Bound backed by a shared atomic holding `f64::to_bits` of the best
    /// validated incumbent cost (`f64::INFINITY.to_bits()` initially).
    pub fn shared(cell: &'a AtomicU64) -> Self {
        IncumbentBound(Some(cell))
    }

    /// Current incumbent cost (`+∞` when none).
    pub fn load(&self) -> f64 {
        match self.0 {
            Some(cell) => f64::from_bits(cell.load(Ordering::Relaxed)),
            None => f64::INFINITY,
        }
    }

    /// True when a node popped at `f` proves the remaining search cannot
    /// beat the incumbent (strict comparison — see the type doc).
    pub fn cuts(&self, f: f64) -> bool {
        match self.0 {
            Some(cell) => f > f64::from_bits(cell.load(Ordering::Relaxed)),
            None => false,
        }
    }
}

impl std::fmt::Debug for IncumbentBound<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IncumbentBound({})", self.load())
    }
}

struct DomEntry {
    g: f64,
    node: u32,
}

/// Drain-mode dominance table: g-aware closed-set semantics over interned
/// open sets. An arrival at an already-seen set is a duplicate whenever
/// some entry reached the set with no-larger `g`; with reopening enabled
/// a strictly cheaper arrival evicts every entry it supersedes and the
/// evicted node indices are reported so the search can drop those nodes
/// lazily when popped. This is deliberately lossy — two tails over the
/// same open set can differ in init-grounded validity and in how they
/// concretize (see the module doc) — so the search only engages it after
/// budget pressure proves the exact rules are not converging, and a
/// frontier drained in this mode reports `budget_exhausted` rather than
/// claiming an unsolvability proof.
pub(crate) struct DomTable {
    by_set: HashMap<SetId, Vec<DomEntry>>,
    reopen: bool,
}

impl DomTable {
    pub(crate) fn new(reopen: bool) -> DomTable {
        DomTable { by_set: HashMap::new(), reopen }
    }

    /// Check the arrival `(set, g)` against the table. Returns `true` when
    /// the arrival is a duplicate (caller prunes it). Otherwise the
    /// arrival is recorded under node index `node`, superseded entries are
    /// appended to `evicted`, and `false` is returned. Deterministic:
    /// entries are scanned and retained in insertion order, and nothing
    /// here reads wall-clock or map iteration order.
    pub(crate) fn check_and_insert(
        &mut self,
        set: SetId,
        g: f64,
        node: u32,
        evicted: &mut Vec<u32>,
    ) -> bool {
        let entries = self.by_set.entry(set).or_default();
        if entries.iter().any(|e| e.g <= g) {
            return true;
        }
        if self.reopen {
            // reaching this point implies g < e.g for every entry
            // (otherwise the arrival would be a duplicate), so the
            // strictly better arrival supersedes them all
            entries.retain(|e| {
                if g <= e.g {
                    evicted.push(e.node);
                    false
                } else {
                    true
                }
            });
        }
        entries.push(DomEntry { g, node });
        false
    }
}

/// Epoch-stamped set of network nodes already *used* by the current
/// expansion — mentioned by a parent-tail action or by an open
/// proposition. Symmetry breaking may only swap nodes the partial plan is
/// entirely agnostic about, and this is the agnosticism test.
pub(crate) struct UsedNodes {
    stamp: Vec<u32>,
    epoch: u32,
}

impl UsedNodes {
    pub(crate) fn new(num_nodes: usize) -> UsedNodes {
        UsedNodes { stamp: vec![0; num_nodes], epoch: 0 }
    }

    /// Start marking for a fresh expansion (O(1) reset).
    pub(crate) fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    fn mark(&mut self, n: NodeId) {
        if let Some(s) = self.stamp.get_mut(n.index()) {
            *s = self.epoch;
        }
    }

    fn used(&self, n: NodeId) -> bool {
        self.stamp.get(n.index()).is_some_and(|&s| s == self.epoch)
    }

    /// Mark the network nodes an action mentions.
    pub(crate) fn mark_action(&mut self, task: &PlanningTask, a: ActionId) {
        match &task.action(a).kind {
            ActionKind::Place { node, .. } => self.mark(*node),
            ActionKind::Cross { dir, .. } => {
                self.mark(dir.from);
                self.mark(dir.to);
            }
        }
    }

    /// Mark the network node an open proposition lives on.
    pub(crate) fn mark_prop(&mut self, task: &PlanningTask, p: PropId) {
        match task.prop(p) {
            PropData::Placed { node, .. } | PropData::Avail { node, .. } => self.mark(node),
        }
    }

    /// The orbit canonicalization rule: prune achiever `a` when it
    /// introduces a fresh (unused) node `n` that has an orbit sibling
    /// `m < n` which is also unused and not itself mentioned by `a`. The
    /// verified transposition `(m, n)` then maps the partial plan onto
    /// itself and `a` onto an equal-cost achiever of the same proposition
    /// introducing `m` instead — and along the chain of such swaps the
    /// lexicographically minimal representative is never pruned, so an
    /// equal-cost completion always survives. Orbit members share exact
    /// resource profiles and adjacency, so the swapped plan also replays,
    /// validates and greedy-concretizes identically — unlike tail
    /// dominance, symmetry breaking is exact all the way through terminal
    /// acceptance, which is why it alone runs outside drain mode.
    pub(crate) fn shadowed_by_sibling(
        &self,
        task: &PlanningTask,
        orbits: &sekitei_compile::NodeOrbits,
        a: ActionId,
    ) -> bool {
        let mentioned: [Option<NodeId>; 2] = match &task.action(a).kind {
            ActionKind::Place { node, .. } => [Some(*node), None],
            ActionKind::Cross { dir, .. } => [Some(dir.from), Some(dir.to)],
        };
        for n in mentioned.into_iter().flatten() {
            if self.used(n) {
                continue;
            }
            for &m in orbits.siblings(n) {
                if m >= n {
                    break;
                }
                if !self.used(m) && !mentioned.contains(&Some(m)) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SetPool;

    /// Distinct interned set ids for table tests.
    fn sets(n: usize) -> Vec<SetId> {
        let mut pool = SetPool::new();
        (0..n).map(|i| pool.intern(vec![PropId::from_index(i)])).collect()
    }

    #[test]
    fn closes_sets_and_reopens_on_better_g() {
        let s = sets(1)[0];
        let mut t = DomTable::new(true);
        let mut ev = Vec::new();
        // first arrival recorded
        assert!(!t.check_and_insert(s, 5.0, 1, &mut ev));
        // equal g: a duplicate
        assert!(t.check_and_insert(s, 5.0, 2, &mut ev));
        // worse g: a duplicate
        assert!(t.check_and_insert(s, 6.0, 3, &mut ev));
        assert!(ev.is_empty());
        // strictly better g evicts the closed entry and takes its place
        assert!(!t.check_and_insert(s, 4.0, 4, &mut ev));
        assert_eq!(ev, vec![1]);
        // and the new entry now closes its g
        assert!(t.check_and_insert(s, 4.5, 5, &mut ev));
    }

    #[test]
    fn without_reopen_never_evicts() {
        let mut t = DomTable::new(false);
        let s = sets(1)[0];
        let mut ev = Vec::new();
        assert!(!t.check_and_insert(s, 5.0, 1, &mut ev));
        // better g is kept as an additional entry, nothing evicted
        assert!(!t.check_and_insert(s, 4.0, 2, &mut ev));
        assert!(ev.is_empty());
        // both entries retained: an equal-g arrival is a duplicate
        assert!(t.check_and_insert(s, 5.0, 3, &mut ev));
        assert!(t.check_and_insert(s, 4.0, 4, &mut ev));
    }

    #[test]
    fn distinct_sets_do_not_interact() {
        let mut t = DomTable::new(true);
        let ids = sets(2);
        let mut ev = Vec::new();
        assert!(!t.check_and_insert(ids[0], 1.0, 1, &mut ev));
        assert!(!t.check_and_insert(ids[1], 5.0, 2, &mut ev));
        assert!(ev.is_empty());
        // each set closes independently
        assert!(t.check_and_insert(ids[0], 1.0, 3, &mut ev));
        assert!(t.check_and_insert(ids[1], 5.0, 4, &mut ev));
    }

    #[test]
    fn reopening_chain_evicts_every_superseded_entry() {
        let mut t = DomTable::new(true);
        let s = sets(1)[0];
        let mut ev = Vec::new();
        assert!(!t.check_and_insert(s, 9.0, 1, &mut ev));
        assert!(!t.check_and_insert(s, 7.0, 2, &mut ev));
        assert_eq!(ev, vec![1]);
        ev.clear();
        assert!(!t.check_and_insert(s, 3.0, 3, &mut ev));
        assert_eq!(ev, vec![2]);
    }
}
