//! Structural comparison of two deployment plans — the natural companion
//! of adaptation (`model::adapt`): after replanning, operators want to
//! know *what actually changes* — which components stay, which move,
//! which appear or disappear, and how the stream routing shifts.

use crate::plan::Plan;
use sekitei_compile::ActionKind;
use sekitei_model::{CompId, CppProblem, DirLink, IfaceId, NodeId};

/// A component that moved between plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    /// Component.
    pub comp: CompId,
    /// Where it ran before.
    pub from: NodeId,
    /// Where it runs now.
    pub to: NodeId,
}

/// Structural difference between two plans for the same (or compatible)
/// problem.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanDiff {
    /// Placements present in both plans (component, node).
    pub kept: Vec<(CompId, NodeId)>,
    /// Components that moved to a different node.
    pub moved: Vec<Move>,
    /// Placements only in the new plan.
    pub added: Vec<(CompId, NodeId)>,
    /// Placements only in the old plan.
    pub removed: Vec<(CompId, NodeId)>,
    /// Stream crossings only in the new plan.
    pub rerouted_in: Vec<(IfaceId, DirLink)>,
    /// Stream crossings only in the old plan.
    pub rerouted_out: Vec<(IfaceId, DirLink)>,
}

impl PlanDiff {
    /// True iff the plans are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.rerouted_in.is_empty()
            && self.rerouted_out.is_empty()
    }

    /// Render against a problem for component/node names.
    pub fn render(&self, problem: &CppProblem) -> String {
        use std::fmt::Write;
        let comp = |c: CompId| problem.component(c).name.clone();
        let node = |n: NodeId| problem.network.node(n).name.clone();
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("plans are structurally identical\n");
            return out;
        }
        for (c, n) in &self.kept {
            let _ = writeln!(out, "  kept    {} @ {}", comp(*c), node(*n));
        }
        for m in &self.moved {
            let _ = writeln!(out, "  moved   {}: {} → {}", comp(m.comp), node(m.from), node(m.to));
        }
        for (c, n) in &self.added {
            let _ = writeln!(out, "  added   {} @ {}", comp(*c), node(*n));
        }
        for (c, n) in &self.removed {
            let _ = writeln!(out, "  removed {} @ {}", comp(*c), node(*n));
        }
        for (i, d) in &self.rerouted_in {
            let _ = writeln!(
                out,
                "  +route  {} over {} → {}",
                problem.iface(*i).name,
                node(d.from),
                node(d.to)
            );
        }
        for (i, d) in &self.rerouted_out {
            let _ = writeln!(
                out,
                "  -route  {} over {} → {}",
                problem.iface(*i).name,
                node(d.from),
                node(d.to)
            );
        }
        out
    }
}

fn placements(plan: &Plan) -> Vec<(CompId, NodeId)> {
    plan.steps
        .iter()
        .filter_map(|s| match s.kind {
            ActionKind::Place { comp, node } => Some((comp, node)),
            _ => None,
        })
        .collect()
}

fn crossings(plan: &Plan) -> Vec<(IfaceId, DirLink)> {
    plan.steps
        .iter()
        .filter_map(|s| match s.kind {
            ActionKind::Cross { iface, dir } => Some((iface, dir)),
            _ => None,
        })
        .collect()
}

/// Compute the structural diff from `old` to `new`.
pub fn plan_diff(old: &Plan, new: &Plan) -> PlanDiff {
    let old_p = placements(old);
    let new_p = placements(new);
    let mut diff = PlanDiff::default();

    for &(c, n) in &new_p {
        if old_p.contains(&(c, n)) {
            diff.kept.push((c, n));
        } else if let Some(&(_, from)) = old_p.iter().find(|&&(oc, on)| oc == c && on != n) {
            diff.moved.push(Move { comp: c, from, to: n });
        } else {
            diff.added.push((c, n));
        }
    }
    for &(c, n) in &old_p {
        let still_placed = new_p.iter().any(|&(nc, _)| nc == c);
        if !new_p.contains(&(c, n)) && !still_placed {
            diff.removed.push((c, n));
        }
    }

    let old_x = crossings(old);
    let new_x = crossings(new);
    diff.rerouted_in = new_x.iter().filter(|x| !old_x.contains(x)).copied().collect();
    diff.rerouted_out = old_x.iter().filter(|x| !new_x.contains(x)).copied().collect();
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Planner, PlannerConfig};
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn plan_for(p: &CppProblem) -> Plan {
        Planner::new(PlannerConfig::default()).plan(p).unwrap().plan.unwrap()
    }

    #[test]
    fn identical_plans_empty_diff() {
        let p = scenarios::tiny(LevelScenario::C);
        let a = plan_for(&p);
        let b = plan_for(&p);
        let d = plan_diff(&a, &b);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(d.kept.len(), 5);
        assert!(d.render(&p).contains("identical"));
    }

    #[test]
    fn different_scenarios_show_structure_change() {
        // Small: B splits mid-path, C splits at the server — the Splitter
        // moves and the routing changes
        let pb = scenarios::small(LevelScenario::B);
        let pc = scenarios::small(LevelScenario::C);
        let b = plan_for(&pb);
        let c = plan_for(&pc);
        let d = plan_diff(&b, &c);
        assert!(!d.is_empty());
        assert!(
            d.moved.iter().any(|m| pb.component(m.comp).name == "Splitter"),
            "splitter should move: {d:?}"
        );
        assert!(!d.rerouted_in.is_empty());
        assert!(!d.rerouted_out.is_empty());
        let text = d.render(&pc);
        assert!(text.contains("moved"));
        assert!(text.contains("+route"));
    }

    #[test]
    fn added_and_removed_detected() {
        // loose vs tight deadline on the tradeoff: the crypto— er, the
        // Zip/Unzip pair appears only under the tight deadline
        let loose = scenarios::tradeoff_deadline(0.3, 100.0);
        let tight = scenarios::tradeoff_deadline(0.3, 25.0);
        let a = plan_for(&loose);
        let b = plan_for(&tight);
        let d = plan_diff(&a, &b);
        assert!(d.added.iter().any(|(c, _)| tight.component(*c).name == "Zip"), "{d:?}");
        let rev = plan_diff(&b, &a);
        assert!(rev.removed.iter().any(|(c, _)| tight.component(*c).name == "Zip"));
    }

    #[test]
    fn diff_is_symmetric_in_moved_and_kept_counts() {
        // a move from A to B reads as a move from B to A in reverse — the
        // counts (and kept placements) must agree in both directions
        let pb = scenarios::small(LevelScenario::B);
        let pc = scenarios::small(LevelScenario::C);
        let b = plan_for(&pb);
        let c = plan_for(&pc);
        let fwd = plan_diff(&b, &c);
        let rev = plan_diff(&c, &b);
        assert_eq!(fwd.moved.len(), rev.moved.len());
        assert_eq!(fwd.kept.len(), rev.kept.len());
        assert_eq!(fwd.added.len(), rev.removed.len());
        assert_eq!(fwd.removed.len(), rev.added.len());
        assert_eq!(fwd.rerouted_in.len(), rev.rerouted_out.len());
        for m in &fwd.moved {
            assert!(
                rev.moved.iter().any(|r| r.comp == m.comp && r.from == m.to && r.to == m.from),
                "reverse of {m:?} missing: {rev:?}"
            );
        }
    }

    #[test]
    fn render_output_is_stable() {
        // golden test: the rendered diff is part of the churn engine's
        // deterministic output contract, so its exact shape is pinned here
        let pb = scenarios::small(LevelScenario::B);
        let pc = scenarios::small(LevelScenario::C);
        let d = plan_diff(&plan_for(&pb), &plan_for(&pc));
        assert_eq!(
            d.render(&pc),
            "  kept    Client @ n4\n\
             \x20 moved   Splitter: n2 → n0\n\
             \x20 moved   Zip: n2 → n0\n\
             \x20 moved   Unzip: n3 → n4\n\
             \x20 moved   Merger: n3 → n4\n\
             \x20 +route  I over n0 → n1\n\
             \x20 +route  I over n1 → n2\n\
             \x20 +route  Z over n0 → n1\n\
             \x20 +route  I over n3 → n4\n\
             \x20 +route  Z over n1 → n2\n\
             \x20 +route  Z over n3 → n4\n\
             \x20 -route  M over n0 → n1\n\
             \x20 -route  M over n1 → n2\n\
             \x20 -route  M over n3 → n4\n"
        );
    }
}
