//! Phase 3 — the main regression graph (paper §3.2.3).
//!
//! A* over totally-ordered *plan tails*. Each node carries the action that
//! will execute first in its tail plus the set of propositions still to be
//! achieved before it; expanding a node regresses over the achievers of one
//! selected open proposition. Whenever a node is created, its tail is
//! replayed through the optimistic resource maps ([`crate::replay`]) and
//! pruned on failure — the early detection of resource violations that
//! distinguishes the RG from the purely logical SLRG. Because resource
//! feasibility depends on the whole tail, nodes are never shared: the RG is
//! a tree (paper: "it is not possible to reuse nodes in the RG").
//!
//! A node with an empty open set is a *candidate* plan; it is returned only
//! if its tail replays from the concrete initial state **and** the greedy
//! concretization executes exactly ([`mod@crate::concretize`]). Rejected
//! candidates simply leave the search running — this is how the planner
//! walks past plausible-but-infeasible configurations (e.g. sending raw
//! T+I through a link that can only fit the compressed pair).
//!
//! Hot-path engineering (behavior-identical to
//! [`crate::reference::search_reference`], enforced by
//! `tests/search_equivalence.rs`): node sets are interned [`SetId`]s in the
//! SLRG's shared [`crate::pool::SetPool`], the per-node mid-search replay
//! runs through the incremental [`ReplayScratch`] instead of collecting and
//! re-replaying the whole tail per child, and the full
//! [`replay_tail`]-from-init check is reserved for terminal candidate
//! validation.

use crate::concretize::{concretize, concretize_relaxed, ConcreteExecution};
use crate::plrg::Plrg;
use crate::pool::SetId;
use crate::prune::IncumbentBound;
use crate::replay::{replay_tail, ReplayScratch};
use crate::slrg::Slrg;
use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, PropId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Which remaining-cost heuristic the RG uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Heuristic {
    /// The SLRG set-cost oracle (paper's choice).
    #[default]
    Slrg,
    /// The cheaper PLRG max bound (ablation).
    PlrgMax,
    /// No heuristic at all — uniform-cost search (ablation baseline; shows
    /// what the logical phases buy).
    Blind,
}

/// RG search configuration.
#[derive(Debug, Clone, Copy)]
pub struct RgConfig {
    /// Abort after creating this many nodes.
    pub max_nodes: usize,
    /// Abort after rejecting this many candidate plans at terminal
    /// validation. An unsolvable unleveled instance (scenario A) generates
    /// candidate after candidate whose greedy-max execution fails; this is
    /// the "bound is reached" cutoff the paper mentions for that case.
    pub max_candidate_rejects: usize,
    /// Remaining-cost heuristic.
    pub heuristic: Heuristic,
    /// Replay tails through optimistic maps and prune failures
    /// (disabling this is the ablation showing why Figure 8 matters).
    pub replay_pruning: bool,
    /// Wall-clock cutoff. Checked amortized (every
    /// [`DEADLINE_CHECK_STRIDE`] units of search work) in the expansion
    /// loop; tripping it sets `budget_exhausted` and `deadline_hit` on the
    /// result. `None` (the default) never checks the clock, so the search
    /// stays bit-identical to the pre-deadline implementation — the
    /// [`crate::reference`] oracle ignores this field for the same reason.
    pub deadline: Option<Instant>,
    /// Capture a degradation fallback: when a candidate fails greedy-max
    /// concretization, additionally try
    /// [`crate::concretize::concretize_relaxed`] and keep the first
    /// candidate that binds. Purely observational — it never alters the
    /// search state, plans or counters — but costs a bounded grid scan per
    /// rejected candidate until one binds, so it defaults to off and the
    /// [`crate::reference`] oracle ignores it.
    pub relaxed_fallback: bool,
    /// Drain-mode dominance: once the drain trigger fires, drop a new
    /// node when its interned open set was already reached with no-larger
    /// `g` (closed-set semantics, see [`crate::prune::DomTable`]). Inert
    /// before drain mode — collapsing distinct tails over the same open
    /// set is unsound against the order-sensitive greedy concretizer (see
    /// `prune.rs`) — and inert without `replay_pruning`. Defaults to
    /// **off** so the plain search stays counter-identical to
    /// [`crate::reference`]; the planner facade turns it on.
    pub dominance: bool,
    /// Orbit symmetry breaking: expand only the lexicographically minimal
    /// representative among achievers that differ solely by a verified
    /// network-node automorphism ([`sekitei_compile::NodeOrbits`]). No-op
    /// on tasks without nontrivial orbits. Defaults to **off**, same
    /// reason as `dominance`.
    pub symmetry: bool,
    /// g-aware reopening: when a strictly better arrival supersedes a
    /// closed-set entry in drain mode, mark the superseded node so the
    /// search skips it if still queued. Only meaningful together with
    /// `dominance`. Also gates **drain mode** (see `drain_after_rejects`).
    pub reopen: bool,
    /// Drain-mode trigger: once this many candidate plans have been
    /// rejected at terminal validation without a single acceptance, the
    /// sound pruning rules have demonstrably stopped converging and the
    /// search switches new arrivals to g-aware closed-set duplicate
    /// detection over interned sets, with symmetry coarsened to the
    /// unverified signature classes ([`PlanningTask::sig_classes`]). Plans
    /// found afterwards still validate against the initial state (always
    /// sound), but a frontier drained in this mode reports
    /// `budget_exhausted` instead of an unsolvability proof. The default
    /// sits 20× above the largest reject count any solvable benchmark
    /// scenario reaches, so previously-solved instances never engage it.
    /// Needs `dominance` + `reopen` + `replay_pruning`.
    pub drain_after_rejects: usize,
    /// Node-count drain trigger, for searches that drown in breadth
    /// without ever completing candidates (Large/A reaches 3 candidates in
    /// 2M nodes). Same semantics as `drain_after_rejects`; the default is
    /// ~8× the node count of the largest solved benchmark scenario.
    pub drain_after_nodes: usize,
    /// Drain-mode depth horizon: open nodes whose tails already hold this
    /// many actions are cut instead of expanded. Without a horizon the
    /// duplicate-action rule is the only depth bound, and on an unleveled
    /// task that is the total ground-action count — a regress chain
    /// thousands of actions deep that keeps minting fresh open sets
    /// faster than closure retires them: Large/A drains in ~3 s under a
    /// 16-action horizon, needs 80 s at 24, and never converges at 32.
    /// Solved benchmark plans stay comfortably inside the default.
    pub drain_depth: usize,
}

/// Amortization stride of the wall-clock deadline check: one `Instant::now`
/// per this many node creations + expansions, bounding both the overshoot
/// past the deadline and the syscall overhead when no deadline is set.
pub const DEADLINE_CHECK_STRIDE: usize = 1024;

impl Default for RgConfig {
    fn default() -> Self {
        RgConfig {
            max_nodes: 2_000_000,
            max_candidate_rejects: 20_000,
            heuristic: Heuristic::Slrg,
            replay_pruning: true,
            deadline: None,
            relaxed_fallback: false,
            dominance: false,
            symmetry: false,
            reopen: false,
            drain_after_rejects: 2_000,
            drain_after_nodes: 250_000,
            drain_depth: 16,
        }
    }
}

/// Outcome of the RG search.
#[derive(Debug)]
pub struct RgResult {
    /// The plan (execution-ordered actions), its cost lower bound and its
    /// concrete execution — `None` when no plan was found.
    pub plan: Option<(Vec<ActionId>, f64, ConcreteExecution)>,
    /// Nodes created (Table 2 col 8, first number).
    pub nodes_created: usize,
    /// Nodes still open when the solution was found (col 8, second number).
    pub open_left: usize,
    /// Nodes discarded by optimistic-map replay.
    pub replay_prunes: usize,
    /// Nodes never created because drain-mode duplicate detection closed
    /// their open set at no-larger `g` ([`RgConfig::dominance`]).
    pub dominance_pruned: usize,
    /// Achievers skipped by orbit symmetry breaking
    /// ([`RgConfig::symmetry`]).
    pub symmetry_pruned: usize,
    /// Closed-set entries superseded by strictly better arrivals in drain
    /// mode ([`RgConfig::reopen`]); the superseded nodes are skipped when
    /// popped.
    pub reopened: usize,
    /// Candidate plans rejected by terminal validation/concretization.
    pub candidate_rejects: usize,
    /// True when the search escalated to lossy closed-set drain mode
    /// ([`RgConfig::drain_after_rejects`]); such a run's missing plan is a
    /// budget verdict, never an unsolvability proof.
    pub drain_mode: bool,
    /// Open nodes cut by the drain-mode depth horizon
    /// ([`RgConfig::drain_depth`]).
    pub drain_depth_pruned: usize,
    /// Nodes expanded.
    pub expansions: usize,
    /// True when the node budget was exhausted.
    pub budget_exhausted: bool,
    /// True when the wall-clock deadline tripped (implies
    /// `budget_exhausted`).
    pub deadline_hit: bool,
    /// True when the search stopped because the popped node's `f` strictly
    /// exceeded a shared anytime incumbent cost
    /// ([`crate::prune::IncumbentBound`]): a *proof* that no remaining plan
    /// beats the incumbent, not a budget verdict. Never set outside
    /// anytime mode.
    pub incumbent_cutoff: bool,
    /// The root heuristic `h(goal)` — an admissible lower bound on *any*
    /// plan's cost that, unlike `best_open_f`, does not depend on where a
    /// wall-clock deadline happened to land, so deadline-hit gap reporting
    /// stays run-to-run deterministic. `0.0` when the search never seeded
    /// a root (trivial or empty-goal tasks), `+∞` when the goal is
    /// logically unsolvable.
    pub root_h: f64,
    /// Minimum `f` over the open list at exit when no plan was returned —
    /// an admissible lower bound on the cost of any plan the truncated
    /// search could still have found. `None` when a plan was returned or
    /// the open list drained.
    pub best_open_f: Option<f64>,
    /// The cheapest rejected candidate that
    /// [`crate::concretize::concretize_relaxed`] managed to bind (tail,
    /// cost lower bound, relaxed execution) — the degraded serving path's
    /// answer. Candidates pop in `g` order (`h(∅) = 0`), so the first
    /// bindable one is the cheapest. Only populated when
    /// [`RgConfig::relaxed_fallback`] is on; interval replay is optimistic,
    /// so many rejected tails bind at *no* concrete value and are skipped.
    pub fallback: Option<(Vec<ActionId>, f64, ConcreteExecution)>,
    /// Cumulative wall time of terminal candidate validation (full replay
    /// from the initial state plus greedy concretization) — the
    /// "concretize" phase of the profile breakdown. Purely observational.
    pub concretize_time: std::time::Duration,
    /// Candidate plans validated (accepted + rejected).
    pub concretize_calls: usize,
    /// Batch-synchronous rounds executed by the parallel search
    /// ([`crate::rg_par`]); 0 for the sequential path. Purely
    /// observational, like the remaining `par_*` fields.
    pub par_rounds: usize,
    /// Frontier entries committed across all parallel rounds (divide by
    /// `par_rounds` for the realized batch width).
    pub par_batch_nodes: usize,
    /// Speculative expansions computed by workers but never consumed by
    /// the commit loop before the search ended.
    pub par_spec_waste: usize,
    /// Cumulative wall time of the parallel fan-out phases (packet build,
    /// dispatch, worker expansion, result collection).
    pub par_expand_time: std::time::Duration,
    /// Cumulative wall time of the commit/merge phases (ordered re-intern
    /// of staged sets, memo merge, heap pushes).
    pub par_merge_time: std::time::Duration,
}

impl RgResult {
    pub(crate) fn empty() -> RgResult {
        RgResult {
            plan: None,
            nodes_created: 0,
            open_left: 0,
            replay_prunes: 0,
            dominance_pruned: 0,
            symmetry_pruned: 0,
            reopened: 0,
            candidate_rejects: 0,
            drain_mode: false,
            drain_depth_pruned: 0,
            expansions: 0,
            budget_exhausted: false,
            deadline_hit: false,
            incumbent_cutoff: false,
            root_h: 0.0,
            best_open_f: None,
            fallback: None,
            concretize_time: std::time::Duration::ZERO,
            concretize_calls: 0,
            par_rounds: 0,
            par_batch_nodes: 0,
            par_spec_waste: 0,
            par_expand_time: std::time::Duration::ZERO,
            par_merge_time: std::time::Duration::ZERO,
        }
    }
}

pub(crate) struct RgNode {
    pub(crate) action: ActionId,
    pub(crate) parent: u32, // u32::MAX = root
    pub(crate) set: SetId,
    pub(crate) g: f64,
    /// Tail length (root = 0); lets drain mode apply its depth horizon
    /// without walking the parent chain.
    pub(crate) depth: u32,
}

pub(crate) const ROOT: u32 = u32::MAX;

/// Run the RG search on `threads` worker threads. `threads <= 1` is the
/// plain sequential [`search`]; more dispatches to the batch-synchronous
/// parallel search ([`crate::rg_par`]), whose returned plan, counters and
/// admissible bound are identical to the sequential path for every thread
/// count (see `tests/thread_equivalence.rs`).
pub fn search_with_threads(
    task: &PlanningTask,
    plrg: &Plrg,
    slrg: &mut Slrg<'_>,
    cfg: &RgConfig,
    threads: usize,
) -> RgResult {
    search_with_threads_bounded(task, plrg, slrg, cfg, threads, IncumbentBound::none())
}

/// [`search_with_threads`] with an anytime incumbent upper bound shared
/// with a concurrently-running SLS lane (see [`crate::prune::IncumbentBound`]
/// for the soundness and determinism contract).
pub fn search_with_threads_bounded(
    task: &PlanningTask,
    plrg: &Plrg,
    slrg: &mut Slrg<'_>,
    cfg: &RgConfig,
    threads: usize,
    incumbent: IncumbentBound<'_>,
) -> RgResult {
    if threads <= 1 {
        search_bounded(task, plrg, slrg, cfg, incumbent)
    } else {
        crate::rg_par::search(task, plrg, slrg, cfg, threads, incumbent)
    }
}

/// Run the RG search.
pub fn search(task: &PlanningTask, plrg: &Plrg, slrg: &mut Slrg<'_>, cfg: &RgConfig) -> RgResult {
    search_bounded(task, plrg, slrg, cfg, IncumbentBound::none())
}

/// [`search`] with an anytime incumbent upper bound.
pub fn search_bounded(
    task: &PlanningTask,
    plrg: &Plrg,
    slrg: &mut Slrg<'_>,
    cfg: &RgConfig,
    incumbent: IncumbentBound<'_>,
) -> RgResult {
    let mut result = RgResult::empty();

    let goal_props: Vec<PropId> =
        task.goal_props.iter().copied().filter(|&p| !task.initially(p)).collect();

    // the virtual root: nothing executed yet, the goal set open
    if goal_props.is_empty() {
        // goals already satisfied: the empty plan, executed trivially
        let exec = concretize(task, &[], &std::collections::HashMap::new())
            .expect("empty plan always executes");
        result.plan = Some((Vec::new(), 0.0, exec));
        return result;
    }
    let goal = slrg.pool_mut().intern(goal_props);

    let mut nodes: Vec<RgNode> = Vec::new();
    // (Reverse(f), g_bits: deeper-first tie-break, Reverse(counter), idx)
    let mut open: BinaryHeap<(Reverse<u64>, u64, Reverse<u64>, u32)> = BinaryHeap::new();
    let mut counter = 0u64;

    let h_of = |slrg: &mut Slrg<'_>, set: SetId| -> f64 {
        match cfg.heuristic {
            Heuristic::Slrg => slrg.achievement_cost_id(set).bound,
            Heuristic::PlrgMax => plrg.set_cost(slrg.pool().props_of(set)),
            // even blind search must skip logically-dead sets
            Heuristic::Blind => {
                if plrg.set_cost(slrg.pool().props_of(set)).is_finite() {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    };

    let h0 = h_of(slrg, goal);
    result.root_h = h0;
    if !h0.is_finite() {
        return result; // logically unsolvable
    }
    nodes.push(RgNode { action: ActionId(0), parent: ROOT, set: goal, g: 0.0, depth: 0 });
    result.nodes_created += 1;
    open.push((Reverse(h0.to_bits()), 0f64.to_bits(), Reverse(counter), 0));

    let mut scratch = ReplayScratch::new(task);
    let mut parent_tail: Vec<ActionId> = Vec::new();
    // search-work units (expansions + node creations) since the last
    // wall-clock check; only maintained when a deadline is set
    let mut work_since_check = 0usize;

    // pruning layer (all off at RgConfig::default())
    let dom_on = cfg.dominance && cfg.replay_pruning;
    let sym_on = cfg.symmetry && task.orbits.nontrivial();
    // drain mode escalates duplicate detection and coarsens symmetry; the
    // flip is a pure function of committed counters, so the parallel path
    // replays it deterministically in commit order
    let drain_enabled = dom_on && cfg.reopen;
    let sym_drain_on = cfg.symmetry && task.sig_classes.nontrivial();
    let mut drain = false;
    let mut dom = crate::prune::DomTable::new(cfg.reopen);
    let mut dominated: Vec<bool> = vec![false]; // parallel to `nodes`
    let mut evicted: Vec<u32> = Vec::new();
    let mut used = crate::prune::UsedNodes::new(task.orbits.num_nodes());

    'search: while let Some((Reverse(f_bits), _, _, idx)) = open.pop() {
        // A* pops nodes in f order, so the f of the node in hand is a sound
        // lower bound on every solution not yet returned. The cutoff breaks
        // below consume this node without resolving it, so they must report
        // its f — not `open.peek()`, which can be strictly larger.
        let popped_f = f64::from_bits(f_bits);
        if result.nodes_created >= cfg.max_nodes {
            result.budget_exhausted = true;
            result.best_open_f = Some(popped_f);
            break;
        }
        if let Some(deadline) = cfg.deadline {
            work_since_check += 1;
            if work_since_check >= DEADLINE_CHECK_STRIDE {
                work_since_check = 0;
                if Instant::now() >= deadline {
                    result.budget_exhausted = true;
                    result.deadline_hit = true;
                    result.best_open_f = Some(popped_f);
                    break;
                }
            }
        }
        // anytime incumbent cutoff: strictly past the incumbent, nothing
        // left in the frontier can beat it — a proof, not a budget verdict
        if incumbent.cuts(popped_f) {
            result.incumbent_cutoff = true;
            result.best_open_f = Some(popped_f);
            break;
        }
        if drain_enabled
            && !drain
            && (result.candidate_rejects >= cfg.drain_after_rejects
                || result.nodes_created >= cfg.drain_after_nodes)
        {
            drain = true;
            result.drain_mode = true;
        }
        if dom_on && dominated[idx as usize] {
            continue; // superseded by a strictly better arrival at its set
        }
        let (set, g, depth) = {
            let n = &nodes[idx as usize];
            (n.set, n.g, n.depth)
        };
        // drain-mode depth horizon: the unleveled abstraction admits
        // non-repeating action chains as deep as the whole ground action
        // set, an abyss no amount of duplicate detection can drain; plans
        // worth validating are orders of magnitude shorter
        if drain && set != SetId::EMPTY && depth >= cfg.drain_depth as u32 {
            result.drain_depth_pruned += 1;
            continue;
        }
        result.expansions += 1;

        if set == SetId::EMPTY {
            // candidate plan: validate from the initial state
            let t_cand = Instant::now();
            let mut solved = false;
            let tail = collect_tail(&nodes, idx);
            match replay_tail(task, &tail, Some(&task.init_values)) {
                Ok(map) => match concretize(task, &tail, &map) {
                    Ok(exec) => {
                        result.plan = Some((tail, g, exec));
                        solved = true;
                    }
                    Err(_) => {
                        result.candidate_rejects += 1;
                        // degraded serving path: keep the cheapest rejected
                        // candidate whose sources bind at relaxed values
                        if cfg.relaxed_fallback && result.fallback.is_none() {
                            if let Ok(exec) = concretize_relaxed(task, &tail, &map) {
                                result.fallback = Some((tail, g, exec));
                            }
                        }
                    }
                },
                Err(_) => {
                    result.candidate_rejects += 1;
                }
            }
            result.concretize_calls += 1;
            result.concretize_time += t_cand.elapsed();
            if solved {
                break;
            }
            if result.candidate_rejects >= cfg.max_candidate_rejects {
                result.budget_exhausted = true;
                result.best_open_f = Some(popped_f);
                break;
            }
            continue;
        }

        // collected once per expansion: serves the duplicate-action check
        // and seeds the incremental replay for every child
        collect_tail_into(&nodes, idx, &mut parent_tail);
        if cfg.replay_pruning {
            scratch.begin_expansion(&parent_tail);
        }
        let sym_here = if drain { sym_drain_on } else { sym_on };
        let orbit_table = if drain { &task.sig_classes } else { &task.orbits };
        if sym_here {
            used.begin();
            for &aid in &parent_tail {
                used.mark_action(task, aid);
            }
            for &p in slrg.pool().props_of(set) {
                used.mark_prop(task, p);
            }
        }

        // branch on the open proposition with the largest PLRG bound
        let target = select_prop(plrg, slrg.pool().props_of(set));
        for &a in task.achievers(target) {
            if !plrg.usable(a) {
                continue;
            }
            // A ground action never needs to appear twice in one tail:
            // repeating a placement or a crossing re-adds propositions that
            // are already guaranteed and (with `Set`/`Sub` numeric effects)
            // never delivers more than the first occurrence. Pruning
            // repeats bounds tail depth by the action count and kills the
            // cross-ping-pong regression ladders that would otherwise make
            // unsolvable instances (scenario A) run forever.
            if parent_tail.contains(&a) {
                continue;
            }
            // symmetry breaking runs before regression so pruned children
            // never intern sets (keeps the pool identical across thread
            // counts in the parallel path)
            if sym_here && used.shadowed_by_sibling(task, orbit_table, a) {
                result.symmetry_pruned += 1;
                continue;
            }
            let act = task.action(a);
            let child_set =
                slrg.pool_mut().regress(set, &act.adds, &act.preconds, |p| task.initially(p));
            let g2 = g + act.cost;
            let h = h_of(slrg, child_set);
            if !h.is_finite() {
                continue;
            }
            if cfg.replay_pruning {
                if scratch.child_tail_fails(task, a, &parent_tail) {
                    result.replay_prunes += 1;
                    continue;
                }
                // g-aware duplicate detection fires only in drain mode:
                // collapsing distinct tails over the same open set is
                // unsound against the order-sensitive greedy concretizer
                // (see prune.rs), so the pre-drain search keeps every
                // replay-feasible tail. Candidates (empty set) always go
                // to terminal validation — dominance never gates them.
                if drain && dom_on && child_set != SetId::EMPTY {
                    evicted.clear();
                    if dom.check_and_insert(child_set, g2, nodes.len() as u32, &mut evicted) {
                        result.dominance_pruned += 1;
                        continue;
                    }
                    for &e in &evicted {
                        dominated[e as usize] = true;
                        result.reopened += 1;
                    }
                }
            }
            let child_idx = nodes.len() as u32;
            nodes.push(RgNode { action: a, parent: idx, set: child_set, g: g2, depth: depth + 1 });
            dominated.push(false);
            result.nodes_created += 1;
            if cfg.deadline.is_some() {
                work_since_check += 1;
            }
            counter += 1;
            open.push((Reverse((g2 + h).to_bits()), g2.to_bits(), Reverse(counter), child_idx));
            if nodes.len() >= cfg.max_nodes {
                result.budget_exhausted = true;
                break 'search;
            }
        }
    }
    result.open_left = open.len();
    if result.plan.is_none() && result.best_open_f.is_none() {
        // budget tripped mid-expansion (all of the popped node's children are
        // back in `open`) or the frontier drained naturally: `open.peek()` is
        // the sound bound, and `None` on an empty frontier proves
        // infeasibility.
        result.best_open_f = open.peek().map(|&(Reverse(f_bits), ..)| f64::from_bits(f_bits));
    }
    // a frontier drained under lossy closed-set semantics is a budget
    // verdict, not an unsolvability proof — branches were merged on set
    // identity alone
    if result.drain_mode && result.plan.is_none() {
        result.budget_exhausted = true;
    }
    result
}

/// Plan tail of a node in execution order: the node's own action runs
/// first, the root's child's action runs last.
pub(crate) fn collect_tail(nodes: &[RgNode], idx: u32) -> Vec<ActionId> {
    let mut tail = Vec::new();
    collect_tail_into(nodes, idx, &mut tail);
    tail
}

pub(crate) fn collect_tail_into(nodes: &[RgNode], mut idx: u32, tail: &mut Vec<ActionId>) {
    tail.clear();
    loop {
        let n = &nodes[idx as usize];
        if n.parent == ROOT {
            break; // the seeded root carries the goal set, not an action
        }
        tail.push(n.action);
        idx = n.parent;
    }
}

pub(crate) fn select_prop(plrg: &Plrg, props: &[PropId]) -> PropId {
    *props
        .iter()
        .max_by(|&&a, &&b| {
            plrg.prop_cost(a).partial_cmp(&plrg.prop_cost(b)).unwrap().then(a.cmp(&b))
        })
        .expect("non-empty set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn run(sc: LevelScenario) -> (PlanningTask, RgResult) {
        let p = scenarios::tiny(sc);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 50_000);
        let r = search(&task, &plrg, &mut slrg, &RgConfig::default());
        (task, r)
    }

    #[test]
    fn scenario_a_finds_no_plan() {
        let (_, r) = run(LevelScenario::A);
        assert!(r.plan.is_none(), "greedy scenario A must fail (paper §4.1)");
        assert!(!r.budget_exhausted);
        assert!(r.candidate_rejects > 0 || r.replay_prunes > 0);
    }

    #[test]
    fn scenario_b_finds_seven_action_plan() {
        let (task, r) = run(LevelScenario::B);
        let (plan, cost, _) = r.plan.expect("scenario B solves Tiny");
        assert_eq!(plan.len(), 7, "paper Table 2: 7 actions");
        // every action costs exactly 1 at level-lows of 0 ⇒ bound = 7
        assert!((cost - 7.0).abs() < 1e-9, "paper Table 2: lower bound 7, got {cost}");
        let names: Vec<_> = plan.iter().map(|&a| task.action(a).name.clone()).collect();
        assert!(names.iter().any(|n| n.contains("place(Splitter,n0)")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("place(Zip,n0)")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("cross(Z,n0→n1)")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("cross(I,n0→n1)")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("place(Unzip,n1)")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("place(Merger,n1)")), "{names:?}");
        assert!(names.last().unwrap().contains("place(Client,n1)"), "{names:?}");
    }

    #[test]
    fn scenario_c_same_plan_higher_bound() {
        let (_, r) = run(LevelScenario::C);
        let (plan, cost, exec) = r.plan.expect("scenario C solves Tiny");
        assert_eq!(plan.len(), 7);
        assert!(cost > 7.0, "C's bound reflects real bandwidth: {cost}");
        // processes 100 units (paper §4.2)
        assert!((exec.source_values[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn plan_ends_with_goal_achiever() {
        let (task, r) = run(LevelScenario::D);
        let (plan, _, _) = r.plan.unwrap();
        let last = task.action(*plan.last().unwrap());
        assert!(last.adds.iter().any(|&p| task.goal_props.contains(&p)));
    }

    #[test]
    fn replay_pruning_off_still_sound() {
        let p = scenarios::tiny(LevelScenario::B);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 50_000);
        let cfg = RgConfig { replay_pruning: false, ..RgConfig::default() };
        let r = search(&task, &plrg, &mut slrg, &cfg);
        let (plan, _, _) = r.plan.expect("still solvable without replay pruning");
        assert_eq!(plan.len(), 7);
        assert_eq!(r.replay_prunes, 0);
    }

    #[test]
    fn plrg_heuristic_finds_same_cost() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 50_000);
        let slrg_cost = search(&task, &plrg, &mut slrg, &RgConfig::default()).plan.unwrap().1;
        let mut slrg2 = Slrg::new(&task, &plrg, 50_000);
        let cfg = RgConfig { heuristic: Heuristic::PlrgMax, ..RgConfig::default() };
        let plrg_cost = search(&task, &plrg, &mut slrg2, &cfg).plan.unwrap().1;
        assert!((slrg_cost - plrg_cost).abs() < 1e-9, "{slrg_cost} vs {plrg_cost}");
    }

    #[test]
    fn pruning_flags_preserve_tiny_outcomes() {
        for sc in LevelScenario::ALL {
            let p = scenarios::tiny(sc);
            let task = compile(&p).unwrap();
            let plrg = Plrg::build(&task);
            let mut slrg = Slrg::new(&task, &plrg, 50_000);
            let base = search(&task, &plrg, &mut slrg, &RgConfig::default());
            let mut slrg2 = Slrg::new(&task, &plrg, 50_000);
            let cfg =
                RgConfig { dominance: true, symmetry: true, reopen: true, ..RgConfig::default() };
            let pruned = search(&task, &plrg, &mut slrg2, &cfg);
            match (&base.plan, &pruned.plan) {
                (Some((_, c1, _)), Some((_, c2, _))) => {
                    assert_eq!(c1.to_bits(), c2.to_bits(), "{sc:?}: cost drifted");
                }
                (None, None) => {}
                (a, b) => {
                    panic!("{sc:?}: solvability drifted: {:?} vs {:?}", a.is_some(), b.is_some())
                }
            }
            assert!(pruned.nodes_created <= base.nodes_created, "{sc:?}: pruning grew the search");
        }
    }

    #[test]
    fn pruning_flags_off_leave_counters_zero() {
        let (_, r) = run(LevelScenario::C);
        assert_eq!(r.dominance_pruned, 0);
        assert_eq!(r.symmetry_pruned, 0);
        assert_eq!(r.reopened, 0);
    }

    #[test]
    fn unsolvable_when_no_source() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.sources.clear();
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 50_000);
        let r = search(&task, &plrg, &mut slrg, &RgConfig::default());
        assert!(r.plan.is_none());
        assert_eq!(r.nodes_created, 0);
    }
}
