//! Graphviz DOT rendering of networks and deployment plans — no external
//! dependencies, just string generation. Pipe the output through `dot
//! -Tsvg` (or paste into any Graphviz viewer) to get the paper's
//! Figure 1/9-style pictures: the network with component placements as
//! node labels and stream crossings as colored, labeled edges.

use crate::plan::Plan;
use sekitei_compile::ActionKind;
use sekitei_model::{CppProblem, LinkClass, NodeId};
use std::collections::HashMap;
use std::fmt::Write;

/// Render the bare network as an undirected DOT graph.
pub fn network_dot(problem: &CppProblem) -> String {
    render(problem, None)
}

/// Render the network with a plan's placements and crossings overlaid.
pub fn plan_dot(problem: &CppProblem, plan: &Plan) -> String {
    render(problem, Some(plan))
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

fn render(problem: &CppProblem, plan: Option<&Plan>) -> String {
    // collect per-node placements and per-link crossings from the plan
    let mut placements: HashMap<NodeId, Vec<String>> = HashMap::new();
    let mut crossings: Vec<(NodeId, NodeId, String)> = Vec::new();
    if let Some(plan) = plan {
        for step in &plan.steps {
            match &step.kind {
                ActionKind::Place { comp, node } => {
                    placements.entry(*node).or_default().push(problem.component(*comp).name.clone())
                }
                ActionKind::Cross { iface, dir } => {
                    crossings.push((dir.from, dir.to, problem.iface(*iface).name.clone()))
                }
            }
        }
    }
    // pre-placed components show up too
    for pp in &problem.pre_placed {
        placements.entry(pp.node).or_default().push(format!("{}*", pp.component));
    }

    let mut out = String::from("graph deployment {\n");
    out.push_str("    layout=neato;\n    overlap=false;\n    splines=true;\n");
    out.push_str("    node [shape=box, style=rounded, fontname=\"Helvetica\"];\n");
    out.push_str("    edge [fontname=\"Helvetica\", fontsize=10];\n");

    for (id, n) in problem.network.nodes() {
        let mut label = escape(&n.name);
        if let Some(comps) = placements.get(&id) {
            label.push_str("\\n[");
            label.push_str(&escape(&comps.join(", ")));
            label.push(']');
        }
        let sourced = problem.sources.iter().any(|s| s.node == id);
        let goal = problem.goals.iter().any(|g| g.node == id);
        let fill = match (sourced, goal) {
            (true, _) => ", fillcolor=\"#cfe8ff\", style=\"rounded,filled\"",
            (_, true) => ", fillcolor=\"#d8f3d8\", style=\"rounded,filled\"",
            _ => "",
        };
        let bold = if placements.contains_key(&id) { ", penwidth=2" } else { "" };
        let _ = writeln!(out, "    n{} [label=\"{label}\"{fill}{bold}];", id.index());
    }

    for (lid, l) in problem.network.links() {
        let style = match l.class {
            LinkClass::Lan => "solid",
            LinkClass::Wan => "dashed",
            LinkClass::Other => "dotted",
        };
        // streams crossing this link (either direction)
        let mut labels: Vec<String> = Vec::new();
        for (from, to, iface) in &crossings {
            if problem.network.link_between(*from, *to) == Some(lid) {
                labels.push(format!("{iface}→"));
            }
        }
        let label = if labels.is_empty() {
            String::new()
        } else {
            format!(", label=\"{}\", color=\"#c04000\", penwidth=2", escape(&labels.join(" ")))
        };
        let _ = writeln!(out, "    n{} -- n{} [style={style}{label}];", l.a.index(), l.b.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Planner, PlannerConfig};
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn network_dot_structure() {
        let p = scenarios::small(LevelScenario::C);
        let dot = network_dot(&p);
        assert!(dot.starts_with("graph deployment {"));
        assert!(dot.trim_end().ends_with('}'));
        // every node and link appears
        assert_eq!(dot.matches("label=\"n").count() + dot.matches("label=\"x").count(), 6);
        assert_eq!(dot.matches(" -- ").count(), p.network.num_links());
        // WAN links dashed, LAN solid
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        // server/client highlighted
        assert!(dot.contains("#cfe8ff"));
        assert!(dot.contains("#d8f3d8"));
    }

    #[test]
    fn plan_dot_overlays_placements_and_crossings() {
        let p = scenarios::tiny(LevelScenario::C);
        let o = Planner::new(PlannerConfig::default()).plan(&p).unwrap();
        let plan = o.plan.unwrap();
        let dot = plan_dot(&p, &plan);
        assert!(dot.contains("Splitter"), "{dot}");
        assert!(dot.contains("Merger"));
        assert!(dot.contains("Z→"), "{dot}");
        assert!(dot.contains("I→"));
        assert!(dot.contains("penwidth=2"));
    }

    #[test]
    fn names_are_escaped() {
        let mut p = scenarios::tiny(LevelScenario::C);
        // a hostile node name must not break the DOT syntax
        let id = p.network.add_node("evil\"node", [("cpu", 1.0)]);
        let _ = id;
        let dot = network_dot(&p);
        assert!(dot.contains("evil\\\"node"));
    }
}
