//! Reference (pre-optimization) search semantics, kept verbatim as a
//! differential-testing oracle.
//!
//! The optimized [`crate::slrg`]/[`crate::rg`] pipeline interns
//! proposition sets in a [`crate::pool::SetPool`], replays tails
//! incrementally and reuses scratch buffers — all of which is supposed to
//! be *behavior-preserving*: identical plans, identical cost bounds,
//! identical node/prune/reject counts. This module preserves the original
//! boxed-[`SetKey`] implementation (allocating regression, `HashMap`
//! memoization, full `collect_tail` + [`replay_tail`] on every node
//! creation) so `tests/search_equivalence.rs` can assert that equivalence
//! on every scenario. It is **not** part of the planner's hot path and
//! intentionally favors obviousness over speed; when changing search
//! semantics on purpose, change both sides and record it in CHANGES.md.

use crate::concretize::{concretize, ConcreteExecution};
use crate::plrg::Plrg;
use crate::replay::replay_tail;
use crate::rg::{Heuristic, RgConfig};
use crate::setkey::SetKey;
use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, PropId};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// Everything the equivalence test compares between the two pipelines.
#[derive(Debug)]
pub struct ReferenceOutcome {
    /// The plan (execution-ordered actions), its cost lower bound and
    /// concrete execution — `None` when no plan was found.
    pub plan: Option<(Vec<ActionId>, f64, ConcreteExecution)>,
    /// RG nodes created.
    pub nodes_created: usize,
    /// RG nodes still open at return.
    pub open_left: usize,
    /// Nodes discarded by optimistic-map replay.
    pub replay_prunes: usize,
    /// Candidate plans rejected by terminal validation/concretization.
    pub candidate_rejects: usize,
    /// RG nodes expanded.
    pub expansions: usize,
    /// True when a budget was exhausted.
    pub budget_exhausted: bool,
    /// SLRG set nodes generated.
    pub slrg_nodes: usize,
    /// SLRG queries answered from the memo table.
    pub slrg_cache_hits: usize,
}

/// The original memoizing SLRG, keyed on boxed [`SetKey`]s.
struct RefSlrg<'t> {
    task: &'t PlanningTask,
    plrg: &'t Plrg,
    budget: usize,
    cache: HashMap<SetKey, (f64, bool)>,
    nodes: usize,
    cache_hits: usize,
}

impl<'t> RefSlrg<'t> {
    fn h(&self, key: &SetKey) -> f64 {
        self.plrg.set_cost(key.props())
    }

    fn select_prop(&self, key: &SetKey) -> PropId {
        *key.props()
            .iter()
            .max_by(|&&a, &&b| {
                self.plrg.prop_cost(a).partial_cmp(&self.plrg.prop_cost(b)).unwrap().then(a.cmp(&b))
            })
            .expect("non-empty set")
    }

    fn achievement_cost(&mut self, set: &SetKey) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        if let Some(&(b, _)) = self.cache.get(set) {
            self.cache_hits += 1;
            return b;
        }
        if set.props().iter().any(|&p| !self.plrg.prop_cost(p).is_finite()) {
            self.cache.insert(set.clone(), (f64::INFINITY, true));
            return f64::INFINITY;
        }
        let result = self.astar(set);
        self.cache.insert(set.clone(), result);
        result.0
    }

    fn astar(&mut self, start: &SetKey) -> (f64, bool) {
        let mut open: BinaryHeap<(Reverse<u64>, Reverse<u64>, u64, SetKey)> = BinaryHeap::new();
        let mut best_g: HashMap<SetKey, f64> = HashMap::new();
        let mut counter = 0u64;

        let h0 = self.h(start);
        open.push((Reverse(h0.to_bits()), Reverse(counter), 0f64.to_bits(), start.clone()));
        best_g.insert(start.clone(), 0.0);
        self.nodes += 1;

        let mut expansions = 0usize;
        while let Some((Reverse(fbits), _, gbits, key)) = open.pop() {
            let f = f64::from_bits(fbits);
            let g = f64::from_bits(gbits);
            match best_g.get(&key) {
                Some(&bg) if g <= bg + 1e-12 => {}
                _ => continue,
            }
            if key.is_empty() {
                return (g, true);
            }
            expansions += 1;
            if expansions > self.budget {
                return (f.max(0.0), false);
            }

            let target = self.select_prop(&key);
            let task = self.task;
            for &a in task.achievers(target) {
                if !self.plrg.usable(a) {
                    continue;
                }
                let act = self.task.action(a);
                let child = key.regress(&act.adds, &act.preconds, |p| self.task.initially(p));
                let g2 = g + act.cost;
                let hc = self.h(&child);
                if !hc.is_finite() {
                    continue;
                }
                match best_g.entry(child.clone()) {
                    Entry::Occupied(mut e) => {
                        if g2 + 1e-12 < *e.get() {
                            e.insert(g2);
                            counter += 1;
                            open.push((
                                Reverse((g2 + hc).to_bits()),
                                Reverse(counter),
                                g2.to_bits(),
                                child,
                            ));
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(g2);
                        self.nodes += 1;
                        counter += 1;
                        open.push((
                            Reverse((g2 + hc).to_bits()),
                            Reverse(counter),
                            g2.to_bits(),
                            child,
                        ));
                    }
                }
            }
        }
        (f64::INFINITY, true)
    }
}

struct RefNode {
    action: ActionId,
    parent: u32,
    set: SetKey,
    g: f64,
}

const ROOT: u32 = u32::MAX;

fn tail_contains(nodes: &[RefNode], mut idx: u32, a: ActionId) -> bool {
    while idx != ROOT {
        let n = &nodes[idx as usize];
        if n.parent == ROOT {
            break;
        }
        if n.action == a {
            return true;
        }
        idx = n.parent;
    }
    false
}

fn collect_tail(nodes: &[RefNode], mut idx: u32) -> Vec<ActionId> {
    let mut tail = Vec::new();
    loop {
        let n = &nodes[idx as usize];
        if n.parent == ROOT {
            break;
        }
        tail.push(n.action);
        idx = n.parent;
    }
    tail
}

fn select_prop(plrg: &Plrg, set: &SetKey) -> PropId {
    *set.props()
        .iter()
        .max_by(|&&a, &&b| {
            plrg.prop_cost(a).partial_cmp(&plrg.prop_cost(b)).unwrap().then(a.cmp(&b))
        })
        .expect("non-empty set")
}

/// Run the original RG search (full per-child tail replay, boxed set keys).
///
/// The oracle deliberately ignores [`RgConfig::deadline`]: wall-clock cutoffs
/// are nondeterministic by nature, so the differential `search_equivalence`
/// suite only ever compares runs with `deadline: None`, where the optimized
/// search never reads the clock either.
pub fn search_reference(
    task: &PlanningTask,
    plrg: &Plrg,
    slrg_budget: usize,
    cfg: &RgConfig,
) -> ReferenceOutcome {
    let mut slrg =
        RefSlrg { task, plrg, budget: slrg_budget, cache: HashMap::new(), nodes: 0, cache_hits: 0 };
    let mut result = ReferenceOutcome {
        plan: None,
        nodes_created: 0,
        open_left: 0,
        replay_prunes: 0,
        candidate_rejects: 0,
        expansions: 0,
        budget_exhausted: false,
        slrg_nodes: 0,
        slrg_cache_hits: 0,
    };

    let goal =
        SetKey::new(task.goal_props.iter().copied().filter(|&p| !task.initially(p)).collect());

    let mut nodes: Vec<RefNode> = Vec::new();
    let mut open: BinaryHeap<(Reverse<u64>, u64, Reverse<u64>, u32)> = BinaryHeap::new();
    let mut counter = 0u64;

    let h_of = |slrg: &mut RefSlrg<'_>, set: &SetKey| -> f64 {
        match cfg.heuristic {
            Heuristic::Slrg => slrg.achievement_cost(set),
            Heuristic::PlrgMax => plrg.set_cost(set.props()),
            Heuristic::Blind => {
                if plrg.set_cost(set.props()).is_finite() {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    };

    if goal.is_empty() {
        let exec = concretize(task, &[], &std::collections::HashMap::new())
            .expect("empty plan always executes");
        result.plan = Some((Vec::new(), 0.0, exec));
        return result;
    }
    let h0 = h_of(&mut slrg, &goal);
    if !h0.is_finite() {
        result.slrg_nodes = slrg.nodes;
        result.slrg_cache_hits = slrg.cache_hits;
        return result;
    }
    nodes.push(RefNode { action: ActionId(0), parent: ROOT, set: goal, g: 0.0 });
    result.nodes_created += 1;
    open.push((Reverse(h0.to_bits()), 0f64.to_bits(), Reverse(counter), 0));

    while let Some((_, _, _, idx)) = open.pop() {
        if result.nodes_created >= cfg.max_nodes {
            result.budget_exhausted = true;
            break;
        }
        result.expansions += 1;
        let (set, g) = {
            let n = &nodes[idx as usize];
            (n.set.clone(), n.g)
        };

        if set.is_empty() {
            let tail = collect_tail(&nodes, idx);
            match replay_tail(task, &tail, Some(&task.init_values)) {
                Ok(map) => match concretize(task, &tail, &map) {
                    Ok(exec) => {
                        result.plan = Some((tail, g, exec));
                        result.open_left = open.len();
                        result.slrg_nodes = slrg.nodes;
                        result.slrg_cache_hits = slrg.cache_hits;
                        return result;
                    }
                    Err(_) => {
                        result.candidate_rejects += 1;
                    }
                },
                Err(_) => {
                    result.candidate_rejects += 1;
                }
            }
            if result.candidate_rejects >= cfg.max_candidate_rejects {
                result.budget_exhausted = true;
                break;
            }
            continue;
        }

        let target = select_prop(plrg, &set);
        for &a in task.achievers(target) {
            if !plrg.usable(a) {
                continue;
            }
            if tail_contains(&nodes, idx, a) {
                continue;
            }
            let act = task.action(a);
            let child_set = set.regress(&act.adds, &act.preconds, |p| task.initially(p));
            let g2 = g + act.cost;
            let h = h_of(&mut slrg, &child_set);
            if !h.is_finite() {
                continue;
            }
            let child_idx = nodes.len() as u32;
            nodes.push(RefNode { action: a, parent: idx, set: child_set, g: g2 });

            if cfg.replay_pruning {
                let tail = collect_tail(&nodes, child_idx);
                if replay_tail(task, &tail, None).is_err() {
                    result.replay_prunes += 1;
                    nodes.pop();
                    continue;
                }
            }
            result.nodes_created += 1;
            counter += 1;
            open.push((Reverse((g2 + h).to_bits()), g2.to_bits(), Reverse(counter), child_idx));
            if nodes.len() >= cfg.max_nodes {
                result.budget_exhausted = true;
                result.open_left = open.len();
                result.slrg_nodes = slrg.nodes;
                result.slrg_cache_hits = slrg.cache_hits;
                return result;
            }
        }
    }
    result.open_left = open.len();
    result.slrg_nodes = slrg.nodes;
    result.slrg_cache_hits = slrg.cache_hits;
    result
}
