//! Interned proposition sets: the arena behind the optimized search core.
//!
//! Every canonical (sorted, deduplicated) proposition set the search ever
//! touches is stored exactly once in a flat arena and addressed by a
//! copyable [`SetId`]. The SLRG memo table, its per-query `best_g` map and
//! every RG node then key on a `u32` instead of hashing a boxed slice —
//! set equality becomes an integer compare, heap entries become `Copy`,
//! and regression writes into a reusable scratch buffer via a sorted
//! three-way merge instead of allocating and re-sorting per child.

use sekitei_model::PropId;
use std::collections::HashMap;

/// Identity of an interned proposition set. Two ids are equal iff the sets
/// are equal (the pool guarantees canonical, deduplicated storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetId(u32);

impl SetId {
    /// The empty set (always interned first by [`SetPool::new`]).
    pub const EMPTY: SetId = SetId(0);

    /// Arena slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a over the raw proposition ids.
fn hash_props(props: &[PropId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in props {
        h ^= p.0 as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Regression merge shared by [`SetPool::regress`] and
/// [`StagePool::regress`]: `out = (set \ adds) ∪ {p ∈ preconds :
/// ¬initially(p)}` via a single three-pointer merge over the three sorted
/// inputs.
fn regress_merge(
    set: &[PropId],
    adds: &[PropId],
    preconds: &[PropId],
    mut initially: impl FnMut(PropId) -> bool,
    out: &mut Vec<PropId>,
) {
    out.clear();
    let (mut si, mut ai, mut pi) = (0usize, 0usize, 0usize);
    let mut cur_s: Option<PropId> = None; // next surviving set member
    let mut cur_p: Option<PropId> = None; // next surviving precond
    loop {
        if cur_s.is_none() {
            while si < set.len() {
                let p = set[si];
                si += 1;
                while ai < adds.len() && adds[ai] < p {
                    ai += 1;
                }
                if ai < adds.len() && adds[ai] == p {
                    continue; // achieved by this action
                }
                cur_s = Some(p);
                break;
            }
        }
        if cur_p.is_none() {
            while pi < preconds.len() {
                let p = preconds[pi];
                pi += 1;
                if initially(p) {
                    continue; // already true in the initial state
                }
                cur_p = Some(p);
                break;
            }
        }
        match (cur_s, cur_p) {
            (None, None) => break,
            (Some(a), None) => {
                out.push(a);
                cur_s = None;
            }
            (None, Some(b)) => {
                out.push(b);
                cur_p = None;
            }
            (Some(a), Some(b)) => {
                if a <= b {
                    out.push(a);
                    cur_s = None;
                    if a == b {
                        cur_p = None;
                    }
                } else {
                    out.push(b);
                    cur_p = None;
                }
            }
        }
    }
}

/// Arena of canonical proposition sets.
pub struct SetPool {
    /// All member lists back to back.
    props: Vec<PropId>,
    /// `spans[i]` bounds set `i` inside `props`.
    spans: Vec<(u32, u32)>,
    /// Content hash → candidate ids (collisions resolved by slice compare).
    table: HashMap<u64, Vec<SetId>>,
    /// Reusable merge buffer for [`SetPool::regress`].
    scratch: Vec<PropId>,
}

impl Default for SetPool {
    fn default() -> Self {
        Self::new()
    }
}

impl SetPool {
    /// New pool with the empty set pre-interned as [`SetId::EMPTY`].
    pub fn new() -> Self {
        let mut pool = SetPool {
            props: Vec::new(),
            spans: Vec::new(),
            table: HashMap::new(),
            scratch: Vec::new(),
        };
        let empty = pool.intern_sorted(&[]);
        debug_assert_eq!(empty, SetId::EMPTY);
        pool
    }

    /// Number of distinct sets interned so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True iff only the empty set is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.len() <= 1
    }

    /// Member propositions of an interned set (sorted).
    pub fn props_of(&self, id: SetId) -> &[PropId] {
        let (s, e) = self.spans[id.index()];
        &self.props[s as usize..e as usize]
    }

    /// Intern a canonical (sorted, deduplicated) slice.
    pub fn intern_sorted(&mut self, props: &[PropId]) -> SetId {
        debug_assert!(props.windows(2).all(|w| w[0] < w[1]), "set must be sorted+deduped");
        let h = hash_props(props);
        if let Some(cands) = self.table.get(&h) {
            for &id in cands {
                let (s, e) = self.spans[id.index()];
                if &self.props[s as usize..e as usize] == props {
                    return id;
                }
            }
        }
        let start = self.props.len() as u32;
        self.props.extend_from_slice(props);
        let id = SetId(self.spans.len() as u32);
        self.spans.push((start, self.props.len() as u32));
        self.table.entry(h).or_default().push(id);
        id
    }

    /// Intern arbitrary propositions (sorts and dedups first).
    pub fn intern(&mut self, mut props: Vec<PropId>) -> SetId {
        props.sort_unstable();
        props.dedup();
        self.intern_sorted(&props)
    }

    /// Read-only probe: the id of a canonical (sorted, deduplicated) slice
    /// if it is already interned. Never mutates the pool, so it is safe on
    /// a shared reference while other readers hold set slices — the lookup
    /// the parallel search's frozen-pool rounds are built on.
    pub fn lookup_sorted(&self, props: &[PropId]) -> Option<SetId> {
        debug_assert!(props.windows(2).all(|w| w[0] < w[1]), "set must be sorted+deduped");
        let cands = self.table.get(&hash_props(props))?;
        cands.iter().copied().find(|&id| {
            let (s, e) = self.spans[id.index()];
            &self.props[s as usize..e as usize] == props
        })
    }

    /// Regression over an action: intern `(set \ adds) ∪ {p ∈ preconds :
    /// ¬initially(p)}`. All three inputs are sorted, so the result is
    /// produced by a single three-pointer merge into the reusable scratch
    /// buffer — no allocation, no re-sort.
    pub fn regress(
        &mut self,
        id: SetId,
        adds: &[PropId],
        preconds: &[PropId],
        initially: impl FnMut(PropId) -> bool,
    ) -> SetId {
        let mut out = std::mem::take(&mut self.scratch);
        regress_merge(self.props_of(id), adds, preconds, initially, &mut out);
        let rid = self.intern_sorted(&out);
        self.scratch = out;
        rid
    }
}

/// Identity of a set addressed through a [`StagePool`]: either a set of
/// the frozen base pool (`raw < base_len`, convertible back to a [`SetId`]
/// via [`StagePool::as_base`]) or a set staged locally this round
/// (`raw ≥ base_len`). Ids are only meaningful against the
/// (`StagePool`, base `SetPool`, `base_len`) triple they came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StagedId(u32);

/// A per-worker staging overlay over a *frozen* base [`SetPool`].
///
/// During a batch-synchronous round of the parallel RG search the global
/// pool is read-only (workers hold shared references into it); any set a
/// worker produces that the base does not already contain is interned into
/// its private stage instead. [`StagePool::intern_sorted`] first probes the
/// base — sets already known globally resolve to their *global* id, so the
/// round-barrier merge only has to re-intern the genuinely fresh sets, and
/// does so in the canonical commit order, which makes the resulting
/// `SetId → props` mapping identical to what sequential interning of the
/// same canonical sequence would have produced (see
/// `tests/pool_shard.rs`).
///
/// `reset` re-freezes the overlay against the (possibly grown) base at the
/// start of each round; staged ids never outlive the round they were
/// created in.
pub struct StagePool {
    base_len: u32,
    props: Vec<PropId>,
    spans: Vec<(u32, u32)>,
    /// Content hash → candidate *staged* raw ids (base hits resolve
    /// through the base pool's own table).
    table: HashMap<u64, Vec<u32>>,
    scratch: Vec<PropId>,
}

impl Default for StagePool {
    fn default() -> Self {
        Self::new()
    }
}

impl StagePool {
    /// New empty overlay (freeze it with [`StagePool::reset`] before use).
    pub fn new() -> Self {
        StagePool {
            base_len: 0,
            props: Vec::new(),
            spans: Vec::new(),
            table: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Drop all staged sets and re-freeze against a base pool of
    /// `base_len` sets. Invalidates every previously returned [`StagedId`].
    pub fn reset(&mut self, base_len: usize) {
        self.base_len = base_len as u32;
        self.props.clear();
        self.spans.clear();
        self.table.clear();
    }

    /// Number of sets staged since the last reset.
    pub fn staged(&self) -> usize {
        self.spans.len()
    }

    /// View a frozen base id through the overlay.
    pub fn adopt(&self, id: SetId) -> StagedId {
        debug_assert!(id.0 < self.base_len, "id interned after the freeze");
        StagedId(id.0)
    }

    /// The base id of an overlay id, `None` if it is staged locally.
    pub fn as_base(&self, id: StagedId) -> Option<SetId> {
        (id.0 < self.base_len).then_some(SetId(id.0))
    }

    /// Member propositions of an overlay set (sorted).
    pub fn props_of<'a>(&'a self, base: &'a SetPool, id: StagedId) -> &'a [PropId] {
        match self.as_base(id) {
            Some(b) => base.props_of(b),
            None => {
                let (s, e) = self.spans[(id.0 - self.base_len) as usize];
                &self.props[s as usize..e as usize]
            }
        }
    }

    /// Intern a canonical slice: resolves to the frozen base when the set
    /// is already known globally, stages it locally otherwise.
    pub fn intern_sorted(&mut self, base: &SetPool, props: &[PropId]) -> StagedId {
        if let Some(id) = base.lookup_sorted(props) {
            if id.0 < self.base_len {
                return StagedId(id.0);
            }
            // interned into the base after the freeze (single-threaded use
            // of a stale overlay): stage it rather than alias the frozen
            // prefix
        }
        let h = hash_props(props);
        if let Some(cands) = self.table.get(&h) {
            for &raw in cands {
                let (s, e) = self.spans[raw as usize];
                if &self.props[s as usize..e as usize] == props {
                    return StagedId(self.base_len + raw);
                }
            }
        }
        let start = self.props.len() as u32;
        self.props.extend_from_slice(props);
        let raw = self.spans.len() as u32;
        self.spans.push((start, self.props.len() as u32));
        self.table.entry(h).or_default().push(raw);
        StagedId(self.base_len + raw)
    }

    /// Regression over an action, mirroring [`SetPool::regress`] but
    /// against the frozen base + local stage.
    pub fn regress(
        &mut self,
        base: &SetPool,
        id: StagedId,
        adds: &[PropId],
        preconds: &[PropId],
        initially: impl FnMut(PropId) -> bool,
    ) -> StagedId {
        let mut out = std::mem::take(&mut self.scratch);
        regress_merge(self.props_of(base, id), adds, preconds, initially, &mut out);
        let rid = self.intern_sorted(base, &out);
        self.scratch = out;
        rid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setkey::SetKey;

    fn ids(v: &[u32]) -> Vec<PropId> {
        v.iter().map(|&x| PropId(x)).collect()
    }

    #[test]
    fn empty_is_id_zero() {
        let mut pool = SetPool::new();
        assert_eq!(pool.intern(vec![]), SetId::EMPTY);
        assert!(pool.props_of(SetId::EMPTY).is_empty());
    }

    #[test]
    fn interning_is_canonical() {
        let mut pool = SetPool::new();
        let a = pool.intern(ids(&[3, 1, 2, 2]));
        let b = pool.intern(ids(&[1, 2, 3]));
        assert_eq!(a, b);
        assert_eq!(pool.props_of(a), ids(&[1, 2, 3]).as_slice());
        let c = pool.intern(ids(&[1, 2]));
        assert_ne!(a, c);
        assert_eq!(pool.len(), 3); // empty + two distinct sets
    }

    #[test]
    fn regress_matches_setkey_regress() {
        // differential check against the boxed-slice reference on a grid of
        // small cases, including overlapping set/precond members
        type Case = (&'static [u32], &'static [u32], &'static [u32], &'static [u32]);
        let mut pool = SetPool::new();
        let cases: &[Case] = &[
            (&[1, 2, 3], &[2, 3], &[5, 7], &[]),
            (&[1], &[1], &[4, 6], &[4]),
            (&[1], &[1], &[], &[]),
            (&[2, 4, 6], &[1, 3, 5], &[2, 8], &[]),
            (&[], &[], &[1, 2, 3], &[2]),
            (&[5, 9], &[9], &[1, 5, 9], &[1]),
        ];
        for (set, adds, pre, init) in cases {
            let key = SetKey::new(ids(set));
            let adds = ids(adds);
            let pre = ids(pre);
            let init = ids(init);
            let want = key.regress(&adds, &pre, |p| init.contains(&p));
            let sid = pool.intern(ids(set));
            let rid = pool.regress(sid, &adds, &pre, |p| init.contains(&p));
            assert_eq!(pool.props_of(rid), want.props(), "case {set:?} {adds:?} {pre:?}");
        }
    }

    #[test]
    fn lookup_sorted_probes_without_interning() {
        let mut pool = SetPool::new();
        let a = pool.intern(ids(&[1, 2, 3]));
        assert_eq!(pool.lookup_sorted(&ids(&[1, 2, 3])), Some(a));
        assert_eq!(pool.lookup_sorted(&ids(&[1, 2])), None);
        assert_eq!(pool.lookup_sorted(&[]), Some(SetId::EMPTY));
        assert_eq!(pool.len(), 2, "lookup must not intern");
    }

    #[test]
    fn stage_pool_resolves_base_and_stages_fresh() {
        let mut pool = SetPool::new();
        let known = pool.intern(ids(&[1, 2, 3]));
        let mut stage = StagePool::new();
        stage.reset(pool.len());
        // a known set resolves straight to its base id
        let k = stage.intern_sorted(&pool, &ids(&[1, 2, 3]));
        assert_eq!(stage.as_base(k), Some(known));
        assert_eq!(stage.staged(), 0);
        // a fresh set stages locally, dedups, and round-trips its props
        let f1 = stage.intern_sorted(&pool, &ids(&[4, 5]));
        let f2 = stage.intern_sorted(&pool, &ids(&[4, 5]));
        assert_eq!(f1, f2);
        assert!(stage.as_base(f1).is_none());
        assert_eq!(stage.staged(), 1);
        assert_eq!(stage.props_of(&pool, f1), ids(&[4, 5]).as_slice());
        assert_eq!(pool.len(), 2, "staging must not touch the base");
        // reset invalidates the stage but keeps resolving against the base
        stage.reset(pool.len());
        assert_eq!(stage.staged(), 0);
        let k2 = stage.intern_sorted(&pool, &ids(&[1, 2, 3]));
        assert_eq!(stage.as_base(k2), Some(known));
    }

    #[test]
    fn stage_regress_matches_pool_regress() {
        let mut pool = SetPool::new();
        let base = pool.intern(ids(&[1, 2, 3, 7]));
        let adds = ids(&[2, 9]);
        let pre = ids(&[4, 5, 7]);
        let init = ids(&[5]);
        let mut stage = StagePool::new();
        stage.reset(pool.len());
        let staged = stage.regress(&pool, stage.adopt(base), &adds, &pre, |p| init.contains(&p));
        let want = pool.regress(base, &adds, &pre, |p| init.contains(&p));
        assert_eq!(stage.props_of(&pool, staged), pool.props_of(want));
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let mut pool = SetPool::new();
        let a = pool.intern(ids(&[1, 2, 3, 4, 5, 6, 7, 8]));
        // a long regress followed by a short one must not leak stale tail
        let long = pool.regress(a, &[], &ids(&[9, 10]), |_| false);
        assert_eq!(pool.props_of(long).len(), 10);
        let b = pool.intern(ids(&[1]));
        let short = pool.regress(b, &ids(&[1]), &[], |_| false);
        assert_eq!(short, SetId::EMPTY);
    }
}
