//! Optimistic-map replay of plan tails (paper §3.2.3, Figure 8).
//!
//! A plan tail is executed forward over an interval-valued resource map.
//! Before each action, the current interval of every variable the action
//! reads is intersected with the action's optimistic interval (new
//! variables adopt the optimistic interval outright); then the action's
//! numeric conditions are checked for *possible* satisfaction, its effects
//! are applied with interval arithmetic (all value expressions reading the
//! pre-state), and produced variables are clamped into the action's
//! declared output levels. Any empty interval or impossible condition
//! proves that **no** concrete execution of the tail exists, so the RG
//! node carrying it can be pruned.

use sekitei_compile::{GroundAction, PlanningTask};
use sekitei_model::{ActionId, AssignOp, GVarId, Interval};
use std::collections::HashMap;

/// Why a replay failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayFail {
    /// A variable's interval became empty when intersected with an
    /// action's optimistic requirement.
    EmptyRequirement {
        /// Position in the tail.
        step: usize,
        /// The variable.
        var: GVarId,
    },
    /// A numeric condition cannot be satisfied by any point assignment.
    ImpossibleCondition {
        /// Position in the tail.
        step: usize,
        /// Index of the condition within the action.
        cond: usize,
    },
    /// A consumption effect would certainly drive a resource negative.
    Overconsumption {
        /// Position in the tail.
        step: usize,
        /// The consumed variable.
        var: GVarId,
    },
    /// A produced value cannot land in the action's declared output level.
    OutputLevelMiss {
        /// Position in the tail.
        step: usize,
        /// The produced variable.
        var: GVarId,
    },
}

impl std::fmt::Display for ReplayFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayFail::EmptyRequirement { step, var } => {
                write!(f, "step {step}: requirement on {var} unsatisfiable")
            }
            ReplayFail::ImpossibleCondition { step, cond } => {
                write!(f, "step {step}: condition #{cond} impossible")
            }
            ReplayFail::Overconsumption { step, var } => {
                write!(f, "step {step}: {var} certainly overconsumed")
            }
            ReplayFail::OutputLevelMiss { step, var } => {
                write!(f, "step {step}: produced {var} misses its level")
            }
        }
    }
}

/// The interval state threaded through a replay.
pub type ResourceMap = HashMap<GVarId, Interval>;

/// Interval-state storage a replay steps through. Two implementations: the
/// public [`ResourceMap`] (callers inspect the final map) and the dense
/// epoch-stamped store inside [`ReplayScratch`] (the RG hot path, which
/// only cares whether the replay fails).
trait IvStore {
    fn read(&self, v: GVarId) -> Option<Interval>;
    fn write(&mut self, v: GVarId, iv: Interval);
}

impl IvStore for ResourceMap {
    fn read(&self, v: GVarId) -> Option<Interval> {
        self.get(&v).copied()
    }
    fn write(&mut self, v: GVarId, iv: Interval) {
        self.insert(v, iv);
    }
}

/// Replay a tail starting from an explicit initial numeric state (used for
/// the terminal check: resource capacities as point intervals, stream
/// sources as their producible ranges). Pass `None` for the mid-search
/// replay that starts from the first action's own optimistic map.
pub fn replay_tail(
    task: &PlanningTask,
    tail: &[ActionId],
    init: Option<&[Option<Interval>]>,
) -> Result<ResourceMap, ReplayFail> {
    let mut map: ResourceMap = HashMap::new();
    if let Some(init) = init {
        for (i, iv) in init.iter().enumerate() {
            if let Some(iv) = iv {
                map.insert(GVarId::from_index(i), *iv);
            }
        }
    }
    let from_init = init.is_some();
    let mut vals = Vec::new();
    for (step, &aid) in tail.iter().enumerate() {
        step_action(task.action(aid), step, &mut map, from_init, &mut vals)?;
    }
    Ok(map)
}

fn step_action<S: IvStore>(
    act: &GroundAction,
    step: usize,
    map: &mut S,
    from_init: bool,
    vals: &mut Vec<Interval>,
) -> Result<(), ReplayFail> {
    // 1. intersect requirements (adding fresh optimistic intervals only in
    //    mid-tail mode; from the initial state every resource is known and
    //    stream variables must have been produced upstream)
    for &(v, iv) in &act.optimistic {
        match map.read(v) {
            Some(cur) => {
                let x = cur.intersect(&iv);
                if x.is_empty() {
                    return Err(ReplayFail::EmptyRequirement { step, var: v });
                }
                map.write(v, x);
            }
            None => {
                if from_init {
                    // a read of a variable with no upstream producer: the
                    // logical phases should prevent this; treat the
                    // optimistic interval as the assumption it is.
                    debug_assert!(
                        false,
                        "terminal replay read undefined variable {v} in {}",
                        act.name
                    );
                }
                map.write(v, iv);
            }
        }
    }

    // 2. conditions must be possibly satisfiable
    for (ci, cond) in act.conditions.iter().enumerate() {
        let mut env = |v: &GVarId| map.read(*v).unwrap_or_else(Interval::nonneg);
        if !cond.possibly(&mut env) {
            return Err(ReplayFail::ImpossibleCondition { step, cond: ci });
        }
    }

    // 3. effects: evaluate every value against the pre-state, then apply
    vals.clear();
    for e in &act.effects {
        let mut env = |v: &GVarId| map.read(*v).unwrap_or_else(Interval::nonneg);
        vals.push(e.value.eval_interval(&mut env));
    }
    for (e, &val) in act.effects.iter().zip(vals.iter()) {
        match e.op {
            AssignOp::Set => {
                map.write(e.target, val);
            }
            AssignOp::Sub => {
                let pre = map.read(e.target).unwrap_or_else(Interval::nonneg);
                let post = pre.sub(&val).clamp_nonneg();
                if post.is_empty() {
                    return Err(ReplayFail::Overconsumption { step, var: e.target });
                }
                map.write(e.target, post);
            }
            AssignOp::Add => {
                let pre = map.read(e.target).unwrap_or_else(Interval::nonneg);
                map.write(e.target, pre.add(&val));
            }
        }
    }

    // 4. produced values must land in the declared output levels
    for &(v, iv) in &act.post {
        let cur = map.read(v).unwrap_or_else(Interval::nonneg);
        let x = cur.intersect(&iv);
        if x.is_empty() {
            return Err(ReplayFail::OutputLevelMiss { step, var: v });
        }
        map.write(v, x);
    }
    Ok(())
}

/// Dense epoch-stamped interval store: `reset` is O(1), absent variables
/// are recognized by a stale stamp.
struct DenseStore {
    val: Vec<Interval>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl DenseStore {
    fn new(num_vars: usize) -> Self {
        DenseStore { val: vec![Interval::nonneg(); num_vars], stamp: vec![0; num_vars], epoch: 0 }
    }

    fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // epoch wrapped: old stamps could alias, wipe them once
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }
}

impl IvStore for DenseStore {
    fn read(&self, v: GVarId) -> Option<Interval> {
        if self.stamp[v.index()] == self.epoch {
            Some(self.val[v.index()])
        } else {
            None
        }
    }
    fn write(&mut self, v: GVarId, iv: Interval) {
        self.val[v.index()] = iv;
        self.stamp[v.index()] = self.epoch;
    }
}

/// Allocation-free incremental tail replay for the RG hot path.
///
/// Per expanded node the RG calls [`ReplayScratch::begin_expansion`] once
/// with the node's tail, then [`ReplayScratch::child_tail_fails`] per
/// generated child. The scheme exploits two facts:
///
/// 1. A child's tail is `[a] ++ parent_tail` and the parent's own tail
///    already replayed successfully from the empty optimistic map when the
///    parent was created — otherwise it would have been pruned.
/// 2. Each replay step reads and writes only the variables syntactically
///    mentioned by its action (optimistic, conditions, effect targets and
///    value expressions, post levels).
///
/// So after stepping `a` from the empty store, if `vars(a)` is disjoint
/// from the union of the tail actions' variables, the remaining steps
/// evolve exactly as the parent's successful replay did and cannot fail —
/// the check short-circuits. Otherwise the parent tail is re-stepped from
/// the post-`a` store, which *is* the full replay, just through a dense
/// store with O(1) reset instead of a freshly allocated `HashMap`. Either
/// way the accept/prune outcome is identical to
/// `replay_tail(task, &child_tail, None).is_err()`.
pub struct ReplayScratch {
    /// The task's touched-variable index, shared (it is immutable after
    /// construction) so the parallel search's per-worker scratches pay for
    /// it once.
    index: std::sync::Arc<ReplayIndex>,
    store: DenseStore,
    /// `tail_stamp[v] == tail_epoch` ⇔ `v` is touched by the current
    /// expansion's parent tail.
    tail_stamp: Vec<u32>,
    tail_epoch: u32,
    /// Effect-value buffer shared across steps.
    vals: Vec<Interval>,
}

/// The immutable per-task half of [`ReplayScratch`]: per-action
/// touched-variable lists in CSR form (`var_off[a]..var_off[a+1]` bounds
/// action `a`'s slice of `var_flat`). Build once, share via `Arc` across
/// however many per-worker scratches a parallel search spins up.
pub struct ReplayIndex {
    var_flat: Vec<GVarId>,
    var_off: Vec<u32>,
    num_vars: usize,
}

impl ReplayIndex {
    /// Precompute the touched-variable index for a task.
    pub fn new(task: &PlanningTask) -> Self {
        let mut var_flat = Vec::new();
        let mut var_off = Vec::with_capacity(task.num_actions() + 1);
        var_off.push(0u32);
        let mut buf: Vec<GVarId> = Vec::new();
        for act in &task.actions {
            buf.clear();
            for &(v, _) in &act.optimistic {
                buf.push(v);
            }
            for c in &act.conditions {
                c.for_each_var(&mut |v| buf.push(*v));
            }
            for e in &act.effects {
                e.for_each_var(&mut |v| buf.push(*v));
            }
            for &(v, _) in &act.post {
                buf.push(v);
            }
            buf.sort_unstable();
            buf.dedup();
            var_flat.extend_from_slice(&buf);
            var_off.push(var_flat.len() as u32);
        }
        ReplayIndex { var_flat, var_off, num_vars: task.gvars.len() }
    }
}

impl ReplayScratch {
    /// Precompute the touched-variable index for a task and wrap it in a
    /// private scratch.
    pub fn new(task: &PlanningTask) -> Self {
        Self::with_index(std::sync::Arc::new(ReplayIndex::new(task)))
    }

    /// A scratch over an existing shared index. The mutable state
    /// (interval store, tail stamps) is private to this scratch; rollback
    /// between expansions is an O(1) epoch bump, so per-worker scratches
    /// checkpoint and discard replay state without any copying.
    pub fn with_index(index: std::sync::Arc<ReplayIndex>) -> Self {
        let num_vars = index.num_vars;
        ReplayScratch {
            index,
            store: DenseStore::new(num_vars),
            tail_stamp: vec![0; num_vars],
            tail_epoch: 0,
            vals: Vec::new(),
        }
    }

    fn var_range(&self, a: ActionId) -> std::ops::Range<usize> {
        self.index.var_off[a.index()] as usize..self.index.var_off[a.index() + 1] as usize
    }

    /// Mark the variables touched by the parent tail of the node about to
    /// be expanded.
    pub fn begin_expansion(&mut self, parent_tail: &[ActionId]) {
        self.tail_epoch = self.tail_epoch.wrapping_add(1);
        if self.tail_epoch == 0 {
            self.tail_stamp.fill(0);
            self.tail_epoch = 1;
        }
        for &aid in parent_tail {
            for i in self.var_range(aid) {
                let v = self.index.var_flat[i];
                self.tail_stamp[v.index()] = self.tail_epoch;
            }
        }
    }

    /// Exact replacement for `replay_tail(task, &[a] ++ parent_tail,
    /// None).is_err()` given a preceding
    /// [`begin_expansion`](Self::begin_expansion)`(parent_tail)`.
    pub fn child_tail_fails(
        &mut self,
        task: &PlanningTask,
        a: ActionId,
        parent_tail: &[ActionId],
    ) -> bool {
        self.store.reset();
        if step_action(task.action(a), 0, &mut self.store, false, &mut self.vals).is_err() {
            return true;
        }
        let disjoint = self
            .var_range(a)
            .all(|i| self.tail_stamp[self.index.var_flat[i].index()] != self.tail_epoch);
        if disjoint {
            return false;
        }
        for (i, &aid) in parent_tail.iter().enumerate() {
            if step_action(task.action(aid), i + 1, &mut self.store, false, &mut self.vals).is_err()
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_compile::{compile, ActionKind};
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    /// Find an action by predicate on its name.
    fn find(task: &PlanningTask, pat: &str) -> ActionId {
        task.action_ids()
            .find(|&a| task.action(a).name.contains(pat))
            .unwrap_or_else(|| panic!("no action matching `{pat}`"))
    }

    #[test]
    fn direct_m_cross_fails_client_demand() {
        // scenario B Tiny: cross M at level 0 then place the client —
        // the delivered [0,70] interval cannot satisfy ibw ≥ 90.
        let p = scenarios::tiny(LevelScenario::B);
        let task = compile(&p).unwrap();
        let cross = find(&task, "cross(M,n0→n1)");
        let client = find(&task, "place(Client,n1)[M=0]");
        let r = replay_tail(&task, &[cross, client], Some(&task.init_values));
        assert!(matches!(r, Err(ReplayFail::ImpossibleCondition { step: 1, .. })), "{r:?}");
    }

    #[test]
    fn paper_plan_replays_from_init() {
        // the Figure 4 plan under scenario C
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let tail = figure4_tail(&p, &task);
        let map = replay_tail(&task, &tail, Some(&task.init_values)).expect("plan must replay");
        // delivered M at the client node ends in [90, 100]
        let m = p.iface_id("M").unwrap();
        let v = task
            .gvar_id(&sekitei_compile::GVarData::IfaceProp {
                iface: m,
                prop: 0,
                node: p.goals[0].node,
            })
            .unwrap();
        let iv = map[&v];
        assert!(iv.lo >= 90.0 - 1e-9 && iv.hi <= 100.0 + 1e-9, "{iv}");
    }

    /// Assemble the Figure 4 action sequence at the M=[90,100) level.
    fn figure4_tail(p: &sekitei_model::CppProblem, task: &PlanningTask) -> Vec<ActionId> {
        let pick = |pat: &str, lvl_frag: &str| {
            task.action_ids()
                .find(|&a| {
                    let n = &task.action(a).name;
                    n.contains(pat) && n.contains(lvl_frag)
                })
                .unwrap_or_else(|| panic!("no `{pat}` with `{lvl_frag}`"))
        };
        let _ = p;
        vec![
            pick("place(Splitter,n0)", "[M=1,→T=1,→I=1]"),
            pick("place(Zip,n0)", "[T=1,→Z=1]"),
            pick("cross(Z,n0→n1)", "in=1,out=1"),
            pick("cross(I,n0→n1)", "in=1,out=1"),
            pick("place(Unzip,n1)", "[Z=1,→T=1]"),
            pick("place(Merger,n1)", "[T=1,I=1,→M=1]"),
            pick("place(Client,n1)", "[M=1]"),
        ]
    }

    #[test]
    fn uncompressed_t_plus_i_overconsumes_link() {
        // sending raw T and I over the 70-unit link at level 1 each:
        // T∈[63,70) consumes the link, then I∈[27,30) cannot be delivered
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let sp = find(&task, "place(Splitter,n0)[M=1,→T=1,→I=1]");
        let ct = find(&task, "cross(T,n0→n1)[in=1,out=1]");
        let ci = find(&task, "cross(I,n0→n1)[in=1,out=1]");
        let r = replay_tail(&task, &[sp, ct, ci], Some(&task.init_values));
        assert!(r.is_err(), "link overconsumption must be caught: {r:?}");
    }

    #[test]
    fn mid_tail_replay_assumes_optimistic_intervals() {
        // without an initial map, a lone client placement succeeds on its
        // own optimistic assumption
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let client = find(&task, "place(Client,n1)[M=1]");
        let map = replay_tail(&task, &[client], None).unwrap();
        assert!(!map.is_empty());
    }

    #[test]
    fn cpu_overconsumption_detected() {
        // Splitter at M=[100,∞) needs ≥40 CPU on a 30-CPU node once the
        // source cap [0,200] forces the interval up; two Splitters at the
        // top level certainly exhaust the node.
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let sp = task
            .action_ids()
            .find(|&a| {
                let n = &task.action(a).name;
                n.contains("place(Splitter,n0)") && n.contains("[M=2")
            })
            .unwrap();
        // one is optimistically fine (CPU [30,30] − [20, 40] → possibly ≥ 0)
        replay_tail(&task, &[sp], Some(&task.init_values)).unwrap();
        // two certainly overconsume: remaining [0,10] minus [20,40] < 0
        let r = replay_tail(&task, &[sp, sp], Some(&task.init_values));
        assert!(
            matches!(
                r,
                Err(ReplayFail::ImpossibleCondition { .. })
                    | Err(ReplayFail::Overconsumption { .. })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn replay_is_pure() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let tail = figure4_tail(&p, &task);
        let a = replay_tail(&task, &tail, Some(&task.init_values)).unwrap();
        let b = replay_tail(&task, &tail, Some(&task.init_values)).unwrap();
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert_eq!(b[k], *v);
        }
        let _ = task.actions.iter().filter(|a| matches!(a.kind, ActionKind::Cross { .. })).count();
    }
}
