//! Failure diagnosis: explain *why* a CPP instance has no plan.
//!
//! The paper distinguishes two failure modes: logical unreachability (the
//! PLRG cannot even connect the goal to the initial state — "the problem
//! has no solution", §3.2.1) and resource infeasibility (every logically
//! valid configuration dies in replay or concretization — scenario A's
//! fate). [`diagnose`] classifies a failure and names the first missing
//! ingredient, which turns "no plan" into something a domain expert can
//! act on (add a source, relax a level, raise a capacity).

use crate::plan::Plan;
use crate::plrg::Plrg;
use crate::{PlanError, Planner, PlannerConfig};
use sekitei_compile::{compile, PropData};
use sekitei_model::CppProblem;

/// Outcome of a diagnosis.
#[derive(Debug)]
pub enum Diagnosis {
    /// A plan exists; included for convenience.
    Solvable {
        /// The plan found.
        plan: Box<Plan>,
    },
    /// The goal is logically unreachable: no sequence of actions can even
    /// propositionally connect it to the initial state.
    LogicallyUnreachable {
        /// Human-readable reasons, most fundamental first.
        reasons: Vec<String>,
    },
    /// Logically reachable, but every candidate plan violates resource
    /// constraints (the greedy scenario-A failure mode).
    ResourceInfeasible {
        /// Candidate plans rejected at terminal validation.
        candidate_rejects: usize,
        /// Plan tails pruned by optimistic-map replay.
        replay_prunes: usize,
        /// True when a search budget cut the exploration short — the
        /// instance *might* still be solvable.
        budget_exhausted: bool,
    },
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Diagnosis::Solvable { plan } => {
                write!(f, "solvable: {} actions, cost ≥ {:.2}", plan.len(), plan.cost_lower_bound)
            }
            Diagnosis::LogicallyUnreachable { reasons } => {
                writeln!(f, "logically unreachable:")?;
                for r in reasons {
                    writeln!(f, "  - {r}")?;
                }
                Ok(())
            }
            Diagnosis::ResourceInfeasible {
                candidate_rejects,
                replay_prunes,
                budget_exhausted,
            } => {
                write!(
                    f,
                    "resource-infeasible: {candidate_rejects} candidate plans rejected, \
                     {replay_prunes} tails pruned by interval replay{}",
                    if *budget_exhausted {
                        " (search budget exhausted — possibly still solvable)"
                    } else {
                        ""
                    }
                )
            }
        }
    }
}

/// Diagnose a problem instance.
pub fn diagnose(problem: &CppProblem, config: &PlannerConfig) -> Result<Diagnosis, PlanError> {
    let task = compile(problem)?;
    let plrg = Plrg::build(&task);

    if !plrg.solvable(&task) {
        let mut reasons = Vec::new();
        // goal-level reasons
        for &g in &task.goal_props {
            if plrg.prop_cost(g).is_finite() {
                continue;
            }
            if let PropData::Placed { comp, node } = task.prop(g) {
                let spec = problem.component(comp);
                let node_name = &problem.network.node(node).name;
                // does any placement of this component fire anywhere?
                let fires_somewhere = task.actions.iter().enumerate().any(|(i, a)| {
                    matches!(a.kind, sekitei_compile::ActionKind::Place { comp: c2, .. } if c2 == comp)
                        && plrg.action_value[i].is_finite()
                });
                if fires_somewhere {
                    reasons.push(format!(
                        "`{}` is deployable elsewhere but not on `{node_name}` — its inputs \
                         never reach that node at the required levels",
                        spec.name
                    ));
                } else {
                    // name the first required interface that is nowhere available
                    let mut named = false;
                    for r in &spec.requires {
                        let iface = problem.iface_id(r).expect("validated");
                        let reachable = task.props.iter().enumerate().any(|(pi, pd)| {
                            matches!(pd, PropData::Avail { iface: i2, .. } if *i2 == iface)
                                && plrg.value[pi].is_finite()
                        });
                        if !reachable {
                            reasons.push(format!(
                                "stream `{r}` (required by `{}`) is not producible anywhere: \
                                 no source provides it and no reachable component implements it",
                                spec.name
                            ));
                            named = true;
                        }
                    }
                    if !named {
                        reasons.push(format!(
                            "`{}` cannot be deployed on any node (level-pruned everywhere)",
                            spec.name
                        ));
                    }
                }
            }
        }
        if reasons.is_empty() {
            reasons.push("goal unreachable for an unidentified logical reason".into());
        }
        return Ok(Diagnosis::LogicallyUnreachable { reasons });
    }

    let outcome = Planner::new(*config).plan_task(task, std::time::Instant::now());
    match outcome.plan {
        Some(plan) => Ok(Diagnosis::Solvable { plan: Box::new(plan) }),
        None => Ok(Diagnosis::ResourceInfeasible {
            candidate_rejects: outcome.stats.candidate_rejects,
            replay_prunes: outcome.stats.replay_prunes,
            budget_exhausted: outcome.stats.budget_exhausted,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn solvable_instance() {
        let p = scenarios::tiny(LevelScenario::C);
        let d = diagnose(&p, &PlannerConfig::default()).unwrap();
        assert!(matches!(d, Diagnosis::Solvable { .. }));
        assert!(d.to_string().contains("solvable"));
    }

    #[test]
    fn missing_source_is_logical() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.sources.clear();
        let d = diagnose(&p, &PlannerConfig::default()).unwrap();
        match &d {
            Diagnosis::LogicallyUnreachable { reasons } => {
                assert!(
                    reasons.iter().any(|r| r.contains("`M`")),
                    "should name the missing M stream: {reasons:?}"
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(d.to_string().contains("unreachable"));
    }

    #[test]
    fn scenario_a_is_resource_infeasible() {
        let p = scenarios::tiny(LevelScenario::A);
        let d = diagnose(&p, &PlannerConfig::default()).unwrap();
        match d {
            Diagnosis::ResourceInfeasible { candidate_rejects, .. } => {
                assert!(candidate_rejects > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn impossible_deadline_is_resource_infeasible() {
        let p = scenarios::tradeoff_deadline(0.3, 10.0);
        let d = diagnose(&p, &PlannerConfig::default()).unwrap();
        match d {
            Diagnosis::ResourceInfeasible { replay_prunes, .. } => {
                assert!(replay_prunes > 0, "latency pruning should show up");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compile_error_propagates() {
        let mut p = scenarios::tiny(LevelScenario::C);
        p.goals.clear();
        assert!(diagnose(&p, &PlannerConfig::default()).is_err());
    }
}
