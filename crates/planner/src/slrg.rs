//! Phase 2 — the set logical regression graph (paper §3.2.2).
//!
//! Estimates the minimum *logical* cost of achieving a **set** of
//! propositions from the initial state. Unlike the PLRG (which maxes over
//! individual propositions and therefore assumes achievers can share all
//! work), the SLRG regresses over actions in sequence, so e.g. two link
//! crossings are costed additively (the paper's 18-vs-19 example).
//!
//! Implementation: A* regression from the queried set toward the initial
//! state, using the PLRG max-bound as the (admissible, consistent)
//! heuristic, branching on the achievers of a single selected open
//! proposition — complete and optimality-preserving in the delete-free
//! propositional projection, because any plan can be reordered to end with
//! an achiever of any chosen proposition it achieves. Query results are
//! memoized; a per-query expansion budget degrades gracefully to the best
//! admissible lower bound discovered (the minimum f-value left in the open
//! list) instead of blowing up.
//!
//! The oracle owns the search core's [`SetPool`]: every set is interned
//! once and addressed by a copyable [`SetId`], so the memo table is a
//! dense `Vec` lookup, heap entries are `Copy`, and the per-query `best_g`
//! map is an epoch-stamped array — no hashing of boxed slices anywhere on
//! the hot path (see DESIGN.md, "Search-core performance").

use crate::plrg::Plrg;
use crate::pool::{SetId, SetPool};
use crate::setkey::SetKey;
use sekitei_compile::PlanningTask;
use sekitei_model::PropId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A memoized cost (exact or lower bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetCost {
    /// Cost bound. `f64::INFINITY` means "proved unreachable".
    pub bound: f64,
    /// Whether the bound is the exact optimal logical cost.
    pub exact: bool,
}

/// SLRG statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlrgStats {
    /// Distinct set nodes generated across all queries (Table 2 col 7).
    pub nodes: usize,
    /// Queries answered from the memo table.
    pub cache_hits: usize,
    /// Queries that exhausted their expansion budget.
    pub budget_exhausted: usize,
    /// Wall time spent inside uncached A* queries (lets callers split the
    /// search phase into SLRG vs RG time).
    pub time: std::time::Duration,
}

/// The SLRG: a memoizing set-cost oracle over interned proposition sets.
pub struct Slrg<'t> {
    task: &'t PlanningTask,
    plrg: &'t Plrg,
    /// Expansion budget per query.
    budget: usize,
    /// The shared set arena (also used by the RG, which borrows it through
    /// [`Slrg::pool`]/[`Slrg::pool_mut`]).
    pool: SetPool,
    /// Memoized query results, indexed by [`SetId`].
    cache: Vec<Option<SetCost>>,
    /// Epoch-stamped per-query `best_g`, indexed by [`SetId`].
    gval: Vec<f64>,
    gstamp: Vec<u32>,
    gepoch: u32,
    stats: SlrgStats,
}

impl<'t> Slrg<'t> {
    /// Create an oracle with the given per-query expansion budget.
    pub fn new(task: &'t PlanningTask, plrg: &'t Plrg, budget: usize) -> Self {
        Slrg {
            task,
            plrg,
            budget,
            pool: SetPool::new(),
            cache: Vec::new(),
            gval: Vec::new(),
            gstamp: Vec::new(),
            gepoch: 0,
            stats: SlrgStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> SlrgStats {
        self.stats
    }

    /// The per-query expansion budget this oracle was created with (lets
    /// the parallel search build worker-private oracles that answer
    /// bit-identically).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The shared set arena.
    pub fn pool(&self) -> &SetPool {
        &self.pool
    }

    /// Mutable access to the shared set arena (the RG interns and
    /// regresses sets through this).
    pub fn pool_mut(&mut self) -> &mut SetPool {
        &mut self.pool
    }

    /// In-search heuristic. Deliberately the plain PLRG max (not cached
    /// query results): h_max is *consistent* on the regression graph, which
    /// guarantees the first goal pop is optimal; mixing in memoized values
    /// would keep admissibility but lose consistency.
    fn h(&self, id: SetId) -> f64 {
        self.plrg.set_cost(self.pool.props_of(id))
    }

    /// Pick the open proposition to branch on: the one with the largest
    /// PLRG bound (most constrained first), ties broken by id for
    /// determinism.
    fn select_prop(&self, id: SetId) -> PropId {
        *self
            .pool
            .props_of(id)
            .iter()
            .max_by(|&&a, &&b| {
                self.plrg.prop_cost(a).partial_cmp(&self.plrg.prop_cost(b)).unwrap().then(a.cmp(&b))
            })
            .expect("non-empty set")
    }

    /// Minimum logical cost of achieving `set` from the initial state
    /// (compatibility wrapper: interns the key and delegates).
    pub fn achievement_cost(&mut self, set: &SetKey) -> SetCost {
        let id = self.pool.intern_sorted(set.props());
        self.achievement_cost_id(id)
    }

    /// [`Slrg::achievement_cost`] over an already-canonical (sorted,
    /// deduplicated) slice — skips the [`SetKey`] allocation.
    pub fn achievement_cost_sorted(&mut self, props: &[PropId]) -> SetCost {
        let id = self.pool.intern_sorted(props);
        self.achievement_cost_id(id)
    }

    /// Read-only memo snapshot: the memoized cost of an interned set, if
    /// any. Never runs a query, never touches the pool, the `best_g`
    /// arrays or the statistics — safe to call concurrently from many
    /// reader threads between the parallel search's mutation barriers.
    /// The returned value, when present, is bit-identical to what
    /// [`Slrg::achievement_cost_id`] would return: query results are a
    /// pure function of `(task, plrg, budget, set)`.
    pub fn cached_cost_id(&self, id: SetId) -> Option<SetCost> {
        if id == SetId::EMPTY {
            return Some(SetCost { bound: 0.0, exact: true });
        }
        self.cache.get(id.index()).copied().flatten()
    }

    /// Merge an externally computed query result into the memo (the
    /// parallel search's round barrier publishes worker-computed child
    /// costs this way). First write wins: by purity a duplicate insert
    /// carries the identical value, so keeping the incumbent preserves
    /// the sequential memo's contents exactly where they overlap.
    pub fn memo_insert(&mut self, id: SetId, c: SetCost) {
        if self.cache.get(id.index()).copied().flatten().is_none() {
            self.cache_put(id, c);
        }
    }

    /// Minimum logical cost of achieving an interned set.
    pub fn achievement_cost_id(&mut self, id: SetId) -> SetCost {
        if id == SetId::EMPTY {
            return SetCost { bound: 0.0, exact: true };
        }
        if let Some(Some(c)) = self.cache.get(id.index()) {
            self.stats.cache_hits += 1;
            return *c;
        }
        // fast infeasibility check
        if self.pool.props_of(id).iter().any(|&p| !self.plrg.prop_cost(p).is_finite()) {
            let c = SetCost { bound: f64::INFINITY, exact: true };
            self.cache_put(id, c);
            return c;
        }

        let t = std::time::Instant::now();
        let result = self.astar(id);
        self.stats.time += t.elapsed();
        self.cache_put(id, result);
        result
    }

    fn cache_put(&mut self, id: SetId, c: SetCost) {
        if self.cache.len() <= id.index() {
            self.cache.resize(id.index() + 1, None);
        }
        self.cache[id.index()] = Some(c);
    }

    /// `best_g` lookup for the current query epoch.
    fn bg_get(&self, id: SetId) -> Option<f64> {
        match self.gstamp.get(id.index()) {
            Some(&s) if s == self.gepoch => Some(self.gval[id.index()]),
            _ => None,
        }
    }

    /// `best_g` store for the current query epoch (grows the arrays to the
    /// pool's current size on demand).
    fn bg_set(&mut self, id: SetId, g: f64) {
        if self.gval.len() <= id.index() {
            let n = self.pool.len().max(id.index() + 1);
            self.gval.resize(n, 0.0);
            self.gstamp.resize(n, 0);
        }
        self.gval[id.index()] = g;
        self.gstamp[id.index()] = self.gepoch;
    }

    fn astar(&mut self, start: SetId) -> SetCost {
        // open: (f, counter, g, id) — counter gives FIFO tie-breaking and a
        // total order without comparing keys; g detects stale entries
        let mut open: BinaryHeap<(Reverse<u64>, Reverse<u64>, u64, SetId)> = BinaryHeap::new();
        let mut counter = 0u64;
        self.gepoch = self.gepoch.wrapping_add(1);
        if self.gepoch == 0 {
            // epoch wrapped: old stamps could alias, wipe them once
            self.gstamp.fill(0);
            self.gepoch = 1;
        }

        let h0 = self.h(start);
        open.push((Reverse(h0.to_bits()), Reverse(counter), 0f64.to_bits(), start));
        self.bg_set(start, 0.0);
        self.stats.nodes += 1;

        let mut expansions = 0usize;
        while let Some((Reverse(fbits), _, gbits, key)) = open.pop() {
            let f = f64::from_bits(fbits);
            let g = f64::from_bits(gbits);
            match self.bg_get(key) {
                Some(bg) if g <= bg + 1e-12 => {}
                _ => continue, // a cheaper path to this set superseded us
            }
            if key == SetId::EMPTY {
                return SetCost { bound: g, exact: true };
            }
            expansions += 1;
            if expansions > self.budget {
                self.stats.budget_exhausted += 1;
                // everything left in open is an admissible completion bound
                let lb = f.max(0.0);
                return SetCost { bound: lb, exact: false };
            }

            let target = self.select_prop(key);
            // the achiever slice borrows the task (lifetime 't), not self
            let task = self.task;
            for &a in task.achievers(target) {
                if !self.plrg.usable(a) {
                    continue;
                }
                let act = task.action(a);
                let child = self.pool.regress(key, &act.adds, &act.preconds, |p| task.initially(p));
                let g2 = g + act.cost;
                let hc = self.h(child);
                if !hc.is_finite() {
                    continue;
                }
                match self.bg_get(child) {
                    Some(bg) => {
                        if g2 + 1e-12 < bg {
                            self.bg_set(child, g2);
                            counter += 1;
                            open.push((
                                Reverse((g2 + hc).to_bits()),
                                Reverse(counter),
                                g2.to_bits(),
                                child,
                            ));
                        }
                    }
                    None => {
                        self.bg_set(child, g2);
                        self.stats.nodes += 1;
                        counter += 1;
                        open.push((
                            Reverse((g2 + hc).to_bits()),
                            Reverse(counter),
                            g2.to_bits(),
                            child,
                        ));
                    }
                }
            }
        }
        // open exhausted without reaching the initial state
        SetCost { bound: f64::INFINITY, exact: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn setup(sc: LevelScenario) -> (PlanningTask, Plrg) {
        let p = scenarios::tiny(sc);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        (task, plrg)
    }

    #[test]
    fn goal_cost_at_least_plrg_bound() {
        let (task, plrg) = setup(LevelScenario::C);
        let mut slrg = Slrg::new(&task, &plrg, 100_000);
        let goal = SetKey::new(task.goal_props.clone());
        let c = slrg.achievement_cost(&goal);
        assert!(c.exact);
        assert!(c.bound >= plrg.set_cost(goal.props()) - 1e-9);
        assert!(c.bound.is_finite());
    }

    #[test]
    fn empty_set_costs_zero() {
        let (task, plrg) = setup(LevelScenario::C);
        let mut slrg = Slrg::new(&task, &plrg, 1000);
        assert_eq!(slrg.achievement_cost(&SetKey::empty()).bound, 0.0);
    }

    #[test]
    fn init_prop_costs_zero() {
        let (task, plrg) = setup(LevelScenario::C);
        let mut slrg = Slrg::new(&task, &plrg, 1000);
        let s = SetKey::new(vec![task.init_props[0]]);
        // an initially-true prop is never open after regression… but as a
        // direct query it terminates immediately at cost 0? No: the start
        // key retains it, so it must be re-achieved or the search notes the
        // set is not empty. Regression semantics drop init props when
        // *generated*; for a direct query the set is satisfied iff the
        // props are init-true — normalize at the caller. Here we verify the
        // oracle at least returns a finite bound.
        let c = slrg.achievement_cost(&s);
        assert!(c.bound >= 0.0);
    }

    #[test]
    fn memoization_hits() {
        let (task, plrg) = setup(LevelScenario::C);
        let mut slrg = Slrg::new(&task, &plrg, 100_000);
        let goal = SetKey::new(task.goal_props.clone());
        let a = slrg.achievement_cost(&goal);
        let before = slrg.stats().cache_hits;
        let b = slrg.achievement_cost(&goal);
        assert_eq!(a, b);
        assert_eq!(slrg.stats().cache_hits, before + 1);
    }

    #[test]
    fn budget_exhaustion_returns_admissible_bound() {
        let (task, plrg) = setup(LevelScenario::E);
        let goal = SetKey::new(task.goal_props.clone());
        let mut tight = Slrg::new(&task, &plrg, 2);
        let lb = tight.achievement_cost(&goal);
        let mut roomy = Slrg::new(&task, &plrg, 1_000_000);
        let exact = roomy.achievement_cost(&goal);
        assert!(exact.exact);
        assert!(
            lb.bound <= exact.bound + 1e-9,
            "budgeted bound {} must stay below exact {}",
            lb.bound,
            exact.bound
        );
    }

    #[test]
    fn unreachable_set_is_infinite() {
        let p = {
            let mut p = scenarios::tiny(LevelScenario::C);
            p.sources.clear();
            p
        };
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 1000);
        let goal = SetKey::new(task.goal_props.clone());
        let c = slrg.achievement_cost(&goal);
        assert!(c.bound.is_infinite());
    }

    #[test]
    fn sequence_costs_exceed_parallel_plrg_estimate() {
        // the paper's 18-vs-19 point: SLRG counts the two crossings in
        // sequence, so a 2-prop set costs at least as much as its PLRG max
        // and — when both props need separate crossings — strictly more
        // than either alone.
        let p = scenarios::tiny(LevelScenario::D);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut slrg = Slrg::new(&task, &plrg, 1_000_000);
        // find avail(T, n1, ·) and avail(I, n1, ·) props with finite cost
        let mut t_prop = None;
        let mut i_prop = None;
        for (i, pd) in task.props.iter().enumerate() {
            if let sekitei_compile::PropData::Avail { iface, node, level } = pd {
                let name = &p.iface(*iface).name;
                if node.index() == 1 && plrg.value[i].is_finite() && *level >= 1 {
                    let pid = PropId::from_index(i);
                    if name == "T" {
                        t_prop = Some(pid);
                    }
                    if name == "I" {
                        i_prop = Some(pid);
                    }
                }
            }
        }
        let (tp, ip) = (t_prop.unwrap(), i_prop.unwrap());
        let pair = slrg.achievement_cost(&SetKey::new(vec![tp, ip])).bound;
        let t_alone = slrg.achievement_cost(&SetKey::new(vec![tp])).bound;
        let i_alone = slrg.achievement_cost(&SetKey::new(vec![ip])).bound;
        assert!(pair >= t_alone.max(i_alone) - 1e-9);
        assert!(pair > t_alone.min(i_alone) + 1e-9);
    }
}
