//! Batch-synchronous parallel RG search (deterministic).
//!
//! Parallelizes the [`crate::rg`] expansion loop without changing a single
//! observable outcome: for any thread count the returned plan, its cost,
//! the admissible `best_open_f` bound **and every RG counter** are
//! bit-identical to the sequential search. The scheme is speculative
//! expansion + strict sequential commit:
//!
//! 1. **Pop.** Each round pops the K best frontier entries in the exact
//!    sequential heap order (f, then deeper-g, then FIFO counter — a
//!    strict total order, since the counter is unique per entry).
//! 2. **Fan-out.** Entries whose expansion is not already cached become
//!    work packets. Persistent scoped workers claim packets by atomic
//!    index and expand them against a *frozen* snapshot of the shared
//!    state: the global [`SetPool`]/SLRG memo behind a read lock, a
//!    per-worker [`StagePool`] overlay for fresh child sets, a per-worker
//!    private [`Slrg`] for memo misses, and a per-worker [`ReplayScratch`]
//!    over a shared [`ReplayIndex`]. Expansion is a *pure function* of the
//!    node: child regression, replay pruning and SLRG set costs depend
//!    only on `(task, plrg, slrg_budget, tail)` — the SLRG A* tie-breaks
//!    on a query-local counter before any [`SetId`], so pool numbering
//!    never leaks into a bound.
//! 3. **Commit.** With the write lock held, the committer replays the
//!    *exact* sequential loop over the batch in pop order, consuming the
//!    cached expansion of each entry: fresh child sets are re-interned
//!    into the global pool in canonical (batch × achiever) order — which
//!    assigns the same `SetId`s sequential interning of that sequence
//!    would — worker-computed costs merge into the global memo, children
//!    push with sequentially assigned tie-break counters, and every
//!    budget/deadline/candidate decision fires in its sequential slot. If
//!    a freshly pushed child outranks the next batch entry (the sequential
//!    search would have popped it first), the remaining entries are pushed
//!    back untouched and the round ends — their cached expansions are
//!    reused when they pop again, so divergence costs synchronization, not
//!    recomputation.
//!
//! Speculation can expand nodes the sequential search never pops (e.g.
//! when a budget trips mid-batch); those results are counted as
//! [`RgResult::par_spec_waste`] and discarded. Everything the commit loop
//! consumes is, by the purity argument above, exactly what the sequential
//! loop would have computed in place.
//!
//! The pruning layer splits along the same seam. Symmetry breaking and
//! replay pruning are pure functions of `(task, tail, set, drain)` and
//! run in the workers; the [`DomTable`], the `dominated` marks, the
//! drain-mode flip and its depth horizon are commit-order state and live
//! with the committer, which replays each decision in the sequential
//! slot. Since worker expansion *behavior* depends on the drain flag
//! (exact orbits vs. coarse signature classes for symmetry), cached
//! expansions are tagged with the flag they were computed under; when the
//! flip lands mid-batch the committer drops the stale tail of the batch
//! and the next round recomputes it under the new mode — the flip happens
//! at most once per search, so that costs one round.
//!
//! [`SetPool`]: crate::pool::SetPool
//! [`StagePool`]: crate::pool::StagePool
//! [`ReplayIndex`]: crate::replay::ReplayIndex

use crate::concretize::{concretize, concretize_relaxed, ConcreteExecution};
use crate::plrg::Plrg;
use crate::pool::{SetId, StagePool};
use crate::prune::{DomTable, IncumbentBound, UsedNodes};
use crate::replay::{replay_tail, ReplayIndex, ReplayScratch};
use crate::rg::{
    collect_tail, select_prop, Heuristic, RgConfig, RgNode, RgResult, DEADLINE_CHECK_STRIDE, ROOT,
};
use crate::slrg::{SetCost, Slrg};
use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, PropId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::time::Instant;

/// Frontier entries speculatively popped per worker thread each round.
/// Larger batches amortize the round barrier and prefill the expansion
/// cache further ahead; smaller ones waste less speculation when budgets
/// trip. 4 per worker keeps the fan-out comfortably ahead of the commit
/// loop without flooding it.
const BATCH_PER_THREAD: usize = 4;

/// Open-heap entry, identical to the sequential search:
/// `(Reverse(f_bits), g_bits, Reverse(counter), node idx)`.
type OpenEntry = (Reverse<u64>, u64, Reverse<u64>, u32);

/// One frontier entry handed to the workers for expansion.
struct Packet {
    idx: u32,
    /// The node's open set (`SetId::EMPTY` ⇒ candidate validation).
    set: SetId,
    g: f64,
    /// Execution-ordered plan tail of the node.
    tail: Vec<ActionId>,
}

/// A round of work, shared with every worker; packets are claimed by
/// atomic index (work stealing, same idiom as `Planner::plan_batch_with`).
struct Round {
    packets: Vec<Packet>,
    next: AtomicUsize,
    /// Drain-mode flag as committed at round start. Expansion behavior
    /// (exact orbit vs. coarse signature-class symmetry) depends on it,
    /// so each cached expansion records the flag it was computed under;
    /// the committer discards stale entries when the flag flips.
    drain: bool,
}

/// A child's proposition set as seen from a worker's frozen snapshot.
enum ChildSet {
    /// Already interned in the global pool at round start.
    Known(SetId),
    /// Fresh this round: the committer interns it in canonical order.
    Fresh(Vec<PropId>),
}

/// One achiever-loop event, in sequential iteration order.
enum ChildOut {
    /// Child discarded by optimistic-map replay (after a finite heuristic,
    /// exactly where the sequential loop counts it).
    Pruned,
    /// Achiever skipped by node-symmetry breaking (before regression, so
    /// symmetry-pruned children never intern sets — pool identity).
    SymPruned,
    /// Child to create and push. The committer owns the [`DomTable`] and
    /// replays the drain-mode duplicate decision in commit order.
    Kept { action: ActionId, set: ChildSet, g2: f64, cost: SetCost },
}

/// A worker's result for one packet.
enum Expansion {
    /// Achiever-loop events of an inner-node expansion.
    Children(Vec<ChildOut>),
    /// Terminal candidate validation outcome.
    Candidate {
        tail: Vec<ActionId>,
        solved: Option<Box<ConcreteExecution>>,
        fallback: Option<Box<ConcreteExecution>>,
        dur: std::time::Duration,
    },
}

/// Run the batch-synchronous parallel RG search on `threads` workers.
/// Prefer [`crate::rg::search_with_threads`], which dispatches
/// `threads <= 1` to the sequential path.
pub fn search(
    task: &PlanningTask,
    plrg: &Plrg,
    slrg: &mut Slrg<'_>,
    cfg: &RgConfig,
    threads: usize,
    incumbent: IncumbentBound<'_>,
) -> RgResult {
    let threads = threads.max(2);
    let mut result = RgResult::empty();

    // --- initialization: byte-for-byte the sequential prologue ---
    let goal_props: Vec<PropId> =
        task.goal_props.iter().copied().filter(|&p| !task.initially(p)).collect();
    if goal_props.is_empty() {
        let exec = concretize(task, &[], &std::collections::HashMap::new())
            .expect("empty plan always executes");
        result.plan = Some((Vec::new(), 0.0, exec));
        return result;
    }
    let goal = slrg.pool_mut().intern(goal_props);
    let h0 = match cfg.heuristic {
        Heuristic::Slrg => slrg.achievement_cost_id(goal).bound,
        Heuristic::PlrgMax => plrg.set_cost(slrg.pool().props_of(goal)),
        Heuristic::Blind => {
            if plrg.set_cost(slrg.pool().props_of(goal)).is_finite() {
                0.0
            } else {
                f64::INFINITY
            }
        }
    };
    result.root_h = h0;
    if !h0.is_finite() {
        return result; // logically unsolvable
    }

    let mut nodes: Vec<RgNode> = Vec::new();
    let mut open: BinaryHeap<OpenEntry> = BinaryHeap::new();
    let mut counter = 0u64;
    nodes.push(RgNode { action: ActionId(0), parent: ROOT, set: goal, g: 0.0, depth: 0 });
    result.nodes_created += 1;
    open.push((Reverse(h0.to_bits()), 0f64.to_bits(), Reverse(counter), 0));

    // --- parallel machinery ---
    let slrg_budget = slrg.budget();
    let replay_index = Arc::new(ReplayIndex::new(task));
    let fallback_found = AtomicBool::new(false);
    // Workers read the global pool + memo during fan-out; the committer
    // writes them between rounds. The phases are disjoint, so the lock is
    // uncontended — it exists to prove the aliasing safe.
    let shared = RwLock::new(slrg);
    let (res_tx, res_rx) = mpsc::channel::<(u32, Expansion)>();
    // Expansions by node idx, computed this or an earlier round and not
    // yet consumed by the commit loop, tagged with the drain flag they
    // were computed under (inner-node expansion depends on it).
    let mut cache: HashMap<u32, (bool, Expansion)> = HashMap::new();
    let batch_cap = threads * BATCH_PER_THREAD;
    let mut batch: Vec<OpenEntry> = Vec::with_capacity(batch_cap);
    let mut work_since_check = 0usize;
    let cfg = *cfg;

    // pruning layer, owned by the committer (commit-order state); the
    // flags and tables mirror the sequential search exactly
    let dom_on = cfg.dominance && cfg.replay_pruning;
    let drain_enabled = dom_on && cfg.reopen;
    let mut drain = false;
    let mut dom = DomTable::new(cfg.reopen);
    let mut dominated: Vec<bool> = vec![false]; // parallel to `nodes`
    let mut evicted: Vec<u32> = Vec::new();

    std::thread::scope(|s| {
        let mut round_txs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Arc<Round>>();
            round_txs.push(tx);
            let res_tx = res_tx.clone();
            let shared = &shared;
            let fallback_found = &fallback_found;
            let index = Arc::clone(&replay_index);
            s.spawn(move || {
                let mut private = Slrg::new(task, plrg, slrg_budget);
                let mut scratch = ReplayScratch::with_index(index);
                let mut stage = StagePool::new();
                let mut used = UsedNodes::new(task.orbits.num_nodes());
                while let Ok(round) = rx.recv() {
                    let guard = shared.read().expect("committer never panics with the lock");
                    let global: &Slrg<'_> = &guard;
                    stage.reset(global.pool().len());
                    loop {
                        let i = round.next.fetch_add(1, Ordering::Relaxed);
                        let Some(p) = round.packets.get(i) else { break };
                        let exp = if p.set == SetId::EMPTY {
                            expand_candidate(task, &cfg, p, fallback_found)
                        } else {
                            expand_node(
                                task,
                                plrg,
                                &cfg,
                                global,
                                &mut private,
                                &mut scratch,
                                &mut stage,
                                &mut used,
                                round.drain,
                                p,
                            )
                        };
                        if res_tx.send((p.idx, exp)).is_err() {
                            return; // search ended, committer gone
                        }
                    }
                }
            });
        }
        // only workers hold result senders now: a dead worker fleet
        // surfaces as a recv error instead of a hang
        drop(res_tx);

        let mut finished = false;
        while !finished {
            // ---- pop: the K sequentially-next frontier entries ----
            batch.clear();
            while batch.len() < batch_cap {
                match open.pop() {
                    Some(e) => batch.push(e),
                    None => break,
                }
            }
            if batch.is_empty() {
                break; // frontier drained
            }
            result.par_rounds += 1;

            // ---- fan-out: expand entries without a cached result ----
            let t_expand = Instant::now();
            let mut packets: Vec<Packet> = Vec::new();
            for &(_, _, _, idx) in &batch {
                match cache.get(&idx) {
                    // a cached inner expansion from before a drain flip is
                    // stale (wrong replay/symmetry mode): recompute
                    Some((flag, Expansion::Children(_))) if *flag != drain => {
                        cache.remove(&idx);
                        result.par_spec_waste += 1;
                    }
                    Some(_) => continue,
                    None => {}
                }
                let n = &nodes[idx as usize];
                // entries the commit loop will skip anyway (monotone
                // decisions: dominated marks and the drain flip never
                // revert, so a build-time skip is also a commit-time skip)
                if dom_on && dominated[idx as usize] {
                    continue;
                }
                if drain && n.set != SetId::EMPTY && n.depth >= cfg.drain_depth as u32 {
                    continue;
                }
                packets.push(Packet { idx, set: n.set, g: n.g, tail: collect_tail(&nodes, idx) });
            }
            let expected = packets.len();
            if expected > 0 {
                let round = Arc::new(Round { packets, next: AtomicUsize::new(0), drain });
                for tx in &round_txs {
                    let _ = tx.send(Arc::clone(&round));
                }
                for _ in 0..expected {
                    let (idx, exp) = res_rx.recv().expect("a worker thread died");
                    cache.insert(idx, (drain, exp));
                }
            }
            result.par_expand_time += t_expand.elapsed();

            // ---- commit: replay the sequential loop over the batch ----
            let t_merge = Instant::now();
            let mut guard = shared.write().expect("workers never panic with the lock");
            let slrg: &mut Slrg<'_> = &mut guard;
            'commit: for pos in 0..batch.len() {
                let entry = batch[pos];
                if pos > 0 {
                    if let Some(&top) = open.peek() {
                        if top > entry {
                            // a child committed this round outranks the
                            // rest of the batch — the sequential search
                            // would pop it next. Resynchronize; cached
                            // expansions survive for the re-pop.
                            for &e in &batch[pos..] {
                                open.push(e);
                            }
                            break 'commit;
                        }
                    }
                }
                let (Reverse(f_bits), _, _, idx) = entry;
                let popped_f = f64::from_bits(f_bits);
                result.par_batch_nodes += 1;
                if result.nodes_created >= cfg.max_nodes {
                    result.budget_exhausted = true;
                    result.best_open_f = Some(popped_f);
                    for &e in &batch[pos + 1..] {
                        open.push(e);
                    }
                    finished = true;
                    break 'commit;
                }
                if let Some(deadline) = cfg.deadline {
                    work_since_check += 1;
                    if work_since_check >= DEADLINE_CHECK_STRIDE {
                        work_since_check = 0;
                        if Instant::now() >= deadline {
                            result.budget_exhausted = true;
                            result.deadline_hit = true;
                            result.best_open_f = Some(popped_f);
                            for &e in &batch[pos + 1..] {
                                open.push(e);
                            }
                            finished = true;
                            break 'commit;
                        }
                    }
                }
                // anytime incumbent cutoff — the sequential slot, replayed
                // at commit time so the committed prefix stays a prefix of
                // the sequential trajectory (the atomic is only *read*
                // here; its value never feeds any committed decision other
                // than where the trajectory ends)
                if incumbent.cuts(popped_f) {
                    result.incumbent_cutoff = true;
                    result.best_open_f = Some(popped_f);
                    for &e in &batch[pos + 1..] {
                        open.push(e);
                    }
                    finished = true;
                    break 'commit;
                }
                // drain flip: a pure function of committed counters, so it
                // fires in exactly the sequential slot
                if drain_enabled
                    && !drain
                    && (result.candidate_rejects >= cfg.drain_after_rejects
                        || result.nodes_created >= cfg.drain_after_nodes)
                {
                    drain = true;
                    result.drain_mode = true;
                }
                if dom_on && dominated[idx as usize] {
                    continue; // superseded by a strictly better arrival
                }
                if drain
                    && nodes[idx as usize].set != SetId::EMPTY
                    && nodes[idx as usize].depth >= cfg.drain_depth as u32
                {
                    result.drain_depth_pruned += 1;
                    continue;
                }
                // a cached inner expansion computed under the other drain
                // flag is stale: drop it and resynchronize — the next
                // round's fan-out recomputes it under the current flag
                if matches!(cache.get(&idx), Some((flag, Expansion::Children(_))) if *flag != drain)
                {
                    cache.remove(&idx);
                    result.par_spec_waste += 1;
                    for &e in &batch[pos..] {
                        open.push(e);
                    }
                    break 'commit;
                }
                result.expansions += 1;
                let (_, exp) = cache.remove(&idx).expect("every batch entry was expanded");
                match exp {
                    Expansion::Candidate { tail, solved, fallback, dur } => {
                        result.concretize_calls += 1;
                        result.concretize_time += dur;
                        if let Some(exec) = solved {
                            result.plan = Some((tail, nodes[idx as usize].g, *exec));
                            for &e in &batch[pos + 1..] {
                                open.push(e);
                            }
                            finished = true;
                            break 'commit;
                        }
                        result.candidate_rejects += 1;
                        if cfg.relaxed_fallback && result.fallback.is_none() {
                            if let Some(exec) = fallback {
                                result.fallback = Some((tail, nodes[idx as usize].g, *exec));
                                fallback_found.store(true, Ordering::Relaxed);
                            }
                        }
                        if result.candidate_rejects >= cfg.max_candidate_rejects {
                            result.budget_exhausted = true;
                            result.best_open_f = Some(popped_f);
                            for &e in &batch[pos + 1..] {
                                open.push(e);
                            }
                            finished = true;
                            break 'commit;
                        }
                    }
                    Expansion::Children(children) => {
                        for c in children {
                            match c {
                                ChildOut::Pruned => result.replay_prunes += 1,
                                ChildOut::SymPruned => result.symmetry_pruned += 1,
                                ChildOut::Kept { action, set, g2, cost } => {
                                    let child_set = match set {
                                        ChildSet::Known(id) => id,
                                        ChildSet::Fresh(props) => {
                                            slrg.pool_mut().intern_sorted(&props)
                                        }
                                    };
                                    if cfg.heuristic == Heuristic::Slrg {
                                        slrg.memo_insert(child_set, cost);
                                    }
                                    // drain-mode g-aware duplicate
                                    // detection, replayed in commit order
                                    // (candidates are never gated)
                                    if drain && dom_on && child_set != SetId::EMPTY {
                                        evicted.clear();
                                        if dom.check_and_insert(
                                            child_set,
                                            g2,
                                            nodes.len() as u32,
                                            &mut evicted,
                                        ) {
                                            result.dominance_pruned += 1;
                                            continue;
                                        }
                                        for &e in &evicted {
                                            dominated[e as usize] = true;
                                            result.reopened += 1;
                                        }
                                    }
                                    let child_idx = nodes.len() as u32;
                                    let depth = nodes[idx as usize].depth + 1;
                                    nodes.push(RgNode {
                                        action,
                                        parent: idx,
                                        set: child_set,
                                        g: g2,
                                        depth,
                                    });
                                    dominated.push(false);
                                    result.nodes_created += 1;
                                    if cfg.deadline.is_some() {
                                        work_since_check += 1;
                                    }
                                    counter += 1;
                                    open.push((
                                        Reverse((g2 + cost.bound).to_bits()),
                                        g2.to_bits(),
                                        Reverse(counter),
                                        child_idx,
                                    ));
                                    if nodes.len() >= cfg.max_nodes {
                                        result.budget_exhausted = true;
                                        for &e in &batch[pos + 1..] {
                                            open.push(e);
                                        }
                                        finished = true;
                                        break 'commit;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            drop(guard);
            result.par_merge_time += t_merge.elapsed();
        }
        // round_txs drop here: workers see the hangup and exit, the scope
        // joins them
    });

    result.open_left = open.len();
    if result.plan.is_none() && result.best_open_f.is_none() {
        result.best_open_f = open.peek().map(|&(Reverse(f_bits), ..)| f64::from_bits(f_bits));
    }
    result.par_spec_waste += cache.len();
    // same lossy-drain contract as the sequential search
    if result.drain_mode && result.plan.is_none() {
        result.budget_exhausted = true;
    }
    result
}

/// Terminal candidate validation, identical to the sequential branch:
/// full replay from the initial state, greedy concretization, and (when
/// degradation is on and no fallback has been committed yet) the relaxed
/// re-binding attempt.
fn expand_candidate(
    task: &PlanningTask,
    cfg: &RgConfig,
    p: &Packet,
    fallback_found: &AtomicBool,
) -> Expansion {
    let t = Instant::now();
    let mut solved = None;
    let mut fb = None;
    if let Ok(map) = replay_tail(task, &p.tail, Some(&task.init_values)) {
        match concretize(task, &p.tail, &map) {
            Ok(exec) => solved = Some(Box::new(exec)),
            Err(_) => {
                // the flag only ever flips after a fallback was *committed*,
                // so skipping here can never starve the commit loop of a
                // fallback it still wants — it just saves the grid scan
                if cfg.relaxed_fallback && !fallback_found.load(Ordering::Relaxed) {
                    if let Ok(exec) = concretize_relaxed(task, &p.tail, &map) {
                        fb = Some(Box::new(exec));
                    }
                }
            }
        }
    }
    Expansion::Candidate { tail: p.tail.clone(), solved, fallback: fb, dur: t.elapsed() }
}

/// Inner-node expansion against the frozen round snapshot: the sequential
/// achiever loop with the global pool replaced by a [`StagePool`] overlay
/// and the global SLRG replaced by memo-snapshot reads + a private oracle.
/// Symmetry breaking and replay pruning are pure functions of
/// `(task, tail, set, drain)`, so they run here; the drain-mode duplicate
/// decisions that depend on commit order stay with the committer.
#[allow(clippy::too_many_arguments)]
fn expand_node<'t>(
    task: &'t PlanningTask,
    plrg: &'t Plrg,
    cfg: &RgConfig,
    global: &Slrg<'_>,
    private: &mut Slrg<'t>,
    scratch: &mut ReplayScratch,
    stage: &mut StagePool,
    used: &mut UsedNodes,
    drain: bool,
    p: &Packet,
) -> Expansion {
    let pool = global.pool();
    if cfg.replay_pruning {
        scratch.begin_expansion(&p.tail);
    }
    let sym_here = if drain {
        cfg.symmetry && task.sig_classes.nontrivial()
    } else {
        cfg.symmetry && task.orbits.nontrivial()
    };
    let orbit_table = if drain { &task.sig_classes } else { &task.orbits };
    if sym_here {
        used.begin();
        for &aid in &p.tail {
            used.mark_action(task, aid);
        }
        for &q in pool.props_of(p.set) {
            used.mark_prop(task, q);
        }
    }
    let target = select_prop(plrg, pool.props_of(p.set));
    let parent = stage.adopt(p.set);
    let mut out = Vec::new();
    for &a in task.achievers(target) {
        if !plrg.usable(a) {
            continue;
        }
        if p.tail.contains(&a) {
            continue;
        }
        if sym_here && used.shadowed_by_sibling(task, orbit_table, a) {
            out.push(ChildOut::SymPruned);
            continue;
        }
        let act = task.action(a);
        let child = stage.regress(pool, parent, &act.adds, &act.preconds, |q| task.initially(q));
        let g2 = p.g + act.cost;
        let cost = match cfg.heuristic {
            // global memo snapshot first; a miss (always, for sets fresh
            // this round) runs the pure query on the private oracle
            Heuristic::Slrg => {
                match stage.as_base(child).and_then(|id| global.cached_cost_id(id)) {
                    Some(c) => c,
                    None => private.achievement_cost_sorted(stage.props_of(pool, child)),
                }
            }
            Heuristic::PlrgMax => {
                SetCost { bound: plrg.set_cost(stage.props_of(pool, child)), exact: false }
            }
            Heuristic::Blind => {
                let finite = plrg.set_cost(stage.props_of(pool, child)).is_finite();
                SetCost { bound: if finite { 0.0 } else { f64::INFINITY }, exact: false }
            }
        };
        if !cost.bound.is_finite() {
            continue;
        }
        if cfg.replay_pruning && scratch.child_tail_fails(task, a, &p.tail) {
            out.push(ChildOut::Pruned);
            continue;
        }
        let set = match stage.as_base(child) {
            Some(id) => ChildSet::Known(id),
            None => ChildSet::Fresh(stage.props_of(pool, child).to_vec()),
        };
        out.push(ChildOut::Kept { action: a, set, g2, cost });
    }
    Expansion::Children(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rg;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn both(sc: LevelScenario, cfg: &RgConfig, threads: usize) -> (RgResult, RgResult) {
        let p = scenarios::tiny(sc);
        let task = compile(&p).unwrap();
        let plrg = Plrg::build(&task);
        let mut s1 = Slrg::new(&task, &plrg, 50_000);
        let seq = rg::search(&task, &plrg, &mut s1, cfg);
        let mut s2 = Slrg::new(&task, &plrg, 50_000);
        let par = search(&task, &plrg, &mut s2, cfg, threads, IncumbentBound::none());
        (seq, par)
    }

    fn assert_same(seq: &RgResult, par: &RgResult, label: &str) {
        assert_eq!(seq.nodes_created, par.nodes_created, "{label}: nodes");
        assert_eq!(seq.expansions, par.expansions, "{label}: expansions");
        assert_eq!(seq.open_left, par.open_left, "{label}: open_left");
        assert_eq!(seq.replay_prunes, par.replay_prunes, "{label}: prunes");
        assert_eq!(seq.candidate_rejects, par.candidate_rejects, "{label}: rejects");
        assert_eq!(seq.budget_exhausted, par.budget_exhausted, "{label}: budget");
        assert_eq!(seq.dominance_pruned, par.dominance_pruned, "{label}: dominance");
        assert_eq!(seq.symmetry_pruned, par.symmetry_pruned, "{label}: symmetry");
        assert_eq!(seq.reopened, par.reopened, "{label}: reopened");
        assert_eq!(seq.drain_mode, par.drain_mode, "{label}: drain mode");
        assert_eq!(seq.drain_depth_pruned, par.drain_depth_pruned, "{label}: drain depth");
        assert_eq!(
            seq.best_open_f.map(f64::to_bits),
            par.best_open_f.map(f64::to_bits),
            "{label}: bound"
        );
        match (&seq.plan, &par.plan) {
            (None, None) => {}
            (Some((pa, ca, _)), Some((pb, cb, _))) => {
                assert_eq!(pa, pb, "{label}: plan actions");
                assert_eq!(ca.to_bits(), cb.to_bits(), "{label}: plan cost");
            }
            _ => panic!("{label}: solvability disagrees"),
        }
    }

    #[test]
    fn tiny_all_scenarios_match_sequential() {
        let cfg = RgConfig::default();
        for sc in LevelScenario::ALL {
            for threads in [2, 3, 8] {
                let (seq, par) = both(sc, &cfg, threads);
                assert_same(&seq, &par, &format!("tiny/{sc:?} t{threads}"));
            }
        }
    }

    #[test]
    fn tight_node_budget_matches_sequential() {
        let cfg = RgConfig { max_nodes: 40, ..RgConfig::default() };
        for sc in [LevelScenario::A, LevelScenario::E] {
            let (seq, par) = both(sc, &cfg, 4);
            assert_same(&seq, &par, &format!("tight tiny/{sc:?}"));
        }
    }

    #[test]
    fn pruning_on_matches_sequential() {
        let cfg = RgConfig { dominance: true, symmetry: true, reopen: true, ..RgConfig::default() };
        for sc in LevelScenario::ALL {
            for threads in [2, 3, 8] {
                let (seq, par) = both(sc, &cfg, threads);
                assert_same(&seq, &par, &format!("pruned tiny/{sc:?} t{threads}"));
            }
        }
    }

    #[test]
    fn drain_flip_matches_sequential() {
        // force the drain flip to land mid-search so the stale-cache
        // resynchronization path actually runs
        for after in [1, 5, 20, 60] {
            let cfg = RgConfig {
                dominance: true,
                symmetry: true,
                reopen: true,
                drain_after_nodes: after,
                drain_after_rejects: 1,
                ..RgConfig::default()
            };
            for sc in [LevelScenario::A, LevelScenario::B, LevelScenario::E] {
                for threads in [2, 4] {
                    let (seq, par) = both(sc, &cfg, threads);
                    assert_same(&seq, &par, &format!("drain@{after} tiny/{sc:?} t{threads}"));
                }
            }
        }
    }

    #[test]
    fn spec_waste_only_on_truncated_searches() {
        // a drained search consumes every expansion it computed
        let (_, par) = both(LevelScenario::A, &RgConfig::default(), 4);
        assert_eq!(par.par_spec_waste, 0, "drained search must consume all expansions");
        assert!(par.par_rounds > 0);
    }
}
