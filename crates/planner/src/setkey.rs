//! Canonical proposition-set keys for the SLRG and RG search spaces.

use sekitei_model::PropId;

/// An immutable, sorted, deduplicated set of propositions, cheap to hash
/// and compare. Sets are small (goal regression rarely tracks more than a
/// few dozen open conditions), so a sorted boxed slice beats fancier
/// structures on both memory and speed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetKey(Box<[PropId]>);

impl SetKey {
    /// Build from arbitrary propositions (sorts and dedups).
    pub fn new(mut props: Vec<PropId>) -> Self {
        props.sort_unstable();
        props.dedup();
        SetKey(props.into_boxed_slice())
    }

    /// The empty set.
    pub fn empty() -> Self {
        SetKey(Box::new([]))
    }

    /// Member propositions, sorted.
    pub fn props(&self) -> &[PropId] {
        &self.0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, p: PropId) -> bool {
        self.0.binary_search(&p).is_ok()
    }

    /// Regression over an action: `(self \ adds) ∪ preconds`, minus
    /// anything satisfied in the initial state (delete-free semantics allow
    /// dropping initially-true propositions immediately).
    ///
    /// `adds` and `preconds` must be sorted; `initially` tests membership
    /// in the initial state.
    pub fn regress(
        &self,
        adds: &[PropId],
        preconds: &[PropId],
        mut initially: impl FnMut(PropId) -> bool,
    ) -> SetKey {
        let mut out: Vec<PropId> = Vec::with_capacity(self.0.len() + preconds.len());
        for &p in self.0.iter() {
            if adds.binary_search(&p).is_err() {
                out.push(p);
            }
        }
        for &p in preconds {
            if !initially(p) {
                out.push(p);
            }
        }
        SetKey::new(out)
    }
}

impl std::fmt::Display for SetKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: &[u32]) -> SetKey {
        SetKey::new(v.iter().map(|&x| PropId(x)).collect())
    }

    #[test]
    fn canonical_form() {
        let a = key(&[3, 1, 2, 2]);
        let b = key(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(PropId(2)));
        assert!(!a.contains(PropId(9)));
        assert!(SetKey::empty().is_empty());
    }

    #[test]
    fn regress_removes_adds_and_appends_preconds() {
        let s = key(&[1, 2, 3]);
        let adds = [PropId(2), PropId(3)];
        let pre = [PropId(7), PropId(5)];
        // preconds must be provided sorted
        let mut pre_sorted = pre;
        pre_sorted.sort_unstable();
        let r = s.regress(&adds, &pre_sorted, |_| false);
        assert_eq!(r, key(&[1, 5, 7]));
    }

    #[test]
    fn regress_drops_initially_true() {
        let s = key(&[1]);
        let adds = [PropId(1)];
        let pre = [PropId(4), PropId(6)];
        let r = s.regress(&adds, &pre, |p| p == PropId(4));
        assert_eq!(r, key(&[6]));
    }

    #[test]
    fn regress_to_empty_is_terminal() {
        let s = key(&[1]);
        let adds = [PropId(1)];
        let r = s.regress(&adds, &[], |_| true);
        assert!(r.is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(key(&[2, 1]).to_string(), "{p1,p2}");
    }
}
