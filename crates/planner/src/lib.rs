//! # sekitei-planner
//!
//! The Sekitei regression planner with resource levels and cost
//! optimization — the primary contribution of *"Optimal Resource-Aware
//! Deployment Planning for Component-based Distributed Applications"*
//! (HPDC 2004).
//!
//! The algorithm runs in three phases (paper §3.2):
//!
//! 1. [`plrg`] — per-proposition cost bounds (admissible heuristic),
//! 2. [`slrg`] — A* cost bounds for *sets* of propositions,
//! 3. [`rg`] — A* over plan tails with optimistic-map [`replay`] pruning
//!    and greedy [`mod@concretize`]-and-validate termination.
//!
//! The original greedy Sekitei (paper §2.2) is the same machinery run on a
//! problem with trivial `[0, ∞)` levels (scenario A): level sups of ∞ make
//! the greedy concretization push maximum availability, reproducing the
//! worst-case resource assumption and its failures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concretize;
pub mod diagnose;
pub mod diff;
pub mod plan;
pub mod plrg;
pub mod pool;
mod prune;
pub mod reference;
pub mod replay;
pub mod rg;
pub mod rg_par;
pub mod setkey;
pub mod slrg;
pub mod viz;

pub use concretize::{
    concretize, concretize_relaxed, greedy_source_value, minimize_sources, ConcreteExecution,
    ConcretizeFail,
};
pub use diagnose::{diagnose, Diagnosis};
pub use diff::{plan_diff, PlanDiff};
pub use plan::{plan_metrics, Plan, PlanMetrics, PlanStep};
pub use plrg::Plrg;
pub use pool::{SetId, SetPool};
pub use prune::IncumbentBound;
pub use reference::{search_reference, ReferenceOutcome};
pub use replay::{replay_tail, ReplayFail, ReplayScratch, ResourceMap};
pub use rg::{Heuristic, RgConfig, RgResult};
pub use setkey::SetKey;
pub use slrg::{SetCost, Slrg, SlrgStats};
pub use viz::{network_dot, plan_dot};

pub use sekitei_cert as cert;

use sekitei_compile::{compile, CompileError, CompileStats, PlanningTask};
use sekitei_model::CppProblem;
use std::time::{Duration, Instant};

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// RG node budget: the search aborts (reporting
    /// [`PlannerStats::budget_exhausted`] and a sound
    /// [`PlannerStats::best_bound`]) once this many RG nodes exist. Checked
    /// in the same budget slot of the expansion loop as the wall-clock
    /// deadline, but unlike the deadline it is *deterministic* — repair
    /// loops (`crates/churn`) use it to hard-bound worst-case search
    /// without giving up run-to-run reproducibility.
    pub max_nodes: usize,
    /// RG candidate-reject budget (bounds effort on unsolvable instances).
    pub max_candidate_rejects: usize,
    /// SLRG per-query expansion budget.
    pub slrg_budget: usize,
    /// Remaining-cost heuristic for the RG.
    pub heuristic: Heuristic,
    /// Optimistic-map replay pruning (ablation knob; keep on).
    pub replay_pruning: bool,
    /// Wall-clock budget for one planning run, measured from the `t0`
    /// anchor (request arrival; includes compilation). Checked amortized in
    /// the RG expansion loop; tripping it sets
    /// [`PlannerStats::budget_exhausted`] and
    /// [`PlannerStats::deadline_hit`]. `None` (the default) never reads
    /// the clock.
    pub deadline: Option<Duration>,
    /// Graceful degradation: when the search exhausts a budget (nodes,
    /// rejects or deadline) without a validated optimal plan, return the
    /// cheapest interval-feasible candidate re-bound with
    /// [`concretize_relaxed`], tagged [`Plan::degraded`], instead of no
    /// plan at all.
    pub degrade: bool,
    /// RG search worker threads. `1` (the default) runs the plain
    /// sequential search; `>= 2` runs the batch-synchronous parallel
    /// search ([`rg_par`]), whose returned plan, cost bound and counters
    /// are bit-identical to the sequential path for every thread count —
    /// only wall-clock and the purely observational `par_*` trace
    /// metrics differ.
    pub search_threads: usize,
    /// Drain-mode duplicate detection ([`RgConfig::dominance`]): once the
    /// drain trigger fires on a budget-bound run, drop nodes whose open
    /// set was already reached with no-larger cost. Inert on runs that
    /// never hit the trigger. On by default — the differential suite
    /// (`tests/pruning_equivalence.rs`) holds plan costs bit-identical to
    /// the unpruned reference; `--no-prune` is the CLI escape hatch.
    pub dominance: bool,
    /// Orbit symmetry breaking ([`RgConfig::symmetry`]): expand one
    /// placement representative per verified network-node equivalence
    /// class. On by default.
    pub symmetry: bool,
    /// g-aware reopening ([`RgConfig::reopen`]): in drain mode, strictly
    /// better arrivals at a seen open set supersede the stored entry
    /// instead of being blocked by it. On by default.
    pub reopen: bool,
    /// Anytime portfolio mode (`crates/anytime`): race the exact RG
    /// search against a seeded greedy constructor + stochastic
    /// local-search lane sharing a monotone incumbent cost, and return
    /// whichever validated answer is available when the search concludes
    /// or the deadline trips. Plain-data flag here; the orchestration
    /// lives in the `sekitei-anytime` crate (which sits *above* the
    /// planner), so [`Planner::plan`] itself ignores it — callers
    /// (cli/server/churn) route to the anytime facade when set.
    pub anytime: bool,
    /// Seed of the anytime SLS lane's `SplitMix64` stream
    /// (`sekitei-util`). With a fixed seed the lane's full rollout
    /// schedule — and therefore the final incumbent, the returned plan
    /// and the reported gap — is byte-identical across runs and thread
    /// counts.
    pub sls_seed: u64,
    /// Restart count of the anytime SLS lane (each restart runs a fixed
    /// rollout schedule with simulated-annealing-style acceptance).
    pub sls_restarts: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_nodes: 2_000_000,
            max_candidate_rejects: 20_000,
            slrg_budget: 50_000,
            heuristic: Heuristic::Slrg,
            replay_pruning: true,
            deadline: None,
            degrade: false,
            search_threads: 1,
            dominance: true,
            symmetry: true,
            reopen: true,
            anytime: false,
            sls_seed: 0,
            sls_restarts: 3,
        }
    }
}

/// Statistics of one planning run — everything Table 2 reports.
#[derive(Debug, Clone, Default)]
pub struct PlannerStats {
    /// Ground actions after leveling and pruning (col 5).
    pub total_actions: usize,
    /// PLRG proposition nodes (col 6, first).
    pub plrg_props: usize,
    /// PLRG action nodes (col 6, second).
    pub plrg_actions: usize,
    /// SLRG set nodes generated (col 7).
    pub slrg_nodes: usize,
    /// RG nodes created (col 8, first).
    pub rg_nodes: usize,
    /// RG nodes still open at solution time (col 8, second).
    pub rg_open_left: usize,
    /// RG nodes pruned by optimistic-map replay.
    pub replay_prunes: usize,
    /// RG nodes pruned by drain-mode duplicate detection
    /// ([`PlannerConfig::dominance`]).
    pub dominance_pruned: usize,
    /// RG achievers skipped by orbit symmetry breaking
    /// ([`PlannerConfig::symmetry`]).
    pub symmetry_pruned: usize,
    /// RG closed-set entries superseded by strictly better arrivals in
    /// drain mode ([`PlannerConfig::reopen`]).
    pub reopened: usize,
    /// Candidate plans rejected at terminal validation.
    pub candidate_rejects: usize,
    /// Total wall time including compilation (col 9, first).
    pub total_time: std::time::Duration,
    /// Search-only wall time (col 9, second).
    pub search_time: std::time::Duration,
    /// Compilation statistics.
    pub compile: CompileStats,
    /// True if a search budget was exhausted before exhausting the space.
    pub budget_exhausted: bool,
    /// True if specifically the wall-clock deadline tripped the search
    /// (implies `budget_exhausted`).
    pub deadline_hit: bool,
    /// True when the RG search's lossy drain mode engaged: nodes were
    /// dropped by g-aware duplicate detection and coarse signature
    /// symmetry, so [`PlannerStats::best_bound`] is *advisory*, not an
    /// admissible bound on the optimum ([`RgResult::drain_mode`]). The
    /// certificate's bound trail records this so a checker can tell a
    /// proved gap from a best-effort one.
    pub drain_mode: bool,
    /// Admissible lower bound on the optimal plan cost at search exit when
    /// no optimal plan was returned: the minimum f over the unexplored
    /// frontier. `None` means either a plan was found (its
    /// `cost_lower_bound` is the bound) or infeasibility was proven.
    pub best_bound: Option<f64>,
    /// True when the RG search stopped because the frontier's minimum `f`
    /// strictly exceeded a shared anytime incumbent cost — a proof that
    /// the incumbent beats every plan the exact search could still return
    /// ([`RgResult::incumbent_cutoff`]). Never set outside anytime mode.
    pub incumbent_cutoff: bool,
    /// Root heuristic `h(goal)`: a deterministic admissible lower bound on
    /// any plan's cost, independent of where a wall-clock deadline landed
    /// ([`RgResult::root_h`]). `None` when the search never seeded a root.
    pub root_bound: Option<f64>,
    /// Gap between the returned plan's cost lower bound and the best known
    /// admissible bound on the optimal cost, when both exist:
    /// `max(0, cost − bound)`. `0.0` means the plan is proven optimal (or
    /// proven at least as cheap as any exact plan, for anytime
    /// incumbents); `None` means no plan or no usable bound.
    pub optimality_gap: Option<f64>,
}

impl std::fmt::Display for PlannerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ground actions ({} pruned), PLRG {}/{}, SLRG {}, RG {}/{} \
             ({} replay-pruned, {} dominance-pruned, {} symmetry-pruned, \
             {} reopened, {} candidates rejected), time {:?} ({:?} search){}",
            self.total_actions,
            self.compile.pruned,
            self.plrg_props,
            self.plrg_actions,
            self.slrg_nodes,
            self.rg_nodes,
            self.rg_open_left,
            self.replay_prunes,
            self.dominance_pruned,
            self.symmetry_pruned,
            self.reopened,
            self.candidate_rejects,
            self.total_time,
            self.search_time,
            if self.deadline_hit {
                " [deadline hit]"
            } else if self.budget_exhausted {
                " [budget exhausted]"
            } else if self.incumbent_cutoff {
                " [incumbent cutoff]"
            } else {
                ""
            },
        )
    }
}

/// Result of a planning run.
#[derive(Debug)]
pub struct PlanOutcome {
    /// The cost-optimal plan, or `None` when the problem has no solution
    /// the planner can prove feasible.
    pub plan: Option<Plan>,
    /// Run statistics.
    pub stats: PlannerStats,
    /// The compiled task (kept for inspection, metrics and replays).
    pub task: PlanningTask,
}

/// Planner errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The problem failed to compile.
    Compile(CompileError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CompileError> for PlanError {
    fn from(e: CompileError) -> Self {
        PlanError::Compile(e)
    }
}

/// The planner facade.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Create a planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Self {
        Planner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Compile and solve a CPP instance.
    pub fn plan(&self, problem: &CppProblem) -> Result<PlanOutcome, PlanError> {
        let _span = sekitei_obs::span("plan");
        let t0 = Instant::now();
        let task = compile(problem)?;
        Ok(self.plan_task(task, t0))
    }

    /// Solve several independent instances concurrently on scoped worker
    /// threads (one per available core, capped by the batch size). Results
    /// come back in input order and are identical to calling
    /// [`Planner::plan`] sequentially — instances share nothing.
    pub fn plan_batch(&self, problems: &[CppProblem]) -> Vec<Result<PlanOutcome, PlanError>> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.plan_batch_with(problems, threads)
    }

    /// [`Planner::plan_batch`] with an explicit worker-thread count
    /// (`1` degenerates to a plain sequential loop).
    pub fn plan_batch_with(
        &self,
        problems: &[CppProblem],
        threads: usize,
    ) -> Vec<Result<PlanOutcome, PlanError>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let threads = threads.clamp(1, problems.len().max(1));
        if threads == 1 {
            return problems.iter().map(|p| self.plan(p)).collect();
        }
        // work-stealing by atomic index: long rows (Large/A) don't hold up
        // workers that finish their early picks
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<PlanOutcome, PlanError>>>> =
            problems.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= problems.len() {
                        break;
                    }
                    *slots[i].lock().unwrap() = Some(self.plan(&problems[i]));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every index claimed by exactly one worker"))
            .collect()
    }

    /// Solve an already-compiled task (`t0` anchors total-time reporting).
    pub fn plan_task(&self, task: PlanningTask, t0: Instant) -> PlanOutcome {
        self.plan_task_bounded(task, t0, IncumbentBound::none())
    }

    /// [`Planner::plan_task`] with an anytime incumbent upper bound shared
    /// with a concurrently-running SLS lane (see [`IncumbentBound`]). With
    /// [`IncumbentBound::none`] this is exactly `plan_task`.
    pub fn plan_task_bounded(
        &self,
        task: PlanningTask,
        t0: Instant,
        incumbent: IncumbentBound<'_>,
    ) -> PlanOutcome {
        let t_search = Instant::now();
        let plrg = {
            let _g = sekitei_obs::span("plrg");
            Plrg::build(&task)
        };
        let mut stats = PlannerStats {
            total_actions: task.num_actions(),
            compile: task.stats.clone(),
            ..PlannerStats::default()
        };
        let (pp, pa) = plrg.sizes();
        stats.plrg_props = pp;
        stats.plrg_actions = pa;

        let plan = if plrg.solvable(&task) {
            let mut slrg = Slrg::new(&task, &plrg, self.config.slrg_budget);
            let rg_cfg = RgConfig {
                max_nodes: self.config.max_nodes,
                max_candidate_rejects: self.config.max_candidate_rejects,
                heuristic: self.config.heuristic,
                replay_pruning: self.config.replay_pruning,
                deadline: self.config.deadline.map(|d| t0 + d),
                relaxed_fallback: self.config.degrade,
                dominance: self.config.dominance,
                symmetry: self.config.symmetry,
                reopen: self.config.reopen,
                ..RgConfig::default()
            };
            let r = {
                let _g = sekitei_obs::span("rg");
                let search_t0 = sekitei_obs::now_ns();
                let r = rg::search_with_threads_bounded(
                    &task,
                    &plrg,
                    &mut slrg,
                    &rg_cfg,
                    self.config.search_threads,
                    incumbent,
                );
                // SLRG queries and candidate concretization interleave with
                // RG expansions, so their externally-measured totals enter
                // the trace as aggregate child spans of "rg" — self-time
                // accounting then splits the search phase exactly.
                if sekitei_obs::enabled() {
                    let st = slrg.stats();
                    sekitei_obs::aggregate(
                        "slrg",
                        search_t0,
                        st.time.as_nanos() as u64,
                        st.nodes as u64,
                    );
                    sekitei_obs::aggregate(
                        "concretize",
                        search_t0,
                        r.concretize_time.as_nanos() as u64,
                        r.concretize_calls as u64,
                    );
                    sekitei_obs::event("rg_nodes", r.nodes_created as u64);
                    sekitei_obs::event("rg_expansions", r.expansions as u64);
                    sekitei_obs::event("rg_open_left", r.open_left as u64);
                    sekitei_obs::event("replay_prunes", r.replay_prunes as u64);
                    sekitei_obs::event("rg_dominance_pruned", r.dominance_pruned as u64);
                    sekitei_obs::event("rg_symmetry_pruned", r.symmetry_pruned as u64);
                    sekitei_obs::event("rg_reopened", r.reopened as u64);
                    sekitei_obs::event("candidate_rejects", r.candidate_rejects as u64);
                    sekitei_obs::event("slrg_memo_hits", st.cache_hits as u64);
                    sekitei_obs::event("pool_sets", slrg.pool().len() as u64);
                    if r.budget_exhausted {
                        sekitei_obs::event("budget_exhausted", 1);
                    }
                    if r.deadline_hit {
                        sekitei_obs::event("deadline_hit", 1);
                    }
                    if r.incumbent_cutoff {
                        sekitei_obs::event("incumbent_cutoff", 1);
                    }
                    if r.par_rounds > 0 {
                        // parallel-search phase breakdown: fan-out and
                        // commit wall time enter as aggregate child spans
                        // of "rg" (count = rounds), like "slrg" above
                        sekitei_obs::aggregate(
                            "rg_round_expand",
                            search_t0,
                            r.par_expand_time.as_nanos() as u64,
                            r.par_rounds as u64,
                        );
                        sekitei_obs::aggregate(
                            "rg_round_merge",
                            search_t0,
                            r.par_merge_time.as_nanos() as u64,
                            r.par_rounds as u64,
                        );
                        sekitei_obs::event("rg_par_rounds", r.par_rounds as u64);
                        sekitei_obs::event("rg_par_batch_nodes", r.par_batch_nodes as u64);
                        sekitei_obs::event("rg_spec_waste", r.par_spec_waste as u64);
                    }
                }
                r
            };
            stats.slrg_nodes = slrg.stats().nodes;
            stats.rg_nodes = r.nodes_created;
            stats.rg_open_left = r.open_left;
            stats.replay_prunes = r.replay_prunes;
            stats.dominance_pruned = r.dominance_pruned;
            stats.symmetry_pruned = r.symmetry_pruned;
            stats.reopened = r.reopened;
            stats.candidate_rejects = r.candidate_rejects;
            stats.budget_exhausted = r.budget_exhausted;
            stats.deadline_hit = r.deadline_hit;
            stats.drain_mode = r.drain_mode;
            stats.incumbent_cutoff = r.incumbent_cutoff;
            stats.best_bound = r.best_open_f;
            stats.root_bound = Some(r.root_h);
            match r.plan {
                Some((actions, cost, exec)) => {
                    Some(Plan::from_actions(&task, &actions, cost, exec))
                }
                // graceful degradation: the cheapest rejected candidate
                // whose sources bound at relaxed (non-greedy) values,
                // captured during the search
                None if self.config.degrade => r.fallback.map(|(tail, g, exec)| {
                    let mut plan = Plan::from_actions(&task, &tail, g, exec);
                    plan.degraded = true;
                    plan
                }),
                None => None,
            }
        } else {
            None
        };
        // gap accounting: an accepted optimal plan is its own bound; a
        // degraded fallback measures against the frontier bound the search
        // left behind. Anytime incumbents overwrite this in the facade
        // (`crates/anytime`) with their deterministic gap rules.
        stats.optimality_gap = match &plan {
            Some(p) if !p.degraded => Some(0.0),
            Some(p) => stats.best_bound.map(|b| (p.cost_lower_bound - b).max(0.0)),
            None => None,
        };
        if sekitei_obs::enabled() {
            if let Some(gap) = stats.optimality_gap {
                sekitei_obs::event("optimality_gap_milli", (gap * 1000.0).round() as u64);
            }
        }
        // certificate emission: package the ledger the accepted execution
        // recorded while binding, plus the bound trail justifying the gap
        // computed above
        let plan = plan.map(|mut p| {
            let gap_basis = if !p.degraded {
                cert::GapBasis::Proved
            } else if stats.best_bound.is_some() {
                cert::GapBasis::FrontierBound
            } else {
                cert::GapBasis::Unbounded
            };
            let trail = cert::BoundTrail {
                plan_cost: p.cost_lower_bound,
                root_bound: stats.root_bound,
                frontier_bound: stats.best_bound,
                gap_basis,
                claimed_gap: stats.optimality_gap,
                incumbent_cutoff: stats.incumbent_cutoff,
                budget_exhausted: stats.budget_exhausted,
                deadline_hit: stats.deadline_hit,
                drain_mode: stats.drain_mode,
                dominance: self.config.dominance,
                symmetry: self.config.symmetry,
            };
            let class =
                if p.degraded { cert::OutcomeClass::Degraded } else { cert::OutcomeClass::Exact };
            let actions: Vec<_> = p.steps.iter().map(|s| s.action).collect();
            p.certificate = Some(cert::emit(
                &task,
                &actions,
                &p.execution.source_values,
                &p.execution.ledger,
                class,
                trail,
            ));
            p
        });
        stats.search_time = t_search.elapsed();
        stats.total_time = t0.elapsed();
        PlanOutcome { plan, stats, task }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn facade_tiny_all_scenarios() {
        let planner = Planner::default();
        for sc in LevelScenario::ALL {
            let outcome = planner.plan(&scenarios::tiny(sc)).unwrap();
            match sc {
                LevelScenario::A => assert!(outcome.plan.is_none(), "A must fail"),
                _ => {
                    let plan = outcome.plan.expect("B–E solve Tiny");
                    assert_eq!(plan.len(), 7, "scenario {sc:?}");
                }
            }
            assert!(outcome.stats.total_actions > 0);
            assert!(outcome.stats.total_time >= outcome.stats.search_time);
        }
    }

    #[test]
    fn stats_match_paper_shape() {
        // more levels ⇒ more ground actions (Table 2 col 5 growth)
        let planner = Planner::default();
        let b = planner.plan(&scenarios::tiny(LevelScenario::B)).unwrap().stats;
        let e = planner.plan(&scenarios::tiny(LevelScenario::E)).unwrap().stats;
        assert!(e.total_actions > b.total_actions);
        assert!(b.plrg_props > 0 && b.plrg_actions > 0);
        assert!(b.slrg_nodes > 0);
        assert!(b.rg_nodes > 0);
    }

    #[test]
    fn degrade_returns_candidate_for_tiny_a() {
        // Tiny/A's structure is fine — only the greedy-max source binding
        // fails. The degradation path returns it with a relaxed binding.
        let planner = Planner::new(PlannerConfig { degrade: true, ..Default::default() });
        let outcome = planner.plan(&scenarios::tiny(LevelScenario::A)).unwrap();
        let plan = outcome.plan.expect("degraded plan");
        assert!(plan.degraded);
        assert_eq!(plan.len(), 7);
        assert!(outcome.stats.candidate_rejects > 0);
        // the degraded source value is feasible, not the greedy 200
        let (_, s) = plan.execution.source_values[0];
        assert!((90.0..=110.0).contains(&s), "source = {s}");
    }

    #[test]
    fn degrade_off_leaves_a_unsolved() {
        let outcome = Planner::default().plan(&scenarios::tiny(LevelScenario::A)).unwrap();
        assert!(outcome.plan.is_none());
    }

    #[test]
    fn deadline_bounds_adversarial_search() {
        // Large/A otherwise burns the full 2M-node budget (~2s); a 50 ms
        // deadline must cut it off and still report an admissible bound.
        let planner = Planner::new(PlannerConfig {
            deadline: Some(Duration::from_millis(50)),
            ..Default::default()
        });
        let t = Instant::now();
        let outcome = planner.plan(&scenarios::large(LevelScenario::A)).unwrap();
        assert!(outcome.stats.deadline_hit, "{}", outcome.stats);
        assert!(outcome.stats.budget_exhausted);
        assert!(outcome.stats.best_bound.is_some());
        assert!(t.elapsed() < Duration::from_secs(5), "deadline ignored: {:?}", t.elapsed());
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        // a deadline that never trips must not perturb the search result
        let base = Planner::default().plan(&scenarios::tiny(LevelScenario::C)).unwrap();
        let planner = Planner::new(PlannerConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..Default::default()
        });
        let timed = planner.plan(&scenarios::tiny(LevelScenario::C)).unwrap();
        assert!(!timed.stats.deadline_hit);
        let (a, b) = (base.plan.unwrap(), timed.plan.unwrap());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.cost_lower_bound.to_bits(), b.cost_lower_bound.to_bits());
        assert_eq!(base.stats.rg_nodes, timed.stats.rg_nodes);
    }

    #[test]
    fn compile_error_propagates() {
        let mut p = scenarios::tiny(LevelScenario::B);
        p.goals.clear();
        assert!(matches!(Planner::default().plan(&p), Err(PlanError::Compile(_))));
    }

    #[test]
    fn plan_batch_matches_sequential_in_order() {
        let planner = Planner::default();
        let problems: Vec<_> = LevelScenario::ALL.iter().map(|&sc| scenarios::tiny(sc)).collect();
        let parallel = planner.plan_batch(&problems);
        let sequential = planner.plan_batch_with(&problems, 1);
        assert_eq!(parallel.len(), problems.len());
        for (sc, (par, seq)) in LevelScenario::ALL.iter().zip(parallel.iter().zip(&sequential)) {
            let (par, seq) = (par.as_ref().unwrap(), seq.as_ref().unwrap());
            match (&par.plan, &seq.plan) {
                (None, None) => assert!(matches!(sc, LevelScenario::A)),
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len(), "{sc:?}");
                    assert_eq!(
                        a.cost_lower_bound.to_bits(),
                        b.cost_lower_bound.to_bits(),
                        "{sc:?}"
                    );
                }
                _ => panic!("{sc:?}: batch and sequential disagree on solvability"),
            }
            assert_eq!(par.stats.rg_nodes, seq.stats.rg_nodes, "{sc:?}");
        }
    }

    #[test]
    fn plan_batch_reports_per_item_errors() {
        let planner = Planner::default();
        let good = scenarios::tiny(LevelScenario::C);
        let mut bad = scenarios::tiny(LevelScenario::C);
        bad.goals.clear();
        let results = planner.plan_batch(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PlanError::Compile(_))));
    }

    #[test]
    fn plan_batch_empty_and_oversubscribed() {
        let planner = Planner::default();
        assert!(planner.plan_batch(&[]).is_empty());
        // more threads than work is fine
        let one = planner.plan_batch_with(&[scenarios::tiny(LevelScenario::B)], 64);
        assert_eq!(one.len(), 1);
        assert!(one[0].as_ref().unwrap().plan.is_some());
    }
}
