//! Concretization: bind the plan's interval-valued streams to concrete
//! numbers and validate by exact execution.
//!
//! Following the paper's greedy-within-level semantics (§2.2, §4.2), every
//! stream source is pushed at the **maximum** value of its final feasible
//! interval (the upper end of the chosen resource level, capped by the
//! source's own capacity) — this is what makes scenario C "process 100
//! units" although the client only needs 90, and what makes the unleveled
//! scenario A fail outright (its sup is the full 200-unit availability).
//!
//! The point execution is the soundness gate: a plan is only returned to
//! the caller if all conditions hold exactly, no resource goes negative
//! and every goal demand is met at these concrete values.

use crate::replay::ResourceMap;
use sekitei_cert::{LedgerRow, ResourceLedger};
use sekitei_compile::{GVarData, PlanningTask};
use sekitei_model::{ActionId, AssignOp, GVarId, Interval};
use std::collections::HashMap;

/// Why concretization rejected a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcretizeFail {
    /// A condition evaluated false at the concrete values.
    ConditionFailed {
        /// Position in the plan.
        step: usize,
        /// Condition index within the action.
        cond: usize,
    },
    /// A resource went below zero.
    ResourceExhausted {
        /// Position in the plan.
        step: usize,
        /// The exhausted variable.
        var: GVarId,
    },
    /// An action read a variable that was never produced.
    UndefinedRead {
        /// Position in the plan.
        step: usize,
        /// The variable.
        var: GVarId,
    },
}

impl std::fmt::Display for ConcretizeFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcretizeFail::ConditionFailed { step, cond } => {
                write!(f, "step {step}: condition #{cond} failed at concrete values")
            }
            ConcretizeFail::ResourceExhausted { step, var } => {
                write!(f, "step {step}: resource {var} exhausted")
            }
            ConcretizeFail::UndefinedRead { step, var } => {
                write!(f, "step {step}: read of undefined {var}")
            }
        }
    }
}

/// A concrete execution of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteExecution {
    /// Chosen value per stream-source variable.
    pub source_values: Vec<(GVarId, f64)>,
    /// Final value of every touched variable.
    pub final_state: HashMap<GVarId, f64>,
    /// The resource ledger: per step, the post-value of every variable the
    /// action wrote, recorded *as the execution binds* — this is the row
    /// data a [`sekitei_cert::PlanCertificate`] carries verbatim.
    pub ledger: ResourceLedger,
}

/// Greedily concretize and exactly execute `plan`.
///
/// `final_map` is the interval state produced by the successful terminal
/// replay from the initial state — its interval for each source variable is
/// precisely the set of source values consistent with every optimistic
/// assumption along the plan. The greedy choice is its (finite) upper end.
pub fn concretize(
    task: &PlanningTask,
    plan: &[ActionId],
    final_map: &ResourceMap,
) -> Result<ConcreteExecution, ConcretizeFail> {
    // Greedy source choices. Level requirement intervals carry shaved
    // upper bounds (`[90, 100 - 1e-6]` for the half-open `[90, 100)`), but
    // the paper's planner reserves the cutpoint itself ("the plans involve
    // processing 100 units"), so we first try the values snapped up to the
    // cutpoint grid and fall back to the raw interval tops if the snapped
    // execution fails.
    let snapped = source_choices(task, final_map, true);
    match execute(task, plan, &snapped) {
        Ok(exec) => Ok(exec),
        Err(_) => {
            let raw = source_choices(task, final_map, false);
            execute(task, plan, &raw)
        }
    }
}

fn source_choices(task: &PlanningTask, final_map: &ResourceMap, snap: bool) -> Vec<(GVarId, f64)> {
    let mut out = Vec::new();
    for (i, init) in task.init_values.iter().enumerate() {
        let Some(init) = init else { continue };
        if !matches!(task.gvars[i], GVarData::IfaceProp { .. }) {
            continue;
        }
        let v = GVarId::from_index(i);
        let feasible = final_map.get(&v).copied().unwrap_or(*init).intersect(init);
        let mut chosen = feasible.finite_hi(init.hi);
        if snap {
            // undo the LEVEL_SHAVE: round up onto a 1e-5 grid
            chosen = ((chosen + 2.0 * sekitei_model::levels::LEVEL_SHAVE) * 1e5).round() / 1e5;
            chosen = chosen.min(init.hi); // never exceed availability
        }
        out.push((v, chosen));
    }
    out
}

fn execute(
    task: &PlanningTask,
    plan: &[ActionId],
    sources: &[(GVarId, f64)],
) -> Result<ConcreteExecution, ConcretizeFail> {
    let mut state: HashMap<GVarId, f64> = HashMap::new();
    let source_values = sources.to_vec();
    for &(v, x) in sources {
        state.insert(v, x);
    }
    for (i, init) in task.init_values.iter().enumerate() {
        let Some(init) = init else { continue };
        let v = GVarId::from_index(i);
        if !matches!(task.gvars[i], GVarData::IfaceProp { .. }) {
            state.insert(v, init.lo); // capacities are point intervals
        }
    }

    // exact forward execution, recording the ledger as it binds
    let mut ledger = ResourceLedger { rows: Vec::with_capacity(plan.len()) };
    for (step, &aid) in plan.iter().enumerate() {
        let act = task.action(aid);
        // reads must be defined
        for &(v, _) in &act.optimistic {
            if !state.contains_key(&v) {
                return Err(ConcretizeFail::UndefinedRead { step, var: v });
            }
        }
        {
            let mut env = |v: &GVarId| state.get(v).copied().unwrap_or(0.0);
            for (ci, cond) in act.conditions.iter().enumerate() {
                if !cond.holds(&mut env) {
                    return Err(ConcretizeFail::ConditionFailed { step, cond: ci });
                }
            }
        }
        let values: Vec<f64> = act
            .effects
            .iter()
            .map(|e| {
                let mut env = |v: &GVarId| state.get(v).copied().unwrap_or(0.0);
                e.value.eval(&mut env)
            })
            .collect();
        let mut written = Vec::with_capacity(act.effects.len());
        for (e, val) in act.effects.iter().zip(values) {
            let new = match e.op {
                AssignOp::Set => val,
                AssignOp::Sub => {
                    let pre = state.get(&e.target).copied().unwrap_or(0.0);
                    let post = pre - val;
                    if post < -sekitei_model::EPS {
                        return Err(ConcretizeFail::ResourceExhausted { step, var: e.target });
                    }
                    post.max(0.0)
                }
                AssignOp::Add => state.get(&e.target).copied().unwrap_or(0.0) + val,
            };
            state.insert(e.target, new);
            written.push((e.target, new));
        }
        ledger.rows.push(LedgerRow { writes: written });
    }

    Ok(ConcreteExecution { source_values, final_state: state, ledger })
}

/// Degraded-mode concretization for the serving path: bind sources to *any*
/// feasible value, not just the greedy maximum.
///
/// The paper's planner deliberately keeps the greedy-within-level choice and
/// lets unleveled problems (scenario A) fail — that asymmetry is its central
/// experimental result. A serving system can't return an error for a plan
/// whose structure is fine, so when the greedy execution fails this walks a
/// value grid per source from the interval's low end upward (the demand floor
/// binds from below, capacity from above, so under the monotonicity
/// assumption of §2.2 the feasible set per source is an interval and the
/// first executing grid point is its near-minimal element). Sources are
/// adjusted coordinate-wise over two passes; with a single stream source —
/// every shipped scenario — one pass is exact. Returns the original greedy
/// failure if no grid point executes.
pub fn concretize_relaxed(
    task: &PlanningTask,
    plan: &[ActionId],
    final_map: &ResourceMap,
) -> Result<ConcreteExecution, ConcretizeFail> {
    let greedy_err = match concretize(task, plan, final_map) {
        Ok(exec) => return Ok(exec),
        Err(e) => e,
    };
    const GRID_STEPS: usize = 64;
    let mut choices = source_choices(task, final_map, false);
    for _pass in 0..2 {
        for i in 0..choices.len() {
            if execute(task, plan, &choices).is_ok() {
                break;
            }
            let v = choices[i].0;
            let Some(init) = task.init_values[v.index()] else { continue };
            let feasible = final_map.get(&v).copied().unwrap_or(init).intersect(&init);
            let lo = feasible.lo.max(0.0);
            let hi = feasible.finite_hi(init.hi);
            let saved = choices[i].1;
            let mut found = false;
            for k in 0..=GRID_STEPS {
                let x = lo + (hi - lo) * (k as f64 / GRID_STEPS as f64);
                // demands are round numbers: snap up onto the 1e-5 grid
                choices[i].1 = (x * 1e5).ceil() / 1e5;
                if execute(task, plan, &choices).is_ok() {
                    found = true;
                    break;
                }
            }
            if !found {
                choices[i].1 = saved;
            }
        }
        if let Ok(exec) = execute(task, plan, &choices) {
            return Ok(exec);
        }
    }
    Err(greedy_err)
}

/// Convert the chosen source interval to the greedy concrete value without
/// running the execution — exposed for diagnostics and tests.
pub fn greedy_source_value(feasible: &Interval, availability: &Interval) -> f64 {
    feasible.intersect(availability).finite_hi(availability.hi)
}

/// The *original* Sekitei's post-processing step (paper §2.3): given an
/// already-valid plan, shrink each source to the minimum value that still
/// executes — reducing resource consumption without changing the plan's
/// structure. The paper's point stands here too: minimization can trim a
/// suboptimal plan's flows (e.g. scenario B's 100 units down to the
/// demanded 90) but cannot repair a structurally suboptimal configuration,
/// and it never helps when the greedy planner found no plan at all.
///
/// Under the monotonicity assumption (§2.2) the feasible set of each
/// source value is an interval, so a binary search per source suffices.
/// Returns the minimized execution; errors only if even the greedy values
/// fail (i.e. the plan was never valid).
pub fn minimize_sources(
    task: &PlanningTask,
    plan: &[ActionId],
    final_map: &ResourceMap,
) -> Result<ConcreteExecution, ConcretizeFail> {
    // start from the validated greedy choice
    let mut choices = source_choices(task, final_map, true);
    if execute(task, plan, &choices).is_err() {
        choices = source_choices(task, final_map, false);
        execute(task, plan, &choices)?;
    }

    for i in 0..choices.len() {
        let v = choices[i].0;
        let hi = choices[i].1;
        let lo_bound = task.init_values[v.index()]
            .map(|iv| final_map.get(&v).copied().unwrap_or(iv).intersect(&iv).lo)
            .unwrap_or(0.0)
            .max(0.0);
        let feasible = |x: f64, choices: &mut Vec<(GVarId, f64)>| {
            choices[i].1 = x;
            execute(task, plan, choices).is_ok()
        };
        let mut lo = lo_bound;
        let mut best = hi;
        if feasible(lo, &mut choices) {
            best = lo;
        } else {
            let mut hi_cur = hi;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi_cur);
                if feasible(mid, &mut choices) {
                    best = mid;
                    hi_cur = mid;
                } else {
                    lo = mid;
                }
            }
        }
        // snap the minimized value up onto a friendly grid (demands are
        // typically round numbers); fall back to the raw bound otherwise
        let snapped = (best * 1e5).ceil() / 1e5;
        if feasible(snapped, &mut choices) {
            best = snapped;
        }
        choices[i].1 = best;
    }
    execute(task, plan, &choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_tail;
    use sekitei_compile::compile;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    fn pick(task: &PlanningTask, pat: &str, frag: &str) -> ActionId {
        task.action_ids()
            .find(|&a| {
                let n = &task.action(a).name;
                n.contains(pat) && n.contains(frag)
            })
            .unwrap_or_else(|| panic!("no `{pat}` with `{frag}`"))
    }

    fn figure4(task: &PlanningTask) -> Vec<ActionId> {
        vec![
            pick(task, "place(Splitter,n0)", "[M=1"),
            pick(task, "place(Zip,n0)", "[T=1"),
            pick(task, "cross(Z,n0→n1)", "in=1,out=1"),
            pick(task, "cross(I,n0→n1)", "in=1,out=1"),
            pick(task, "place(Unzip,n1)", "[Z=1"),
            pick(task, "place(Merger,n1)", "[T=1,I=1"),
            pick(task, "place(Client,n1)", "[M=1]"),
        ]
    }

    #[test]
    fn figure4_concretizes_at_100_units() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plan = figure4(&task);
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let exec = concretize(&task, &plan, &map).unwrap();
        // paper §4.2: the selected plans process 100 units of M
        assert_eq!(exec.source_values.len(), 1);
        let (_, s) = exec.source_values[0];
        assert!((s - 100.0).abs() < 1e-9, "greedy source = {s}");
        // client-side M is exactly 100
        let m = p.iface_id("M").unwrap();
        let v = task
            .gvar_id(&GVarData::IfaceProp { iface: m, prop: 0, node: p.goals[0].node })
            .unwrap();
        assert!((exec.final_state[&v] - 100.0).abs() < 1e-9);
        // CPU books balance: n0 used 100/5 + 70/10 = 27 of 30
        let cpu0 =
            task.gvar_id(&GVarData::NodeRes { res: 0, node: sekitei_model::NodeId(0) }).unwrap();
        assert!((exec.final_state[&cpu0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_a_greedy_max_fails() {
        // without levels, the greedy source value is the full 200 units —
        // the Splitter then demands 40 CPU on a 30-CPU node (paper §2.3)
        let p = scenarios::tiny(LevelScenario::A);
        let task = compile(&p).unwrap();
        let plan = vec![
            pick(&task, "place(Splitter,n0)", ""),
            pick(&task, "place(Zip,n0)", ""),
            pick(&task, "cross(Z,n0→n1)", ""),
            pick(&task, "cross(I,n0→n1)", ""),
            pick(&task, "place(Unzip,n1)", ""),
            pick(&task, "place(Merger,n1)", ""),
            pick(&task, "place(Client,n1)", ""),
        ];
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let r = concretize(&task, &plan, &map);
        assert!(
            matches!(r, Err(ConcretizeFail::ConditionFailed { step: 0, .. })),
            "greedy 200-unit execution must fail at the Splitter: {r:?}"
        );
    }

    #[test]
    fn scenario_a_relaxed_binds_a_feasible_value() {
        // the degraded serving path repairs what greedy-max cannot: the
        // feasible source set for tiny/A is ≈ [90, 107.7] and the grid scan
        // finds a point just above the 90-unit demand floor
        let p = scenarios::tiny(LevelScenario::A);
        let task = compile(&p).unwrap();
        let plan = vec![
            pick(&task, "place(Splitter,n0)", ""),
            pick(&task, "place(Zip,n0)", ""),
            pick(&task, "cross(Z,n0→n1)", ""),
            pick(&task, "cross(I,n0→n1)", ""),
            pick(&task, "place(Unzip,n1)", ""),
            pick(&task, "place(Merger,n1)", ""),
            pick(&task, "place(Client,n1)", ""),
        ];
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let exec = concretize_relaxed(&task, &plan, &map).unwrap();
        assert_eq!(exec.source_values.len(), 1);
        let (_, s) = exec.source_values[0];
        assert!((90.0..=110.0).contains(&s), "relaxed source = {s}");
    }

    #[test]
    fn relaxed_is_greedy_when_greedy_works() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plan = figure4(&task);
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let greedy = concretize(&task, &plan, &map).unwrap();
        let relaxed = concretize_relaxed(&task, &plan, &map).unwrap();
        assert_eq!(greedy, relaxed);
    }

    #[test]
    fn ledger_row_shapes() {
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plan = figure4(&task);
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let exec = concretize(&task, &plan, &map).unwrap();
        assert_eq!(exec.ledger.rows.len(), plan.len());
        // every step wrote something except the pure-condition client
        for (i, row) in exec.ledger.rows.iter().enumerate() {
            if i + 1 < plan.len() {
                assert!(!row.writes.is_empty(), "step {i} wrote nothing");
            }
            // one write per effect, in effect order — the certificate contract
            assert_eq!(row.writes.len(), task.action(plan[i]).effects.len());
        }
        assert!(exec.ledger.entries() > 0);
    }

    #[test]
    fn minimize_trims_to_demand() {
        // scenario B processes 100 units greedily; post-processing shrinks
        // the flow to the demanded 90, reaching the paper's "ideal" 58.5
        // units of link reservation — on this structure.
        let p = scenarios::tiny(LevelScenario::B);
        let task = compile(&p).unwrap();
        let plan = vec![
            pick(&task, "place(Splitter,n0)", "[M=0"),
            pick(&task, "place(Zip,n0)", "[T=0"),
            pick(&task, "cross(Z,n0→n1)", "in=0,out=0"),
            pick(&task, "cross(I,n0→n1)", "in=0,out=0"),
            pick(&task, "place(Unzip,n1)", "[Z=0"),
            pick(&task, "place(Merger,n1)", "[T=0,I=0"),
            pick(&task, "place(Client,n1)", "[M=0]"),
        ];
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let greedy = concretize(&task, &plan, &map).unwrap();
        assert!((greedy.source_values[0].1 - 100.0).abs() < 1e-9);

        let minimized = minimize_sources(&task, &plan, &map).unwrap();
        let s = minimized.source_values[0].1;
        assert!((s - 90.0).abs() < 1e-4, "minimized source = {s}");
        // link usage drops to I(27) + Z(31.5) = 58.5
        let lbw =
            task.gvar_id(&GVarData::LinkRes { res: 1, link: sekitei_model::LinkId(0) }).unwrap();
        let remaining = minimized.final_state[&lbw];
        assert!((70.0 - remaining - 58.5).abs() < 1e-3, "used {}", 70.0 - remaining);
    }

    #[test]
    fn minimize_noop_when_demand_binds_exactly() {
        // a plan already at its minimum stays put
        let p = scenarios::tiny(LevelScenario::C);
        let task = compile(&p).unwrap();
        let plan = figure4(&task);
        let map = replay_tail(&task, &plan, Some(&task.init_values)).unwrap();
        let m = minimize_sources(&task, &plan, &map).unwrap();
        // demand 90 binds from below; the chosen level floor is 90 too
        assert!((m.source_values[0].1 - 90.0).abs() < 1e-4, "{:?}", m.source_values);
    }

    #[test]
    fn greedy_source_value_prefers_finite_hi() {
        let avail = Interval::new(0.0, 200.0);
        assert_eq!(greedy_source_value(&Interval::new(90.0, 100.0), &avail), 100.0);
        assert_eq!(greedy_source_value(&Interval::new(100.0, f64::INFINITY), &avail), 200.0);
        assert_eq!(greedy_source_value(&Interval::new(0.0, f64::INFINITY), &avail), 200.0);
    }
}
