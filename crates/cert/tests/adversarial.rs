//! Adversarial certificate tests.
//!
//! Every tampering class must map to its *specific* violation — a checker
//! that rejects everything is useless for auditing, and one that accepts a
//! doctored certificate is unsound. The suite mutates real planner-issued
//! certificates one field at a time and pins the violation the checker
//! reports, then property-tests the SKC1 codec and the soundness of the
//! checker's acceptance under step permutations.

use proptest::prelude::*;
use sekitei_cert::{
    certify_by_execution, check_certificate, decode_certificate, encode_certificate, CertViolation,
    GapBasis, OutcomeClass, PlanCertificate, Provenance,
};
use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, LevelScenario};
use sekitei_planner::{Planner, PlannerConfig};
use sekitei_topology::scenarios::{self, NetSize};
use std::sync::OnceLock;

/// One planner run, shared by every mutation test: the Tiny/C task and the
/// exact certificate the planner issued for it.
fn tiny_c() -> &'static (PlanningTask, PlanCertificate) {
    static CELL: OnceLock<(PlanningTask, PlanCertificate)> = OnceLock::new();
    CELL.get_or_init(|| {
        let o = Planner::default().plan(&scenarios::tiny(LevelScenario::C)).unwrap();
        let plan = o.plan.expect("tiny C solves exactly");
        let cert = plan.certificate.expect("every plan carries a certificate");
        (o.task, cert)
    })
}

// ---------------------------------------------------------------- grid --

#[test]
fn issued_certificates_verify_across_the_scenario_grid() {
    let planner = Planner::new(PlannerConfig { degrade: true, ..PlannerConfig::default() });
    let mut verified = 0usize;
    let mut degraded = 0usize;
    let grid = LevelScenario::ALL
        .iter()
        .map(|&sc| (NetSize::Tiny, sc))
        .chain([(NetSize::Small, LevelScenario::C)]);
    for (size, sc) in grid {
        let o = planner.plan(&scenarios::problem(size, sc)).unwrap();
        let Some(plan) = o.plan else { continue };
        let cert = plan.certificate.as_ref().expect("every plan carries a certificate");
        let rep = check_certificate(&o.task, cert).unwrap();
        let want = if plan.degraded { OutcomeClass::Degraded } else { OutcomeClass::Exact };
        assert_eq!(rep.outcome, want, "{size:?}/{sc:?}");
        assert_eq!(rep.steps, plan.steps.len());
        verified += 1;
        degraded += usize::from(plan.degraded);
    }
    assert!(verified >= 5, "grid produced only {verified} certified plans");
    assert!(degraded >= 1, "the grid must exercise the degraded outcome class");
}

#[test]
fn budget_exhausted_outcome_carries_a_verifiable_certificate() {
    let planner =
        Planner::new(PlannerConfig { max_nodes: 2_000, degrade: true, ..PlannerConfig::default() });
    let o = planner.plan(&scenarios::problem(NetSize::Small, LevelScenario::A)).unwrap();
    assert!(o.stats.budget_exhausted, "Small/A must blow a 2k-node budget");
    let plan = o.plan.expect("graceful degradation salvages a relaxed plan");
    assert!(plan.degraded);
    let cert = plan.certificate.as_ref().expect("degraded plan carries a certificate");
    assert!(cert.bound.budget_exhausted, "the trail records why the search stopped");
    let rep = check_certificate(&o.task, cert).unwrap();
    assert_eq!(rep.outcome, OutcomeClass::Degraded);
}

// ---------------------------------------------- deterministic mutations --

#[test]
fn swapping_a_dependent_pair_is_rejected() {
    let (task, cert) = tiny_c();
    // find a step witnessed by its immediate predecessor; swapping the two
    // puts the consumer before its producer
    let i = (1..cert.steps.len())
        .find(|&i| cert.steps[i].preconds.iter().any(|w| w.by == Provenance::Step(i as u32 - 1)))
        .expect("tiny C has an adjacent producer/consumer pair");
    let mut m = cert.clone();
    m.steps.swap(i - 1, i);
    let err = check_certificate(task, &m).unwrap_err();
    assert!(
        matches!(err, CertViolation::BadWitness { .. }),
        "consumer-before-producer must fail the witness order, got: {err}"
    );
}

#[test]
fn inflated_capacity_claim_is_rejected() {
    let (task, cert) = tiny_c();
    let mut m = cert.clone();
    // claim one more unit of post-reservation headroom than execution leaves
    let cell = m
        .steps
        .iter_mut()
        .flat_map(|s| s.writes.iter_mut())
        .next()
        .expect("tiny C writes at least one ledger cell");
    cell.1 += 1.0;
    let err = check_certificate(task, &m).unwrap_err();
    assert!(matches!(err, CertViolation::LedgerMismatch { .. }), "got: {err}");
}

#[test]
fn truncated_ledger_is_rejected() {
    let (task, cert) = tiny_c();
    let mut m = cert.clone();
    let step =
        m.steps.iter_mut().find(|s| !s.writes.is_empty()).expect("tiny C has a step with writes");
    step.writes.pop();
    let err = check_certificate(task, &m).unwrap_err();
    assert!(matches!(err, CertViolation::LedgerShape { .. }), "got: {err}");
}

#[test]
fn understated_gap_is_rejected() {
    let (task, cert) = tiny_c();
    // recast the proved-optimal trail as a frontier-bound one with an
    // honest 5-unit gap — that verifies — then lower the claim
    let mut m = cert.clone();
    m.bound.gap_basis = GapBasis::FrontierBound;
    m.bound.frontier_bound = Some(m.bound.plan_cost - 5.0);
    m.bound.claimed_gap = Some(5.0);
    check_certificate(task, &m).expect("honest frontier gap must verify");

    m.bound.claimed_gap = Some(1.0);
    let err = check_certificate(task, &m).unwrap_err();
    assert!(
        matches!(err, CertViolation::GapUnderstated { claimed, justified }
            if claimed < justified),
        "got: {err}"
    );
}

#[test]
fn overstated_and_unbacked_gaps_are_rejected() {
    let (task, cert) = tiny_c();

    let mut m = cert.clone();
    m.bound.gap_basis = GapBasis::FrontierBound;
    m.bound.frontier_bound = Some(m.bound.plan_cost - 5.0);
    m.bound.claimed_gap = Some(9.0); // frontier justifies only 5
    let err = check_certificate(task, &m).unwrap_err();
    assert!(matches!(err, CertViolation::GapInconsistent { .. }), "got: {err}");

    let mut m = cert.clone();
    m.bound.gap_basis = GapBasis::Unbounded;
    let err = check_certificate(task, &m).unwrap_err();
    assert!(matches!(err, CertViolation::GapInconsistent { .. }), "got: {err}");
}

#[test]
fn foreign_task_is_rejected_by_fingerprint() {
    let (_, cert) = tiny_c();
    let other = Planner::default().plan(&scenarios::tiny(LevelScenario::D)).unwrap();
    let err = check_certificate(&other.task, cert).unwrap_err();
    assert!(matches!(err, CertViolation::FingerprintMismatch { .. }), "got: {err}");
}

#[test]
fn structural_tampering_is_rejected() {
    let (task, cert) = tiny_c();

    let mut m = cert.clone();
    m.version = 99;
    assert!(matches!(check_certificate(task, &m).unwrap_err(), CertViolation::Malformed(_)));

    let mut m = cert.clone();
    m.steps[0].action = ActionId::from_index(task.num_actions());
    assert!(matches!(
        check_certificate(task, &m).unwrap_err(),
        CertViolation::UnknownAction { step: 0, .. }
    ));

    let mut m = cert.clone();
    m.steps[0].name.push('x');
    assert!(matches!(
        check_certificate(task, &m).unwrap_err(),
        CertViolation::ActionNameMismatch { step: 0, .. }
    ));

    let mut m = cert.clone();
    let i = m.steps.iter().position(|s| !s.preconds.is_empty()).unwrap();
    m.steps[i].preconds.clear();
    assert!(matches!(
        check_certificate(task, &m).unwrap_err(),
        CertViolation::MissingPrecondWitness { .. }
    ));

    let mut m = cert.clone();
    m.sources[0].1 += 1e6;
    assert!(matches!(
        check_certificate(task, &m).unwrap_err(),
        CertViolation::SourceOutOfRange { .. }
    ));

    let mut m = cert.clone();
    m.goals.clear();
    assert!(matches!(
        check_certificate(task, &m).unwrap_err(),
        CertViolation::GoalUnwitnessed { .. }
    ));

    let mut m = cert.clone();
    m.bound.plan_cost += 1.0;
    assert!(matches!(check_certificate(task, &m).unwrap_err(), CertViolation::CostMismatch { .. }));
}

// ----------------------------------------------------------- proptests --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness of acceptance under permutation: whenever the checker
    /// accepts a certificate with two steps swapped, the swapped action
    /// sequence must execute independently (the swap really was between
    /// independent steps, not waved through).
    #[test]
    fn accepted_swaps_are_independently_executable(i in 0usize..16, j in 0usize..16) {
        let (task, cert) = tiny_c();
        let n = cert.steps.len();
        let (i, j) = (i % n, j % n);
        let mut m = cert.clone();
        m.steps.swap(i, j);
        if check_certificate(task, &m).is_ok() {
            let actions: Vec<ActionId> = m.steps.iter().map(|s| s.action).collect();
            let re = certify_by_execution(task, &actions, &m.sources, m.outcome, m.bound);
            prop_assert!(re.is_ok(), "checker accepted swap ({i},{j}) the executor rejects");
        }
    }

    /// Understating the gap by any positive amount against a frontier
    /// basis is always caught (beyond the arithmetic tolerance).
    #[test]
    fn any_understated_gap_is_caught(shave in 0.001f64..4.9) {
        let (task, cert) = tiny_c();
        let mut m = cert.clone();
        m.bound.gap_basis = GapBasis::FrontierBound;
        m.bound.frontier_bound = Some(m.bound.plan_cost - 5.0);
        m.bound.claimed_gap = Some(5.0 - shave);
        let err = check_certificate(task, &m).unwrap_err();
        let understated = matches!(err, CertViolation::GapUnderstated { .. });
        prop_assert!(understated, "expected GapUnderstated, got: {}", err);
    }

    /// encode→decode→encode is the identity on SKC1 bytes, across the
    /// whole flags/bounds space.
    #[test]
    fn skc1_roundtrip_identity(flags in 0u8..64,
                               opts in 0u8..8,
                               gap in 0.0..100.0f64,
                               root in 0.0..100.0f64,
                               frontier in 0.0..100.0f64,
                               class in 0u8..4) {
        let gap = (opts & 0x01 != 0).then_some(gap);
        let root = (opts & 0x02 != 0).then_some(root);
        let frontier = (opts & 0x04 != 0).then_some(frontier);
        let (_, cert) = tiny_c();
        let mut m = cert.clone();
        m.outcome = match class {
            0 => OutcomeClass::Exact,
            1 => OutcomeClass::Degraded,
            2 => OutcomeClass::AnytimeIncumbent,
            _ => OutcomeClass::ChurnRepair,
        };
        m.bound.incumbent_cutoff = flags & 0x01 != 0;
        m.bound.budget_exhausted = flags & 0x02 != 0;
        m.bound.deadline_hit = flags & 0x04 != 0;
        m.bound.drain_mode = flags & 0x08 != 0;
        m.bound.dominance = flags & 0x10 != 0;
        m.bound.symmetry = flags & 0x20 != 0;
        m.bound.claimed_gap = gap;
        m.bound.root_bound = root;
        m.bound.frontier_bound = frontier;
        let bytes = encode_certificate(&m);
        let d = decode_certificate(&bytes).unwrap();
        prop_assert_eq!(&m, &d);
        prop_assert_eq!(&bytes, &encode_certificate(&d));
    }

    /// The SKC1 decoder must never panic on corrupted bytes.
    #[test]
    fn skc1_decoder_never_panics_on_mutation(idx in 0usize..4096, flip in any::<u8>()) {
        let (_, cert) = tiny_c();
        let mut bytes = encode_certificate(cert);
        let i = idx % bytes.len();
        bytes[i] ^= flip | 1;
        let _ = decode_certificate(&bytes);
    }

    /// Nor on truncation at any length.
    #[test]
    fn skc1_decoder_never_panics_on_truncation(len in 0usize..4096) {
        let (_, cert) = tiny_c();
        let bytes = encode_certificate(cert);
        let l = len % (bytes.len() + 1);
        prop_assert!(l == bytes.len() || decode_certificate(&bytes[..l]).is_err());
    }
}

// ---------------------------------------------------------------- perf --

/// The checker is an audit tool: it must stay orders of magnitude cheaper
/// than the search that produced the plan. Budget from ISSUE: < 1 ms on
/// the Large scenarios (measured in release — debug builds skip).
#[test]
#[cfg_attr(debug_assertions, ignore = "timing assertion is for release builds")]
fn large_certificate_checks_under_a_millisecond() {
    let planner = Planner::new(PlannerConfig { degrade: true, ..PlannerConfig::default() });
    let o = planner.plan(&scenarios::problem(NetSize::Large, LevelScenario::C)).unwrap();
    let plan = o.plan.expect("large C yields a plan");
    let cert = plan.certificate.expect("every plan carries a certificate");
    let mut best = std::time::Duration::MAX;
    for _ in 0..50 {
        let t = std::time::Instant::now();
        check_certificate(&o.task, &cert).unwrap();
        best = best.min(t.elapsed());
    }
    assert!(best < std::time::Duration::from_millis(1), "best of 50 checks took {best:?}");
}
