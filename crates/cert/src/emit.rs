//! Certificate construction.
//!
//! [`emit`] packages a ledger the planner produced while binding;
//! [`certify_by_execution`] re-derives the ledger with the checker's own
//! executor (used by churn re-certification and tests, where the planner's
//! trace is not trusted); [`rebind`] transports a certificate onto a
//! freshly compiled task by name, for re-certifying repairs against a
//! mutated network.

use crate::{
    check, BoundTrail, CertStep, CertViolation, GapBasis, GoalWitness, OutcomeClass,
    PlanCertificate, PrecondWitness, Provenance, ResourceLedger,
};
use sekitei_compile::PlanningTask;
use sekitei_model::{ActionId, GVarId, PropId};
use std::collections::HashMap;

/// Compute precondition and goal witnesses for a monotone action sequence.
///
/// Propositions are never deleted, so the first adder (or `Init`) is a
/// valid witness for every later consumer.
fn witnesses(
    task: &PlanningTask,
    actions: &[ActionId],
) -> (Vec<Vec<PrecondWitness>>, Vec<GoalWitness>) {
    let mut added_by: Vec<Option<u32>> = vec![None; task.num_props()];
    let provenance = |added_by: &[Option<u32>], p: PropId| match added_by[p.index()] {
        Some(k) => Provenance::Step(k),
        None => Provenance::Init,
    };
    let mut per_step = Vec::with_capacity(actions.len());
    for (i, &aid) in actions.iter().enumerate() {
        let act = task.action(aid);
        per_step.push(
            act.preconds
                .iter()
                .map(|&p| PrecondWitness { prop: p, by: provenance(&added_by, p) })
                .collect(),
        );
        for &p in &act.adds {
            if added_by[p.index()].is_none() {
                added_by[p.index()] = Some(i as u32);
            }
        }
    }
    let goals = task
        .goal_props
        .iter()
        .map(|&p| GoalWitness { prop: p, by: provenance(&added_by, p) })
        .collect();
    (per_step, goals)
}

/// Package a certificate from a ledger the planner already produced.
///
/// The ledger rows must be action-ordered and parallel to `actions`
/// (one row per step, one write per effect). Nothing is re-executed
/// here — the certificate is only as good as the ledger, which is the
/// point: [`crate::check_certificate`] independently re-derives it.
pub fn emit(
    task: &PlanningTask,
    actions: &[ActionId],
    sources: &[(GVarId, f64)],
    ledger: &ResourceLedger,
    outcome: OutcomeClass,
    bound: BoundTrail,
) -> PlanCertificate {
    let (mut per_step, goals) = witnesses(task, actions);
    let steps = actions
        .iter()
        .enumerate()
        .map(|(i, &aid)| CertStep {
            action: aid,
            name: task.action(aid).name.clone(),
            preconds: std::mem::take(&mut per_step[i]),
            writes: ledger.rows.get(i).map(|r| r.writes.clone()).unwrap_or_default(),
        })
        .collect();
    PlanCertificate {
        version: crate::CERT_VERSION,
        task_fingerprint: task.fingerprint(),
        outcome,
        steps,
        sources: sources.to_vec(),
        goals,
        bound,
    }
}

/// Build a certificate by running the checker's own executor.
///
/// Fails with the exact violation the checker would report if the action
/// sequence does not execute at the given sources — used where the plan
/// trace is *not* trusted (churn re-certification, adversarial tests).
pub fn certify_by_execution(
    task: &PlanningTask,
    actions: &[ActionId],
    sources: &[(GVarId, f64)],
    outcome: OutcomeClass,
    bound: BoundTrail,
) -> Result<PlanCertificate, CertViolation> {
    let rows = check::execute_against(task, actions, sources, None)?;
    let ledger = ResourceLedger {
        rows: rows.into_iter().map(|writes| crate::LedgerRow { writes }).collect(),
    };
    Ok(emit(task, actions, sources, &ledger, outcome, bound))
}

/// Transport `cert` onto `new_task` (a fresh compile of a mutated
/// network) and re-certify by execution.
///
/// Actions are matched by ground name and sources by their [`GVarData`]
/// identity — raw indices are meaningless across compiles because marker
/// resources shift the dense numbering. The rebound certificate claims no
/// optimality (`GapBasis::Unbounded`): a repair is feasibility-certified
/// against the *current* network, nothing more.
///
/// [`GVarData`]: sekitei_compile::GVarData
pub fn rebind(
    cert: &PlanCertificate,
    old_task: &PlanningTask,
    new_task: &PlanningTask,
) -> Result<PlanCertificate, CertViolation> {
    let by_name: HashMap<&str, ActionId> = (0..new_task.num_actions())
        .map(|i| {
            let id = ActionId::from_index(i);
            (new_task.action(id).name.as_str(), id)
        })
        .collect();
    let actions = cert
        .steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            by_name
                .get(s.name.as_str())
                .copied()
                .ok_or_else(|| CertViolation::UnknownAction { step: i, name: s.name.clone() })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sources = cert
        .sources
        .iter()
        .map(|&(v, x)| {
            if v.index() >= old_task.gvars.len() {
                return Err(CertViolation::Malformed(format!(
                    "source names variable #{} of {}",
                    v.index(),
                    old_task.gvars.len()
                )));
            }
            let data = &old_task.gvars[v.index()];
            new_task.gvar_id(data).map(|nv| (nv, x)).ok_or_else(|| {
                CertViolation::SourceOutOfRange { var: old_task.gvar_name(v).to_string(), value: x }
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let plan_cost: f64 = actions.iter().map(|&a| new_task.action(a).cost).sum();
    let bound = BoundTrail {
        plan_cost,
        root_bound: None,
        frontier_bound: None,
        gap_basis: GapBasis::Unbounded,
        claimed_gap: None,
        incumbent_cutoff: false,
        budget_exhausted: false,
        deadline_hit: false,
        drain_mode: false,
        dominance: false,
        symmetry: false,
    };
    certify_by_execution(new_task, &actions, &sources, OutcomeClass::ChurnRepair, bound)
}
