//! # sekitei-cert
//!
//! Proof-carrying plans: every plan the system ships can carry a compact
//! [`PlanCertificate`] that an *independent* checker re-validates against
//! the compiled [`PlanningTask`](sekitei_compile::PlanningTask) in
//! microseconds — no re-search, no trust in the planner, the server cache,
//! or the churn adaptation layer (after Hill et al., *"Proof-Carrying
//! Plans: a Resource Logic for AI Planning"*).
//!
//! A certificate contains four things:
//!
//! 1. **Precondition witnesses** — for every step, each propositional
//!    precondition names the earlier step (or the initial state) that
//!    established it. Ground propositions are monotone (actions only add),
//!    so an earlier adder is a complete justification.
//! 2. **A resource ledger** — per step, the post-value of every ground
//!    variable the action wrote, produced *as the plan's sources were
//!    bound* by the planner's concretization. The checker re-executes the
//!    plan at the certified source values and confirms every claimed cell,
//!    every numeric condition, and non-negativity at every prefix.
//! 3. **A goal witness** — the step (or initial state) establishing each
//!    goal proposition.
//! 4. **A [`BoundTrail`]** — the admissible bounds (root heuristic,
//!    search-frontier minimum) and the search-mode flags (drain mode,
//!    incumbent cutoff, pruning switches) needed to interpret the claimed
//!    optimality gap. The checker verifies the gap arithmetic against the
//!    recorded basis; the bounds themselves are the one thing taken from
//!    the search, and [`CheckReport::gap_proved`] says when they are sound
//!    (a frontier bound recorded under lossy drain mode is advisory only).
//!
//! The checker ([`check_certificate`]) deliberately shares **no code with
//! the search**: it is a self-contained forward executor over
//! `spec`/`compile`/`model` types, small enough to audit by eye, and fast
//! enough (&lt; 1 ms on Large-scenario plans) to run on every cached,
//! degraded, anytime, or churn-repaired outcome.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
mod emit;
pub mod wire;

pub use check::{check_certificate, CheckReport};
pub use emit::{certify_by_execution, emit, rebind};
pub use wire::{decode_certificate, encode_certificate};

use sekitei_model::{ActionId, GVarId, PropId};

/// Certificate format version (bumped on any incompatible change to the
/// structure or its wire form).
pub const CERT_VERSION: u32 = 1;

/// Which serving path produced the certified plan. Cached outcomes replay
/// the class of the run that populated the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// The exact search's greedy-validated optimal exit.
    Exact,
    /// The graceful-degradation path: a budget tripped and the cheapest
    /// interval-feasible candidate was re-bound at relaxed source values.
    Degraded,
    /// The anytime portfolio's stochastic-local-search incumbent.
    AnytimeIncumbent,
    /// A churn repair re-certified against the mutated network.
    ChurnRepair,
}

impl std::fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OutcomeClass::Exact => "exact",
            OutcomeClass::Degraded => "degraded",
            OutcomeClass::AnytimeIncumbent => "anytime-incumbent",
            OutcomeClass::ChurnRepair => "churn-repair",
        })
    }
}

/// Where a propositional fact needed by a step (or by the goal) came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// True in the initial state.
    Init,
    /// Added by the plan step at this position.
    Step(u32),
}

/// One precondition of one step, with its justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecondWitness {
    /// The ground proposition required.
    pub prop: PropId,
    /// Where it was established.
    pub by: Provenance,
}

/// One goal proposition with its justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalWitness {
    /// The goal proposition.
    pub prop: PropId,
    /// Where it was established.
    pub by: Provenance,
}

/// The resource ledger of a concrete plan execution: for each step, the
/// post-value of every ground variable the action wrote, in effect order.
///
/// Produced by the planner's concretization *as it binds* source values
/// (every candidate execution records its writes on the way through), then
/// carried verbatim into the certificate — the checker recomputes each
/// cell independently and rejects on any mismatch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceLedger {
    /// One row per plan step.
    pub rows: Vec<LedgerRow>,
}

/// The writes of one plan step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerRow {
    /// `(variable, post-value)` per effect, in the action's effect order.
    pub writes: Vec<(GVarId, f64)>,
}

impl ResourceLedger {
    /// Total number of ledger cells across all rows.
    pub fn entries(&self) -> usize {
        self.rows.iter().map(|r| r.writes.len()).sum()
    }
}

/// One certified plan step: the ground action, its precondition
/// witnesses, and its row of the resource ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CertStep {
    /// The ground action (index into the compiled task's action table).
    pub action: ActionId,
    /// The action's rendered name — redundant with `action` against the
    /// issuing task (the checker verifies they agree), but what allows a
    /// certificate to be re-bound onto a *recompiled* task whose indices
    /// shifted (churn re-certification, see [`rebind`]).
    pub name: String,
    /// Justification for every propositional precondition.
    pub preconds: Vec<PrecondWitness>,
    /// `(variable, claimed post-value)` per effect, in effect order.
    pub writes: Vec<(GVarId, f64)>,
}

/// How the claimed optimality gap is justified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapBasis {
    /// The search ran to a proven-optimal exit: the gap is exactly zero.
    Proved,
    /// Measured against the root heuristic bound `h(goal)` — admissible by
    /// construction, independent of where a deadline landed (the anytime
    /// portfolio's deterministic rule).
    RootBound,
    /// Measured against the minimum `f` over the search's unexplored
    /// frontier at exit. Admissible for an exhaustive search; **advisory
    /// only** when the frontier was drained under lossy pruning
    /// ([`BoundTrail::drain_mode`]).
    FrontierBound,
    /// No usable bound survived the run: no gap may be claimed.
    Unbounded,
}

/// The admissible-bound trail justifying a certificate's claimed
/// optimality gap, plus the search-mode flags needed to interpret it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundTrail {
    /// The certified plan's cost lower bound (must equal the sum of the
    /// certified actions' costs — the checker recomputes it).
    pub plan_cost: f64,
    /// Root heuristic `h(goal)` when the search seeded a root.
    pub root_bound: Option<f64>,
    /// Minimum `f` over the unexplored frontier at search exit, when the
    /// search stopped before exhausting the space.
    pub frontier_bound: Option<f64>,
    /// The gap's justification; selects which bound the checker verifies
    /// the arithmetic against.
    pub gap_basis: GapBasis,
    /// The claimed gap: `max(0, plan_cost − basis bound)`, `Some(0.0)`
    /// for proved-optimal plans, `None` iff `gap_basis` is
    /// [`GapBasis::Unbounded`].
    pub claimed_gap: Option<f64>,
    /// The exact search stopped because the frontier minimum strictly
    /// exceeded a shared anytime incumbent cost.
    pub incumbent_cutoff: bool,
    /// A node/reject budget was exhausted before the space was.
    pub budget_exhausted: bool,
    /// Specifically the wall-clock deadline tripped the search.
    pub deadline_hit: bool,
    /// The search's lossy drain mode engaged: nodes were dropped by
    /// g-aware duplicate detection and coarse signature symmetry, so a
    /// frontier bound recorded here does **not** prove a gap — see
    /// [`CheckReport::gap_proved`].
    pub drain_mode: bool,
    /// Drain-mode duplicate detection was enabled.
    pub dominance: bool,
    /// Orbit symmetry breaking was enabled (exactness-preserving — does
    /// not weaken the bound).
    pub symmetry: bool,
}

/// A machine-checkable certificate for one deployment plan.
///
/// Self-contained: the action list *is* the plan, the sources *are* the
/// concrete binding, so `(problem spec, certificate)` suffices to re-derive
/// and re-validate everything — see [`check_certificate`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCertificate {
    /// Format version ([`CERT_VERSION`]).
    pub version: u32,
    /// [`PlanningTask::fingerprint`](sekitei_compile::PlanningTask::fingerprint)
    /// of the compiled task this certificate was issued against.
    pub task_fingerprint: u64,
    /// Which serving path produced the plan.
    pub outcome: OutcomeClass,
    /// The certified steps, in execution order.
    pub steps: Vec<CertStep>,
    /// Concrete value bound per stream-source variable.
    pub sources: Vec<(GVarId, f64)>,
    /// Justification for every goal proposition.
    pub goals: Vec<GoalWitness>,
    /// The bound trail.
    pub bound: BoundTrail,
}

impl PlanCertificate {
    /// Number of ledger cells across all steps.
    pub fn ledger_entries(&self) -> usize {
        self.steps.iter().map(|s| s.writes.len()).sum()
    }
}

/// Why a certificate was rejected. Every variant renders a line-precise
/// reason (step index, proposition/variable name, claimed vs recomputed
/// value) — `sekitei verify-cert` prints it verbatim and exits nonzero.
#[derive(Debug, Clone, PartialEq)]
pub enum CertViolation {
    /// The bytes or structure are not a well-formed certificate.
    Malformed(String),
    /// The certificate was issued against a different compiled task.
    FingerprintMismatch {
        /// Fingerprint of the task being checked against.
        expected: u64,
        /// Fingerprint recorded in the certificate.
        actual: u64,
    },
    /// A step names an action the task does not have.
    UnknownAction {
        /// Step position.
        step: usize,
        /// The action name recorded in the certificate.
        name: String,
    },
    /// A step's action index and recorded name disagree.
    ActionNameMismatch {
        /// Step position.
        step: usize,
        /// Name recorded in the certificate.
        cert: String,
        /// Name of the indexed action in the task.
        task: String,
    },
    /// A step's precondition has no witness.
    MissingPrecondWitness {
        /// Step position.
        step: usize,
        /// The unjustified proposition.
        prop: String,
    },
    /// A witness does not justify its proposition.
    BadWitness {
        /// Step position (`usize::MAX` for goal witnesses).
        step: usize,
        /// The proposition.
        prop: String,
        /// Why the witness fails.
        reason: String,
    },
    /// A step reads a variable never produced.
    UndefinedRead {
        /// Step position.
        step: usize,
        /// The variable.
        var: String,
    },
    /// A numeric condition fails at the certified source values.
    ConditionFailed {
        /// Step position.
        step: usize,
        /// Condition index within the action.
        cond: usize,
        /// Rendered condition.
        text: String,
    },
    /// A resource goes negative — the prefix non-negativity invariant
    /// breaks at this step.
    ResourceNegative {
        /// Step position.
        step: usize,
        /// The variable.
        var: String,
        /// The (negative) post-value the execution reaches.
        value: f64,
    },
    /// A ledger cell's claimed post-value differs from the recomputed one.
    LedgerMismatch {
        /// Step position.
        step: usize,
        /// The variable.
        var: String,
        /// Value claimed by the certificate.
        claimed: f64,
        /// Value the independent execution yields.
        actual: f64,
    },
    /// A ledger row has the wrong shape (missing, surplus, or reordered
    /// writes — e.g. a truncated ledger).
    LedgerShape {
        /// Step position.
        step: usize,
        /// What is wrong.
        detail: String,
    },
    /// A certified source value lies outside the source's availability.
    SourceOutOfRange {
        /// The source variable.
        var: String,
        /// The certified value.
        value: f64,
    },
    /// A goal proposition has no witness.
    GoalUnwitnessed {
        /// The goal proposition.
        prop: String,
    },
    /// The certified plan cost does not equal the sum of step costs.
    CostMismatch {
        /// Cost claimed by the bound trail.
        claimed: f64,
        /// Sum of the certified actions' costs.
        actual: f64,
    },
    /// The claimed gap is smaller than the recorded bounds justify.
    GapUnderstated {
        /// Gap claimed by the certificate.
        claimed: f64,
        /// Gap the recorded basis bound justifies.
        justified: f64,
    },
    /// The gap claim is not derivable from the recorded bound trail.
    GapInconsistent {
        /// What is wrong.
        detail: String,
    },
}

impl std::fmt::Display for CertViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertViolation::Malformed(m) => write!(f, "malformed certificate: {m}"),
            CertViolation::FingerprintMismatch { expected, actual } => write!(
                f,
                "task fingerprint mismatch: certificate issued against \
                 {actual:#018x}, checking against {expected:#018x}"
            ),
            CertViolation::UnknownAction { step, name } => {
                write!(f, "step {step}: task has no action `{name}`")
            }
            CertViolation::ActionNameMismatch { step, cert, task } => {
                write!(f, "step {step}: certificate says `{cert}`, task action is `{task}`")
            }
            CertViolation::MissingPrecondWitness { step, prop } => {
                write!(f, "step {step}: precondition `{prop}` has no witness")
            }
            CertViolation::BadWitness { step, prop, reason } => {
                if *step == usize::MAX {
                    write!(f, "goal witness for `{prop}`: {reason}")
                } else {
                    write!(f, "step {step}: witness for `{prop}`: {reason}")
                }
            }
            CertViolation::UndefinedRead { step, var } => {
                write!(f, "step {step}: read of undefined `{var}`")
            }
            CertViolation::ConditionFailed { step, cond, text } => {
                write!(f, "step {step}: condition #{cond} `{text}` fails at certified values")
            }
            CertViolation::ResourceNegative { step, var, value } => {
                write!(f, "step {step}: `{var}` goes negative ({value})")
            }
            CertViolation::LedgerMismatch { step, var, claimed, actual } => write!(
                f,
                "step {step}: ledger claims `{var}` = {claimed}, execution yields {actual}"
            ),
            CertViolation::LedgerShape { step, detail } => {
                write!(f, "step {step}: ledger row malformed: {detail}")
            }
            CertViolation::SourceOutOfRange { var, value } => {
                write!(f, "source `{var}` = {value} outside its availability")
            }
            CertViolation::GoalUnwitnessed { prop } => {
                write!(f, "goal `{prop}` has no witness")
            }
            CertViolation::CostMismatch { claimed, actual } => {
                write!(f, "plan cost mismatch: trail claims {claimed}, step costs sum to {actual}")
            }
            CertViolation::GapUnderstated { claimed, justified } => write!(
                f,
                "optimality gap understated: claims ≤ {claimed}, bounds justify only ≤ {justified}"
            ),
            CertViolation::GapInconsistent { detail } => {
                write!(f, "bound trail inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for CertViolation {}
