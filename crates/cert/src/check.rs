//! The independent certificate checker.
//!
//! A self-contained forward executor over `compile`/`model` types — it
//! shares no code with the planner's search, replay, or concretization.
//! Everything the certificate claims is recomputed here from the compiled
//! task and the certified source values; the only claims *trusted* are the
//! recorded admissible bounds, whose arithmetic (and soundness caveats)
//! are validated against the [`GapBasis`].

use crate::{CertViolation, GapBasis, OutcomeClass, PlanCertificate, Provenance};
use sekitei_compile::{GVarData, PlanningTask};
use sekitei_model::{AssignOp, GVarId, PropId};

/// Absolute tolerance for comparing a claimed ledger cell against the
/// recomputed value. Executions are deterministic IEEE-754 over the same
/// expressions, so byte-equality normally holds; the epsilon only absorbs
/// a re-serialized `f64` that round-tripped through text.
const VALUE_TOL: f64 = 1e-9;

/// Absolute tolerance for gap/cost arithmetic over sums of `f64` costs.
const COST_TOL: f64 = 1e-6;

/// Slack allowed when checking a certified source value against its
/// availability interval (the planner's grid snapping rounds up by at
/// most `2 × LEVEL_SHAVE = 2e-6`).
const SOURCE_TOL: f64 = 1e-5;

/// What a successful check proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Certified steps re-executed.
    pub steps: usize,
    /// Ledger cells re-verified.
    pub ledger_entries: usize,
    /// The certificate's outcome class.
    pub outcome: OutcomeClass,
    /// True when the verified gap claim rests on a sound admissible bound:
    /// a proved-optimal exit, the root heuristic, or a frontier bound from
    /// a run that never engaged lossy drain-mode pruning. False means the
    /// plan itself is still fully verified, but the gap is advisory.
    pub gap_proved: bool,
}

/// Validate `cert` against `task`.
///
/// On success the returned [`CheckReport`] summarizes what was proved; on
/// the first violation the check stops with a line-precise
/// [`CertViolation`]. Runtime is linear in the certificate size — tens of
/// microseconds on the Large scenarios.
pub fn check_certificate(
    task: &PlanningTask,
    cert: &PlanCertificate,
) -> Result<CheckReport, CertViolation> {
    if cert.version != crate::CERT_VERSION {
        return Err(CertViolation::Malformed(format!(
            "unsupported certificate version {} (checker speaks {})",
            cert.version,
            crate::CERT_VERSION
        )));
    }
    let expected = task.fingerprint();
    if cert.task_fingerprint != expected {
        return Err(CertViolation::FingerprintMismatch { expected, actual: cert.task_fingerprint });
    }

    // ---- structural validity of action references --------------------
    for (i, step) in cert.steps.iter().enumerate() {
        if step.action.index() >= task.num_actions() {
            return Err(CertViolation::UnknownAction { step: i, name: step.name.clone() });
        }
        let name = &task.action(step.action).name;
        if *name != step.name {
            return Err(CertViolation::ActionNameMismatch {
                step: i,
                cert: step.name.clone(),
                task: name.clone(),
            });
        }
    }

    // ---- propositional layer: precondition & goal witnesses ----------
    let adds_prop = |k: u32, p: PropId| -> bool {
        let act = task.action(cert.steps[k as usize].action);
        act.adds.binary_search(&p).is_ok()
    };
    for (i, step) in cert.steps.iter().enumerate() {
        let act = task.action(step.action);
        for w in &step.preconds {
            if w.prop.index() >= task.num_props() {
                return Err(CertViolation::Malformed(format!(
                    "step {i}: witness names proposition #{} of {}",
                    w.prop.index(),
                    task.num_props()
                )));
            }
            let pname = || task.prop_name(w.prop).to_string();
            if act.preconds.binary_search(&w.prop).is_err() {
                return Err(CertViolation::BadWitness {
                    step: i,
                    prop: pname(),
                    reason: format!("not a precondition of `{}`", act.name),
                });
            }
            match w.by {
                Provenance::Init => {
                    if !task.initially(w.prop) {
                        return Err(CertViolation::BadWitness {
                            step: i,
                            prop: pname(),
                            reason: "claimed initial but not initially true".into(),
                        });
                    }
                }
                Provenance::Step(k) => {
                    if k as usize >= i {
                        return Err(CertViolation::BadWitness {
                            step: i,
                            prop: pname(),
                            reason: format!("witness step {k} is not earlier"),
                        });
                    }
                    if !adds_prop(k, w.prop) {
                        return Err(CertViolation::BadWitness {
                            step: i,
                            prop: pname(),
                            reason: format!(
                                "step {k} (`{}`) does not add it",
                                cert.steps[k as usize].name
                            ),
                        });
                    }
                }
            }
        }
        // completeness: every precondition must be witnessed
        for &p in &act.preconds {
            if !step.preconds.iter().any(|w| w.prop == p) {
                return Err(CertViolation::MissingPrecondWitness {
                    step: i,
                    prop: task.prop_name(p).to_string(),
                });
            }
        }
    }
    for &g in &task.goal_props {
        let Some(w) = cert.goals.iter().find(|w| w.prop == g) else {
            return Err(CertViolation::GoalUnwitnessed { prop: task.prop_name(g).to_string() });
        };
        match w.by {
            Provenance::Init => {
                if !task.initially(g) {
                    return Err(CertViolation::BadWitness {
                        step: usize::MAX,
                        prop: task.prop_name(g).to_string(),
                        reason: "claimed initial but not initially true".into(),
                    });
                }
            }
            Provenance::Step(k) => {
                if k as usize >= cert.steps.len() || !adds_prop(k, g) {
                    return Err(CertViolation::BadWitness {
                        step: usize::MAX,
                        prop: task.prop_name(g).to_string(),
                        reason: format!("step {k} does not add it"),
                    });
                }
            }
        }
    }

    // ---- numeric layer: independent exact execution ------------------
    let actions: Vec<_> = cert.steps.iter().map(|s| s.action).collect();
    let claimed: Vec<&[(GVarId, f64)]> = cert.steps.iter().map(|s| s.writes.as_slice()).collect();
    execute_against(task, &actions, &cert.sources, Some(&claimed))?;

    // ---- bound trail -------------------------------------------------
    let cost: f64 = actions.iter().map(|&a| task.action(a).cost).sum();
    let b = &cert.bound;
    if (cost - b.plan_cost).abs() > COST_TOL {
        return Err(CertViolation::CostMismatch { claimed: b.plan_cost, actual: cost });
    }
    let check_gap = |basis: f64, label: &str| -> Result<(), CertViolation> {
        let justified = (b.plan_cost - basis).max(0.0);
        match b.claimed_gap {
            None => Err(CertViolation::GapInconsistent {
                detail: format!("{label} basis recorded but no gap claimed"),
            }),
            Some(g) if g < justified - COST_TOL => {
                Err(CertViolation::GapUnderstated { claimed: g, justified })
            }
            Some(g) if g > justified + COST_TOL => Err(CertViolation::GapInconsistent {
                detail: format!("claims ≤ {g} but the {label} bound justifies ≤ {justified}"),
            }),
            Some(_) => Ok(()),
        }
    };
    match b.gap_basis {
        GapBasis::Proved => match b.claimed_gap {
            Some(g) if g.abs() <= COST_TOL => {}
            other => {
                return Err(CertViolation::GapInconsistent {
                    detail: format!("proved-optimal basis requires gap 0.0, found {other:?}"),
                })
            }
        },
        GapBasis::RootBound => {
            let Some(rb) = b.root_bound else {
                return Err(CertViolation::GapInconsistent {
                    detail: "root-bound basis but no root bound recorded".into(),
                });
            };
            check_gap(rb, "root")?;
        }
        GapBasis::FrontierBound => {
            let Some(fb) = b.frontier_bound else {
                return Err(CertViolation::GapInconsistent {
                    detail: "frontier-bound basis but no frontier bound recorded".into(),
                });
            };
            check_gap(fb, "frontier")?;
        }
        GapBasis::Unbounded => {
            if let Some(g) = b.claimed_gap {
                return Err(CertViolation::GapInconsistent {
                    detail: format!("gap ≤ {g} claimed with no recorded bound"),
                });
            }
        }
    }
    let gap_proved = match b.gap_basis {
        GapBasis::Proved | GapBasis::RootBound => true,
        GapBasis::FrontierBound => !b.drain_mode,
        GapBasis::Unbounded => false,
    };

    Ok(CheckReport {
        steps: cert.steps.len(),
        ledger_entries: cert.ledger_entries(),
        outcome: cert.outcome,
        gap_proved,
    })
}

/// The checker's exact forward executor.
///
/// Runs `actions` at the given `sources` over the task's initial numeric
/// state. When `claimed` rows are supplied, every recomputed write is
/// compared cell-by-cell against its claim; otherwise the computed rows
/// are returned (used by [`crate::certify_by_execution`] to *build* a
/// ledger with the same machinery that later checks it).
pub(crate) fn execute_against(
    task: &PlanningTask,
    actions: &[sekitei_model::ActionId],
    sources: &[(GVarId, f64)],
    claimed: Option<&[&[(GVarId, f64)]]>,
) -> Result<Vec<Vec<(GVarId, f64)>>, CertViolation> {
    let n = task.gvars.len();
    let mut state: Vec<f64> = vec![0.0; n];
    let mut defined: Vec<bool> = vec![false; n];

    // capacities enter as point values; sources must be certified
    for (i, init) in task.init_values.iter().enumerate() {
        let Some(init) = init else { continue };
        if !matches!(task.gvars[i], GVarData::IfaceProp { .. }) {
            state[i] = init.lo;
            defined[i] = true;
        }
    }
    for &(v, x) in sources {
        if v.index() >= n {
            return Err(CertViolation::Malformed(format!(
                "source names variable #{} of {n}",
                v.index()
            )));
        }
        let within = match task.init_values[v.index()] {
            Some(avail) if matches!(task.gvars[v.index()], GVarData::IfaceProp { .. }) => {
                x >= avail.lo - SOURCE_TOL && x <= avail.hi + SOURCE_TOL
            }
            _ => false, // not a stream source at all
        };
        if !within {
            return Err(CertViolation::SourceOutOfRange {
                var: task.gvar_name(v).to_string(),
                value: x,
            });
        }
        if defined[v.index()] {
            return Err(CertViolation::Malformed(format!(
                "duplicate source `{}`",
                task.gvar_name(v)
            )));
        }
        state[v.index()] = x;
        defined[v.index()] = true;
    }

    let mut rows: Vec<Vec<(GVarId, f64)>> = Vec::with_capacity(actions.len());
    let mut values: Vec<f64> = Vec::new();
    for (i, &aid) in actions.iter().enumerate() {
        let act = task.action(aid);
        for &(v, _) in &act.optimistic {
            if !defined[v.index()] {
                return Err(CertViolation::UndefinedRead {
                    step: i,
                    var: task.gvar_name(v).to_string(),
                });
            }
        }
        {
            let mut env = |v: &GVarId| if defined[v.index()] { state[v.index()] } else { 0.0 };
            for (ci, cond) in act.conditions.iter().enumerate() {
                if !cond.holds(&mut env) {
                    return Err(CertViolation::ConditionFailed {
                        step: i,
                        cond: ci,
                        text: render_cond(task, cond),
                    });
                }
            }
        }
        // value expressions read the pre-state; accumulation below reads
        // the running state (an action's earlier effect on the same target
        // is visible to its later ones) — identical to the planner's
        // binding semantics, re-derived here from the model contract
        values.clear();
        {
            let mut env = |v: &GVarId| if defined[v.index()] { state[v.index()] } else { 0.0 };
            values.extend(act.effects.iter().map(|e| e.value.eval(&mut env)));
        }
        let mut written: Vec<(GVarId, f64)> = Vec::with_capacity(act.effects.len());
        for (k, (e, &val)) in act.effects.iter().zip(&values).enumerate() {
            let cur = if defined[e.target.index()] { state[e.target.index()] } else { 0.0 };
            let new = match e.op {
                AssignOp::Set => val,
                AssignOp::Sub => {
                    let post = cur - val;
                    if post < -sekitei_model::EPS {
                        return Err(CertViolation::ResourceNegative {
                            step: i,
                            var: task.gvar_name(e.target).to_string(),
                            value: post,
                        });
                    }
                    post.max(0.0)
                }
                AssignOp::Add => cur + val,
            };
            state[e.target.index()] = new;
            defined[e.target.index()] = true;
            if let Some(claims) = claimed {
                let row = claims[i];
                let Some(&(cv, cx)) = row.get(k) else {
                    return Err(CertViolation::LedgerShape {
                        step: i,
                        detail: format!(
                            "row has {} writes, action `{}` performs {}",
                            row.len(),
                            act.name,
                            act.effects.len()
                        ),
                    });
                };
                if cv != e.target {
                    return Err(CertViolation::LedgerShape {
                        step: i,
                        detail: format!(
                            "write #{k} targets `{}`, execution writes `{}`",
                            task.gvar_name(cv),
                            task.gvar_name(e.target)
                        ),
                    });
                }
                if (cx - new).abs() > VALUE_TOL {
                    return Err(CertViolation::LedgerMismatch {
                        step: i,
                        var: task.gvar_name(e.target).to_string(),
                        claimed: cx,
                        actual: new,
                    });
                }
            }
            written.push((e.target, new));
        }
        if let Some(claims) = claimed {
            if claims[i].len() > act.effects.len() {
                return Err(CertViolation::LedgerShape {
                    step: i,
                    detail: format!(
                        "row has {} writes, action `{}` performs {}",
                        claims[i].len(),
                        act.name,
                        act.effects.len()
                    ),
                });
            }
        }
        rows.push(written);
    }
    Ok(rows)
}

fn render_cond(task: &PlanningTask, cond: &sekitei_model::Cond<GVarId>) -> String {
    cond.map_vars(&mut |v: &GVarId| task.gvar_name(*v).to_string()).to_string()
}
