//! `SKC1` — the certificate wire encoding.
//!
//! A self-describing big-endian byte format, hand-rolled like the `SKO1`
//! outcome framing: fixed magic, explicit lengths, option tags, and hard
//! rejection of trailing bytes. The blob travels opaquely inside `SKO1`
//! responses and in `--emit-cert` files; both ends speak only this module.

use crate::{
    BoundTrail, CertStep, CertViolation, GapBasis, GoalWitness, OutcomeClass, PlanCertificate,
    PrecondWitness, Provenance,
};
use sekitei_model::{ActionId, GVarId, PropId};

/// Leading magic of every encoded certificate.
pub const CERT_MAGIC: &[u8; 4] = b"SKC1";

/// Upper bound on any single length field, to bound allocation on
/// malformed input before the payload is validated.
const MAX_LEN: u32 = 1 << 22;

// ---------------------------------------------------------------- encode

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn provenance(&mut self, p: Provenance) {
        match p {
            Provenance::Init => self.u8(0),
            Provenance::Step(k) => {
                self.u8(1);
                self.u32(k);
            }
        }
    }
}

/// Serialize a certificate to its `SKC1` byte form.
pub fn encode_certificate(cert: &PlanCertificate) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(256));
    e.0.extend_from_slice(CERT_MAGIC);
    e.u32(cert.version);
    e.u64(cert.task_fingerprint);
    e.u8(match cert.outcome {
        OutcomeClass::Exact => 0,
        OutcomeClass::Degraded => 1,
        OutcomeClass::AnytimeIncumbent => 2,
        OutcomeClass::ChurnRepair => 3,
    });
    e.u32(cert.steps.len() as u32);
    for s in &cert.steps {
        e.u32(s.action.index() as u32);
        e.str(&s.name);
        e.u32(s.preconds.len() as u32);
        for w in &s.preconds {
            e.u32(w.prop.index() as u32);
            e.provenance(w.by);
        }
        e.u32(s.writes.len() as u32);
        for &(v, x) in &s.writes {
            e.u32(v.index() as u32);
            e.f64(x);
        }
    }
    e.u32(cert.sources.len() as u32);
    for &(v, x) in &cert.sources {
        e.u32(v.index() as u32);
        e.f64(x);
    }
    e.u32(cert.goals.len() as u32);
    for g in &cert.goals {
        e.u32(g.prop.index() as u32);
        e.provenance(g.by);
    }
    let b = &cert.bound;
    e.f64(b.plan_cost);
    e.opt_f64(b.root_bound);
    e.opt_f64(b.frontier_bound);
    e.u8(match b.gap_basis {
        GapBasis::Proved => 0,
        GapBasis::RootBound => 1,
        GapBasis::FrontierBound => 2,
        GapBasis::Unbounded => 3,
    });
    e.opt_f64(b.claimed_gap);
    let mut flags = 0u8;
    for (bit, on) in [
        b.incumbent_cutoff,
        b.budget_exhausted,
        b.deadline_hit,
        b.drain_mode,
        b.dominance,
        b.symmetry,
    ]
    .into_iter()
    .enumerate()
    {
        if on {
            flags |= 1 << bit;
        }
    }
    e.u8(flags);
    e.0
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CertViolation> {
        if self.buf.len() - self.at < n {
            return Err(CertViolation::Malformed(format!(
                "truncated at byte {} (need {n} more)",
                self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CertViolation> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CertViolation> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CertViolation> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CertViolation> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_f64(&mut self) -> Result<Option<f64>, CertViolation> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(CertViolation::Malformed(format!("bad option tag {t}"))),
        }
    }
    fn len(&mut self) -> Result<usize, CertViolation> {
        let n = self.u32()?;
        if n > MAX_LEN {
            return Err(CertViolation::Malformed(format!("length {n} exceeds limit")));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, CertViolation> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CertViolation::Malformed("non-UTF-8 name".into()))
    }
    fn provenance(&mut self) -> Result<Provenance, CertViolation> {
        match self.u8()? {
            0 => Ok(Provenance::Init),
            1 => Ok(Provenance::Step(self.u32()?)),
            t => Err(CertViolation::Malformed(format!("bad provenance tag {t}"))),
        }
    }
}

/// Deserialize an `SKC1` certificate, rejecting malformed or trailing bytes.
pub fn decode_certificate(bytes: &[u8]) -> Result<PlanCertificate, CertViolation> {
    let mut d = Dec { buf: bytes, at: 0 };
    if d.take(4)? != CERT_MAGIC {
        return Err(CertViolation::Malformed("bad magic (expected SKC1)".into()));
    }
    let version = d.u32()?;
    let task_fingerprint = d.u64()?;
    let outcome = match d.u8()? {
        0 => OutcomeClass::Exact,
        1 => OutcomeClass::Degraded,
        2 => OutcomeClass::AnytimeIncumbent,
        3 => OutcomeClass::ChurnRepair,
        t => return Err(CertViolation::Malformed(format!("bad outcome class {t}"))),
    };
    let nsteps = d.len()?;
    let mut steps = Vec::with_capacity(nsteps.min(4096));
    for _ in 0..nsteps {
        let action = ActionId::from_index(d.u32()? as usize);
        let name = d.str()?;
        let npre = d.len()?;
        let mut preconds = Vec::with_capacity(npre.min(4096));
        for _ in 0..npre {
            let prop = PropId::from_index(d.u32()? as usize);
            let by = d.provenance()?;
            preconds.push(PrecondWitness { prop, by });
        }
        let nw = d.len()?;
        let mut writes = Vec::with_capacity(nw.min(4096));
        for _ in 0..nw {
            let v = GVarId::from_index(d.u32()? as usize);
            writes.push((v, d.f64()?));
        }
        steps.push(CertStep { action, name, preconds, writes });
    }
    let nsrc = d.len()?;
    let mut sources = Vec::with_capacity(nsrc.min(4096));
    for _ in 0..nsrc {
        let v = GVarId::from_index(d.u32()? as usize);
        sources.push((v, d.f64()?));
    }
    let ngoal = d.len()?;
    let mut goals = Vec::with_capacity(ngoal.min(4096));
    for _ in 0..ngoal {
        let prop = PropId::from_index(d.u32()? as usize);
        goals.push(GoalWitness { prop, by: d.provenance()? });
    }
    let plan_cost = d.f64()?;
    let root_bound = d.opt_f64()?;
    let frontier_bound = d.opt_f64()?;
    let gap_basis = match d.u8()? {
        0 => GapBasis::Proved,
        1 => GapBasis::RootBound,
        2 => GapBasis::FrontierBound,
        3 => GapBasis::Unbounded,
        t => return Err(CertViolation::Malformed(format!("bad gap basis {t}"))),
    };
    let claimed_gap = d.opt_f64()?;
    let flags = d.u8()?;
    if flags & !0x3f != 0 {
        return Err(CertViolation::Malformed(format!("unknown flag bits {flags:#x}")));
    }
    if d.at != bytes.len() {
        return Err(CertViolation::Malformed(format!(
            "{} trailing bytes after certificate",
            bytes.len() - d.at
        )));
    }
    Ok(PlanCertificate {
        version,
        task_fingerprint,
        outcome,
        steps,
        sources,
        goals,
        bound: BoundTrail {
            plan_cost,
            root_bound,
            frontier_bound,
            gap_basis,
            claimed_gap,
            incumbent_cutoff: flags & 1 != 0,
            budget_exhausted: flags & 2 != 0,
            deadline_hit: flags & 4 != 0,
            drain_mode: flags & 8 != 0,
            dominance: flags & 16 != 0,
            symmetry: flags & 32 != 0,
        },
    })
}
