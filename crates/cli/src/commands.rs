//! Subcommand implementations.

use sekitei_compile::compile;
use sekitei_model::{CppProblem, LevelScenario};
use sekitei_planner::{plan_metrics, Heuristic, PlanOutcome, Planner, PlannerConfig};
use sekitei_sim::validate_plan;
use sekitei_topology::scenarios::{self, NetSize};

const USAGE: &str = "usage:
  sekitei plan (<spec-file> | --scenario <size-level>) [--plrg-heuristic]
               [--no-replay-pruning] [--no-prune] [--max-nodes N]
               [--deadline-ms N] [--search-threads N] [--degrade]
               [--anytime] [--sls-seed N] [--sls-restarts N]
               [--validate] [--quiet] [--profile] [--trace-json FILE]
               [--emit-cert FILE]
  sekitei batch <spec-file>... [--threads N] [--search-threads N]
               [--no-prune] [--validate] [--quiet] [--profile]
               [--trace-json FILE] [--emit-cert FILE]
  sekitei serve [--addr HOST:PORT] [--workers N] [--shards N] [--queue-cap N]
               [--cache-cap N] [--cache-file FILE] [--max-nodes N]
               [--deadline-ms N] [--search-threads N] [--no-degrade]
               [--anytime] [--sls-seed N] [--sls-restarts N]
  sekitei request (<spec-file> | --stats | --metrics | --flight | --shutdown)
               [--addr HOST:PORT] [--profile] [--priority <high|normal|low>]
  sekitei loadgen [--addr HOST:PORT] [--requests N] [--connections N]
               [--seed N] [--zipf-s X] [--pipeline N] [--rate R] [--burst N]
               [--verify-every N] [--low-every N]
               [--corpus <tiny|small|large>] [--bench-json FILE]
  sekitei verify-cert <spec-file> <cert-file>
  sekitei check <spec-file>
  sekitei compile <spec-file> [--dump]
  sekitei scenario <tiny|small|large> <A|B|C|D|E> [--emit] [--validate]
  sekitei tradeoff <link-cost-weight>
  sekitei adapt <spec-file> --existing <Comp@node> [--existing ...]
               [--keep-cost X] [--migration-factor Y] [--validate]
  sekitei churn [--scenario <tiny|small|large>] [--level <A|B|C|D|E>]
               [--seed N] [--events N] [--trace FILE] [--emit-trace]
               [--max-nodes N] [--deadline-ms N] [--search-threads N]
               [--no-degrade] [--anytime] [--sls-seed N] [--sls-restarts N]
               [--keep-cost X] [--migration-factor Y] [--quiet]
               [--profile] [--trace-json FILE] [--emit-cert FILE]
  sekitei doctor <spec-file>
  sekitei suggest <spec-file> [--headroom H] [--apply]
  sekitei dot <spec-file> [--plan]
  sekitei encode <spec-file> <out.bin>
  sekitei decode <in.bin>";

/// Dispatch CLI arguments to a subcommand.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("plan") => cmd_plan(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("verify-cert") => cmd_verify_cert(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("tradeoff") => cmd_tradeoff(&args[1..]),
        Some("adapt") => cmd_adapt(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("doctor") => cmd_doctor(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("suggest") => cmd_suggest(&args[1..]),
        Some("encode") => cmd_encode(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

fn load(path: &str) -> Result<CppProblem, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    sekitei_spec::parse_problem(&src).map_err(|e| format!("{path}: {e}"))
}

fn parse_config(flags: &[String]) -> Result<(PlannerConfig, bool, bool), String> {
    let mut cfg = PlannerConfig::default();
    let mut validate = false;
    let mut quiet = false;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--plrg-heuristic" => cfg.heuristic = Heuristic::PlrgMax,
            "--no-replay-pruning" => cfg.replay_pruning = false,
            "--no-prune" => {
                // escape hatch for the search-quality pruning layer:
                // dominance, symmetry breaking and g-aware reopening off
                cfg.dominance = false;
                cfg.symmetry = false;
                cfg.reopen = false;
            }
            "--validate" => validate = true,
            "--quiet" => quiet = true,
            "--max-nodes" => {
                i += 1;
                let v = flags.get(i).ok_or("--max-nodes needs a value")?;
                cfg.max_nodes = v.parse().map_err(|_| format!("bad --max-nodes value `{v}`"))?;
            }
            "--deadline-ms" => {
                i += 1;
                let v = flags.get(i).ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                cfg.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--search-threads" => {
                i += 1;
                let v = flags.get(i).ok_or("--search-threads needs a value")?;
                cfg.search_threads = parse_search_threads(v)?;
            }
            "--degrade" => cfg.degrade = true,
            "--anytime" => cfg.anytime = true,
            "--sls-seed" => {
                i += 1;
                let v = flags.get(i).ok_or("--sls-seed needs a value")?;
                cfg.sls_seed = v.parse().map_err(|_| format!("bad --sls-seed value `{v}`"))?;
            }
            "--sls-restarts" => {
                i += 1;
                let v = flags.get(i).ok_or("--sls-restarts needs a value")?;
                cfg.sls_restarts =
                    v.parse().map_err(|_| format!("bad --sls-restarts value `{v}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok((cfg, validate, quiet))
}

/// Parse a `--search-threads` value: a positive worker count (`1` is the
/// sequential search; any count returns bit-identical plans and bounds).
fn parse_search_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad --search-threads value `{v}` (need a positive integer)")),
    }
}

/// Observability surface shared by `plan`, `batch` and `churn`: `--profile`
/// prints a per-phase breakdown on stderr, `--trace-json FILE` writes the
/// structured trace as JSON lines. Tracing stays entirely off unless one of
/// the two was requested.
#[derive(Default)]
struct ObsOpts {
    trace_json: Option<String>,
    profile: bool,
}

impl ObsOpts {
    fn active(&self) -> bool {
        self.profile || self.trace_json.is_some()
    }

    /// Turn tracing on (discarding anything a previous command in this
    /// process left in the rings, so the trace covers exactly this run).
    fn begin(&self) {
        if self.active() {
            sekitei_obs::enable();
            let _ = sekitei_obs::take_trace();
        }
    }

    /// Drain the trace, emit the requested outputs, and turn tracing off.
    /// `root` names the span whose subtree the profile table summarizes.
    fn finish(&self, root: &str) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        let trace = sekitei_obs::take_trace();
        sekitei_obs::disable();
        // a saturated ring silently truncates the trace — surface it
        trace.warn_if_dropped();
        if let Some(path) = &self.trace_json {
            std::fs::write(path, trace.to_json_lines())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        }
        if self.profile {
            eprint!("{}", trace.phase_table(root));
        }
        Ok(())
    }
}

/// Parse a combined `--scenario` value like `small-b` into its network size
/// and level scenario.
fn parse_size_level(v: &str) -> Result<(NetSize, LevelScenario), String> {
    let (size, level) = v
        .split_once('-')
        .ok_or_else(|| format!("bad --scenario `{v}` (expected <size>-<level>, e.g. small-b)"))?;
    let size = match size.to_ascii_lowercase().as_str() {
        "tiny" => NetSize::Tiny,
        "small" => NetSize::Small,
        "large" => NetSize::Large,
        other => return Err(format!("unknown network size `{other}` (use tiny|small|large)")),
    };
    Ok((size, parse_scenario(level)?))
}

fn report_outcome(
    problem: &CppProblem,
    outcome: &PlanOutcome,
    validate: bool,
    quiet: bool,
) -> Result<(), String> {
    let s = &outcome.stats;
    match &outcome.plan {
        Some(plan) => {
            print!("{plan}");
            let m = plan_metrics(problem, &outcome.task, plan);
            println!(
                "reserved bandwidth: LAN {:.1}, WAN {:.1}; total CPU {:.1}",
                m.reserved_lan_bw, m.reserved_wan_bw, m.total_cpu
            );
            if let Some(gap) = s.optimality_gap {
                if gap > 0.0 {
                    println!("optimality gap: ≤ {gap:.2}");
                } else {
                    println!("optimality gap: 0.00 (proved)");
                }
            }
            if validate {
                let report = validate_plan(problem, &outcome.task, plan);
                if report.ok {
                    println!(
                        "simulation: OK (real cost {:.2} ≥ bound {:.2})",
                        report.total_cost, plan.cost_lower_bound
                    );
                } else {
                    for v in &report.violations {
                        eprintln!("simulation violation: {v}");
                    }
                    return Err("plan failed simulation".into());
                }
            }
        }
        None => {
            println!("no plan found");
            if let Some(b) = s.best_bound {
                println!("(optimal cost ≥ {b:.2})");
            }
            if s.budget_exhausted {
                println!("(search budget exhausted — the instance may still be solvable)");
            }
        }
    }
    if !quiet {
        println!("stats: {s}");
    }
    Ok(())
}

/// Write a plan's certificate to `path` in the SKC1 wire form. Errors when
/// the outcome carried no certificate (no plan was found, or the plan
/// predates certificate emission).
fn write_cert(path: &str, cert: Option<&sekitei_cert::PlanCertificate>) -> Result<(), String> {
    let cert = cert.ok_or_else(|| format!("no certificate to emit to `{path}` (no plan)"))?;
    let bytes = sekitei_cert::encode_certificate(cert);
    std::fs::write(path, &bytes).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote certificate ({} bytes) to {path}", bytes.len());
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut scenario: Option<(NetSize, LevelScenario)> = None;
    let mut emit_cert: Option<String> = None;
    let mut obs = ObsOpts::default();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                i += 1;
                let v = args.get(i).ok_or("--scenario needs a value like small-b")?;
                scenario = Some(parse_size_level(v)?);
            }
            "--emit-cert" => {
                i += 1;
                emit_cert = Some(args.get(i).ok_or("--emit-cert needs a file path")?.clone());
            }
            "--trace-json" => {
                i += 1;
                obs.trace_json = Some(args.get(i).ok_or("--trace-json needs a file path")?.clone());
            }
            "--profile" => obs.profile = true,
            f if f.starts_with("--") => {
                flags.push(f.to_string());
                // value-taking planner flags: keep the value with its flag
                if matches!(
                    f,
                    "--max-nodes"
                        | "--deadline-ms"
                        | "--search-threads"
                        | "--sls-seed"
                        | "--sls-restarts"
                ) {
                    i += 1;
                    if let Some(v) = args.get(i) {
                        flags.push(v.clone());
                    }
                }
            }
            f if path.is_none() => path = Some(f.to_string()),
            f => return Err(format!("unexpected argument `{f}`\n{USAGE}")),
        }
        i += 1;
    }
    let (cfg, validate, quiet) = parse_config(&flags)?;
    let problem = match (path, scenario) {
        (Some(p), None) => load(&p)?,
        (None, Some((size, level))) => scenarios::problem(size, level),
        (Some(_), Some(_)) => {
            return Err(format!("plan takes either a spec file or --scenario, not both\n{USAGE}"))
        }
        (None, None) => return Err(USAGE.into()),
    };
    obs.begin();
    let planned = if cfg.anytime {
        sekitei_anytime::plan(&problem, &cfg).map(|a| a.outcome).map_err(|e| e.to_string())
    } else {
        Planner::new(cfg).plan(&problem).map_err(|e| e.to_string())
    };
    let emitted = obs.finish("plan");
    let outcome = planned?;
    emitted?;
    report_outcome(&problem, &outcome, validate, quiet)?;
    if let Some(path) = &emit_cert {
        write_cert(path, outcome.plan.as_ref().and_then(|p| p.certificate.as_ref()))?;
    }
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let mut files: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut cfg = PlannerConfig::default();
    let mut quiet = false;
    let mut validate = false;
    let mut emit_cert: Option<String> = None;
    let mut obs = ObsOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a value")?;
                threads = Some(v.parse().map_err(|_| format!("bad --threads value `{v}`"))?);
            }
            "--search-threads" => {
                // intra-search workers, orthogonal to the per-instance
                // `--threads` fan-out
                i += 1;
                let v = args.get(i).ok_or("--search-threads needs a value")?;
                cfg.search_threads = parse_search_threads(v)?;
            }
            "--no-prune" => {
                cfg.dominance = false;
                cfg.symmetry = false;
                cfg.reopen = false;
            }
            "--quiet" => quiet = true,
            "--validate" => validate = true,
            "--emit-cert" => {
                i += 1;
                emit_cert = Some(args.get(i).ok_or("--emit-cert needs a file path")?.clone());
            }
            "--trace-json" => {
                i += 1;
                obs.trace_json = Some(args.get(i).ok_or("--trace-json needs a file path")?.clone());
            }
            "--profile" => obs.profile = true,
            f if f.starts_with("--") => return Err(format!("unknown flag `{f}`")),
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        return Err(format!("batch needs at least one spec file\n{USAGE}"));
    }
    let problems = files.iter().map(|f| load(f)).collect::<Result<Vec<_>, String>>()?;
    let planner = Planner::new(cfg);
    obs.begin();
    let outcomes = match threads {
        Some(t) => planner.plan_batch_with(&problems, t),
        None => planner.plan_batch(&problems),
    };
    // the profile table sums every instance's "plan" span into one breakdown
    obs.finish("plan")?;
    let mut failures = 0usize;
    for (idx, ((file, problem), outcome)) in files.iter().zip(&problems).zip(outcomes).enumerate() {
        println!("=== {file} ===");
        match outcome {
            Ok(o) => {
                if let Err(e) = report_outcome(problem, &o, validate, quiet) {
                    eprintln!("{e}");
                    failures += 1;
                } else if let Some(base) = &emit_cert {
                    // one certificate per instance, suffixed by position
                    let path = format!("{base}.{idx}");
                    let cert = o.plan.as_ref().and_then(|p| p.certificate.as_ref());
                    if let Err(e) = write_cert(&path, cert) {
                        eprintln!("{e}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} of {} instances failed", files.len()))
    } else {
        Ok(())
    }
}

/// Default serving address shared by `serve` and `request`.
const DEFAULT_ADDR: &str = "127.0.0.1:7421";

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use sekitei_server::{Server, ServerConfig};

    let mut addr = DEFAULT_ADDR.to_string();
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let need = |v: Option<&String>, flag: &str| {
            v.cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = need(args.get(i), "--addr")?;
            }
            "--workers" => {
                i += 1;
                let v = need(args.get(i), "--workers")?;
                cfg.workers = v.parse().map_err(|_| format!("bad --workers value `{v}`"))?;
            }
            "--shards" => {
                i += 1;
                let v = need(args.get(i), "--shards")?;
                cfg.shards = v.parse().map_err(|_| format!("bad --shards value `{v}`"))?;
            }
            "--cache-file" => {
                i += 1;
                cfg.cache_file = Some(need(args.get(i), "--cache-file")?.into());
            }
            "--queue-cap" => {
                i += 1;
                let v = need(args.get(i), "--queue-cap")?;
                cfg.queue_cap = v.parse().map_err(|_| format!("bad --queue-cap value `{v}`"))?;
            }
            "--cache-cap" => {
                i += 1;
                let v = need(args.get(i), "--cache-cap")?;
                cfg.cache_cap = v.parse().map_err(|_| format!("bad --cache-cap value `{v}`"))?;
            }
            "--max-nodes" => {
                i += 1;
                let v = need(args.get(i), "--max-nodes")?;
                cfg.planner.max_nodes =
                    v.parse().map_err(|_| format!("bad --max-nodes value `{v}`"))?;
            }
            "--deadline-ms" => {
                i += 1;
                let v = need(args.get(i), "--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                cfg.planner.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--search-threads" => {
                i += 1;
                cfg.planner.search_threads =
                    parse_search_threads(&need(args.get(i), "--search-threads")?)?;
            }
            "--no-degrade" => cfg.planner.degrade = false,
            "--anytime" => cfg.planner.anytime = true,
            "--sls-seed" => {
                i += 1;
                let v = need(args.get(i), "--sls-seed")?;
                cfg.planner.sls_seed =
                    v.parse().map_err(|_| format!("bad --sls-seed value `{v}`"))?;
            }
            "--sls-restarts" => {
                i += 1;
                let v = need(args.get(i), "--sls-restarts")?;
                cfg.planner.sls_restarts =
                    v.parse().map_err(|_| format!("bad --sls-restarts value `{v}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let server =
        Server::bind(addr.as_str(), cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    println!("sekitei serving on {local} (stop with `sekitei request --shutdown --addr {local}`)");
    server.run().map_err(|e| e.to_string())
}

fn cmd_request(args: &[String]) -> Result<(), String> {
    use sekitei_server::{
        request_flight_recorder, request_metrics, request_shutdown, request_stats, Connection,
    };

    let mut addr = DEFAULT_ADDR.to_string();
    let mut file: Option<String> = None;
    let mut stats = false;
    let mut metrics = false;
    let mut flight = false;
    let mut shutdown = false;
    let mut profile = false;
    let mut priority = sekitei_server::Priority::Normal;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().ok_or("--addr needs a value")?;
            }
            "--stats" => stats = true,
            "--metrics" => metrics = true,
            "--flight" => flight = true,
            "--shutdown" => shutdown = true,
            "--profile" => profile = true,
            "--priority" => {
                i += 1;
                priority = match args.get(i).map(String::as_str) {
                    Some("high") => sekitei_server::Priority::High,
                    Some("normal") => sekitei_server::Priority::Normal,
                    Some("low") => sekitei_server::Priority::Low,
                    Some(other) => {
                        return Err(format!("bad --priority `{other}` (use high|normal|low)"))
                    }
                    None => return Err("--priority needs a value".into()),
                };
            }
            f if f.starts_with("--") => return Err(format!("unknown flag `{f}`")),
            f => file = Some(f.to_string()),
        }
        i += 1;
    }
    match (file, stats, metrics, flight, shutdown) {
        (None, true, false, false, false) => {
            let s = request_stats(addr.as_str()).map_err(|e| e.to_string())?;
            println!("{s}");
            Ok(())
        }
        (None, false, true, false, false) => {
            let text = request_metrics(addr.as_str()).map_err(|e| e.to_string())?;
            // validate before showing: a scrape the parser rejects is a
            // server bug worth failing loudly on
            sekitei_obs::parse_exposition(&text)
                .map_err(|e| format!("served exposition invalid: {e}"))?;
            print!("{text}");
            Ok(())
        }
        (None, false, false, true, false) => {
            let text = request_flight_recorder(addr.as_str()).map_err(|e| e.to_string())?;
            let dump = sekitei_server::parse_dump(&text)
                .map_err(|e| format!("served flight dump invalid: {e}"))?;
            print!("{text}");
            eprintln!(
                "flight recorder: {} records, {} exemplars, {} evicted",
                dump.records.len(),
                dump.exemplars.len(),
                dump.evicted
            );
            Ok(())
        }
        (None, false, false, false, true) => {
            request_shutdown(addr.as_str()).map_err(|e| e.to_string())?;
            println!("server at {addr} shut down");
            Ok(())
        }
        (Some(path), false, false, false, false) => {
            let t_parse = std::time::Instant::now();
            let problem = load(&path)?;
            let parse_us = t_parse.elapsed().as_micros() as u64;

            let t_encode = std::time::Instant::now();
            let bytes = sekitei_spec::encode(&problem);
            let encode_us = t_encode.elapsed().as_micros() as u64;
            // fingerprint as trace id: the id shows up verbatim in the
            // server's flight records, so a tail-latency exemplar can be
            // tied back to this exact request
            let trace_id = sekitei_server::content_hash(&bytes).max(1);

            let t_connect = std::time::Instant::now();
            let mut conn = Connection::connect(addr.as_str()).map_err(|e| e.to_string())?;
            let connect_us = t_connect.elapsed().as_micros() as u64;

            let t_rtt = std::time::Instant::now();
            let served = conn
                .plan_bytes_traced(&bytes, trace_id, profile, priority)
                .map_err(|e| e.to_string())?;
            let rtt_us = t_rtt.elapsed().as_micros() as u64;

            report_wire_outcome(&served.outcome, served.served_via);
            if let Some(bytes) = &served.outcome.certificate {
                // the client compiles the task itself, so the check is
                // independent of everything the server claimed
                let task = compile(&problem).map_err(|e| e.to_string())?;
                let cert = sekitei_cert::decode_certificate(bytes)
                    .map_err(|e| format!("served certificate undecodable: {e}"))?;
                let rep = sekitei_cert::check_certificate(&task, &cert)
                    .map_err(|v| format!("served certificate INVALID: {v}"))?;
                println!(
                    "certificate: verified ({} outcome, {} steps, {} ledger entries, gap {})",
                    rep.outcome,
                    rep.steps,
                    rep.ledger_entries,
                    if rep.gap_proved { "proved" } else { "advisory" },
                );
            }
            if profile {
                eprint!(
                    "{}",
                    stitched_profile(
                        trace_id,
                        &[
                            ("parse", parse_us),
                            ("encode", encode_us),
                            ("connect", connect_us),
                            ("exchange", rtt_us),
                        ],
                        rtt_us,
                        &served.phases,
                    )
                );
            }
            Ok(())
        }
        _ => Err(format!(
            "request needs exactly one of <spec-file>, --stats, --metrics, --flight, --shutdown\n{USAGE}"
        )),
    }
}

/// Render the client's own phases with the server's self-time table
/// stitched in under `exchange`, so one table covers the full request
/// path: wire + queueing on the client side, planning phases on the
/// server side.
fn stitched_profile(
    trace_id: u64,
    client: &[(&str, u64)],
    rtt_us: u64,
    server: &[sekitei_spec::WirePhase],
) -> String {
    let mut out = format!("profile for trace {trace_id:#018x} (client + server):\n");
    for (name, us) in client {
        out.push_str(&format!("  client {name:<12} {:>10.1} µs\n", *us as f64));
        if *name == "exchange" {
            let mut server_us_total = 0.0;
            for phase in server {
                let us = phase.self_ns as f64 / 1_000.0;
                server_us_total += us;
                out.push_str(&format!(
                    "    server {:<12} {us:>10.1} µs  ×{}\n",
                    phase.name, phase.count
                ));
            }
            if !server.is_empty() {
                let wire_us = rtt_us as f64 - server_us_total;
                out.push_str(&format!(
                    "    wire + framing   {:>10.1} µs  (exchange − server self-times)\n",
                    wire_us.max(0.0)
                ));
            }
        }
    }
    if server.is_empty() {
        out.push_str("  (server returned no phase table — is it older than the profile flag?)\n");
    }
    out
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use sekitei_server::{loadgen, LoadgenConfig, ScenarioItem};
    use std::net::ToSocketAddrs;

    let mut addr = DEFAULT_ADDR.to_string();
    let mut cfg = LoadgenConfig::default();
    let mut corpus_size = NetSize::Tiny;
    let mut bench_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |v: Option<&String>, flag: &str| {
            v.cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = need(args.get(i), "--addr")?;
            }
            "--requests" => {
                i += 1;
                let v = need(args.get(i), "--requests")?;
                cfg.requests = v.parse().map_err(|_| format!("bad --requests value `{v}`"))?;
            }
            "--connections" => {
                i += 1;
                let v = need(args.get(i), "--connections")?;
                cfg.connections =
                    v.parse().map_err(|_| format!("bad --connections value `{v}`"))?;
            }
            "--seed" => {
                i += 1;
                let v = need(args.get(i), "--seed")?;
                cfg.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--zipf-s" => {
                i += 1;
                let v = need(args.get(i), "--zipf-s")?;
                cfg.zipf_s = v.parse().map_err(|_| format!("bad --zipf-s value `{v}`"))?;
            }
            "--pipeline" => {
                i += 1;
                let v = need(args.get(i), "--pipeline")?;
                cfg.pipeline = v.parse().map_err(|_| format!("bad --pipeline value `{v}`"))?;
            }
            "--rate" => {
                i += 1;
                let v = need(args.get(i), "--rate")?;
                cfg.rate_per_s = Some(v.parse().map_err(|_| format!("bad --rate value `{v}`"))?);
            }
            "--burst" => {
                i += 1;
                let v = need(args.get(i), "--burst")?;
                cfg.burst = v.parse().map_err(|_| format!("bad --burst value `{v}`"))?;
            }
            "--verify-every" => {
                i += 1;
                let v = need(args.get(i), "--verify-every")?;
                cfg.verify_every =
                    v.parse().map_err(|_| format!("bad --verify-every value `{v}`"))?;
            }
            "--low-every" => {
                i += 1;
                let v = need(args.get(i), "--low-every")?;
                cfg.low_every = v.parse().map_err(|_| format!("bad --low-every value `{v}`"))?;
            }
            "--corpus" => {
                i += 1;
                corpus_size = match need(args.get(i), "--corpus")?.as_str() {
                    "tiny" => NetSize::Tiny,
                    "small" => NetSize::Small,
                    "large" => NetSize::Large,
                    other => {
                        return Err(format!("unknown corpus `{other}` (use tiny|small|large)"))
                    }
                };
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(need(args.get(i), "--bench-json")?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    // rank order = level order, so Zipf makes A the hot key
    let corpus: Vec<ScenarioItem> =
        [LevelScenario::A, LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E]
            .into_iter()
            .map(|sc| {
                ScenarioItem::new(
                    format!("{}/{sc:?}", corpus_size.label()),
                    scenarios::problem(corpus_size, sc),
                )
            })
            .collect();

    let sock = addr
        .as_str()
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to no address"))?;
    let report = loadgen::run(&cfg, sock, &corpus).map_err(|e| e.to_string())?;
    print!("{}", report.deterministic);
    eprint!("{}", report.timing);
    if let Some(path) = bench_json {
        std::fs::write(&path, &report.bench_json)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Print a served outcome; mirrors [`report_outcome`] for wire-form data.
fn report_wire_outcome(outcome: &sekitei_spec::WireOutcome, served_via: sekitei_server::ServedVia) {
    match &outcome.plan {
        Some(plan) => {
            println!(
                "plan: {} actions, cost ≥ {:.2}{}",
                plan.steps.len(),
                plan.cost_lower_bound,
                if plan.degraded { " [degraded]" } else { "" }
            );
            for step in &plan.steps {
                println!("  {} (cost ≥ {:.2})", step.name, step.cost_lb);
            }
            for (gvar, value) in &plan.source_values {
                println!("  source var #{gvar} = {value}");
            }
            if let Some(gap) = outcome.optimality_gap {
                if gap > 0.0 {
                    println!("optimality gap: ≤ {gap:.2}");
                } else {
                    println!("optimality gap: 0.00 (proved)");
                }
            }
        }
        None => {
            println!("no plan found");
            if let Some(b) = outcome.best_bound {
                println!("(optimal cost ≥ {b:.2})");
            }
            // parity with `plan`: older servers shipped a gap even after
            // dropping a sim-rejected plan — surface it rather than
            // silently discarding the field
            if let Some(gap) = outcome.optimality_gap {
                if gap > 0.0 {
                    println!("optimality gap: ≤ {gap:.2}");
                } else {
                    println!("optimality gap: 0.00 (proved)");
                }
            }
            if outcome.stats.budget_exhausted {
                println!("(search budget exhausted — the instance may still be solvable)");
            }
        }
    }
    let s = &outcome.stats;
    println!(
        "stats: rg nodes {}, rejects {}, search {} µs, total {} µs{}{}{}",
        s.rg_nodes,
        s.candidate_rejects,
        s.search_time_us,
        s.total_time_us,
        if s.deadline_hit { " [deadline hit]" } else { "" },
        if s.budget_exhausted && !s.deadline_hit { " [budget exhausted]" } else { "" },
        match served_via {
            sekitei_server::ServedVia::Computed => "",
            sekitei_server::ServedVia::Cache => " [cache hit]",
            sekitei_server::ServedVia::Coalesced => " [coalesced]",
        },
    );
}

fn cmd_verify_cert(args: &[String]) -> Result<(), String> {
    use sekitei_cert::{check_certificate, decode_certificate};

    let (spec, cert_path) = match args {
        [s, c] => (s, c),
        _ => return Err(format!("verify-cert needs <spec-file> <cert-file>\n{USAGE}")),
    };
    // spec + compiler only — the checker shares no code with the search,
    // so a verify-cert pass is an independent audit of the plan
    let problem = load(spec)?;
    let task = compile(&problem).map_err(|e| e.to_string())?;
    let bytes = std::fs::read(cert_path).map_err(|e| format!("cannot read `{cert_path}`: {e}"))?;
    let cert = decode_certificate(&bytes).map_err(|e| format!("{cert_path}: {e}"))?;
    let report = check_certificate(&task, &cert)
        .map_err(|v| format!("{cert_path}: certificate INVALID: {v}"))?;
    println!(
        "{cert_path}: certificate OK — {} outcome, {} steps, {} ledger entries, cost ≥ {:.2}, gap {}",
        report.outcome,
        report.steps,
        report.ledger_entries,
        cert.bound.plan_cost,
        match cert.bound.claimed_gap {
            Some(g) if report.gap_proved => format!("≤ {g:.2} (proved)"),
            Some(g) => format!("≤ {g:.2} (advisory)"),
            None => "unbounded (feasibility only)".into(),
        }
    );
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let p = load(path)?;
    println!(
        "{path}: OK — {} nodes, {} links, {} interfaces, {} components, {} sources, {} goals",
        p.network.num_nodes(),
        p.network.num_links(),
        p.interfaces.len(),
        p.components.len(),
        p.sources.len(),
        p.goals.len()
    );
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let dump = args.iter().any(|a| a == "--dump");
    let p = load(path)?;
    let task = compile(&p).map_err(|e| e.to_string())?;
    println!(
        "{} ground actions ({} level combinations pruned), {} propositions, {} variables, {:?}",
        task.stats.actions,
        task.stats.pruned,
        task.stats.props,
        task.stats.gvars,
        task.stats.compile_time
    );
    if dump {
        for a in &task.actions {
            println!("  {} (cost ≥ {:.2})", a.name, a.cost);
        }
    }
    Ok(())
}

fn parse_scenario(s: &str) -> Result<LevelScenario, String> {
    match s {
        "A" | "a" => Ok(LevelScenario::A),
        "B" | "b" => Ok(LevelScenario::B),
        "C" | "c" => Ok(LevelScenario::C),
        "D" | "d" => Ok(LevelScenario::D),
        "E" | "e" => Ok(LevelScenario::E),
        other => Err(format!("unknown level scenario `{other}` (use A–E)")),
    }
}

fn cmd_scenario(args: &[String]) -> Result<(), String> {
    let size = match args.first().map(String::as_str) {
        Some("tiny") => NetSize::Tiny,
        Some("small") => NetSize::Small,
        Some("large") => NetSize::Large,
        other => return Err(format!("unknown network size `{other:?}`\n{USAGE}")),
    };
    let sc = parse_scenario(args.get(1).ok_or(USAGE)?)?;
    let problem = scenarios::problem(size, sc);
    if args.iter().any(|a| a == "--emit") {
        print!("{}", sekitei_spec::print_problem(&problem));
        return Ok(());
    }
    let validate = args.iter().any(|a| a == "--validate");
    let outcome = Planner::default().plan(&problem).map_err(|e| e.to_string())?;
    report_outcome(&problem, &outcome, validate, false)
}

fn cmd_tradeoff(args: &[String]) -> Result<(), String> {
    let w: f64 = args
        .first()
        .ok_or(USAGE)?
        .parse()
        .map_err(|_| "tradeoff needs a numeric link-cost weight")?;
    let problem = scenarios::tradeoff(w);
    let outcome = Planner::default().plan(&problem).map_err(|e| e.to_string())?;
    report_outcome(&problem, &outcome, false, false)
}

fn cmd_doctor(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let problem = load(path)?;
    let d = sekitei_planner::diagnose(&problem, &PlannerConfig::default())
        .map_err(|e| e.to_string())?;
    println!("{d}");
    Ok(())
}

fn cmd_suggest(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let mut problem = load(path)?;
    let mut headroom = 1.0 / 9.0;
    let mut apply = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--headroom" => {
                i += 1;
                headroom = args
                    .get(i)
                    .ok_or("--headroom needs a value")?
                    .parse()
                    .map_err(|_| "bad --headroom value")?;
            }
            "--apply" => apply = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let suggestions = sekitei_model::suggest_levels(&problem, headroom);
    if suggestions.is_empty() {
        println!("no demand constraints found — nothing to suggest");
        return Ok(());
    }
    for s in &suggestions {
        let cuts: Vec<String> = s.cutpoints.iter().map(f64::to_string).collect();
        println!("levels {}.{} [{}]", s.iface, s.prop, cuts.join(", "));
    }
    if apply {
        let n = sekitei_model::apply_suggestions(&mut problem, &suggestions);
        println!("\n# applied to {n} interface properties; updated spec follows\n");
        print!("{}", sekitei_spec::print_problem(&problem));
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or(USAGE)?;
    let problem = load(path)?;
    if args.iter().any(|a| a == "--plan") {
        let outcome = Planner::default().plan(&problem).map_err(|e| e.to_string())?;
        match &outcome.plan {
            Some(plan) => print!("{}", sekitei_planner::plan_dot(&problem, plan)),
            None => return Err("no plan found — nothing to draw".into()),
        }
    } else {
        print!("{}", sekitei_planner::network_dot(&problem));
    }
    Ok(())
}

fn cmd_adapt(args: &[String]) -> Result<(), String> {
    use sekitei_model::adapt::{adapt_problem, AdaptConfig};
    use sekitei_model::{ExistingDeployment, ExistingPlacement};

    let path = args.first().ok_or(USAGE)?;
    let problem = load(path)?;
    let mut cfg = AdaptConfig::default();
    let mut existing = ExistingDeployment::default();
    let mut validate = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--existing" => {
                i += 1;
                let spec = args.get(i).ok_or("--existing needs Comp@node")?;
                let (comp, node_name) =
                    spec.split_once('@').ok_or_else(|| format!("bad --existing `{spec}`"))?;
                let node = problem
                    .network
                    .node_by_name(node_name)
                    .ok_or_else(|| format!("unknown node `{node_name}`"))?;
                if problem.comp_id(comp).is_none() {
                    return Err(format!("unknown component `{comp}`"));
                }
                existing.placements.push(ExistingPlacement { component: comp.to_string(), node });
            }
            "--keep-cost" => {
                i += 1;
                cfg.keep_cost = args
                    .get(i)
                    .ok_or("--keep-cost needs a value")?
                    .parse()
                    .map_err(|_| "bad --keep-cost value")?;
            }
            "--migration-factor" => {
                i += 1;
                cfg.migration_factor = args
                    .get(i)
                    .ok_or("--migration-factor needs a value")?
                    .parse()
                    .map_err(|_| "bad --migration-factor value")?;
            }
            "--validate" => validate = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if existing.placements.is_empty() {
        return Err("adapt needs at least one --existing Comp@node".into());
    }
    let adapted = adapt_problem(&problem, &existing, &cfg);
    let outcome = Planner::default().plan(&adapted).map_err(|e| e.to_string())?;
    report_outcome(&adapted, &outcome, validate, false)
}

fn cmd_churn(args: &[String]) -> Result<(), String> {
    use sekitei_churn::{engine, generate, parse_trace, render_trace, ChurnConfig};

    let mut size = NetSize::Tiny;
    let mut level = LevelScenario::C;
    let mut seed = 0u64;
    let mut events = 50usize;
    let mut trace_file: Option<String> = None;
    let mut emit_trace = false;
    let mut emit_cert: Option<String> = None;
    let mut quiet = false;
    let mut cfg = ChurnConfig::default();
    let mut obs = ObsOpts::default();
    let mut i = 0;
    while i < args.len() {
        let need = |v: Option<&String>, flag: &str| {
            v.cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--scenario" => {
                i += 1;
                size = match need(args.get(i), "--scenario")?.as_str() {
                    "tiny" => NetSize::Tiny,
                    "small" => NetSize::Small,
                    "large" => NetSize::Large,
                    other => return Err(format!("unknown network size `{other}`")),
                };
            }
            "--level" => {
                i += 1;
                level = parse_scenario(&need(args.get(i), "--level")?)?;
            }
            "--seed" => {
                i += 1;
                let v = need(args.get(i), "--seed")?;
                seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--events" => {
                i += 1;
                let v = need(args.get(i), "--events")?;
                events = v.parse().map_err(|_| format!("bad --events value `{v}`"))?;
            }
            "--trace" => {
                i += 1;
                trace_file = Some(need(args.get(i), "--trace")?);
            }
            "--emit-trace" => emit_trace = true,
            "--emit-cert" => {
                i += 1;
                emit_cert = Some(need(args.get(i), "--emit-cert")?);
            }
            "--max-nodes" => {
                i += 1;
                let v = need(args.get(i), "--max-nodes")?;
                cfg.planner.max_nodes =
                    v.parse().map_err(|_| format!("bad --max-nodes value `{v}`"))?;
            }
            "--deadline-ms" => {
                // wall-clock budget per repair; forfeits run-to-run
                // reproducibility (the deterministic default bounds search
                // with --max-nodes instead)
                i += 1;
                let v = need(args.get(i), "--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                cfg.planner.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--search-threads" => {
                // parallel repair search: bit-identical plans at any
                // count, so churn determinism is unaffected
                i += 1;
                cfg.planner.search_threads =
                    parse_search_threads(&need(args.get(i), "--search-threads")?)?;
            }
            "--no-degrade" => cfg.planner.degrade = false,
            "--anytime" => cfg.planner.anytime = true,
            "--sls-seed" => {
                i += 1;
                let v = need(args.get(i), "--sls-seed")?;
                cfg.planner.sls_seed =
                    v.parse().map_err(|_| format!("bad --sls-seed value `{v}`"))?;
            }
            "--sls-restarts" => {
                i += 1;
                let v = need(args.get(i), "--sls-restarts")?;
                cfg.planner.sls_restarts =
                    v.parse().map_err(|_| format!("bad --sls-restarts value `{v}`"))?;
            }
            "--keep-cost" => {
                i += 1;
                let v = need(args.get(i), "--keep-cost")?;
                cfg.adapt.keep_cost = v.parse().map_err(|_| "bad --keep-cost value")?;
            }
            "--migration-factor" => {
                i += 1;
                let v = need(args.get(i), "--migration-factor")?;
                cfg.adapt.migration_factor =
                    v.parse().map_err(|_| "bad --migration-factor value")?;
            }
            "--quiet" => quiet = true,
            "--trace-json" => {
                i += 1;
                obs.trace_json = Some(need(args.get(i), "--trace-json")?);
            }
            "--profile" => obs.profile = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let problem = scenarios::problem(size, level);
    let trace = match &trace_file {
        Some(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_trace(&src, &problem.network).map_err(|e| e.to_string())?
        }
        None => {
            let profile = scenarios::churn_profile(size, &problem);
            generate(&problem.network, &profile, seed, events)
        }
    };
    if emit_trace {
        print!("{}", render_trace(&trace, &problem.network));
        return Ok(());
    }

    obs.begin();
    let ran = engine::run(&problem, &trace, &cfg).map_err(|e| e.to_string());
    // trace/profile go to a file and stderr — the deterministic stdout
    // report below is untouched by observability
    let emitted = obs.finish("churn_run");
    let report = ran?;
    emitted?;
    if !quiet {
        for r in &report.records {
            println!("{}", r.render(&problem));
        }
    }
    print!("{}", report.summary.render());
    // wall-clock: real but not reproducible, so stderr only
    eprint!("{}", report.summary.render_timing());
    if let Some(path) = &emit_cert {
        // the initial deployment's certificate; repairs carry their own
        // (re-bound) certificates in the per-event records
        write_cert(path, report.initial_certificate.as_ref())?;
    }
    Ok(())
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    let (src, dst) = match args {
        [s, d, ..] => (s, d),
        _ => return Err(USAGE.into()),
    };
    let p = load(src)?;
    let bytes = sekitei_spec::encode(&p);
    std::fs::write(dst, &bytes).map_err(|e| format!("cannot write `{dst}`: {e}"))?;
    println!("wrote {} bytes to {dst}", bytes.len());
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let src = args.first().ok_or(USAGE)?;
    let bytes = std::fs::read(src).map_err(|e| format!("cannot read `{src}`: {e}"))?;
    let p = sekitei_spec::decode(&bytes).map_err(|e| e.to_string())?;
    print!("{}", sekitei_spec::print_problem(&p));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// Tracing state is process-global: tests that enable it must not
    /// overlap, or one test's drain steals another's records.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn help_and_unknown() {
        assert!(dispatch(&s(&["help"])).is_ok());
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn scenario_tiny_plans() {
        dispatch(&s(&["scenario", "tiny", "C", "--validate"])).unwrap();
        dispatch(&s(&["scenario", "tiny", "A"])).unwrap();
        assert!(dispatch(&s(&["scenario", "tiny", "Q"])).is_err());
        assert!(dispatch(&s(&["scenario", "galactic", "C"])).is_err());
    }

    #[test]
    fn scenario_emit_reparses() {
        // --emit goes to stdout; at least ensure it doesn't error
        dispatch(&s(&["scenario", "tiny", "D", "--emit"])).unwrap();
    }

    #[test]
    fn tradeoff_runs() {
        dispatch(&s(&["tradeoff", "0.5"])).unwrap();
        assert!(dispatch(&s(&["tradeoff", "cheap"])).is_err());
    }

    #[test]
    fn plan_file_roundtrip() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_test.spec");
        let bin_path = dir.join("sekitei_cli_test.bin");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["check"]), vec![sp.clone()]].concat()).unwrap();
        dispatch(&[s(&["plan"]), vec![sp.clone()], s(&["--validate", "--quiet"])].concat())
            .unwrap();
        dispatch(&[s(&["compile"]), vec![sp.clone()]].concat()).unwrap();
        let bp = bin_path.to_str().unwrap().to_string();
        dispatch(&[s(&["encode"]), vec![sp, bp.clone()]].concat()).unwrap();
        dispatch(&[s(&["decode"]), vec![bp]].concat()).unwrap();
    }

    #[test]
    fn no_prune_escape_hatch() {
        // `--no-prune` must parse on both plan and batch and still solve
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_noprune.spec");
        let p = scenarios::tiny(LevelScenario::B);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(
            &[s(&["plan"]), vec![sp.clone()], s(&["--no-prune", "--validate", "--quiet"])].concat(),
        )
        .unwrap();
        dispatch(&[s(&["batch"]), vec![sp], s(&["--no-prune", "--quiet"])].concat()).unwrap();
        // and the flag actually flips the config off
        let (cfg, _, _) = parse_config(&s(&["--no-prune"])).unwrap();
        assert!(!cfg.dominance && !cfg.symmetry && !cfg.reopen);
        let (cfg, _, _) = parse_config(&[]).unwrap();
        assert!(cfg.dominance && cfg.symmetry && cfg.reopen, "pruning defaults on");
    }

    #[test]
    fn suggest_command() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_suggest.spec");
        let p = scenarios::tiny(LevelScenario::A);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["suggest"]), vec![sp.clone()]].concat()).unwrap();
        dispatch(
            &[s(&["suggest"]), vec![sp.clone()], s(&["--headroom", "0.2", "--apply"])].concat(),
        )
        .unwrap();
        assert!(dispatch(&[s(&["suggest"]), vec![sp], s(&["--headroom", "x"])].concat()).is_err());
    }

    #[test]
    fn dot_command() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_dot.spec");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["dot"]), vec![sp.clone()]].concat()).unwrap();
        dispatch(&[s(&["dot"]), vec![sp], s(&["--plan"])].concat()).unwrap();
        // unsolvable plan dot errors cleanly
        let mut q = scenarios::tiny(LevelScenario::A);
        q.sources.clear();
        let qp = dir.join("sekitei_cli_dot_bad.spec");
        std::fs::write(&qp, sekitei_spec::print_problem(&q)).unwrap();
        assert!(dispatch(
            &[s(&["dot"]), vec![qp.to_str().unwrap().into()], s(&["--plan"])].concat()
        )
        .is_err());
    }

    #[test]
    fn doctor_command() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_doctor.spec");
        // unsolvable: strip the source
        let mut p = scenarios::tiny(LevelScenario::C);
        p.sources.clear();
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["doctor"]), vec![sp]].concat()).unwrap();
        assert!(dispatch(&s(&["doctor", "/nonexistent.spec"])).is_err());
    }

    #[test]
    fn adapt_command() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_adapt.spec");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["adapt"]),
                vec![sp.clone()],
                s(&["--existing", "Splitter@n0", "--existing", "Client@n1", "--validate"]),
            ]
            .concat(),
        )
        .unwrap();
        // error paths
        assert!(dispatch(&[s(&["adapt"]), vec![sp.clone()]].concat()).is_err());
        assert!(dispatch(
            &[s(&["adapt"]), vec![sp.clone()], s(&["--existing", "Ghost@n0"])].concat()
        )
        .is_err());
        assert!(dispatch(&[s(&["adapt"]), vec![sp], s(&["--existing", "Splitter@mars"])].concat())
            .is_err());
    }

    #[test]
    fn churn_command() {
        dispatch(&s(&["churn", "--scenario", "tiny", "--seed", "7", "--events", "10", "--quiet"]))
            .unwrap();
        dispatch(&s(&["churn", "--seed", "3", "--events", "5", "--emit-trace"])).unwrap();
        // replay a hand-written trace file
        let dir = std::env::temp_dir();
        let trace_path = dir.join("sekitei_cli_churn.trace");
        std::fs::write(&trace_path, "@10 link n0 n1 lbw 60\n@20 link n0 n1 lbw 70\n").unwrap();
        dispatch(
            &[
                s(&["churn", "--scenario", "tiny", "--trace"]),
                vec![trace_path.to_str().unwrap().into()],
                s(&["--max-nodes", "100000", "--keep-cost", "0.4"]),
            ]
            .concat(),
        )
        .unwrap();
        // error paths
        assert!(dispatch(&s(&["churn", "--scenario", "galactic"])).is_err());
        assert!(dispatch(&s(&["churn", "--seed", "many"])).is_err());
        assert!(dispatch(&s(&["churn", "--trace", "/nonexistent.trace"])).is_err());
        assert!(dispatch(&s(&["churn", "--frob"])).is_err());
    }

    #[test]
    fn batch_command() {
        let dir = std::env::temp_dir();
        let mut sps = Vec::new();
        for (i, sc) in [LevelScenario::B, LevelScenario::C, LevelScenario::A].iter().enumerate() {
            let spec_path = dir.join(format!("sekitei_cli_batch_{i}.spec"));
            let p = scenarios::tiny(*sc);
            std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
            sps.push(spec_path.to_str().unwrap().to_string());
        }
        // A finds no plan but that is a reported outcome, not a failure
        dispatch(&[s(&["batch"]), sps.clone(), s(&["--quiet"])].concat()).unwrap();
        dispatch(&[s(&["batch"]), sps.clone(), s(&["--threads", "2", "--quiet"])].concat())
            .unwrap();
        assert!(dispatch(&s(&["batch"])).is_err());
        assert!(dispatch(&[s(&["batch"]), sps.clone(), s(&["--threads"])].concat()).is_err());
        assert!(dispatch(&[s(&["batch"]), sps, s(&["--frob"])].concat()).is_err());
        assert!(dispatch(&s(&["batch", "/nonexistent/x.spec"])).is_err());
    }

    #[test]
    fn serve_and_request_roundtrip() {
        use sekitei_server::{Server, ServerConfig};
        let server =
            Server::bind("127.0.0.1:0", ServerConfig { workers: 2, ..Default::default() }).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let join = std::thread::spawn(move || server.run());

        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_request.spec");
        let p = scenarios::tiny(LevelScenario::B);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["request"]), vec![sp.clone()], s(&["--addr", &addr])].concat()).unwrap();
        // warm repeat goes through the cache-hit path
        dispatch(&[s(&["request"]), vec![sp], s(&["--addr", &addr])].concat()).unwrap();
        dispatch(&[s(&["request", "--stats", "--addr"]), vec![addr.clone()]].concat()).unwrap();
        // request wants exactly one mode
        assert!(dispatch(
            &[s(&["request", "--stats", "--shutdown", "--addr"]), vec![addr.clone()]].concat()
        )
        .is_err());
        assert!(dispatch(&s(&["request"])).is_err());
        assert!(dispatch(&s(&["request", "--frob"])).is_err());
        dispatch(&[s(&["request", "--shutdown", "--addr"]), vec![addr]].concat()).unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn serve_flag_errors() {
        assert!(dispatch(&s(&["serve", "--workers", "many"])).is_err());
        assert!(dispatch(&s(&["serve", "--queue-cap", "-1"])).is_err());
        assert!(dispatch(&s(&["serve", "--addr"])).is_err());
        assert!(dispatch(&s(&["serve", "--frob"])).is_err());
    }

    #[test]
    fn plan_deadline_flags() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_deadline.spec");
        let p = scenarios::tiny(LevelScenario::B);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["plan"]),
                vec![sp.clone()],
                s(&["--deadline-ms", "60000", "--degrade", "--quiet"]),
            ]
            .concat(),
        )
        .unwrap();
        assert!(
            dispatch(&[s(&["plan"]), vec![sp], s(&["--deadline-ms", "soon"])].concat()).is_err()
        );
    }

    #[test]
    fn plan_scenario_flag() {
        dispatch(&s(&["plan", "--scenario", "tiny-c", "--quiet"])).unwrap();
        dispatch(&s(&["plan", "--scenario", "TINY-C", "--quiet"])).unwrap();
        assert!(dispatch(&s(&["plan", "--scenario", "galactic-c"])).is_err());
        assert!(dispatch(&s(&["plan", "--scenario", "tiny-q"])).is_err());
        assert!(dispatch(&s(&["plan", "--scenario", "tinyc"])).is_err());
        assert!(dispatch(&s(&["plan", "--scenario"])).is_err());
        // a spec file and --scenario are mutually exclusive
        assert!(dispatch(&s(&["plan", "x.spec", "--scenario", "tiny-c"])).is_err());
        // two positional arguments are rejected
        assert!(dispatch(&s(&["plan", "x.spec", "y.spec"])).is_err());
    }

    #[test]
    fn plan_profile_and_trace_json() {
        let _g = OBS_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("sekitei_cli_plan_trace.jsonl");
        let tp = path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["plan", "--scenario", "small-b", "--quiet", "--profile", "--trace-json"]),
                vec![tp],
            ]
            .concat(),
        )
        .unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        for line in trace.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad JSON line: {line}");
        }
        for needle in [
            "\"name\":\"plan\"",
            "\"name\":\"compile\"",
            "\"name\":\"plrg\"",
            "\"name\":\"slrg\"",
            "\"name\":\"rg\"",
            "\"type\":\"meta\"",
        ] {
            assert!(trace.contains(needle), "trace missing {needle}");
        }
        // at least one span nests under a parent span
        assert!(trace
            .lines()
            .any(|l| l.contains("\"type\":\"span\"") && !l.contains("\"parent\":0,")));
        assert!(dispatch(&s(&["plan", "--scenario", "tiny-c", "--trace-json"])).is_err());
    }

    #[test]
    fn batch_profile_and_trace_json() {
        let _g = OBS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_batch_obs.spec");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        let trace_path = dir.join("sekitei_cli_batch_trace.jsonl");
        let tp = trace_path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["batch"]),
                vec![sp.clone(), sp],
                s(&["--quiet", "--profile", "--trace-json"]),
                vec![tp],
            ]
            .concat(),
        )
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        // two instances → two top-level plan spans
        assert!(trace.matches("\"name\":\"plan\"").count() >= 2);
    }

    #[test]
    fn churn_trace_json() {
        let _g = OBS_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("sekitei_cli_churn_trace.jsonl");
        let tp = path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&[
                    "churn",
                    "--scenario",
                    "tiny",
                    "--seed",
                    "7",
                    "--events",
                    "10",
                    "--quiet",
                    "--profile",
                    "--trace-json",
                ]),
                vec![tp],
            ]
            .concat(),
        )
        .unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"name\":\"churn_run\""));
        assert!(trace.contains("\"name\":\"churn_event\""));
        assert!(trace.contains("\"type\":\"meta\""));
    }

    #[test]
    fn plan_flags() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_flags.spec");
        let p = scenarios::tiny(LevelScenario::B);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["plan"]),
                vec![sp.clone()],
                s(&["--plrg-heuristic", "--max-nodes", "100000", "--quiet"]),
            ]
            .concat(),
        )
        .unwrap();
        assert!(dispatch(&[s(&["plan"]), vec![sp], s(&["--bogus"])].concat()).is_err());
        assert!(dispatch(&s(&["plan", "/nonexistent/x.spec"])).is_err());
    }

    #[test]
    fn verify_cert_roundtrip() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_cert.spec");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        let cert_path = dir.join("sekitei_cli_cert.skc1");
        let cp = cert_path.to_str().unwrap().to_string();

        dispatch(
            &[s(&["plan"]), vec![sp.clone()], s(&["--quiet", "--emit-cert"]), vec![cp.clone()]]
                .concat(),
        )
        .unwrap();
        dispatch(&[s(&["verify-cert"]), vec![sp.clone(), cp.clone()]].concat()).unwrap();

        // a single flipped byte must be caught with a nonzero exit
        let mut bytes = std::fs::read(&cert_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let bad_path = dir.join("sekitei_cli_cert_bad.skc1");
        std::fs::write(&bad_path, &bytes).unwrap();
        let bp = bad_path.to_str().unwrap().to_string();
        assert!(dispatch(&[s(&["verify-cert"]), vec![sp.clone(), bp]].concat()).is_err());

        // a certificate for a different problem fails the fingerprint
        let other_path = dir.join("sekitei_cli_cert_other.spec");
        std::fs::write(
            &other_path,
            sekitei_spec::print_problem(&scenarios::tiny(LevelScenario::D)),
        )
        .unwrap();
        let op = other_path.to_str().unwrap().to_string();
        assert!(dispatch(&[s(&["verify-cert"]), vec![op, cp.clone()]].concat()).is_err());

        // argument errors
        assert!(dispatch(&s(&["verify-cert"])).is_err());
        assert!(dispatch(&[s(&["verify-cert"]), vec![sp.clone()]].concat()).is_err());
        assert!(dispatch(&[s(&["verify-cert"]), vec![sp, "/nonexistent.skc1".into()]].concat())
            .is_err());
    }

    #[test]
    fn emit_cert_on_batch_and_churn() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_cert_batch.spec");
        let p = scenarios::tiny(LevelScenario::C);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();

        // batch writes one certificate per instance, suffixed by position
        let base = dir.join("sekitei_cli_cert_batch.skc1");
        let bp = base.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["batch"]),
                vec![sp.clone(), sp.clone()],
                s(&["--quiet", "--emit-cert"]),
                vec![bp.clone()],
            ]
            .concat(),
        )
        .unwrap();
        for i in 0..2 {
            let each = format!("{bp}.{i}");
            dispatch(&[s(&["verify-cert"]), vec![sp.clone(), each]].concat()).unwrap();
        }

        // churn emits the initial deployment's certificate (defaults run
        // the tiny/C scenario, which `sp` holds the spec of)
        let churn_cert = dir.join("sekitei_cli_cert_churn.skc1");
        let chp = churn_cert.to_str().unwrap().to_string();
        dispatch(
            &[
                s(&["churn", "--scenario", "tiny", "--seed", "7", "--events", "5", "--quiet"]),
                s(&["--emit-cert"]),
                vec![chp.clone()],
            ]
            .concat(),
        )
        .unwrap();
        dispatch(&[s(&["verify-cert"]), vec![sp, chp]].concat()).unwrap();

        // an unsolvable instance has no certificate to emit
        let bad_spec = dir.join("sekitei_cli_cert_unsolvable.spec");
        let mut q = scenarios::tiny(LevelScenario::A);
        q.sources.clear();
        std::fs::write(&bad_spec, sekitei_spec::print_problem(&q)).unwrap();
        let qp = bad_spec.to_str().unwrap().to_string();
        let none = dir.join("sekitei_cli_cert_none.skc1");
        assert!(dispatch(
            &[
                s(&["plan"]),
                vec![qp],
                s(&["--quiet", "--emit-cert"]),
                vec![none.to_str().unwrap().into()]
            ]
            .concat()
        )
        .is_err());
    }

    #[test]
    fn search_threads_flag() {
        // the parallel search through every front-end that exposes it
        dispatch(&s(&["plan", "--scenario", "tiny-c", "--search-threads", "4", "--quiet"]))
            .unwrap();
        dispatch(&s(&["plan", "--scenario", "tiny-c", "--search-threads", "1", "--quiet"]))
            .unwrap();
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sekitei_cli_search_threads.spec");
        let p = scenarios::tiny(LevelScenario::B);
        std::fs::write(&spec_path, sekitei_spec::print_problem(&p)).unwrap();
        let sp = spec_path.to_str().unwrap().to_string();
        dispatch(&[s(&["batch"]), vec![sp], s(&["--search-threads", "2", "--quiet"])].concat())
            .unwrap();
        dispatch(&s(&[
            "churn",
            "--scenario",
            "tiny",
            "--seed",
            "7",
            "--events",
            "5",
            "--search-threads",
            "2",
            "--quiet",
        ]))
        .unwrap();
        // error paths: zero, junk and missing values
        assert!(dispatch(&s(&["plan", "--scenario", "tiny-c", "--search-threads", "0"])).is_err());
        assert!(dispatch(&s(&["plan", "--scenario", "tiny-c", "--search-threads", "x"])).is_err());
        assert!(dispatch(&s(&["plan", "--scenario", "tiny-c", "--search-threads"])).is_err());
        assert!(dispatch(&s(&["serve", "--search-threads", "0"])).is_err());
        assert!(dispatch(&s(&["serve", "--max-nodes", "many"])).is_err());
        assert!(dispatch(&s(&["churn", "--search-threads", "zero"])).is_err());
    }
}
