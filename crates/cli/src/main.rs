//! `sekitei` — command-line interface to the deployment planner.
//!
//! ```text
//! sekitei plan <spec-file> [--plrg-heuristic] [--no-replay-pruning]
//!              [--max-nodes N] [--deadline-ms N] [--degrade]
//!              [--validate] [--quiet]
//! sekitei serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!              [--cache-cap N] [--deadline-ms N] [--no-degrade]
//! sekitei request (<spec-file> | --stats | --metrics | --flight | --shutdown)
//!              [--addr HOST:PORT] [--profile]
//! sekitei loadgen [--addr HOST:PORT] [--requests N] [--connections N]
//!              [--seed N] [--rate R] [--verify-every N] [--bench-json FILE]
//! sekitei verify-cert <spec-file> <cert-file>
//! sekitei check <spec-file>
//! sekitei compile <spec-file> [--dump]
//! sekitei scenario <tiny|small|large> <A|B|C|D|E> [--emit] [--validate]
//! sekitei tradeoff <link-cost-weight>
//! sekitei encode <spec-file> <out.bin>
//! sekitei decode <in.bin>
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
