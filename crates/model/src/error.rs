//! Model-level error type.

use std::fmt;

/// Errors raised while building or validating a CPP specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A level cutpoint was non-positive, infinite or NaN.
    InvalidCutpoint(f64),
    /// A component references an interface name that is not declared.
    UnknownInterface(String),
    /// A spec references a component name that is not declared.
    UnknownComponent(String),
    /// A spec references a node name that is not in the network.
    UnknownNode(String),
    /// A spec references a resource name that is not in the catalog.
    UnknownResource(String),
    /// Two declarations share a name.
    DuplicateName(String),
    /// A link endpoint is out of range.
    BadLink(String),
    /// A formula references a variable that is not in scope for its
    /// component/interface (e.g. a property of an interface the component
    /// neither requires nor implements).
    VarOutOfScope(String),
    /// Free-form structural validation failure.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCutpoint(c) => {
                write!(f, "level cutpoint must be finite and > 0, got {c}")
            }
            ModelError::UnknownInterface(n) => write!(f, "unknown interface `{n}`"),
            ModelError::UnknownComponent(n) => write!(f, "unknown component `{n}`"),
            ModelError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            ModelError::UnknownResource(n) => write!(f, "unknown resource `{n}`"),
            ModelError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ModelError::BadLink(s) => write!(f, "bad link: {s}"),
            ModelError::VarOutOfScope(v) => write!(f, "variable `{v}` out of scope"),
            ModelError::Invalid(s) => write!(f, "invalid model: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ModelError::InvalidCutpoint(-1.0).to_string().contains("-1"));
        assert!(ModelError::UnknownInterface("Q".into()).to_string().contains("`Q`"));
        let e: Box<dyn std::error::Error> = Box::new(ModelError::Invalid("x".into()));
        assert!(e.to_string().contains("x"));
    }
}
