//! Strongly-typed index newtypes used across the workspace.
//!
//! All identifiers are small dense indices into the owning container
//! (`Network::nodes`, `CppProblem::components`, ...). Using `u32`/`u16`
//! keeps hot planner structs compact (see the type-size guidance in the
//! perf notes); conversion to `usize` happens only at indexing sites.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Index into the owning container.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Build from a container index. Panics on overflow of the
            /// compact representation (indicates a malformed problem far
            /// beyond any realistic CPP size).
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= <$repr>::MAX as usize, "id overflow");
                $name(i as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.index()
            }
        }
    };
}

id_type!(
    /// A node of the network.
    NodeId, u32, "n"
);
id_type!(
    /// An undirected link of the network.
    LinkId, u32, "l"
);
id_type!(
    /// A component type (e.g. `Splitter`).
    CompId, u16, "c"
);
id_type!(
    /// An interface (stream) type (e.g. `M`).
    IfaceId, u16, "i"
);
id_type!(
    /// A resource definition in the problem catalog (e.g. node `cpu`).
    ResId, u16, "r"
);
id_type!(
    /// A ground proposition in a compiled planning task.
    PropId, u32, "p"
);
id_type!(
    /// A ground (leveled) action in a compiled planning task.
    ActionId, u32, "a"
);
id_type!(
    /// A ground numeric variable (e.g. `ibw(M, n3)` or `cpu(n0)`).
    GVarId, u32, "v"
);

/// A resource-level index: position of an interval in a [`crate::levels::LevelSpec`].
pub type LevelIdx = u8;

/// A directed traversal of an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DirLink {
    /// The underlying undirected link.
    pub link: LinkId,
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

impl fmt::Display for DirLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let n = NodeId::from_index(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.to_string(), "n17");
        let c = CompId::from_index(3);
        assert_eq!(usize::from(c), 3);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(PropId(2) < PropId(10));
        assert!(ActionId(0) < ActionId(1));
    }

    #[test]
    fn dir_link_display() {
        let d = DirLink { link: LinkId(0), from: NodeId(1), to: NodeId(2) };
        assert_eq!(d.to_string(), "n1->n2");
    }
}
