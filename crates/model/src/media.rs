//! The canonical media-stream-delivery domain (paper Figure 1).
//!
//! Components: a pre-placed *Server* offering a combined media stream `M`
//! (images + text), a *Client* requiring `M` at a minimum bandwidth, and the
//! auxiliary transformers *Splitter* (`M → T + I`), *Zip* (`T → Z`), *Unzip*
//! (`Z → T`) and *Merger* (`T + I → M`, the paper's Figure 2 spec).
//!
//! Constants are derived from the paper's numbers (see DESIGN.md):
//! `T = 0.7·M`, `I = 0.3·M` (satisfying Figure 2's `T·3 == I·7`),
//! `Z = T/2`, `cpu(Splitter/Merger) = M/5`, `cpu(Zip/Unzip) = T/10`; costs
//! follow §3.1's example form `1 + processed_bw/10`.

use crate::component::{ComponentSpec, InterfaceSpec, SEffect, SpecVar};
use crate::expr::{AssignOp, CmpOp, Cond, Effect, Expr};
use crate::levels::LevelSpec;
use crate::resource::{names, ResourceDef};
use serde::{Deserialize, Serialize};

/// The five level configurations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LevelScenario {
    /// No levels — the original greedy Sekitei.
    A,
    /// `M: [0,100),[100,∞)`.
    B,
    /// `M: [0,90),[90,100),[100,∞)`.
    C,
    /// `M: [0,30),[30,70),[70,90),[90,100),[100,∞)`.
    D,
    /// Scenario D plus link bandwidth levels `[0,31),[31,62),[62,∞)`.
    E,
}

impl LevelScenario {
    /// All scenarios in Table 1 order.
    pub const ALL: [LevelScenario; 5] =
        [LevelScenario::A, LevelScenario::B, LevelScenario::C, LevelScenario::D, LevelScenario::E];

    /// Cutpoints of the M-stream bandwidth levels.
    pub fn m_cutpoints(self) -> Vec<f64> {
        match self {
            LevelScenario::A => vec![],
            LevelScenario::B => vec![100.0],
            LevelScenario::C => vec![90.0, 100.0],
            LevelScenario::D | LevelScenario::E => vec![30.0, 70.0, 90.0, 100.0],
        }
    }

    /// Cutpoints of the link-bandwidth levels.
    pub fn link_cutpoints(self) -> Vec<f64> {
        match self {
            LevelScenario::E => vec![31.0, 62.0],
            _ => vec![],
        }
    }

    /// Scenario label as in the paper.
    pub fn label(self) -> &'static str {
        match self {
            LevelScenario::A => "A",
            LevelScenario::B => "B",
            LevelScenario::C => "C",
            LevelScenario::D => "D",
            LevelScenario::E => "E",
        }
    }
}

/// Tunable constants of the media domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaConfig {
    /// Client's minimum required `M.ibw` (paper: 90).
    pub client_demand: f64,
    /// Fraction of `M` that is text (`T = split_t · M`; paper-derived 0.7).
    pub split_t: f64,
    /// Compression ratio (`Z = zip_ratio · T`; paper-derived 0.5).
    pub zip_ratio: f64,
    /// Splitter/Merger CPU divisor (`cpu = M / cpu_heavy_div`; paper: 5).
    pub cpu_heavy_div: f64,
    /// Zip/Unzip CPU divisor in T terms (`cpu = T / cpu_light_div`; 10).
    pub cpu_light_div: f64,
    /// Cost divisor: cost = 1 + processed/cost_div (paper §3.1: 10).
    pub cost_div: f64,
    /// Weight of the constant (per-action) part of every cost formula.
    pub action_cost_weight: f64,
    /// Weight of the bandwidth-proportional part of cross costs, relative
    /// to place costs. Used by the Figure 5 tradeoff experiment, where the
    /// relative price of link bandwidth vs node resources decides the plan.
    pub link_cost_weight: f64,
}

impl Default for MediaConfig {
    fn default() -> Self {
        MediaConfig {
            client_demand: 90.0,
            split_t: 0.7,
            zip_ratio: 0.5,
            cpu_heavy_div: 5.0,
            cpu_light_div: 10.0,
            cost_div: 10.0,
            action_cost_weight: 1.0,
            link_cost_weight: 1.0,
        }
    }
}

/// The domain part of a CPP instance (everything but network/state/goals).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MediaDomain {
    /// Resource catalog (cpu, lbw) with scenario-dependent link levels.
    pub resources: Vec<ResourceDef>,
    /// Interfaces M, T, I, Z with scenario-dependent bandwidth levels.
    pub interfaces: Vec<InterfaceSpec>,
    /// Components Client, Splitter, Zip, Unzip, Merger.
    pub components: Vec<ComponentSpec>,
    /// The config the domain was built with.
    pub config: MediaConfig,
}

fn ibw(iface: &str) -> Expr<SpecVar> {
    Expr::var(SpecVar::iface(iface, "ibw"))
}

fn cpu() -> Expr<SpecVar> {
    Expr::var(SpecVar::node(names::CPU))
}

fn consume_cpu(amount: Expr<SpecVar>) -> SEffect {
    Effect::new(SpecVar::node(names::CPU), AssignOp::Sub, amount)
}

/// Build the media domain with default constants.
pub fn media_domain(scenario: LevelScenario) -> MediaDomain {
    media_domain_with(MediaConfig::default(), scenario)
}

/// Build the media domain with explicit constants.
pub fn media_domain_with(cfg: MediaConfig, scenario: LevelScenario) -> MediaDomain {
    let m_levels = LevelSpec::new(scenario.m_cutpoints()).expect("static cutpoints");
    let link_levels = LevelSpec::new(scenario.link_cutpoints()).expect("static cutpoints");
    let split_i = 1.0 - cfg.split_t;

    let resources =
        vec![ResourceDef::node(names::CPU), ResourceDef::link(names::LBW).with_levels(link_levels)];

    // Interface bandwidth levels proportional to M's (Table 1 note).
    let stream = |name: &str, factor: f64| {
        let cost = Expr::c(cfg.action_cost_weight)
            + ibw(name) * Expr::c(cfg.link_cost_weight / cfg.cost_div);
        let s = InterfaceSpec::bandwidth_stream(name, "ibw", names::LBW).with_cross_cost(cost);
        if m_levels.is_trivial() {
            s // leave trivial levels implicit (keeps printed specs clean)
        } else {
            s.with_levels("ibw", m_levels.scaled(factor))
        }
    };
    let interfaces = vec![
        stream("M", 1.0),
        stream("T", cfg.split_t),
        stream("I", split_i),
        stream("Z", cfg.split_t * cfg.zip_ratio),
    ];

    let place_cost = |processed: Expr<SpecVar>| {
        Expr::c(cfg.action_cost_weight) + processed / Expr::c(cfg.cost_div)
    };

    let client = ComponentSpec::new("Client")
        .requires("M")
        .condition(Cond::new(ibw("M"), CmpOp::Ge, Expr::c(cfg.client_demand)))
        .with_cost(place_cost(ibw("M")));

    let splitter = ComponentSpec::new("Splitter")
        .requires("M")
        .implements("T")
        .implements("I")
        .condition(Cond::new(cpu(), CmpOp::Ge, ibw("M") / Expr::c(cfg.cpu_heavy_div)))
        .effect(Effect::new(
            SpecVar::iface("T", "ibw"),
            AssignOp::Set,
            ibw("M") * Expr::c(cfg.split_t),
        ))
        .effect(Effect::new(SpecVar::iface("I", "ibw"), AssignOp::Set, ibw("M") * Expr::c(split_i)))
        .effect(consume_cpu(ibw("M") / Expr::c(cfg.cpu_heavy_div)))
        .with_cost(place_cost(ibw("M")));

    let zip = ComponentSpec::new("Zip")
        .requires("T")
        .implements("Z")
        .condition(Cond::new(cpu(), CmpOp::Ge, ibw("T") / Expr::c(cfg.cpu_light_div)))
        .effect(Effect::new(
            SpecVar::iface("Z", "ibw"),
            AssignOp::Set,
            ibw("T") * Expr::c(cfg.zip_ratio),
        ))
        .effect(consume_cpu(ibw("T") / Expr::c(cfg.cpu_light_div)))
        .with_cost(place_cost(ibw("T")));

    let unzip = ComponentSpec::new("Unzip")
        .requires("Z")
        .implements("T")
        .condition(Cond::new(
            cpu(),
            CmpOp::Ge,
            ibw("Z") / Expr::c(cfg.cpu_light_div * cfg.zip_ratio),
        ))
        .effect(Effect::new(
            SpecVar::iface("T", "ibw"),
            AssignOp::Set,
            ibw("Z") / Expr::c(cfg.zip_ratio),
        ))
        .effect(consume_cpu(ibw("Z") / Expr::c(cfg.cpu_light_div * cfg.zip_ratio)))
        .with_cost(place_cost(ibw("Z")));

    // Figure 2, verbatim (with the ratio condition generalized to the
    // configured split: T·(1-t) == I·t reduces to T·3 == I·7 at t = 0.7).
    let merger = ComponentSpec::new("Merger")
        .requires("T")
        .requires("I")
        .implements("M")
        .condition(Cond::new(cpu(), CmpOp::Ge, (ibw("T") + ibw("I")) / Expr::c(cfg.cpu_heavy_div)))
        .condition(Cond::new(
            ibw("T") * Expr::c((split_i * 10.0).round()),
            CmpOp::Eq,
            ibw("I") * Expr::c((cfg.split_t * 10.0).round()),
        ))
        .effect(Effect::new(SpecVar::iface("M", "ibw"), AssignOp::Set, ibw("T") + ibw("I")))
        .effect(consume_cpu((ibw("T") + ibw("I")) / Expr::c(cfg.cpu_heavy_div)))
        .with_cost(place_cost(ibw("T") + ibw("I")));

    MediaDomain {
        resources,
        interfaces,
        components: vec![client, splitter, zip, unzip, merger],
        config: cfg,
    }
}

/// Latency model parameters for [`add_latency`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Processing delay added by every transforming component.
    pub proc_delay: f64,
    /// End-to-end deadline imposed on the named client components.
    pub deadline: f64,
}

/// Name of the static per-link delay resource used by [`add_latency`].
pub const DELAY: &str = "delay";

/// Extend a domain with end-to-end latency tracking and a deadline QoS
/// constraint (paper §3.2.3: partial plans whose accumulated latency
/// exceeds the limit are discarded during the RG's replay).
///
/// Every interface gains a `lat` property that accumulates the static
/// per-link `delay` resource on each crossing; every transforming
/// component stamps `out.lat := max(inputs.lat) + proc_delay`; every
/// component named in `clients` gets the condition
/// `input.lat <= deadline`. Network links must carry a `delay` capacity.
pub fn add_latency(domain: &mut MediaDomain, cfg: LatencyConfig, clients: &[&str]) {
    use crate::resource::{Elasticity, ResourceDef};
    if !domain.resources.iter().any(|r| r.name == DELAY) {
        let mut def = ResourceDef::link(DELAY);
        def.consumable = false;
        def.elasticity = Elasticity::Rigid;
        domain.resources.push(def);
    }
    for iface in &mut domain.interfaces {
        if !iface.properties.iter().any(|p| p == "lat") {
            iface.properties.push("lat".to_string());
        }
        let lat = SpecVar::iface(iface.name.clone(), "lat");
        iface.cross_effects.push(Effect::new(
            lat.clone(),
            AssignOp::Set,
            Expr::var(lat) + Expr::var(SpecVar::link(DELAY)),
        ));
    }
    for comp in &mut domain.components {
        if comp.implements.is_empty() {
            // sink component: impose the deadline if requested
            if clients.contains(&comp.name.as_str()) {
                for input in comp.requires.clone() {
                    comp.conditions.push(Cond::new(
                        Expr::var(SpecVar::iface(input, "lat")),
                        CmpOp::Le,
                        Expr::c(cfg.deadline),
                    ));
                }
            }
            continue;
        }
        // out.lat := max over input latencies + processing delay
        let mut inputs = comp.requires.iter();
        let first = inputs.next().expect("transforming component has inputs");
        let mut acc = Expr::var(SpecVar::iface(first.clone(), "lat"));
        for i in inputs {
            acc = acc.max_e(Expr::var(SpecVar::iface(i.clone(), "lat")));
        }
        let stamped = acc + Expr::c(cfg.proc_delay);
        for out in comp.implements.clone() {
            comp.effects.push(Effect::new(
                SpecVar::iface(out, "lat"),
                AssignOp::Set,
                stamped.clone(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_cutpoints_match_table1() {
        assert!(LevelScenario::A.m_cutpoints().is_empty());
        assert_eq!(LevelScenario::B.m_cutpoints(), vec![100.0]);
        assert_eq!(LevelScenario::C.m_cutpoints(), vec![90.0, 100.0]);
        assert_eq!(LevelScenario::D.m_cutpoints(), vec![30.0, 70.0, 90.0, 100.0]);
        assert_eq!(LevelScenario::E.m_cutpoints(), vec![30.0, 70.0, 90.0, 100.0]);
        assert_eq!(LevelScenario::E.link_cutpoints(), vec![31.0, 62.0]);
        assert!(LevelScenario::D.link_cutpoints().is_empty());
    }

    #[test]
    fn domain_shape() {
        let d = media_domain(LevelScenario::D);
        assert_eq!(d.interfaces.len(), 4);
        assert_eq!(d.components.len(), 5);
        let names: Vec<_> = d.components.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Client", "Splitter", "Zip", "Unzip", "Merger"]);
    }

    #[test]
    fn proportional_levels() {
        let d = media_domain(LevelScenario::C);
        let t = d.interfaces.iter().find(|i| i.name == "T").unwrap();
        assert_eq!(t.levels_of("ibw").cutpoints(), &[63.0, 70.0]);
        let i = d.interfaces.iter().find(|i| i.name == "I").unwrap();
        assert_eq!(i.levels_of("ibw").cutpoints(), &[27.0, 30.0]);
        let z = d.interfaces.iter().find(|i| i.name == "Z").unwrap();
        assert_eq!(z.levels_of("ibw").cutpoints(), &[31.5, 35.0]);
    }

    #[test]
    fn scenario_a_is_trivial() {
        let d = media_domain(LevelScenario::A);
        for i in &d.interfaces {
            assert!(i.levels_of("ibw").is_trivial());
        }
    }

    #[test]
    fn paper_figure2_merger_numbers() {
        let d = media_domain(LevelScenario::C);
        let merger = d.components.iter().find(|c| c.name == "Merger").unwrap();
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { iface, .. } if iface == "T" => 63.0,
            SpecVar::Iface { iface, .. } if iface == "I" => 27.0,
            SpecVar::Node { .. } => 30.0,
            _ => panic!(),
        };
        // T·3 == I·7 holds at the 70/30 split
        assert!(merger.conditions.iter().all(|c| c.holds(&mut env)));
        // cost 1 + 90/10 = 10 (paper §3.1)
        assert_eq!(merger.cost.eval(&mut env), 10.0);
        // M := T + I = 90
        assert_eq!(merger.effects[0].value.eval(&mut env), 90.0);
        // cpu consumption = 18
        assert_eq!(merger.effects[1].value.eval(&mut env), 18.0);
    }

    #[test]
    fn scenario1_cpu_numbers() {
        // §2.3: transforming 200 units of M by the Splitter requires 40 CPU
        let d = media_domain(LevelScenario::A);
        let sp = d.components.iter().find(|c| c.name == "Splitter").unwrap();
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { .. } => 200.0,
            SpecVar::Node { .. } => 30.0,
            _ => panic!(),
        };
        // condition cpu(30) >= 200/5 = 40 fails
        assert!(!sp.conditions[0].holds(&mut env));
        assert_eq!(sp.effects.last().unwrap().value.eval(&mut env), 40.0);
    }

    #[test]
    fn max_processable_is_about_111() {
        // §4.1: 30 CPU suffices for Splitter+Zip on up to ~111 units of M
        let cfg = MediaConfig::default();
        let m = 111.0;
        let split_cpu = m / cfg.cpu_heavy_div;
        let zip_cpu = (m * cfg.split_t) / cfg.cpu_light_div;
        assert!(split_cpu + zip_cpu <= 30.0 + 1e-9);
        let m2 = 112.0;
        assert!(m2 / cfg.cpu_heavy_div + (m2 * cfg.split_t) / cfg.cpu_light_div > 30.0);
    }

    #[test]
    fn zip_unzip_are_inverse() {
        let d = media_domain(LevelScenario::C);
        let zip = d.components.iter().find(|c| c.name == "Zip").unwrap();
        let unzip = d.components.iter().find(|c| c.name == "Unzip").unwrap();
        let t0 = 63.0;
        let z = zip.effects[0].value.eval(&mut |v: &SpecVar| match v {
            SpecVar::Iface { .. } => t0,
            _ => panic!(),
        });
        assert_eq!(z, 31.5);
        let t1 = unzip.effects[0].value.eval(&mut |v: &SpecVar| match v {
            SpecVar::Iface { .. } => z,
            _ => panic!(),
        });
        assert_eq!(t1, t0);
    }

    #[test]
    fn optimal_lan_reservation_constants() {
        // §4.1/4.2: at M=90 the optimal config needs 27+31.5 = 58.5 units of
        // LAN bandwidth; at M=100 it reserves 30+35 = 65 (Table 2 col 4).
        let cfg = MediaConfig::default();
        for (m, expect) in [(90.0, 58.5), (100.0, 65.0)] {
            let i = m * (1.0 - cfg.split_t);
            let z = m * cfg.split_t * cfg.zip_ratio;
            assert!((i + z - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn add_latency_shapes() {
        let mut d = media_domain(LevelScenario::C);
        add_latency(&mut d, LatencyConfig { proc_delay: 2.0, deadline: 40.0 }, &["Client"]);
        // delay resource registered once, idempotent property add
        assert!(d.resources.iter().any(|r| r.name == DELAY && !r.consumable));
        for i in &d.interfaces {
            assert_eq!(i.properties, vec!["ibw".to_string(), "lat".to_string()]);
            assert_eq!(i.cross_effects.len(), 3); // lbw -=, ibw :=, lat :=
        }
        let client = d.components.iter().find(|c| c.name == "Client").unwrap();
        assert_eq!(client.conditions.len(), 2); // demand + deadline
        let merger = d.components.iter().find(|c| c.name == "Merger").unwrap();
        // merger stamps M.lat := max(T.lat, I.lat) + 2
        let lat_eff = merger
            .effects
            .iter()
            .find(|e| matches!(&e.target, SpecVar::Iface { prop, .. } if prop == "lat"))
            .unwrap();
        let v = lat_eff.value.eval(&mut |sv: &SpecVar| match sv {
            SpecVar::Iface { iface, .. } if iface == "T" => 7.0,
            _ => 3.0,
        });
        assert_eq!(v, 9.0);
    }

    #[test]
    fn latency_accumulates_through_cross_effects() {
        let mut d = media_domain(LevelScenario::C);
        add_latency(&mut d, LatencyConfig { proc_delay: 2.0, deadline: 40.0 }, &["Client"]);
        let m = d.interfaces.iter().find(|i| i.name == "M").unwrap();
        let lat_eff = m
            .cross_effects
            .iter()
            .find(|e| matches!(&e.target, SpecVar::Iface { prop, .. } if prop == "lat"))
            .unwrap();
        let v = lat_eff.value.eval(&mut |sv: &SpecVar| match sv {
            SpecVar::Iface { prop, .. } if prop == "lat" => 10.0,
            SpecVar::Link { res } if res == DELAY => 4.0,
            _ => 0.0,
        });
        assert_eq!(v, 14.0);
    }

    #[test]
    fn domain_validates_in_problem() {
        use crate::network::{LinkClass, Network};
        use crate::problem::{CppProblem, Goal, StreamSource};
        let mut net = Network::new();
        let a = net.add_node("s", [(names::CPU, 30.0)]);
        let b = net.add_node("c", [(names::CPU, 30.0)]);
        net.add_link(a, b, LinkClass::Wan, [(names::LBW, 70.0)]);
        for sc in LevelScenario::ALL {
            let d = media_domain(sc);
            let p = CppProblem {
                network: net.clone(),
                resources: d.resources,
                interfaces: d.interfaces,
                components: d.components,
                sources: vec![StreamSource::up_to("M", a, "ibw", 200.0)],
                pre_placed: vec![],
                goals: vec![Goal { component: "Client".into(), node: b }],
            };
            p.validate().unwrap_or_else(|e| panic!("scenario {:?}: {e}", sc));
        }
    }
}
