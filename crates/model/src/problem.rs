//! The complete component placement problem (CPP) instance.

use crate::component::{ComponentSpec, InterfaceSpec, Placement, SpecVar};
use crate::error::ModelError;
use crate::ids::{CompId, IfaceId, NodeId};
use crate::interval::Interval;
use crate::network::Network;
use crate::resource::{Locus, ResourceDef};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashSet;

/// A stream made available by the environment (e.g. the media server's M
/// stream): the interface exists on `node` with each property available in
/// a given range (`ibw ∈ [0, 200]` for "can produce up to 200 units").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSource {
    /// Interface name.
    pub iface: String,
    /// Node where the stream originates.
    pub node: NodeId,
    /// Available property ranges (property name → producible interval).
    pub properties: BTreeMap<String, Interval>,
}

impl StreamSource {
    /// Source producing up to `max` units of the single property `prop`.
    pub fn up_to(iface: impl Into<String>, node: NodeId, prop: &str, max: f64) -> Self {
        StreamSource {
            iface: iface.into(),
            node,
            properties: [(prop.to_string(), Interval::new(0.0, max))].into(),
        }
    }
}

/// A component pre-placed by the environment (counts as already deployed;
/// consumes no plan actions and no resources).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrePlacement {
    /// Component name.
    pub component: String,
    /// Host node.
    pub node: NodeId,
}

/// A deployment goal: the named component must end up placed on the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    /// Component name.
    pub component: String,
    /// Required host node.
    pub node: NodeId,
}

/// A full CPP instance: network + domain + initial state + goals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CppProblem {
    /// The network topology and resource capacities.
    pub network: Network,
    /// Resource catalog (cpu, lbw, ...), including level specs.
    pub resources: Vec<ResourceDef>,
    /// Interface (stream) type specifications.
    pub interfaces: Vec<InterfaceSpec>,
    /// Component type specifications.
    pub components: Vec<ComponentSpec>,
    /// Streams available in the initial state.
    pub sources: Vec<StreamSource>,
    /// Components already deployed in the initial state.
    pub pre_placed: Vec<PrePlacement>,
    /// Deployment goals (conjunction).
    pub goals: Vec<Goal>,
}

impl CppProblem {
    /// Find an interface id by name.
    pub fn iface_id(&self, name: &str) -> Option<IfaceId> {
        self.interfaces.iter().position(|i| i.name == name).map(IfaceId::from_index)
    }

    /// Find a component id by name.
    pub fn comp_id(&self, name: &str) -> Option<CompId> {
        self.components.iter().position(|c| c.name == name).map(CompId::from_index)
    }

    /// Interface spec by id.
    pub fn iface(&self, id: IfaceId) -> &InterfaceSpec {
        &self.interfaces[id.index()]
    }

    /// Component spec by id.
    pub fn component(&self, id: CompId) -> &ComponentSpec {
        &self.components[id.index()]
    }

    /// Resource definition by catalog name.
    pub fn resource(&self, name: &str) -> Option<&ResourceDef> {
        self.resources.iter().find(|r| r.name == name)
    }

    /// Structural validation: referential integrity of every name and
    /// variable-scope checking of every formula. Run once after
    /// construction or parsing; the compiler assumes a validated problem.
    pub fn validate(&self) -> Result<(), ModelError> {
        // unique names
        let mut seen = HashSet::new();
        for i in &self.interfaces {
            if !seen.insert(format!("iface:{}", i.name)) {
                return Err(ModelError::DuplicateName(i.name.clone()));
            }
        }
        for c in &self.components {
            if !seen.insert(format!("comp:{}", c.name)) {
                return Err(ModelError::DuplicateName(c.name.clone()));
            }
        }
        for r in &self.resources {
            if !seen.insert(format!("res:{}:{:?}", r.name, r.locus)) {
                return Err(ModelError::DuplicateName(r.name.clone()));
            }
        }
        let mut node_names = HashSet::new();
        for (_, n) in self.network.nodes() {
            if !node_names.insert(n.name.as_str()) {
                return Err(ModelError::DuplicateName(n.name.clone()));
            }
        }

        let iface_ok = |n: &str| self.interfaces.iter().any(|i| i.name == n);
        let node_res_ok =
            |n: &str| self.resources.iter().any(|r| r.name == n && r.locus == Locus::Node);
        let link_res_ok =
            |n: &str| self.resources.iter().any(|r| r.name == n && r.locus == Locus::Link);

        // components: linkage names, formula scopes
        for c in &self.components {
            for i in c.scope() {
                if !iface_ok(i) {
                    return Err(ModelError::UnknownInterface(i.to_string()));
                }
            }
            let in_scope: HashSet<&str> = c.scope().collect();
            let mut err = None;
            let mut check = |v: &SpecVar| {
                if err.is_some() {
                    return;
                }
                match v {
                    SpecVar::Iface { iface, prop } => {
                        if !in_scope.contains(iface.as_str()) {
                            err = Some(ModelError::VarOutOfScope(format!("{iface}.{prop}")));
                        } else if let Some(spec) = self.interfaces.iter().find(|i| &i.name == iface)
                        {
                            if !spec.properties.contains(prop) {
                                err = Some(ModelError::VarOutOfScope(format!("{iface}.{prop}")));
                            }
                        }
                    }
                    SpecVar::Node { res } => {
                        if !node_res_ok(res) {
                            err = Some(ModelError::UnknownResource(res.clone()));
                        }
                    }
                    SpecVar::Link { res } => {
                        // link vars make no sense in a placement formula
                        err = Some(ModelError::VarOutOfScope(format!("link.{res}")));
                    }
                }
            };
            for cond in &c.conditions {
                cond.for_each_var(&mut check);
            }
            for eff in &c.effects {
                eff.for_each_var(&mut check);
            }
            c.cost.for_each_var(&mut check);
            if let Some(e) = err {
                return Err(e);
            }
            if let Placement::Only(nodes) = &c.placement {
                for n in nodes {
                    if self.network.node_by_name(n).is_none() {
                        return Err(ModelError::UnknownNode(n.clone()));
                    }
                }
            }
        }

        // interfaces: cross formula scopes
        for i in &self.interfaces {
            let mut err = None;
            let mut check = |v: &SpecVar| {
                if err.is_some() {
                    return;
                }
                match v {
                    SpecVar::Iface { iface, prop } => {
                        if iface != &i.name || !i.properties.contains(prop) {
                            err = Some(ModelError::VarOutOfScope(format!("{iface}.{prop}")));
                        }
                    }
                    SpecVar::Link { res } => {
                        if !link_res_ok(res) {
                            err = Some(ModelError::UnknownResource(res.clone()));
                        }
                    }
                    SpecVar::Node { res } => {
                        err = Some(ModelError::VarOutOfScope(format!("node.{res}")));
                    }
                }
            };
            for cond in &i.cross_conditions {
                cond.for_each_var(&mut check);
            }
            for eff in &i.cross_effects {
                eff.for_each_var(&mut check);
            }
            i.cross_cost.for_each_var(&mut check);
            if let Some(e) = err {
                return Err(e);
            }
            for prop in i.levels.keys() {
                if !i.properties.contains(prop) {
                    return Err(ModelError::VarOutOfScope(format!("{}.{prop}", i.name)));
                }
            }
        }

        // initial state / goals
        for s in &self.sources {
            if !iface_ok(&s.iface) {
                return Err(ModelError::UnknownInterface(s.iface.clone()));
            }
            if s.node.index() >= self.network.num_nodes() {
                return Err(ModelError::UnknownNode(s.node.to_string()));
            }
        }
        for p in &self.pre_placed {
            if self.comp_id(&p.component).is_none() {
                return Err(ModelError::UnknownComponent(p.component.clone()));
            }
            if p.node.index() >= self.network.num_nodes() {
                return Err(ModelError::UnknownNode(p.node.to_string()));
            }
        }
        if self.goals.is_empty() {
            return Err(ModelError::Invalid("problem has no goals".into()));
        }
        for g in &self.goals {
            if self.comp_id(&g.component).is_none() {
                return Err(ModelError::UnknownComponent(g.component.clone()));
            }
            if g.node.index() >= self.network.num_nodes() {
                return Err(ModelError::UnknownNode(g.node.to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{media_domain, LevelScenario};
    use crate::network::LinkClass;
    use crate::resource::names::{CPU, LBW};

    fn tiny_problem() -> CppProblem {
        let mut net = Network::new();
        let n0 = net.add_node("n0", [(CPU, 30.0)]);
        let n1 = net.add_node("n1", [(CPU, 30.0)]);
        net.add_link(n0, n1, LinkClass::Wan, [(LBW, 70.0)]);
        let domain = media_domain(LevelScenario::C);
        CppProblem {
            network: net,
            resources: domain.resources,
            interfaces: domain.interfaces,
            components: domain.components,
            sources: vec![StreamSource::up_to("M", n0, "ibw", 200.0)],
            pre_placed: vec![],
            goals: vec![Goal { component: "Client".into(), node: n1 }],
        }
    }

    #[test]
    fn valid_problem_passes() {
        tiny_problem().validate().unwrap();
    }

    #[test]
    fn lookup_helpers() {
        let p = tiny_problem();
        let m = p.iface_id("M").unwrap();
        assert_eq!(p.iface(m).name, "M");
        let cl = p.comp_id("Client").unwrap();
        assert_eq!(p.component(cl).name, "Client");
        assert!(p.iface_id("nope").is_none());
        assert!(p.resource(CPU).is_some());
        assert!(p.resource("gpu").is_none());
    }

    #[test]
    fn rejects_unknown_goal_component() {
        let mut p = tiny_problem();
        p.goals[0].component = "Ghost".into();
        assert!(matches!(p.validate(), Err(ModelError::UnknownComponent(_))));
    }

    #[test]
    fn rejects_unknown_source_iface() {
        let mut p = tiny_problem();
        p.sources[0].iface = "Q".into();
        assert!(matches!(p.validate(), Err(ModelError::UnknownInterface(_))));
    }

    #[test]
    fn rejects_missing_goal() {
        let mut p = tiny_problem();
        p.goals.clear();
        assert!(matches!(p.validate(), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn rejects_duplicate_component_name() {
        let mut p = tiny_problem();
        let dup = p.components[0].clone();
        p.components.push(dup);
        assert!(matches!(p.validate(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn rejects_out_of_scope_formula_var() {
        let mut p = tiny_problem();
        // Client suddenly references the Z stream it doesn't consume
        let idx = p.comp_id("Client").unwrap().index();
        p.components[idx].conditions.push(crate::expr::Cond::new(
            crate::expr::Expr::var(SpecVar::iface("Z", "ibw")),
            crate::expr::CmpOp::Ge,
            crate::expr::Expr::c(0.0),
        ));
        assert!(matches!(p.validate(), Err(ModelError::VarOutOfScope(_))));
    }

    #[test]
    fn rejects_goal_node_out_of_range() {
        let mut p = tiny_problem();
        p.goals[0].node = NodeId(99);
        assert!(matches!(p.validate(), Err(ModelError::UnknownNode(_))));
    }
}
