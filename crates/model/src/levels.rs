//! Resource levels (paper §3.1).
//!
//! A [`LevelSpec`] partitions `[0, ∞)` into half-open intervals
//! `[0, c_1), [c_1, c_2), …, [c_k, ∞)` given `k` sorted cutpoints. Levels
//! discretize the otherwise-continuous resource variables so that leveled
//! actions can carry interval preconditions (the *optimistic resource map*)
//! and a lower-bound cost, enabling A*-style optimization in the presence of
//! non-reversible resource functions.

use crate::interval::{Interval, EPS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shave applied to finite upper bounds when a level interval is used as a
/// *requirement* (optimistic-map entry): levels are half-open `[c_i,
/// c_{i+1})`, so the cutpoint itself must not satisfy strict upper-bound
/// conditions. 1e-6 is far below any meaningful bandwidth/CPU quantum and
/// far above arithmetic noise ([`EPS`]).
pub const LEVEL_SHAVE: f64 = 1e-6;

/// A partition of `[0, ∞)` into consecutive half-open intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSpec {
    cutpoints: Vec<f64>,
}

impl LevelSpec {
    /// Build from cutpoints. They are sorted, deduplicated (within
    /// [`EPS`]) and must all be strictly positive and finite.
    pub fn new(mut cutpoints: Vec<f64>) -> Result<Self, crate::error::ModelError> {
        cutpoints.sort_by(|a, b| a.partial_cmp(b).expect("NaN cutpoint"));
        cutpoints.dedup_by(|a, b| (*a - *b).abs() <= EPS);
        for &c in &cutpoints {
            if !(c.is_finite() && c > 0.0) {
                return Err(crate::error::ModelError::InvalidCutpoint(c));
            }
        }
        Ok(LevelSpec { cutpoints })
    }

    /// The trivial single-level spec `[0, ∞)` — what every resource gets
    /// when no levels are declared (paper scenario A).
    pub fn trivial() -> Self {
        LevelSpec { cutpoints: Vec::new() }
    }

    /// True iff this is the trivial single-level spec.
    pub fn is_trivial(&self) -> bool {
        self.cutpoints.is_empty()
    }

    /// Number of levels (`cutpoints + 1`).
    pub fn num_levels(&self) -> usize {
        self.cutpoints.len() + 1
    }

    /// The sorted cutpoints.
    pub fn cutpoints(&self) -> &[f64] {
        &self.cutpoints
    }

    /// The (closed-arithmetic) interval of level `idx`:
    /// `[c_idx, c_{idx+1}]` with `c_0 = 0` and `c_{k+1} = ∞`.
    ///
    /// Panics if `idx >= num_levels()`.
    pub fn interval(&self, idx: usize) -> Interval {
        assert!(idx < self.num_levels(), "level index {idx} out of range");
        let lo = if idx == 0 { 0.0 } else { self.cutpoints[idx - 1] };
        let hi = if idx == self.cutpoints.len() { f64::INFINITY } else { self.cutpoints[idx] };
        Interval::new(lo, hi)
    }

    /// The half-open *requirement* form of a level interval: finite upper
    /// bounds are shaved by [`LEVEL_SHAVE`] so that e.g. a client demanding
    /// `ibw >= 90` cannot be satisfied by the `[0, 90)` level (the paper's
    /// strict `m <= X < M` precondition semantics). The top level's `∞`
    /// bound is unaffected.
    pub fn requirement(&self, idx: usize) -> Interval {
        let iv = self.interval(idx);
        if iv.hi.is_finite() {
            Interval::new(iv.lo, iv.hi - LEVEL_SHAVE)
        } else {
            iv
        }
    }

    /// The level containing `x` under half-open semantics
    /// (`x == c_i` belongs to level `i`, the one *starting* at `c_i`).
    pub fn level_of(&self, x: f64) -> usize {
        debug_assert!(x >= -EPS, "levels are defined over [0, inf): {x}");
        // values within EPS of a cutpoint classify into the upper level —
        // computed values like 0.7·90 must land in the level that starts
        // at the (exactly snapped) cutpoint 63 despite float error
        self.cutpoints.partition_point(|&c| c <= x + EPS)
    }

    /// Highest level whose interval intersects `iv` (None if `iv` empty or
    /// entirely negative).
    pub fn highest_intersecting(&self, iv: &Interval) -> Option<usize> {
        if iv.is_empty() || iv.hi < 0.0 {
            return None;
        }
        Some(self.level_of(iv.hi.min(f64::MAX)))
    }

    /// All level indices whose interval intersects `iv`.
    pub fn intersecting(&self, iv: &Interval) -> Vec<usize> {
        if iv.is_empty() || iv.hi < 0.0 {
            return Vec::new();
        }
        let lo_lvl = self.level_of(iv.lo.max(0.0));
        let hi_lvl = self.level_of(iv.hi.min(f64::MAX));
        (lo_lvl..=hi_lvl).collect()
    }

    /// Like [`Self::intersecting`], but treating `iv` as half-open
    /// `[lo, hi)`: a level whose interval only touches `iv` at exactly
    /// `iv.hi` is excluded. Used when classifying *computed* value ranges,
    /// which inherit half-open tops from the level intervals they were
    /// derived from (e.g. `0.7 · [90, 100)` should map to T-level
    /// `[63, 70)` only, not also to `[70, …)`).
    pub fn intersecting_half_open(&self, iv: &Interval) -> Vec<usize> {
        if iv.is_empty() || iv.hi < 0.0 {
            return Vec::new();
        }
        let lo_lvl = self.level_of(iv.lo.max(0.0));
        let mut hi_lvl = self.level_of(iv.hi.min(f64::MAX));
        if hi_lvl > lo_lvl && self.interval(hi_lvl).lo >= iv.hi - EPS {
            hi_lvl -= 1;
        }
        (lo_lvl..=hi_lvl).collect()
    }

    /// A spec with every cutpoint multiplied by `factor` — used for
    /// "bandwidth levels of T, I, Z are proportional to those of M"
    /// (paper Table 1).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor must be positive");
        // Snap to a 1e-9 grid so that e.g. 90 · 0.7 classifies exactly as
        // the cutpoint 63 — boundary membership must be deterministic.
        let snap = |x: f64| (x * 1e9).round() / 1e9;
        LevelSpec { cutpoints: self.cutpoints.iter().map(|c| snap(c * factor)).collect() }
    }
}

impl Default for LevelSpec {
    fn default() -> Self {
        LevelSpec::trivial()
    }
}

impl fmt::Display for LevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_levels() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let iv = self.interval(i);
            if iv.hi.is_finite() {
                write!(f, "[{}, {})", iv.lo, iv.hi)?;
            } else {
                write!(f, "[{}, ∞)", iv.lo)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 6 / scenario D spec for the M stream.
    fn scenario_d() -> LevelSpec {
        LevelSpec::new(vec![30.0, 70.0, 90.0, 100.0]).unwrap()
    }

    #[test]
    fn trivial_spec() {
        let t = LevelSpec::trivial();
        assert!(t.is_trivial());
        assert_eq!(t.num_levels(), 1);
        assert_eq!(t.interval(0), Interval::nonneg());
        assert_eq!(t.level_of(1234.5), 0);
    }

    #[test]
    fn scenario_d_intervals() {
        let s = scenario_d();
        assert_eq!(s.num_levels(), 5);
        assert_eq!(s.interval(0), Interval::new(0.0, 30.0));
        assert_eq!(s.interval(1), Interval::new(30.0, 70.0));
        assert_eq!(s.interval(2), Interval::new(70.0, 90.0));
        assert_eq!(s.interval(3), Interval::new(90.0, 100.0));
        assert_eq!(s.interval(4), Interval::new(100.0, f64::INFINITY));
    }

    #[test]
    fn level_of_half_open() {
        let s = scenario_d();
        assert_eq!(s.level_of(0.0), 0);
        assert_eq!(s.level_of(29.999), 0);
        assert_eq!(s.level_of(30.0), 1); // cutpoint belongs to upper level
        assert_eq!(s.level_of(89.999), 2);
        assert_eq!(s.level_of(90.0), 3);
        assert_eq!(s.level_of(100.0), 4);
        assert_eq!(s.level_of(200.0), 4);
    }

    #[test]
    fn sorting_and_dedup() {
        let s = LevelSpec::new(vec![100.0, 30.0, 70.0, 30.0]).unwrap();
        assert_eq!(s.cutpoints(), &[30.0, 70.0, 100.0]);
    }

    #[test]
    fn rejects_bad_cutpoints() {
        assert!(LevelSpec::new(vec![0.0]).is_err());
        assert!(LevelSpec::new(vec![-5.0]).is_err());
        assert!(LevelSpec::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn scaled_matches_table1_note() {
        // T levels = 0.7 × M levels
        let m = scenario_d();
        let t = m.scaled(0.7);
        assert_eq!(t.cutpoints(), &[21.0, 49.0, 63.0, 70.0]);
        assert_eq!(t.level_of(63.0), 3);
    }

    #[test]
    fn intersecting_levels() {
        let s = scenario_d();
        assert_eq!(s.intersecting(&Interval::new(0.0, 70.0)), vec![0, 1, 2]);
        assert_eq!(s.intersecting(&Interval::new(95.0, 95.0)), vec![3]);
        assert_eq!(s.intersecting(&Interval::new(0.0, 200.0)), vec![0, 1, 2, 3, 4]);
        assert!(s.intersecting(&Interval::empty()).is_empty());
        assert_eq!(s.highest_intersecting(&Interval::new(0.0, 200.0)), Some(4));
        assert_eq!(s.highest_intersecting(&Interval::new(0.0, 69.0)), Some(1));
        assert_eq!(s.highest_intersecting(&Interval::empty()), None);
    }

    #[test]
    fn half_open_intersection_excludes_touching_top() {
        let t = scenario_d().scaled(0.7); // cutpoints 21, 49, 63, 70
                                          // 0.7 · [90, 100) = [63, 70): only level 3
        assert_eq!(t.intersecting_half_open(&Interval::new(63.0, 70.0)), vec![3]);
        // closed query would include level 4 too
        assert_eq!(t.intersecting(&Interval::new(63.0, 70.0)), vec![3, 4]);
        // a range genuinely reaching past 70 keeps level 4
        assert_eq!(t.intersecting_half_open(&Interval::new(63.0, 71.0)), vec![3, 4]);
        // degenerate point at a cutpoint stays in its half-open home
        assert_eq!(t.intersecting_half_open(&Interval::point(70.0)), vec![4]);
        assert!(t.intersecting_half_open(&Interval::empty()).is_empty());
    }

    #[test]
    fn interval_of_level_contains_levels_points() {
        let s = scenario_d();
        for x in [0.0, 15.0, 30.0, 50.0, 70.0, 89.0, 90.0, 99.0, 100.0, 1000.0] {
            let l = s.level_of(x);
            assert!(s.interval(l).contains(x), "{x} not in level {l}");
        }
    }

    #[test]
    fn display_matches_paper_form() {
        let s = LevelSpec::new(vec![100.0]).unwrap();
        assert_eq!(s.to_string(), "[0, 100), [100, ∞)");
    }
}
