//! # sekitei-model
//!
//! Domain model for the **component placement problem (CPP)** from
//! *"Optimal Resource-Aware Deployment Planning for Component-based
//! Distributed Applications"* (Kichkaylo & Karamcheti, HPDC 2004).
//!
//! A CPP instance ([`problem::CppProblem`]) combines:
//!
//! * a [`network::Network`] of resource-annotated nodes and links,
//! * a catalog of [`resource::ResourceDef`]s (node CPU, link bandwidth, …),
//! * [`component::InterfaceSpec`]s — typed data streams with properties and
//!   link-crossing formulas,
//! * [`component::ComponentSpec`]s — deployable units with linkage,
//!   condition/effect formulas and cost formulas,
//! * initial streams/placements and deployment goals.
//!
//! Formulas are [`expr::Expr`] ASTs evaluated over points or
//! [`interval::Interval`]s; [`levels::LevelSpec`] provides the resource
//! discretization at the heart of the paper's contribution.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapt;
pub mod advisor;
pub mod component;
pub mod error;
pub mod expr;
pub mod ids;
pub mod interval;
pub mod levels;
pub mod media;
pub mod network;
pub mod problem;
pub mod resource;

pub use adapt::{adapt_problem, AdaptConfig, ExistingDeployment, ExistingPlacement};
pub use advisor::{apply_suggestions, suggest_levels, LevelSuggestion};
pub use component::{ComponentSpec, InterfaceSpec, Placement, SCond, SEffect, SExpr, SpecVar};
pub use error::ModelError;
pub use expr::{AssignOp, CmpOp, Cond, Effect, Expr, Mono};
pub use ids::{
    ActionId, CompId, DirLink, GVarId, IfaceId, LevelIdx, LinkId, NodeId, PropId, ResId,
};
pub use interval::{Interval, EPS};
pub use levels::LevelSpec;
pub use media::{
    add_latency, media_domain, media_domain_with, LatencyConfig, LevelScenario, MediaConfig,
    MediaDomain,
};
pub use network::{LinkClass, LinkData, Network, NodeData};
pub use problem::{CppProblem, Goal, PrePlacement, StreamSource};
pub use resource::{Elasticity, Locus, ResourceDef};
