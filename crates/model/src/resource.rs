//! Resource catalog: named quantities attached to nodes or links.
//!
//! The paper's resources of interest are node `cpu` and link `lbw`
//! (bandwidth); the catalog is open-ended so domains can add memory, disk
//! bandwidth, accumulated latency, etc. Each definition carries its
//! [`LevelSpec`] (paper Table 1, scenario E levels link bandwidth) and the
//! degradable/upgradable tags that guide the planner's search (§3.1).

use crate::levels::LevelSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a resource lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locus {
    /// Attached to a network node (e.g. `cpu`).
    Node,
    /// Attached to a network link (e.g. `lbw`).
    Link,
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Locus::Node => "node",
            Locus::Link => "link",
        })
    }
}

/// Direction-of-availability tag (paper §3.1).
///
/// *Degradable*: availability at a higher value implies availability at any
/// lower value (link bandwidth: a 70-unit link can carry 30 units).
/// *Upgradable*: the dual (e.g. a minimum-security requirement).
///
/// Semantics in this implementation: consumable resources are grounded
/// with the degradable assumption (`[0, capacity]` optimistic intervals),
/// matching the paper's experiments where link bandwidth is degradable;
/// non-consumable (static) resources are pinned to their exact value, so
/// `Upgradable` and `Rigid` currently coincide for them. Interface
/// *streams* honor their own `degradable` flag through effect-side level
/// closure (see `sekitei-compile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Elasticity {
    /// Higher availability covers lower requirements.
    #[default]
    Degradable,
    /// Lower availability covers higher requirements.
    Upgradable,
    /// Exact-level matching only.
    Rigid,
}

/// A resource definition in the problem catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDef {
    /// Catalog name, referenced from formulas (`node.cpu`, `link.lbw`).
    pub name: String,
    /// Node- or link-attached.
    pub locus: Locus,
    /// Whether deployment consumes it (CPU, bandwidth) as opposed to a
    /// static property that is only tested (e.g. "has JVM").
    pub consumable: bool,
    /// Discretization used by the leveled planner.
    pub levels: LevelSpec,
    /// Degradable / upgradable / rigid tag.
    pub elasticity: Elasticity,
}

impl ResourceDef {
    /// A consumable, degradable node resource with trivial levels.
    pub fn node(name: impl Into<String>) -> Self {
        ResourceDef {
            name: name.into(),
            locus: Locus::Node,
            consumable: true,
            levels: LevelSpec::trivial(),
            elasticity: Elasticity::Degradable,
        }
    }

    /// A consumable, degradable link resource with trivial levels.
    pub fn link(name: impl Into<String>) -> Self {
        ResourceDef {
            name: name.into(),
            locus: Locus::Link,
            consumable: true,
            levels: LevelSpec::trivial(),
            elasticity: Elasticity::Degradable,
        }
    }

    /// Replace the level spec (builder style).
    pub fn with_levels(mut self, levels: LevelSpec) -> Self {
        self.levels = levels;
        self
    }

    /// Replace the elasticity tag (builder style).
    pub fn with_elasticity(mut self, e: Elasticity) -> Self {
        self.elasticity = e;
        self
    }
}

/// Conventional resource names used by the built-in media domain.
pub mod names {
    /// Node CPU capacity.
    pub const CPU: &str = "cpu";
    /// Link bandwidth.
    pub const LBW: &str = "lbw";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let cpu = ResourceDef::node(names::CPU);
        assert_eq!(cpu.locus, Locus::Node);
        assert!(cpu.consumable);
        assert_eq!(cpu.elasticity, Elasticity::Degradable);

        let lbw = ResourceDef::link(names::LBW)
            .with_levels(LevelSpec::new(vec![31.0, 62.0]).unwrap())
            .with_elasticity(Elasticity::Degradable);
        assert_eq!(lbw.levels.num_levels(), 3);
        assert_eq!(lbw.locus, Locus::Link);
    }

    #[test]
    fn locus_display() {
        assert_eq!(Locus::Node.to_string(), "node");
        assert_eq!(Locus::Link.to_string(), "link");
    }
}
