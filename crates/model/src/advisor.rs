//! Automatic level suggestion — a first cut at the paper's §6 future work
//! ("analyze the dependency between the number and quality of resource
//! levels and performance") and §4.3's closing remark that level choice
//! "needs to be performed by a domain expert".
//!
//! The obvious part of the expert's job is mechanical: every demand
//! constraint `iface.prop >= c` induces a natural cutpoint at `c` (the
//! paper's 90), and a second cutpoint slightly above it caps greedy
//! over-consumption (the paper's 100). Demands propagate through
//! single-input linear component transforms (`out := in · k`,
//! `out := in / k`), which is how the paper's Table 1 note — "levels of
//! T, I, Z are proportional to those of M" — arises. [`suggest_levels`]
//! performs exactly this seed-and-propagate analysis;
//! [`apply_suggestions`] installs the results on interfaces that have no
//! expert-provided levels yet.

use crate::component::SpecVar;
use crate::expr::{CmpOp, Expr};
use crate::interval::EPS;
use crate::levels::LevelSpec;
use crate::problem::CppProblem;
use serde::{Deserialize, Serialize};

/// A suggested level specification for one interface property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelSuggestion {
    /// Interface name.
    pub iface: String,
    /// Property name.
    pub prop: String,
    /// Suggested cutpoints (sorted, deduplicated).
    pub cutpoints: Vec<f64>,
}

/// Linear dependency `to.prop = factor · from.prop` extracted from a
/// single-input component's Set effect.
struct LinearEdge {
    from: (String, String),
    to: (String, String),
    factor: f64,
}

/// Match `Var * Const`, `Const * Var`, `Var / Const` or bare `Var`.
fn linear_of(e: &Expr<SpecVar>) -> Option<(SpecVar, f64)> {
    match e {
        Expr::Var(v) => Some((v.clone(), 1.0)),
        Expr::Mul(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(k)) | (Expr::Const(k), Expr::Var(v)) if *k > 0.0 => {
                Some((v.clone(), *k))
            }
            _ => None,
        },
        Expr::Div(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(k)) if *k > 0.0 => Some((v.clone(), 1.0 / *k)),
            _ => None,
        },
        _ => None,
    }
}

/// Derive cutpoint suggestions for every interface property reachable from
/// a demand constraint. `headroom` controls the upper cutpoint
/// (`demand · (1 + headroom)`), which caps greedy over-consumption the
/// way the paper's cutpoint at 100 caps its demand of 90.
pub fn suggest_levels(problem: &CppProblem, headroom: f64) -> Vec<LevelSuggestion> {
    assert!(headroom >= 0.0, "headroom must be non-negative");

    // 1. demand seeds: `iface.prop >= c` conditions anywhere
    let mut seeds: Vec<((String, String), f64)> = Vec::new();
    for comp in &problem.components {
        for cond in &comp.conditions {
            let (var_side, const_side, op) = (&cond.lhs, &cond.rhs, cond.op);
            if let (Expr::Var(SpecVar::Iface { iface, prop }), Expr::Const(c)) =
                (var_side, const_side)
            {
                if matches!(op, CmpOp::Ge | CmpOp::Gt) && *c > 0.0 {
                    seeds.push(((iface.clone(), prop.clone()), *c));
                }
            }
        }
    }

    // 2. linear edges from single-input component transforms
    let mut edges: Vec<LinearEdge> = Vec::new();
    for comp in &problem.components {
        if comp.requires.len() != 1 {
            continue; // multi-input transforms are not invertible here
        }
        for eff in &comp.effects {
            let SpecVar::Iface { iface: out_iface, prop: out_prop } = &eff.target else {
                continue;
            };
            if !comp.implements.contains(out_iface) {
                continue;
            }
            if let Some((SpecVar::Iface { iface: in_iface, prop: in_prop }, k)) =
                linear_of(&eff.value)
            {
                if comp.requires.contains(&in_iface) {
                    edges.push(LinearEdge {
                        from: (in_iface, in_prop),
                        to: (out_iface.clone(), out_prop.clone()),
                        factor: k,
                    });
                }
            }
        }
    }

    // 3. propagate seeds across edges (both directions) to a fixpoint
    let mut changed = true;
    let mut guard = 0;
    while changed && guard < 64 {
        changed = false;
        guard += 1;
        let snapshot = seeds.clone();
        for e in &edges {
            for (key, v) in &snapshot {
                if *key == e.from {
                    let derived = v * e.factor;
                    if push_unique(&mut seeds, (e.to.clone(), derived)) {
                        changed = true;
                    }
                }
                if *key == e.to && e.factor > 0.0 {
                    let derived = v / e.factor;
                    if push_unique(&mut seeds, (e.from.clone(), derived)) {
                        changed = true;
                    }
                }
            }
        }
    }

    // 4. cutpoints per (iface, prop): each demand plus its headroom cap
    let mut out: Vec<LevelSuggestion> = Vec::new();
    for ((iface, prop), v) in seeds {
        let entry = out.iter_mut().find(|s| s.iface == iface && s.prop == prop);
        let cuts = match entry {
            Some(s) => &mut s.cutpoints,
            None => {
                out.push(LevelSuggestion { iface, prop, cutpoints: Vec::new() });
                &mut out.last_mut().unwrap().cutpoints
            }
        };
        for c in [v, v * (1.0 + headroom)] {
            if c > 0.0 && !cuts.iter().any(|x| (x - c).abs() <= EPS.max(1e-9 * c)) {
                cuts.push(c);
            }
        }
    }
    for s in &mut out {
        s.cutpoints.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    out.sort_by(|a, b| (&a.iface, &a.prop).cmp(&(&b.iface, &b.prop)));
    out
}

fn push_unique(seeds: &mut Vec<((String, String), f64)>, item: ((String, String), f64)) -> bool {
    let exists =
        seeds.iter().any(|(k, v)| *k == item.0 && (v - item.1).abs() <= EPS.max(1e-9 * item.1));
    if exists {
        false
    } else {
        seeds.push(item);
        true
    }
}

/// Install suggestions on interfaces whose corresponding property levels
/// are still trivial — expert-provided levels are never overwritten.
/// Returns how many interface properties were leveled.
pub fn apply_suggestions(problem: &mut CppProblem, suggestions: &[LevelSuggestion]) -> usize {
    let mut applied = 0;
    for s in suggestions {
        let Some(spec) = problem.interfaces.iter_mut().find(|i| i.name == s.iface) else {
            continue;
        };
        if !spec.properties.contains(&s.prop) {
            continue;
        }
        if !spec.levels_of(&s.prop).is_trivial() {
            continue;
        }
        if let Ok(levels) = LevelSpec::new(s.cutpoints.clone()) {
            spec.levels.insert(s.prop.clone(), levels);
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{media_domain, LevelScenario};

    fn unleveled_tiny() -> CppProblem {
        use crate::network::{LinkClass, Network};
        use crate::problem::{Goal, StreamSource};
        use crate::resource::names::{CPU, LBW};
        let mut net = Network::new();
        let a = net.add_node("n0", [(CPU, 30.0)]);
        let b = net.add_node("n1", [(CPU, 30.0)]);
        net.add_link(a, b, LinkClass::Wan, [(LBW, 70.0)]);
        let d = media_domain(LevelScenario::A);
        CppProblem {
            network: net,
            resources: d.resources,
            interfaces: d.interfaces,
            components: d.components,
            sources: vec![StreamSource::up_to("M", a, "ibw", 200.0)],
            pre_placed: vec![],
            goals: vec![Goal { component: "Client".into(), node: b }],
        }
    }

    #[test]
    fn suggests_demand_derived_cutpoints() {
        let p = unleveled_tiny();
        let s = suggest_levels(&p, 1.0 / 9.0); // 90 · (1 + 1/9) = 100
        let m = s.iter().find(|x| x.iface == "M").expect("M leveled");
        assert!((m.cutpoints[0] - 90.0).abs() < 1e-9, "{:?}", m.cutpoints);
        assert!((m.cutpoints[1] - 100.0).abs() < 1e-6, "{:?}", m.cutpoints);
        // propagation through Splitter / Zip: T = 0.7·M, Z = 0.35·M
        let t = s.iter().find(|x| x.iface == "T").expect("T leveled");
        assert!((t.cutpoints[0] - 63.0).abs() < 1e-9, "{:?}", t.cutpoints);
        let z = s.iter().find(|x| x.iface == "Z").expect("Z leveled");
        assert!((z.cutpoints[0] - 31.5).abs() < 1e-9, "{:?}", z.cutpoints);
        let i = s.iter().find(|x| x.iface == "I").expect("I leveled");
        assert!((i.cutpoints[0] - 27.0).abs() < 1e-9, "{:?}", i.cutpoints);
    }

    #[test]
    fn apply_respects_existing_levels() {
        let mut p = unleveled_tiny();
        let s = suggest_levels(&p, 0.1);
        let n = apply_suggestions(&mut p, &s);
        assert_eq!(n, 4, "all four stream interfaces leveled");
        // second application is a no-op: levels now exist
        let n2 = apply_suggestions(&mut p, &s);
        assert_eq!(n2, 0);
        for i in &p.interfaces {
            assert!(!i.levels_of("ibw").is_trivial(), "{}", i.name);
        }
        p.validate().unwrap();
    }

    #[test]
    fn ignores_unknown_names_gracefully() {
        let mut p = unleveled_tiny();
        let bogus = vec![LevelSuggestion {
            iface: "Ghost".into(),
            prop: "ibw".into(),
            cutpoints: vec![1.0],
        }];
        assert_eq!(apply_suggestions(&mut p, &bogus), 0);
    }

    #[test]
    fn headroom_zero_gives_single_cut() {
        let p = unleveled_tiny();
        let s = suggest_levels(&p, 0.0);
        let m = s.iter().find(|x| x.iface == "M").unwrap();
        assert_eq!(m.cutpoints.len(), 1);
    }
}
