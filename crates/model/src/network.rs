//! Network substrate: nodes, undirected links, attached resource capacities.
//!
//! The planner treats links as traversable in both directions (a `cross`
//! action exists per direction); capacities are shared between directions,
//! matching the paper's model where crossing consumes the link's bandwidth
//! regardless of orientation.

use crate::ids::{DirLink, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Coarse link classification used by scenario definitions and the
/// "reserved LAN bandwidth" metric of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LinkClass {
    /// Local-area link (150 units in the paper's experiment).
    Lan,
    /// Wide-area link (70 units in the paper's experiment).
    Wan,
    /// Anything else.
    #[default]
    Other,
}

/// A network node with named resource capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeData {
    /// Human-readable name (unique within the network).
    pub name: String,
    /// Resource capacities by catalog name (e.g. `cpu -> 30`).
    pub resources: BTreeMap<String, f64>,
}

/// An undirected network link with named resource capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkData {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Resource capacities by catalog name (e.g. `lbw -> 70`).
    pub resources: BTreeMap<String, f64>,
    /// LAN / WAN classification.
    pub class: LinkClass,
}

/// An undirected network graph with resource-annotated nodes and links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<NodeData>,
    links: Vec<LinkData>,
    /// adjacency[n] = links incident to node n
    #[serde(skip)]
    adjacency: Vec<Vec<LinkId>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Add a node with the given name and resource capacities.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        resources: impl IntoIterator<Item = (impl Into<String>, f64)>,
    ) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            name: name.into(),
            resources: resources.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected link between `a` and `b`.
    ///
    /// Panics if either endpoint is out of range or `a == b` (self-links
    /// make no sense for stream crossing).
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: LinkClass,
        resources: impl IntoIterator<Item = (impl Into<String>, f64)>,
    ) -> LinkId {
        assert!(a.index() < self.nodes.len(), "link endpoint {a} out of range");
        assert!(b.index() < self.nodes.len(), "link endpoint {b} out of range");
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId::from_index(self.links.len());
        self.links.push(LinkData {
            a,
            b,
            resources: resources.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            class,
        });
        self.adjacency[a.index()].push(id);
        self.adjacency[b.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Node data by id.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    /// Link data by id.
    pub fn link(&self, id: LinkId) -> &LinkData {
        &self.links[id.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId::from_index)
    }

    /// All nodes with data.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeData)> {
        self.nodes.iter().enumerate().map(|(i, d)| (NodeId::from_index(i), d))
    }

    /// All links with data.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkData)> {
        self.links.iter().enumerate().map(|(i, d)| (LinkId::from_index(i), d))
    }

    /// Find a node by name (linear scan; fine for construction-time use).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId::from_index)
    }

    /// Links incident to a node.
    pub fn incident(&self, n: NodeId) -> &[LinkId] {
        &self.adjacency[n.index()]
    }

    /// Neighbor on `link` opposite to `n` (None if `n` is not an endpoint).
    pub fn opposite(&self, link: LinkId, n: NodeId) -> Option<NodeId> {
        let l = self.link(link);
        if l.a == n {
            Some(l.b)
        } else if l.b == n {
            Some(l.a)
        } else {
            None
        }
    }

    /// All directed traversals (two per undirected link).
    pub fn directed_links(&self) -> impl Iterator<Item = DirLink> + '_ {
        self.links().flat_map(|(id, l)| {
            [DirLink { link: id, from: l.a, to: l.b }, DirLink { link: id, from: l.b, to: l.a }]
        })
    }

    /// The undirected link between two nodes, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.index()].iter().copied().find(|&l| self.opposite(l, a) == Some(b))
    }

    /// Capacity of a node resource (0 when absent, matching "no resource
    /// declared" semantics).
    pub fn node_capacity(&self, n: NodeId, res: &str) -> f64 {
        self.node(n).resources.get(res).copied().unwrap_or(0.0)
    }

    /// Capacity of a link resource (0 when absent).
    pub fn link_capacity(&self, l: LinkId, res: &str) -> f64 {
        self.link(l).resources.get(res).copied().unwrap_or(0.0)
    }

    /// Set the capacity of a node resource, inserting it when absent.
    ///
    /// The mutation entry point for dynamic environments (churn, failure
    /// injection, adaptation markers): structure is immutable after
    /// construction, capacities are not.
    pub fn set_node_capacity(&mut self, n: NodeId, res: impl Into<String>, value: f64) {
        self.nodes[n.index()].resources.insert(res.into(), value);
    }

    /// Set the capacity of a link resource, inserting it when absent.
    pub fn set_link_capacity(&mut self, l: LinkId, res: impl Into<String>, value: f64) {
        self.links[l.index()].resources.insert(res.into(), value);
    }

    /// Rebuild the adjacency index (needed after deserialization, where the
    /// index is skipped).
    pub fn rebuild_adjacency(&mut self) {
        self.adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            self.adjacency[l.a.index()].push(LinkId::from_index(i));
            self.adjacency[l.b.index()].push(LinkId::from_index(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::names::{CPU, LBW};

    fn two_node() -> (Network, NodeId, NodeId, LinkId) {
        let mut net = Network::new();
        let a = net.add_node("n0", [(CPU, 30.0)]);
        let b = net.add_node("n1", [(CPU, 30.0)]);
        let l = net.add_link(a, b, LinkClass::Wan, [(LBW, 70.0)]);
        (net, a, b, l)
    }

    #[test]
    fn construction_and_lookup() {
        let (net, a, b, l) = two_node();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_links(), 1);
        assert_eq!(net.node(a).name, "n0");
        assert_eq!(net.node_by_name("n1"), Some(b));
        assert_eq!(net.node_by_name("zzz"), None);
        assert_eq!(net.link(l).class, LinkClass::Wan);
        assert_eq!(net.node_capacity(a, CPU), 30.0);
        assert_eq!(net.node_capacity(a, "mem"), 0.0);
        assert_eq!(net.link_capacity(l, LBW), 70.0);
    }

    #[test]
    fn adjacency_and_direction() {
        let (net, a, b, l) = two_node();
        assert_eq!(net.incident(a), &[l]);
        assert_eq!(net.opposite(l, a), Some(b));
        assert_eq!(net.opposite(l, b), Some(a));
        assert_eq!(net.link_between(a, b), Some(l));
        assert_eq!(net.link_between(b, a), Some(l));
        let dirs: Vec<_> = net.directed_links().collect();
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].from, a);
        assert_eq!(dirs[1].from, b);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_link() {
        let mut net = Network::new();
        let a = net.add_node("n0", [(CPU, 1.0)]);
        net.add_link(a, a, LinkClass::Lan, [(LBW, 1.0)]);
    }

    #[test]
    fn rebuild_adjacency_after_clear() {
        let (mut net, a, b, l) = two_node();
        net.adjacency.clear();
        net.rebuild_adjacency();
        assert_eq!(net.incident(a), &[l]);
        assert_eq!(net.incident(b), &[l]);
    }

    #[test]
    fn capacity_mutation() {
        let (mut net, a, _, l) = two_node();
        net.set_node_capacity(a, CPU, 12.5);
        assert_eq!(net.node_capacity(a, CPU), 12.5);
        net.set_node_capacity(a, "gpu", 4.0); // insert-when-absent
        assert_eq!(net.node_capacity(a, "gpu"), 4.0);
        net.set_link_capacity(l, LBW, 0.0);
        assert_eq!(net.link_capacity(l, LBW), 0.0);
        // structure untouched
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.incident(a), &[l]);
    }

    #[test]
    fn opposite_of_nonincident_is_none() {
        let (mut net, _, _, l) = two_node();
        let c = net.add_node("n2", [(CPU, 1.0)]);
        assert_eq!(net.opposite(l, c), None);
    }
}
