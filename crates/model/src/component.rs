//! Component and interface specifications (paper §2.1, Figures 2 and 6).
//!
//! A *component* consumes and produces *interfaces* (data streams). Each
//! interface carries application-specific properties (the media domain has
//! one, `ibw` — stream bandwidth). Component specifications contain
//! formulae for deployment conditions, resource consumption and output
//! property derivation; interface specifications describe what happens when
//! a stream crosses a network link.

use crate::expr::{Cond, Effect, Expr};
use crate::levels::LevelSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic variable inside a specification formula.
///
/// Scope rules: `Iface` variables must name an interface the component
/// requires or implements (for component formulas) or the interface itself
/// (for cross formulas); `Node`/`Link` variables name catalog resources.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpecVar {
    /// `<iface>.<prop>`, e.g. `T.ibw`.
    Iface {
        /// Interface (port) name.
        iface: String,
        /// Property name.
        prop: String,
    },
    /// `node.<res>`, e.g. `node.cpu`.
    Node {
        /// Resource catalog name.
        res: String,
    },
    /// `link.<res>`, e.g. `link.lbw`.
    Link {
        /// Resource catalog name.
        res: String,
    },
}

impl SpecVar {
    /// `<iface>.<prop>` helper.
    pub fn iface(iface: impl Into<String>, prop: impl Into<String>) -> Self {
        SpecVar::Iface { iface: iface.into(), prop: prop.into() }
    }

    /// `node.<res>` helper.
    pub fn node(res: impl Into<String>) -> Self {
        SpecVar::Node { res: res.into() }
    }

    /// `link.<res>` helper.
    pub fn link(res: impl Into<String>) -> Self {
        SpecVar::Link { res: res.into() }
    }
}

impl fmt::Display for SpecVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecVar::Iface { iface, prop } => write!(f, "{iface}.{prop}"),
            SpecVar::Node { res } => write!(f, "node.{res}"),
            SpecVar::Link { res } => write!(f, "link.{res}"),
        }
    }
}

/// Spec-level expression alias.
pub type SExpr = Expr<SpecVar>;
/// Spec-level condition alias.
pub type SCond = Cond<SpecVar>;
/// Spec-level effect alias.
pub type SEffect = Effect<SpecVar>;

/// An interface (stream) type specification — paper Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceSpec {
    /// Unique interface name (`M`, `T`, ...).
    pub name: String,
    /// Property names carried by the stream (`ibw`, possibly `latency`...).
    pub properties: Vec<String>,
    /// Degradable: availability at a higher property level implies
    /// availability at lower ones (a stream can be throttled). This is the
    /// paper's default for bandwidth-like properties.
    pub degradable: bool,
    /// Conditions for crossing a link (usually empty; a secure stream might
    /// require `link.secure >= 1`).
    pub cross_conditions: Vec<SCond>,
    /// Effects of crossing a link: property transformation and link
    /// resource consumption. `Iface` variables refer to this interface;
    /// `Link` variables to the crossed link. Effects apply sequentially,
    /// each reading the pre-state of its own targets (paper's tick-mark
    /// primed variables).
    pub cross_effects: Vec<SEffect>,
    /// Cost of a `cross` action carrying this stream, as a function of the
    /// same variables (paper §3.1's user-specified cost formula).
    pub cross_cost: SExpr,
    /// Level specs per property (paper Table 1). Missing properties are
    /// trivially leveled.
    pub levels: BTreeMap<String, LevelSpec>,
}

impl InterfaceSpec {
    /// A bandwidth-carrying stream with the paper's standard cross
    /// semantics: `p' := min(p, link.lbw); link.lbw -= min(p, link.lbw)`
    /// — the delivered bandwidth is capped by and consumes link bandwidth.
    pub fn bandwidth_stream(name: impl Into<String>, prop: &str, lbw: &str) -> Self {
        use crate::expr::AssignOp;
        let name = name.into();
        let p = SpecVar::iface(name.clone(), prop);
        let l = SpecVar::link(lbw);
        let capped = Expr::var(p.clone()).min_e(Expr::var(l.clone()));
        InterfaceSpec {
            name,
            properties: vec![prop.to_string()],
            degradable: true,
            cross_conditions: Vec::new(),
            cross_effects: vec![
                Effect::new(l, AssignOp::Sub, capped.clone()),
                Effect::new(p, AssignOp::Set, capped),
            ],
            cross_cost: Expr::c(1.0),
            levels: BTreeMap::new(),
        }
    }

    /// Set the cross-action cost formula (builder style).
    pub fn with_cross_cost(mut self, cost: SExpr) -> Self {
        self.cross_cost = cost;
        self
    }

    /// Set the level spec of one property (builder style).
    pub fn with_levels(mut self, prop: &str, levels: LevelSpec) -> Self {
        self.levels.insert(prop.to_string(), levels);
        self
    }

    /// Level spec of a property (trivial when unspecified).
    pub fn levels_of(&self, prop: &str) -> LevelSpec {
        self.levels.get(prop).cloned().unwrap_or_default()
    }
}

/// Placement restriction for a component.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// May be placed on any node (subject to resource conditions).
    #[default]
    Anywhere,
    /// May only be placed on the named nodes (e.g. a licensed codec).
    Only(Vec<String>),
}

/// A component type specification — paper Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Unique component name (`Merger`, ...).
    pub name: String,
    /// Interfaces the component consumes (each at most once).
    pub requires: Vec<String>,
    /// Interfaces the component produces.
    pub implements: Vec<String>,
    /// Deployment conditions over input properties and node resources.
    pub conditions: Vec<SCond>,
    /// Deployment effects: output property derivation (`M.ibw := T.ibw +
    /// I.ibw`) and node resource consumption (`node.cpu -= ...`). Effects
    /// apply sequentially reading the pre-state.
    pub effects: Vec<SEffect>,
    /// Cost of placing this component (paper §3.1, e.g.
    /// `1 + (T.ibw + I.ibw)/10`).
    pub cost: SExpr,
    /// Placement restriction.
    pub placement: Placement,
}

impl ComponentSpec {
    /// A component with no linkages and unit cost; fill in the rest with
    /// the builder methods.
    pub fn new(name: impl Into<String>) -> Self {
        ComponentSpec {
            name: name.into(),
            requires: Vec::new(),
            implements: Vec::new(),
            conditions: Vec::new(),
            effects: Vec::new(),
            cost: Expr::c(1.0),
            placement: Placement::Anywhere,
        }
    }

    /// Add a required interface.
    pub fn requires(mut self, iface: impl Into<String>) -> Self {
        self.requires.push(iface.into());
        self
    }

    /// Add an implemented interface.
    pub fn implements(mut self, iface: impl Into<String>) -> Self {
        self.implements.push(iface.into());
        self
    }

    /// Add a condition.
    pub fn condition(mut self, c: SCond) -> Self {
        self.conditions.push(c);
        self
    }

    /// Add an effect.
    pub fn effect(mut self, e: SEffect) -> Self {
        self.effects.push(e);
        self
    }

    /// Set the placement cost.
    pub fn with_cost(mut self, cost: SExpr) -> Self {
        self.cost = cost;
        self
    }

    /// Restrict placement to the named nodes.
    pub fn only_on(mut self, nodes: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.placement = Placement::Only(nodes.into_iter().map(Into::into).collect());
        self
    }

    /// All interface names in scope for this component's formulas.
    pub fn scope(&self) -> impl Iterator<Item = &str> {
        self.requires.iter().chain(self.implements.iter()).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AssignOp, CmpOp};

    /// Build the paper's Figure 2 Merger spec verbatim.
    fn merger() -> ComponentSpec {
        let t = || Expr::var(SpecVar::iface("T", "ibw"));
        let i = || Expr::var(SpecVar::iface("I", "ibw"));
        let cpu = || Expr::var(SpecVar::node("cpu"));
        ComponentSpec::new("Merger")
            .requires("T")
            .requires("I")
            .implements("M")
            .condition(Cond::new(cpu(), CmpOp::Ge, (t() + i()) / Expr::c(5.0)))
            .condition(Cond::new(t() * Expr::c(3.0), CmpOp::Eq, i() * Expr::c(7.0)))
            .effect(Effect::new(SpecVar::iface("M", "ibw"), AssignOp::Set, t() + i()))
            .effect(Effect::new(SpecVar::node("cpu"), AssignOp::Sub, (t() + i()) / Expr::c(5.0)))
            .with_cost(Expr::c(1.0) + (t() + i()) / Expr::c(10.0))
    }

    #[test]
    fn merger_spec_shape() {
        let m = merger();
        assert_eq!(m.requires, vec!["T", "I"]);
        assert_eq!(m.implements, vec!["M"]);
        assert_eq!(m.conditions.len(), 2);
        assert_eq!(m.effects.len(), 2);
        let scope: Vec<_> = m.scope().collect();
        assert_eq!(scope, vec!["T", "I", "M"]);
    }

    #[test]
    fn merger_formulas_evaluate() {
        let m = merger();
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { iface, .. } if iface == "T" => 63.0,
            SpecVar::Iface { iface, .. } if iface == "I" => 27.0,
            SpecVar::Node { .. } => 30.0,
            _ => panic!("unexpected var"),
        };
        assert!(m.conditions.iter().all(|c| c.holds(&mut env)));
        assert_eq!(m.cost.eval(&mut env), 10.0);
        // output derivation
        assert_eq!(m.effects[0].value.eval(&mut env), 90.0);
    }

    #[test]
    fn bandwidth_stream_cross_semantics() {
        let m = InterfaceSpec::bandwidth_stream("M", "ibw", "lbw");
        assert!(m.degradable);
        assert_eq!(m.cross_effects.len(), 2);
        // crossing 90 units over a 70-unit link delivers 70 and drains it
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { .. } => 90.0,
            SpecVar::Link { .. } => 70.0,
            _ => panic!(),
        };
        let drained = m.cross_effects[0].value.eval(&mut env);
        assert_eq!(drained, 70.0);
        assert_eq!(m.cross_effects[1].value.eval(&mut env), 70.0);
    }

    #[test]
    fn spec_var_display() {
        assert_eq!(SpecVar::iface("T", "ibw").to_string(), "T.ibw");
        assert_eq!(SpecVar::node("cpu").to_string(), "node.cpu");
        assert_eq!(SpecVar::link("lbw").to_string(), "link.lbw");
    }

    #[test]
    fn placement_builder() {
        let c = ComponentSpec::new("Server").only_on(["n7"]);
        assert_eq!(c.placement, Placement::Only(vec!["n7".to_string()]));
    }

    #[test]
    fn levels_of_defaults_trivial() {
        let m = InterfaceSpec::bandwidth_stream("M", "ibw", "lbw");
        assert!(m.levels_of("ibw").is_trivial());
        let m2 = m.with_levels("ibw", LevelSpec::new(vec![100.0]).unwrap());
        assert_eq!(m2.levels_of("ibw").num_levels(), 2);
    }
}
