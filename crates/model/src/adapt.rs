//! Deployment adaptation and repair (the paper's §6 future-work item):
//! replan an application whose environment changed, **reusing or
//! migrating** already-deployed components instead of paying for fresh
//! instantiations — "separate operators are necessary, because the cost of
//! migration differs from that of the initial deployment".
//!
//! The encoding is a pure problem transformation, so the ordinary planner
//! solves adaptation problems unchanged: for every component with existing
//! instances we add a *static* per-node marker resource
//! `deployed_<comp>` (1 on nodes hosting an instance, 0 elsewhere) and
//! rewrite the component's placement-cost formula to
//!
//! ```text
//! deployed · keep_cost  +  (1 − deployed) · migration_factor · original
//! ```
//!
//! Keeping a component where it already runs is (nearly) free; placing it
//! anywhere else pays the migration tariff. Because the marker is a static
//! resource, grounding evaluates it exactly, so the planner's cost lower
//! bounds — and therefore its optimality — are unaffected in precision.
//! Resource consumption is recomputed from scratch for the whole adapted
//! deployment (capacities in the problem are full capacities, not
//! residuals), which matches the repair semantics of tearing down the old
//! flow assignments and re-establishing them.

use crate::expr::Expr;
use crate::ids::NodeId;
use crate::problem::{CppProblem, StreamSource};
use crate::resource::{Elasticity, ResourceDef};
use crate::SpecVar;
use serde::{Deserialize, Serialize};

/// A component instance currently running in the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExistingPlacement {
    /// Component name.
    pub component: String,
    /// Host node.
    pub node: NodeId,
}

/// The state of an existing deployment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExistingDeployment {
    /// Running component instances.
    pub placements: Vec<ExistingPlacement>,
    /// Streams that remain available independently of replanning (e.g.
    /// a long-lived GridFTP staging area). Flows produced by the existing
    /// components themselves are *not* listed — the adapted plan re-derives
    /// them.
    pub streams: Vec<StreamSource>,
}

impl ExistingDeployment {
    /// True when nothing is deployed (adaptation degenerates to planning).
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty() && self.streams.is_empty()
    }
}

/// Cost model for adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Cost of keeping a component on its current node (re-binding its
    /// streams is cheap but not free).
    pub keep_cost: f64,
    /// Multiplier applied to the component's original placement-cost
    /// formula when it must move (state transfer + cold start typically
    /// exceeds a fresh instantiation; the paper only says it *differs*).
    pub migration_factor: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig { keep_cost: 0.5, migration_factor: 1.5 }
    }
}

/// Name of the static marker resource for a component.
pub fn deployed_marker(component: &str) -> String {
    format!("deployed_{component}")
}

/// Build the adaptation problem: `base` (with its — possibly changed —
/// network) plus the keep/migrate cost structure induced by `existing`.
///
/// Returns an ordinary [`CppProblem`]; solve it with the ordinary planner.
/// Panics if `existing` references unknown components or nodes (callers
/// derive it from a previous plan, so a mismatch is a programming error).
///
/// ```
/// use sekitei_model::adapt::{adapt_problem, AdaptConfig};
/// use sekitei_model::{
///     media_domain, CppProblem, ExistingDeployment, ExistingPlacement, Goal, LevelScenario,
///     LinkClass, Network, NodeId, StreamSource,
/// };
///
/// // a two-node media problem
/// let mut net = Network::new();
/// let s = net.add_node("s", [("cpu", 30.0)]);
/// let k = net.add_node("k", [("cpu", 30.0)]);
/// net.add_link(s, k, LinkClass::Wan, [("lbw", 70.0)]);
/// let d = media_domain(LevelScenario::C);
/// let base = CppProblem {
///     network: net,
///     resources: d.resources,
///     interfaces: d.interfaces,
///     components: d.components,
///     sources: vec![StreamSource::up_to("M", s, "ibw", 200.0)],
///     pre_placed: vec![],
///     goals: vec![Goal { component: "Client".into(), node: k }],
/// };
/// let existing = ExistingDeployment {
///     placements: vec![ExistingPlacement { component: "Splitter".into(), node: s }],
///     streams: vec![],
/// };
/// let adapted = adapt_problem(&base, &existing, &AdaptConfig::default());
/// // a static marker resource now prices keeping vs migrating the Splitter
/// assert!(adapted.resource("deployed_Splitter").is_some());
/// ```
pub fn adapt_problem(
    base: &CppProblem,
    existing: &ExistingDeployment,
    cfg: &AdaptConfig,
) -> CppProblem {
    let mut p = base.clone();
    // components with at least one running instance
    let mut touched: Vec<&str> = existing
        .placements
        .iter()
        .map(|e| {
            assert!(
                p.comp_id(&e.component).is_some(),
                "existing placement references unknown component `{}`",
                e.component
            );
            assert!(
                e.node.index() < p.network.num_nodes(),
                "existing placement references node {} outside the network",
                e.node
            );
            e.component.as_str()
        })
        .collect();
    touched.sort_unstable();
    touched.dedup();

    for name in touched {
        let marker = deployed_marker(name);
        let mut def = ResourceDef::node(marker.clone());
        def.consumable = false;
        def.elasticity = Elasticity::Rigid;
        p.resources.push(def);

        // stamp the marker onto hosting nodes (absent ⇒ capacity 0)
        let hosts: Vec<NodeId> =
            existing.placements.iter().filter(|e| e.component == name).map(|e| e.node).collect();
        for node in hosts {
            p.network.set_node_capacity(node, marker.clone(), 1.0);
        }

        let idx = p.comp_id(name).expect("checked above").index();
        let original = p.components[idx].cost.clone();
        let d = || Expr::var(SpecVar::node(marker.clone()));
        p.components[idx].cost = d() * Expr::c(cfg.keep_cost)
            + (Expr::c(1.0) - d()) * (Expr::c(cfg.migration_factor) * original);
    }

    p.sources.extend(existing.streams.iter().cloned());
    debug_assert!(p.validate().is_ok());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{media_domain, LevelScenario};
    use crate::network::{LinkClass, Network};
    use crate::problem::Goal;
    use crate::resource::names::{CPU, LBW};

    fn base() -> CppProblem {
        let mut net = Network::new();
        let a = net.add_node("a", [(CPU, 30.0)]);
        let b = net.add_node("b", [(CPU, 30.0)]);
        net.add_link(a, b, LinkClass::Wan, [(LBW, 70.0)]);
        let d = media_domain(LevelScenario::C);
        CppProblem {
            network: net,
            resources: d.resources,
            interfaces: d.interfaces,
            components: d.components,
            sources: vec![StreamSource::up_to("M", a, "ibw", 200.0)],
            pre_placed: vec![],
            goals: vec![Goal { component: "Client".into(), node: b }],
        }
    }

    #[test]
    fn adapt_adds_markers_and_rewrites_costs() {
        let p = base();
        let existing = ExistingDeployment {
            placements: vec![
                ExistingPlacement { component: "Splitter".into(), node: NodeId(0) },
                ExistingPlacement { component: "Client".into(), node: NodeId(1) },
            ],
            streams: vec![],
        };
        let q = adapt_problem(&p, &existing, &AdaptConfig::default());
        q.validate().unwrap();
        assert!(q.resource(&deployed_marker("Splitter")).is_some());
        assert!(q.resource(&deployed_marker("Client")).is_some());
        assert!(q.resource(&deployed_marker("Zip")).is_none());
        assert_eq!(q.network.node_capacity(NodeId(0), &deployed_marker("Splitter")), 1.0);
        assert_eq!(q.network.node_capacity(NodeId(1), &deployed_marker("Splitter")), 0.0);

        // keep cost: Splitter at node a with M = 100 → 0.5
        let idx = q.comp_id("Splitter").unwrap().index();
        let cost = &q.components[idx].cost;
        let at = |deployed: f64| {
            cost.eval(&mut |v: &SpecVar| match v {
                SpecVar::Node { res } if res == CPU => 30.0,
                SpecVar::Node { .. } => deployed,
                _ => 100.0,
            })
        };
        assert!((at(1.0) - 0.5).abs() < 1e-9, "keep = {}", at(1.0));
        // migrate: 1.5 × (1 + 100/10) = 16.5
        assert!((at(0.0) - 16.5).abs() < 1e-9, "migrate = {}", at(0.0));
    }

    #[test]
    fn adapt_keeps_network_structure() {
        let p = base();
        let existing = ExistingDeployment {
            placements: vec![ExistingPlacement { component: "Zip".into(), node: NodeId(0) }],
            streams: vec![],
        };
        let q = adapt_problem(&p, &existing, &AdaptConfig::default());
        assert_eq!(q.network.num_nodes(), p.network.num_nodes());
        assert_eq!(q.network.num_links(), p.network.num_links());
        assert!(q.network.link_between(NodeId(0), NodeId(1)).is_some());
        // untouched resources intact
        assert_eq!(q.network.node_capacity(NodeId(0), CPU), 30.0);
    }

    #[test]
    fn adapt_appends_streams() {
        let p = base();
        let existing = ExistingDeployment {
            placements: vec![],
            streams: vec![StreamSource::up_to("Z", NodeId(1), "ibw", 35.0)],
        };
        let q = adapt_problem(&p, &existing, &AdaptConfig::default());
        assert_eq!(q.sources.len(), 2);
        assert!(!existing.is_empty());
        assert!(ExistingDeployment::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown component")]
    fn adapt_rejects_unknown_component() {
        let p = base();
        let existing = ExistingDeployment {
            placements: vec![ExistingPlacement { component: "Ghost".into(), node: NodeId(0) }],
            streams: vec![],
        };
        adapt_problem(&p, &existing, &AdaptConfig::default());
    }
}
