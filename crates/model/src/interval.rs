//! Closed real intervals `[lo, hi]` with `hi` possibly `+inf`.
//!
//! Interval arithmetic is the planner's reasoning substrate: component and
//! link formulas are *non-reversible* point functions, but they can always be
//! evaluated conservatively over intervals (range semantics). The planner
//! prunes a partial plan exactly when a required interval becomes empty.
//!
//! Resource *levels* (paper §3.1) are half-open `[c_i, c_{i+1})` partitions;
//! [`crate::levels::LevelSpec`] handles the half-open classification while
//! arithmetic here treats intervals as closed. The distinction only matters
//! at cutpoints and is resolved in favour of feasibility (the paper's
//! "optimistic" maps), never soundness: plans are re-validated by concrete
//! execution before being returned.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison slack for emptiness / containment checks. Resource formulas
/// chain a handful of multiplications; 1e-9 absolute slack is far below any
/// meaningful bandwidth or CPU quantum while absorbing float noise.
pub const EPS: f64 = 1e-9;

/// A closed interval of reals, possibly unbounded above.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound (`f64::INFINITY` for unbounded).
    pub hi: f64,
}

impl Interval {
    /// `[lo, hi]`. Does not require `lo <= hi`; an inverted pair is the
    /// canonical empty interval.
    #[inline]
    pub const fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    #[inline]
    pub const fn point(x: f64) -> Self {
        Interval { lo: x, hi: x }
    }

    /// `[0, +inf)` — the default range of every resource variable.
    #[inline]
    pub const fn nonneg() -> Self {
        Interval { lo: 0.0, hi: f64::INFINITY }
    }

    /// The canonical empty interval.
    #[inline]
    pub const fn empty() -> Self {
        Interval { lo: 1.0, hi: 0.0 }
    }

    /// `(-inf, +inf)`.
    #[inline]
    pub const fn all() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// True iff the interval contains no point (up to [`EPS`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi + EPS
    }

    /// True iff `x` lies within (up to [`EPS`]).
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo - EPS && x <= self.hi + EPS
    }

    /// True iff `other` is entirely within `self` (empty ⊆ anything).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (other.lo >= self.lo - EPS && other.hi <= self.hi + EPS)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }

    /// Smallest interval containing both (convex hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
        }
    }

    /// True iff the intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Width (`hi - lo`), 0 for empty, `inf` for unbounded.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Clamp the interval into `[0, +inf)` — used after subtracting
    /// consumption from an availability, where negative *lower* bounds just
    /// mean "possibly exhausted", not "negative resource".
    pub fn clamp_nonneg(&self) -> Interval {
        Interval { lo: self.lo.max(0.0), hi: self.hi }
    }

    // ----------------------------------------------------------------- //
    // Arithmetic (range semantics: result ⊇ { f(x, y) | x ∈ a, y ∈ b }). //
    // ----------------------------------------------------------------- //

    /// Pointwise `a + b`.
    #[inline]
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval { lo: self.lo + other.lo, hi: self.hi + other.hi }
    }

    /// Pointwise `a - b`.
    #[inline]
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval { lo: self.lo - other.hi, hi: self.hi - other.lo }
    }

    /// Pointwise negation.
    #[inline]
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return Interval::empty();
        }
        Interval { lo: -self.hi, hi: -self.lo }
    }

    /// Pointwise product (general sign handling via the four corner
    /// products; `0 * inf` is resolved to `0`, the conservative choice for
    /// resource formulas where `inf` only arises from unbounded *ranges*,
    /// not actual values).
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        #[inline]
        fn m(a: f64, b: f64) -> f64 {
            let p = a * b;
            if p.is_nan() {
                0.0
            } else {
                p
            }
        }
        let c = [
            m(self.lo, other.lo),
            m(self.lo, other.hi),
            m(self.hi, other.lo),
            m(self.hi, other.hi),
        ];
        Interval {
            lo: c.iter().copied().fold(f64::INFINITY, f64::min),
            hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Pointwise quotient. If the divisor straddles or touches zero the
    /// result is widened to the full real line (a sound over-approximation;
    /// CPP resource formulas always divide by positive constants, so this
    /// path never fires in practice).
    pub fn div(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        if other.contains(0.0) {
            return Interval::all();
        }
        let inv = Interval { lo: 1.0 / other.hi, hi: 1.0 / other.lo };
        self.mul(&inv)
    }

    /// Pointwise `min(a, b)`.
    #[inline]
    pub fn min_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval { lo: self.lo.min(other.lo), hi: self.hi.min(other.hi) }
    }

    /// Pointwise `max(a, b)`.
    #[inline]
    pub fn max_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::empty();
        }
        Interval { lo: self.lo.max(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Finite stand-in for the upper bound: used by greedy concretization,
    /// which pushes "as much as available" (`cap` bounds unbounded levels).
    pub fn finite_hi(&self, cap: f64) -> f64 {
        if self.hi.is_finite() {
            self.hi
        } else {
            cap.max(self.lo)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        if self.hi.is_finite() {
            write!(f, "[{}, {}]", self.lo, self.hi)
        } else {
            write!(f, "[{}, ∞)", self.lo)
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::nonneg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empties() {
        assert!(Interval::empty().is_empty());
        assert!(!Interval::nonneg().is_empty());
        assert!(!Interval::point(3.0).is_empty());
        assert!(Interval::new(5.0, 2.0).is_empty());
    }

    #[test]
    fn intersect_basic() {
        let a = Interval::new(90.0, 100.0);
        let b = Interval::new(95.0, 200.0);
        let c = a.intersect(&b);
        assert_eq!(c, Interval::new(95.0, 100.0));
        assert!(a.intersects(&b));
        let d = Interval::new(0.0, 70.0);
        assert!(a.intersect(&d).is_empty());
        assert!(!a.intersects(&d));
    }

    #[test]
    fn hull_and_width() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(5.0, 9.0);
        assert_eq!(a.hull(&b), Interval::new(1.0, 9.0));
        assert_eq!(a.hull(&Interval::empty()), a);
        assert_eq!(Interval::empty().hull(&b), b);
        assert!((b.width() - 4.0).abs() < EPS);
        assert_eq!(Interval::empty().width(), 0.0);
        assert_eq!(Interval::nonneg().width(), f64::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a.add(&b), Interval::new(11.0, 22.0));
        assert_eq!(b.sub(&a), Interval::new(8.0, 19.0));
        assert_eq!(a.mul(&b), Interval::new(10.0, 40.0));
        assert_eq!(b.div(&a), Interval::new(5.0, 20.0));
        assert_eq!(a.neg(), Interval::new(-2.0, -1.0));
        assert_eq!(a.min_i(&b), Interval::new(1.0, 2.0));
        assert_eq!(a.max_i(&b), b);
    }

    #[test]
    fn arithmetic_with_negative_operands() {
        let a = Interval::new(-3.0, 2.0);
        let b = Interval::new(-1.0, 4.0);
        let p = a.mul(&b);
        // corners: 3, -12, -2, 8
        assert_eq!(p, Interval::new(-12.0, 8.0));
    }

    #[test]
    fn div_by_zero_straddle_widens() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-1.0, 1.0);
        assert_eq!(a.div(&b), Interval::all());
    }

    #[test]
    fn unbounded_mul() {
        let a = Interval::new(0.0, f64::INFINITY);
        let b = Interval::point(0.3);
        let p = a.mul(&b);
        assert_eq!(p.lo, 0.0);
        assert_eq!(p.hi, f64::INFINITY);
    }

    #[test]
    fn empty_propagates() {
        let e = Interval::empty();
        let a = Interval::new(1.0, 2.0);
        assert!(e.add(&a).is_empty());
        assert!(a.sub(&e).is_empty());
        assert!(e.mul(&a).is_empty());
        assert!(a.div(&e).is_empty());
        assert!(e.min_i(&a).is_empty());
        assert!(e.max_i(&a).is_empty());
        assert!(e.neg().is_empty());
    }

    #[test]
    fn clamp_nonneg() {
        let a = Interval::new(-5.0, 3.0);
        assert_eq!(a.clamp_nonneg(), Interval::new(0.0, 3.0));
        let b = Interval::new(-5.0, -1.0);
        assert!(b.clamp_nonneg().is_empty());
    }

    #[test]
    fn contains_checks() {
        let a = Interval::new(90.0, 100.0);
        assert!(a.contains(90.0));
        assert!(a.contains(100.0));
        assert!(!a.contains(89.9));
        assert!(a.contains_interval(&Interval::new(91.0, 99.0)));
        assert!(a.contains_interval(&Interval::empty()));
        assert!(!a.contains_interval(&Interval::new(80.0, 95.0)));
    }

    #[test]
    fn finite_hi() {
        assert_eq!(Interval::new(90.0, 100.0).finite_hi(200.0), 100.0);
        assert_eq!(Interval::new(100.0, f64::INFINITY).finite_hi(200.0), 200.0);
        // cap below lo: lo wins (never shrink below the interval)
        assert_eq!(Interval::new(100.0, f64::INFINITY).finite_hi(50.0), 100.0);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(30.0, 70.0).to_string(), "[30, 70]");
        assert_eq!(Interval::new(100.0, f64::INFINITY).to_string(), "[100, ∞)");
        assert_eq!(Interval::empty().to_string(), "∅");
    }
}
