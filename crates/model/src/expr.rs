//! Formula AST for component/interface specifications.
//!
//! Expressions are generic over the variable type `V`: specifications use
//! symbolic [`crate::component::SpecVar`]s, while the compiler rewrites them
//! into dense ground-variable indices for the planner's hot loops.
//!
//! Every expression can be evaluated both over points (`f64`) and over
//! [`Interval`]s (range semantics). Interval evaluation is the sound
//! over-approximation the paper's optimistic resource maps rely on: it never
//! excludes a reachable value, so an empty result proves infeasibility.

use crate::interval::{Interval, EPS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Monotonicity of an expression in one variable, assuming all variables
/// range over `[0, +inf)`. Used to justify the greedy max-utilization
/// strategy (paper §2.2) and to tighten concretization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mono {
    /// Value does not depend on the variable.
    Constant,
    /// Non-decreasing in the variable.
    Increasing,
    /// Non-increasing in the variable.
    Decreasing,
    /// Direction unknown (or genuinely non-monotonic).
    Unknown,
}

impl Mono {
    fn flip(self) -> Mono {
        match self {
            Mono::Increasing => Mono::Decreasing,
            Mono::Decreasing => Mono::Increasing,
            m => m,
        }
    }

    fn join(self, other: Mono) -> Mono {
        use Mono::*;
        match (self, other) {
            (Constant, m) | (m, Constant) => m,
            (Increasing, Increasing) => Increasing,
            (Decreasing, Decreasing) => Decreasing,
            _ => Unknown,
        }
    }
}

/// An arithmetic expression over variables of type `V`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr<V> {
    /// A literal constant.
    Const(f64),
    /// A variable reference.
    Var(V),
    /// `a + b`
    Add(Box<Expr<V>>, Box<Expr<V>>),
    /// `a - b`
    Sub(Box<Expr<V>>, Box<Expr<V>>),
    /// `a * b`
    Mul(Box<Expr<V>>, Box<Expr<V>>),
    /// `a / b`
    Div(Box<Expr<V>>, Box<Expr<V>>),
    /// `min(a, b)`
    Min(Box<Expr<V>>, Box<Expr<V>>),
    /// `max(a, b)`
    Max(Box<Expr<V>>, Box<Expr<V>>),
    /// `-a`
    Neg(Box<Expr<V>>),
}

impl<V> Expr<V> {
    /// Constant helper.
    pub fn c(v: f64) -> Self {
        Expr::Const(v)
    }

    /// Variable helper.
    pub fn var(v: V) -> Self {
        Expr::Var(v)
    }

    /// Point evaluation under an environment.
    pub fn eval(&self, env: &mut impl FnMut(&V) -> f64) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => env(v),
            Expr::Add(a, b) => a.eval(env) + b.eval(env),
            Expr::Sub(a, b) => a.eval(env) - b.eval(env),
            Expr::Mul(a, b) => a.eval(env) * b.eval(env),
            Expr::Div(a, b) => a.eval(env) / b.eval(env),
            Expr::Min(a, b) => a.eval(env).min(b.eval(env)),
            Expr::Max(a, b) => a.eval(env).max(b.eval(env)),
            Expr::Neg(a) => -a.eval(env),
        }
    }

    /// Range evaluation under an interval environment.
    pub fn eval_interval(&self, env: &mut impl FnMut(&V) -> Interval) -> Interval {
        match self {
            Expr::Const(c) => Interval::point(*c),
            Expr::Var(v) => env(v),
            Expr::Add(a, b) => a.eval_interval(env).add(&b.eval_interval(env)),
            Expr::Sub(a, b) => a.eval_interval(env).sub(&b.eval_interval(env)),
            Expr::Mul(a, b) => a.eval_interval(env).mul(&b.eval_interval(env)),
            Expr::Div(a, b) => a.eval_interval(env).div(&b.eval_interval(env)),
            Expr::Min(a, b) => a.eval_interval(env).min_i(&b.eval_interval(env)),
            Expr::Max(a, b) => a.eval_interval(env).max_i(&b.eval_interval(env)),
            Expr::Neg(a) => a.eval_interval(env).neg(),
        }
    }

    /// Visit every variable reference (with repetition).
    pub fn for_each_var(&self, f: &mut impl FnMut(&V)) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => f(v),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.for_each_var(f);
                b.for_each_var(f);
            }
            Expr::Neg(a) => a.for_each_var(f),
        }
    }

    /// Rewrite every variable, producing an expression over a new type.
    pub fn map_vars<W>(&self, f: &mut impl FnMut(&V) -> W) -> Expr<W> {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Var(v) => Expr::Var(f(v)),
            Expr::Add(a, b) => Expr::Add(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Div(a, b) => Expr::Div(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Min(a, b) => Expr::Min(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Max(a, b) => Expr::Max(Box::new(a.map_vars(f)), Box::new(b.map_vars(f))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.map_vars(f))),
        }
    }

    /// Total number of AST nodes (used by spec-size statistics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => 1 + a.size() + b.size(),
            Expr::Neg(a) => 1 + a.size(),
        }
    }
}

impl<V: PartialEq> Expr<V> {
    /// Syntactic monotonicity of the expression in `var`, assuming all
    /// variables are non-negative. This is the "automatic syntactic
    /// analysis" the paper mentions for deriving degradability information.
    pub fn monotonicity(&self, var: &V) -> Mono {
        match self {
            Expr::Const(_) => Mono::Constant,
            Expr::Var(v) => {
                if v == var {
                    Mono::Increasing
                } else {
                    Mono::Constant
                }
            }
            Expr::Add(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                a.monotonicity(var).join(b.monotonicity(var))
            }
            Expr::Sub(a, b) => a.monotonicity(var).join(b.monotonicity(var).flip()),
            Expr::Neg(a) => a.monotonicity(var).flip(),
            Expr::Mul(a, b) => {
                // Sound only under the nonneg-variables assumption when the
                // constant factor is nonneg; otherwise give up.
                match (a.as_ref(), b.as_ref()) {
                    (Expr::Const(c), e) | (e, Expr::Const(c)) => {
                        let m = e.monotonicity(var);
                        if *c >= 0.0 {
                            m
                        } else {
                            m.flip()
                        }
                    }
                    (a, b) => {
                        let (ma, mb) = (a.monotonicity(var), b.monotonicity(var));
                        // product of nonneg monotone factors keeps direction
                        ma.join(mb)
                    }
                }
            }
            Expr::Div(a, b) => match b.as_ref() {
                Expr::Const(c) => {
                    let m = a.monotonicity(var);
                    if *c > 0.0 {
                        m
                    } else {
                        m.flip()
                    }
                }
                _ => {
                    let (ma, mb) = (a.monotonicity(var), b.monotonicity(var));
                    ma.join(mb.flip())
                }
            },
        }
    }
}

impl<V: fmt::Display> fmt::Display for Expr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

// Operator-overload sugar so domain builders read like the paper's formulas.
macro_rules! expr_binop {
    ($trait:ident, $method:ident, $ctor:ident) => {
        impl<V> std::ops::$trait for Expr<V> {
            type Output = Expr<V>;
            fn $method(self, rhs: Expr<V>) -> Expr<V> {
                Expr::$ctor(Box::new(self), Box::new(rhs))
            }
        }
    };
}
expr_binop!(Add, add, Add);
expr_binop!(Sub, sub, Sub);
expr_binop!(Mul, mul, Mul);
expr_binop!(Div, div, Div);

impl<V> Expr<V> {
    /// `min(self, rhs)` builder.
    pub fn min_e(self, rhs: Expr<V>) -> Expr<V> {
        Expr::Min(Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)` builder.
    pub fn max_e(self, rhs: Expr<V>) -> Expr<V> {
        Expr::Max(Box::new(self), Box::new(rhs))
    }
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// A boolean condition `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cond<V> {
    /// Left-hand expression.
    pub lhs: Expr<V>,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand expression.
    pub rhs: Expr<V>,
}

impl<V> Cond<V> {
    /// Build a condition.
    pub fn new(lhs: Expr<V>, op: CmpOp, rhs: Expr<V>) -> Self {
        Cond { lhs, op, rhs }
    }

    /// Point satisfaction.
    pub fn holds(&self, env: &mut impl FnMut(&V) -> f64) -> bool {
        let l = self.lhs.eval(env);
        let r = self.rhs.eval(env);
        match self.op {
            CmpOp::Le => l <= r + EPS,
            CmpOp::Lt => l < r - EPS,
            CmpOp::Ge => l >= r - EPS,
            CmpOp::Gt => l > r + EPS,
            CmpOp::Eq => (l - r).abs() <= EPS.max(1e-9 * l.abs().max(r.abs())),
        }
    }

    /// True iff *some* assignment within the interval environment satisfies
    /// the condition (optimistic / possible satisfaction). Sound for
    /// pruning: `false` proves no point assignment can satisfy it.
    pub fn possibly(&self, env: &mut impl FnMut(&V) -> Interval) -> bool {
        let l = self.lhs.eval_interval(env);
        let r = self.rhs.eval_interval(env);
        if l.is_empty() || r.is_empty() {
            return false;
        }
        match self.op {
            CmpOp::Le => l.lo <= r.hi + EPS,
            CmpOp::Lt => l.lo < r.hi + EPS,
            CmpOp::Ge => l.hi >= r.lo - EPS,
            CmpOp::Gt => l.hi > r.lo - EPS,
            CmpOp::Eq => l.intersects(&r),
        }
    }

    /// True iff *every* assignment within the environment satisfies the
    /// condition (necessary satisfaction).
    pub fn certainly(&self, env: &mut impl FnMut(&V) -> Interval) -> bool {
        let l = self.lhs.eval_interval(env);
        let r = self.rhs.eval_interval(env);
        if l.is_empty() || r.is_empty() {
            return false;
        }
        match self.op {
            CmpOp::Le => l.hi <= r.lo + EPS,
            CmpOp::Lt => l.hi < r.lo - EPS,
            CmpOp::Ge => l.lo >= r.hi - EPS,
            CmpOp::Gt => l.lo > r.hi + EPS,
            CmpOp::Eq => l.width() <= EPS && r.width() <= EPS && (l.lo - r.lo).abs() <= EPS,
        }
    }

    /// Rewrite variables.
    pub fn map_vars<W>(&self, f: &mut impl FnMut(&V) -> W) -> Cond<W> {
        Cond { lhs: self.lhs.map_vars(f), op: self.op, rhs: self.rhs.map_vars(f) }
    }

    /// Visit every variable reference.
    pub fn for_each_var(&self, f: &mut impl FnMut(&V)) {
        self.lhs.for_each_var(f);
        self.rhs.for_each_var(f);
    }
}

impl<V: fmt::Display> fmt::Display for Cond<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// Assignment flavour of an effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    /// `target := value`
    Set,
    /// `target -= value` (resource consumption)
    Sub,
    /// `target += value` (resource release / accumulation, e.g. latency)
    Add,
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssignOp::Set => ":=",
            AssignOp::Sub => "-=",
            AssignOp::Add => "+=",
        };
        f.write_str(s)
    }
}

/// An effect `target (:=|-=|+=) value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Effect<V> {
    /// The variable being written.
    pub target: V,
    /// The assignment flavour.
    pub op: AssignOp,
    /// The value expression, evaluated in the *pre*-state.
    pub value: Expr<V>,
}

impl<V> Effect<V> {
    /// Build an effect.
    pub fn new(target: V, op: AssignOp, value: Expr<V>) -> Self {
        Effect { target, op, value }
    }

    /// Rewrite variables.
    pub fn map_vars<W>(&self, f: &mut impl FnMut(&V) -> W) -> Effect<W> {
        Effect { target: f(&self.target), op: self.op, value: self.value.map_vars(f) }
    }

    /// Visit every variable reference (target and value).
    pub fn for_each_var(&self, f: &mut impl FnMut(&V)) {
        f(&self.target);
        self.value.for_each_var(f);
    }
}

impl<V: fmt::Display> fmt::Display for Effect<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.target, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Expr<&'static str>;

    fn env<'a>(pairs: &'a [(&'static str, f64)]) -> impl FnMut(&&'static str) -> f64 + 'a {
        move |v| pairs.iter().find(|(n, _)| n == v).map(|(_, x)| *x).unwrap()
    }

    #[test]
    fn eval_point() {
        // (T + I) / 5 — the Merger CPU formula
        let e = (E::var("T") + E::var("I")) / E::c(5.0);
        assert_eq!(e.eval(&mut env(&[("T", 63.0), ("I", 27.0)])), 18.0);
    }

    #[test]
    fn eval_min_max_neg() {
        let e = E::var("M").min_e(E::var("lbw"));
        assert_eq!(e.eval(&mut env(&[("M", 90.0), ("lbw", 70.0)])), 70.0);
        let e2 = E::var("M").max_e(E::c(10.0));
        assert_eq!(e2.eval(&mut env(&[("M", 5.0)])), 10.0);
        let e3 = Expr::Neg(Box::new(E::var("M")));
        assert_eq!(e3.eval(&mut env(&[("M", 5.0)])), -5.0);
    }

    #[test]
    fn eval_interval_matches_range() {
        let e = (E::var("T") + E::var("I")) / E::c(5.0);
        let mut ienv = |v: &&'static str| match *v {
            "T" => Interval::new(0.0, 70.0),
            "I" => Interval::new(0.0, 30.0),
            _ => unreachable!(),
        };
        let r = e.eval_interval(&mut ienv);
        assert_eq!(r, Interval::new(0.0, 20.0));
    }

    #[test]
    fn interval_eval_contains_point_eval() {
        // soundness on a sample expression and a sample of points
        let e = (E::var("a") * E::c(0.7)).min_e(E::var("b") - E::var("a") / E::c(2.0));
        for &(a, b) in &[(0.0, 0.0), (10.0, 5.0), (100.0, 70.0), (3.5, 200.0)] {
            let p = e.eval(&mut env(&[("a", a), ("b", b)]));
            let r = e.eval_interval(&mut |v: &&str| match *v {
                "a" => Interval::new(0.0, 100.0),
                _ => Interval::new(0.0, 200.0),
            });
            if (0.0..=100.0).contains(&a) && (0.0..=200.0).contains(&b) {
                assert!(r.contains(p), "{p} not in {r}");
            }
        }
    }

    #[test]
    fn monotonicity_analysis() {
        let e = (E::var("T") + E::var("I")) / E::c(5.0);
        assert_eq!(e.monotonicity(&"T"), Mono::Increasing);
        assert_eq!(e.monotonicity(&"X"), Mono::Constant);
        let e2 = E::c(30.0) - E::var("T");
        assert_eq!(e2.monotonicity(&"T"), Mono::Decreasing);
        let e3 = E::var("T") * E::c(-2.0);
        assert_eq!(e3.monotonicity(&"T"), Mono::Decreasing);
        let e4 = E::var("T").min_e(E::var("lbw"));
        assert_eq!(e4.monotonicity(&"T"), Mono::Increasing);
        let e5 = E::var("T") - E::var("T");
        assert_eq!(e5.monotonicity(&"T"), Mono::Unknown);
        let e6 = E::c(10.0) / E::var("T");
        assert_eq!(e6.monotonicity(&"T"), Mono::Decreasing);
    }

    #[test]
    fn cond_point_and_interval() {
        // Node.cpu >= (T + I)/5
        let c = Cond::new(E::var("cpu"), CmpOp::Ge, (E::var("T") + E::var("I")) / E::c(5.0));
        assert!(c.holds(&mut env(&[("cpu", 30.0), ("T", 63.0), ("I", 27.0)])));
        assert!(!c.holds(&mut env(&[("cpu", 10.0), ("T", 63.0), ("I", 27.0)])));

        let mut wide = |v: &&'static str| match *v {
            "cpu" => Interval::point(30.0),
            "T" => Interval::new(0.0, 140.0),
            "I" => Interval::new(0.0, 60.0),
            _ => unreachable!(),
        };
        // some assignment fits (T=0, I=0) even though max load (40) exceeds cpu
        assert!(c.possibly(&mut wide));
        assert!(!c.certainly(&mut wide));

        let mut heavy = |v: &&'static str| match *v {
            "cpu" => Interval::point(30.0),
            "T" => Interval::new(140.0, 140.0),
            "I" => Interval::new(60.0, 60.0),
            _ => unreachable!(),
        };
        assert!(!c.possibly(&mut heavy));
    }

    #[test]
    fn eq_cond_with_tolerance() {
        // T*3 == I*7 — the Merger ratio constraint
        let c = Cond::new(E::var("T") * E::c(3.0), CmpOp::Eq, E::var("I") * E::c(7.0));
        assert!(c.holds(&mut env(&[("T", 63.0), ("I", 27.0)])));
        assert!(!c.holds(&mut env(&[("T", 63.0), ("I", 28.0)])));
    }

    #[test]
    fn map_vars_roundtrip() {
        let e = (E::var("T") + E::var("I")) / E::c(5.0);
        let mapped: Expr<usize> = e.map_vars(&mut |v| if *v == "T" { 0 } else { 1 });
        assert_eq!(mapped.eval(&mut |i: &usize| [63.0, 27.0][*i]), 18.0);
        let mut count = 0;
        mapped.for_each_var(&mut |_| count += 1);
        assert_eq!(count, 2);
        assert_eq!(mapped.size(), 5);
    }

    #[test]
    fn display_forms() {
        let e = (E::var("T") + E::var("I")) / E::c(5.0);
        assert_eq!(e.to_string(), "((T + I) / 5)");
        let c = Cond::new(E::var("T") * E::c(3.0), CmpOp::Eq, E::var("I") * E::c(7.0));
        assert_eq!(c.to_string(), "(T * 3) == (I * 7)");
        let eff = Effect::new("cpu", AssignOp::Sub, E::var("T") / E::c(10.0));
        assert_eq!(eff.to_string(), "cpu -= (T / 10)");
    }

    #[test]
    fn certainly_on_points() {
        let c = Cond::new(E::var("x"), CmpOp::Eq, E::c(5.0));
        assert!(c.certainly(&mut |_: &&str| Interval::point(5.0)));
        assert!(!c.certainly(&mut |_: &&str| Interval::new(4.0, 6.0)));
    }
}
