//! Property-based tests for the model substrate: interval arithmetic
//! soundness, level-partition invariants, and expression evaluation
//! consistency (interval results always contain point results).

use proptest::prelude::*;
use sekitei_model::{CmpOp, Cond, Expr, Interval, LevelSpec, Mono};

fn finite_interval() -> impl Strategy<Value = Interval> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)))
}

proptest! {
    #[test]
    fn interval_add_sound(a in finite_interval(), b in finite_interval(),
                          ta in 0.0..=1.0f64, tb in 0.0..=1.0f64) {
        let x = a.lo + ta * (a.hi - a.lo);
        let y = b.lo + tb * (b.hi - b.lo);
        prop_assert!(a.add(&b).contains(x + y));
        prop_assert!(a.sub(&b).contains(x - y));
        prop_assert!(a.mul(&b).contains(x * y));
        prop_assert!(a.min_i(&b).contains(x.min(y)));
        prop_assert!(a.max_i(&b).contains(x.max(y)));
        prop_assert!(a.neg().contains(-x));
    }

    #[test]
    fn interval_div_sound(a in finite_interval(), b in finite_interval(),
                          ta in 0.0..=1.0f64, tb in 0.0..=1.0f64) {
        // shift divisor away from zero
        let b = Interval::new(b.lo + 1.0, b.hi + 1.0);
        let x = a.lo + ta * (a.hi - a.lo);
        let y = b.lo + tb * (b.hi - b.lo);
        prop_assert!(a.div(&b).contains(x / y), "{x}/{y} not in {}", a.div(&b));
    }

    #[test]
    fn intersect_hull_laws(a in finite_interval(), b in finite_interval()) {
        let i = a.intersect(&b);
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
        prop_assert!(a.contains_interval(&i));
        prop_assert!(b.contains_interval(&i));
        // intersect is commutative
        prop_assert_eq!(i, b.intersect(&a));
    }

    #[test]
    fn levels_partition(cuts in proptest::collection::vec(0.001..10_000.0f64, 0..8),
                        x in 0.0..20_000.0f64) {
        let ls = LevelSpec::new(cuts).unwrap();
        // every x belongs to exactly one level whose interval contains it
        let l = ls.level_of(x);
        prop_assert!(l < ls.num_levels());
        prop_assert!(ls.interval(l).contains(x));
        // intervals tile [0, inf): consecutive bounds meet exactly
        for i in 1..ls.num_levels() {
            prop_assert_eq!(ls.interval(i - 1).hi, ls.interval(i).lo);
        }
        prop_assert_eq!(ls.interval(0).lo, 0.0);
        prop_assert!(ls.interval(ls.num_levels() - 1).hi.is_infinite());
    }

    #[test]
    fn levels_requirement_within_interval(
            cuts in proptest::collection::vec(0.001..10_000.0f64, 1..6)) {
        let ls = LevelSpec::new(cuts).unwrap();
        for i in 0..ls.num_levels() {
            let req = ls.requirement(i);
            prop_assert!(ls.interval(i).contains_interval(&req));
            prop_assert!(!req.is_empty());
        }
    }

    #[test]
    fn scaled_levels_classify_consistently(
            cuts in proptest::collection::vec(1.0..1000.0f64, 1..5),
            factor in 0.1..5.0f64,
            x in 0.0..2000.0f64) {
        let ls = LevelSpec::new(cuts).unwrap();
        let scaled = ls.scaled(factor);
        // classification commutes with scaling away from cutpoint noise:
        // if x is comfortably inside its level, factor·x lands in the same
        // index of the scaled spec
        let l = ls.level_of(x);
        let iv = ls.interval(l);
        let margin = 1e-6 * x.max(1.0);
        if x - iv.lo > margin && (iv.hi.is_infinite() || iv.hi - x > margin) {
            prop_assert_eq!(scaled.level_of(factor * x), l);
        }
    }
}

// ---------------------------------------------------------------- exprs

/// Random expression over two variables "a" and "b" (division avoided to
/// sidestep near-zero divisors; covered separately above).
fn arb_expr() -> impl Strategy<Value = Expr<&'static str>> {
    let leaf = prop_oneof![
        (0.0..100.0f64).prop_map(Expr::Const),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner).prop_map(|(x, y)| {
            // cycle deterministically through operators by structure size
            match (x.size() + y.size()) % 5 {
                0 => x + y,
                1 => x - y,
                2 => x * Expr::Const(0.5) + y,
                3 => x.min_e(y),
                _ => x.max_e(y),
            }
        })
    })
}

proptest! {
    #[test]
    fn expr_interval_contains_point(e in arb_expr(),
                                    a in finite_interval(), b in finite_interval(),
                                    ta in 0.0..=1.0f64, tb in 0.0..=1.0f64) {
        let x = a.lo + ta * (a.hi - a.lo);
        let y = b.lo + tb * (b.hi - b.lo);
        let point = e.eval(&mut |v: &&str| if *v == "a" { x } else { y });
        let range = e.eval_interval(&mut |v: &&str| if *v == "a" { a } else { b });
        prop_assert!(
            range.contains(point) || point.is_nan(),
            "{point} not in {range}"
        );
    }

    #[test]
    fn monotonicity_agrees_with_sampling(e in arb_expr(), base in 1.0..100.0f64,
                                         delta in 0.1..50.0f64, bval in 0.0..100.0f64) {
        let lo = e.eval(&mut |v: &&str| if *v == "a" { base } else { bval });
        let hi = e.eval(&mut |v: &&str| if *v == "a" { base + delta } else { bval });
        match e.monotonicity(&"a") {
            Mono::Increasing => prop_assert!(hi >= lo - 1e-9, "{e}: {lo} -> {hi}"),
            Mono::Decreasing => prop_assert!(hi <= lo + 1e-9, "{e}: {lo} -> {hi}"),
            Mono::Constant => prop_assert!((hi - lo).abs() < 1e-9, "{e}: {lo} -> {hi}"),
            Mono::Unknown => {}
        }
    }

    #[test]
    fn cond_possibly_certainly_consistent(e in arb_expr(),
                                          a in finite_interval(), b in finite_interval(),
                                          ta in 0.0..=1.0f64, tb in 0.0..=1.0f64,
                                          thr in 0.0..200.0f64) {
        let cond = Cond::new(e, CmpOp::Ge, Expr::Const(thr));
        let x = a.lo + ta * (a.hi - a.lo);
        let y = b.lo + tb * (b.hi - b.lo);
        let holds = cond.holds(&mut |v: &&str| if *v == "a" { x } else { y });
        let mut ienv = |v: &&str| if *v == "a" { a } else { b };
        let possibly = cond.possibly(&mut ienv);
        let certainly = cond.certainly(&mut ienv);
        // certainly ⊆ point-holds ⊆ possibly
        if certainly {
            prop_assert!(holds, "certainly but point fails");
        }
        if holds {
            prop_assert!(possibly, "point holds but not possibly");
        }
    }
}
