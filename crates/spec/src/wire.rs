//! Compact binary wire format for [`CppProblem`]s.
//!
//! Used to ship problem instances between processes (e.g. a deployment
//! service handing work to planner workers) without paying text parsing on
//! the hot path. The format is versioned with a magic header; decoding
//! validates the problem before returning it.

use crate::error::SpecError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sekitei_model::resource::Elasticity;
use sekitei_model::resource::Locus;
use sekitei_model::{
    AssignOp, CmpOp, ComponentSpec, Cond, CppProblem, Effect, Expr, Goal, InterfaceSpec, Interval,
    LevelSpec, LinkClass, Network, NodeId, Placement, PrePlacement, ResourceDef, SpecVar,
    StreamSource,
};

const MAGIC: &[u8; 4] = b"SKT1";

/// Encode a problem to bytes.
pub fn encode(p: &CppProblem) -> Bytes {
    let mut b = BytesMut::with_capacity(4096);
    b.put_slice(MAGIC);

    b.put_u32(p.resources.len() as u32);
    for r in &p.resources {
        put_str(&mut b, &r.name);
        b.put_u8(match r.locus {
            Locus::Node => 0,
            Locus::Link => 1,
        });
        b.put_u8(r.consumable as u8);
        b.put_u8(match r.elasticity {
            Elasticity::Degradable => 0,
            Elasticity::Upgradable => 1,
            Elasticity::Rigid => 2,
        });
        put_levels(&mut b, &r.levels);
    }

    b.put_u32(p.interfaces.len() as u32);
    for i in &p.interfaces {
        put_str(&mut b, &i.name);
        b.put_u32(i.properties.len() as u32);
        for prop in &i.properties {
            put_str(&mut b, prop);
        }
        b.put_u8(i.degradable as u8);
        b.put_u32(i.cross_conditions.len() as u32);
        for c in &i.cross_conditions {
            put_cond(&mut b, c);
        }
        b.put_u32(i.cross_effects.len() as u32);
        for e in &i.cross_effects {
            put_effect(&mut b, e);
        }
        put_expr(&mut b, &i.cross_cost);
        b.put_u32(i.levels.len() as u32);
        for (prop, ls) in &i.levels {
            put_str(&mut b, prop);
            put_levels(&mut b, ls);
        }
    }

    b.put_u32(p.components.len() as u32);
    for c in &p.components {
        put_str(&mut b, &c.name);
        put_strs(&mut b, &c.requires);
        put_strs(&mut b, &c.implements);
        b.put_u32(c.conditions.len() as u32);
        for cd in &c.conditions {
            put_cond(&mut b, cd);
        }
        b.put_u32(c.effects.len() as u32);
        for e in &c.effects {
            put_effect(&mut b, e);
        }
        put_expr(&mut b, &c.cost);
        match &c.placement {
            Placement::Anywhere => b.put_u8(0),
            Placement::Only(nodes) => {
                b.put_u8(1);
                put_strs(&mut b, nodes);
            }
        }
    }

    // network
    b.put_u32(p.network.num_nodes() as u32);
    for (_, n) in p.network.nodes() {
        put_str(&mut b, &n.name);
        b.put_u32(n.resources.len() as u32);
        for (k, v) in &n.resources {
            put_str(&mut b, k);
            b.put_f64(*v);
        }
    }
    b.put_u32(p.network.num_links() as u32);
    for (_, l) in p.network.links() {
        b.put_u32(l.a.0);
        b.put_u32(l.b.0);
        b.put_u8(match l.class {
            LinkClass::Lan => 0,
            LinkClass::Wan => 1,
            LinkClass::Other => 2,
        });
        b.put_u32(l.resources.len() as u32);
        for (k, v) in &l.resources {
            put_str(&mut b, k);
            b.put_f64(*v);
        }
    }

    b.put_u32(p.sources.len() as u32);
    for s in &p.sources {
        put_str(&mut b, &s.iface);
        b.put_u32(s.node.0);
        b.put_u32(s.properties.len() as u32);
        for (k, iv) in &s.properties {
            put_str(&mut b, k);
            b.put_f64(iv.lo);
            b.put_f64(iv.hi);
        }
    }
    b.put_u32(p.pre_placed.len() as u32);
    for pp in &p.pre_placed {
        put_str(&mut b, &pp.component);
        b.put_u32(pp.node.0);
    }
    b.put_u32(p.goals.len() as u32);
    for g in &p.goals {
        put_str(&mut b, &g.component);
        b.put_u32(g.node.0);
    }
    b.freeze()
}

/// Decode and validate a problem from bytes.
pub fn decode(mut buf: &[u8]) -> Result<CppProblem, SpecError> {
    let b = &mut buf;
    let mut magic = [0u8; 4];
    take(b, &mut magic)?;
    if &magic != MAGIC {
        return Err(SpecError::wire("bad magic"));
    }

    let mut resources = Vec::new();
    for _ in 0..get_u32(b)? {
        let name = get_str(b)?;
        let locus = match get_u8(b)? {
            0 => Locus::Node,
            1 => Locus::Link,
            x => return Err(SpecError::wire(format!("bad locus {x}"))),
        };
        let consumable = get_u8(b)? != 0;
        let elasticity = match get_u8(b)? {
            0 => Elasticity::Degradable,
            1 => Elasticity::Upgradable,
            2 => Elasticity::Rigid,
            x => return Err(SpecError::wire(format!("bad elasticity {x}"))),
        };
        let levels = get_levels(b)?;
        resources.push(ResourceDef { name, locus, consumable, levels, elasticity });
    }

    let mut interfaces = Vec::new();
    for _ in 0..get_u32(b)? {
        let name = get_str(b)?;
        let mut properties = Vec::new();
        for _ in 0..get_u32(b)? {
            properties.push(get_str(b)?);
        }
        let degradable = get_u8(b)? != 0;
        let mut cross_conditions = Vec::new();
        for _ in 0..get_u32(b)? {
            cross_conditions.push(get_cond(b)?);
        }
        let mut cross_effects = Vec::new();
        for _ in 0..get_u32(b)? {
            cross_effects.push(get_effect(b)?);
        }
        let cross_cost = get_expr(b)?;
        let mut levels = std::collections::BTreeMap::new();
        for _ in 0..get_u32(b)? {
            let prop = get_str(b)?;
            levels.insert(prop, get_levels(b)?);
        }
        interfaces.push(InterfaceSpec {
            name,
            properties,
            degradable,
            cross_conditions,
            cross_effects,
            cross_cost,
            levels,
        });
    }

    let mut components = Vec::new();
    for _ in 0..get_u32(b)? {
        let name = get_str(b)?;
        let requires = get_strs(b)?;
        let implements = get_strs(b)?;
        let mut conditions = Vec::new();
        for _ in 0..get_u32(b)? {
            conditions.push(get_cond(b)?);
        }
        let mut effects = Vec::new();
        for _ in 0..get_u32(b)? {
            effects.push(get_effect(b)?);
        }
        let cost = get_expr(b)?;
        let placement = match get_u8(b)? {
            0 => Placement::Anywhere,
            1 => Placement::Only(get_strs(b)?),
            x => return Err(SpecError::wire(format!("bad placement {x}"))),
        };
        components.push(ComponentSpec {
            name,
            requires,
            implements,
            conditions,
            effects,
            cost,
            placement,
        });
    }

    let mut network = Network::new();
    for _ in 0..get_u32(b)? {
        let name = get_str(b)?;
        let mut res = Vec::new();
        for _ in 0..get_u32(b)? {
            let k = get_str(b)?;
            let v = get_f64(b)?;
            res.push((k, v));
        }
        network.add_node(name, res);
    }
    for _ in 0..get_u32(b)? {
        let a = NodeId(get_u32(b)?);
        let bb = NodeId(get_u32(b)?);
        let class = match get_u8(b)? {
            0 => LinkClass::Lan,
            1 => LinkClass::Wan,
            2 => LinkClass::Other,
            x => return Err(SpecError::wire(format!("bad link class {x}"))),
        };
        let mut res = Vec::new();
        for _ in 0..get_u32(b)? {
            let k = get_str(b)?;
            let v = get_f64(b)?;
            res.push((k, v));
        }
        if a.index() >= network.num_nodes() || bb.index() >= network.num_nodes() || a == bb {
            return Err(SpecError::wire("bad link endpoints"));
        }
        network.add_link(a, bb, class, res);
    }

    let mut sources = Vec::new();
    for _ in 0..get_u32(b)? {
        let iface = get_str(b)?;
        let node = NodeId(get_u32(b)?);
        let mut properties = std::collections::BTreeMap::new();
        for _ in 0..get_u32(b)? {
            let k = get_str(b)?;
            let lo = get_f64(b)?;
            let hi = get_f64(b)?;
            properties.insert(k, Interval::new(lo, hi));
        }
        sources.push(StreamSource { iface, node, properties });
    }
    let mut pre_placed = Vec::new();
    for _ in 0..get_u32(b)? {
        let component = get_str(b)?;
        let node = NodeId(get_u32(b)?);
        pre_placed.push(PrePlacement { component, node });
    }
    let mut goals = Vec::new();
    for _ in 0..get_u32(b)? {
        let component = get_str(b)?;
        let node = NodeId(get_u32(b)?);
        goals.push(Goal { component, node });
    }

    let problem =
        CppProblem { network, resources, interfaces, components, sources, pre_placed, goals };
    problem.validate()?;
    Ok(problem)
}

// --------------------------------------------------------------- outcomes

/// Magic header of the outcome wire form (planner → client direction).
const OUTCOME_MAGIC: &[u8; 4] = b"SKO1";

/// Semantic kind of a plan step, reduced to what crosses the process
/// boundary. The spec crate sits below the compiler, so it cannot name
/// `ActionKind` — the serving layer maps kinds down to this trichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStepKind {
    /// A component placement.
    Place,
    /// An interface crossing a link.
    Cross,
    /// Anything a future domain adds.
    Other,
}

/// One step of a plan in wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStep {
    /// Rendered ground-action name.
    pub name: String,
    /// Semantic kind.
    pub kind: WireStepKind,
    /// The step's lower-bound cost contribution.
    pub cost_lb: f64,
}

/// A plan in wire form: steps, bound, concrete source bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    /// Steps in execution order.
    pub steps: Vec<WireStep>,
    /// Lower bound on the plan cost.
    pub cost_lower_bound: f64,
    /// True when this plan came from the graceful-degradation path.
    pub degraded: bool,
    /// Concrete value chosen per stream-source variable, identified by its
    /// ground-variable index (stable across identical compiles of the same
    /// problem).
    pub source_values: Vec<(u32, f64)>,
}

/// Planner run statistics in wire form (Table 2 columns plus budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Ground actions after leveling and pruning.
    pub total_actions: u64,
    /// PLRG proposition nodes.
    pub plrg_props: u64,
    /// PLRG action nodes.
    pub plrg_actions: u64,
    /// SLRG set nodes generated.
    pub slrg_nodes: u64,
    /// RG nodes created.
    pub rg_nodes: u64,
    /// RG nodes still open at exit.
    pub rg_open_left: u64,
    /// RG nodes pruned by optimistic-map replay.
    pub replay_prunes: u64,
    /// Candidate plans rejected at terminal validation.
    pub candidate_rejects: u64,
    /// Total wall time in microseconds (including compilation).
    pub total_time_us: u64,
    /// Search-only wall time in microseconds.
    pub search_time_us: u64,
    /// True if a search budget was exhausted.
    pub budget_exhausted: bool,
    /// True if specifically the wall-clock deadline tripped.
    pub deadline_hit: bool,
}

/// A planning outcome in wire form — the response payload of the serving
/// protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// The plan, if one was found (possibly degraded).
    pub plan: Option<WirePlan>,
    /// Admissible lower bound on the optimal cost when no optimal plan was
    /// returned.
    pub best_bound: Option<f64>,
    /// Optimality gap of the returned plan against the best admissible
    /// bound (`0.0` when the plan is proved optimal; present whenever the
    /// planner could bound it — anytime incumbents and degraded plans).
    pub optimality_gap: Option<f64>,
    /// Run statistics.
    pub stats: WireStats,
    /// The plan's machine-checkable certificate in its opaque `SKC1` byte
    /// form (`sekitei-cert` speaks the encoding; the spec crate ships it
    /// verbatim). Present whenever `plan` is — exact, cached, degraded and
    /// anytime responses all carry one.
    pub certificate: Option<Vec<u8>>,
}

/// Encode an outcome to bytes.
pub fn encode_outcome(o: &WireOutcome) -> Bytes {
    let mut b = BytesMut::with_capacity(256);
    b.put_slice(OUTCOME_MAGIC);
    match &o.plan {
        None => b.put_u8(0),
        Some(p) => {
            b.put_u8(1);
            b.put_u32(p.steps.len() as u32);
            for s in &p.steps {
                put_str(&mut b, &s.name);
                b.put_u8(match s.kind {
                    WireStepKind::Place => 0,
                    WireStepKind::Cross => 1,
                    WireStepKind::Other => 2,
                });
                b.put_f64(s.cost_lb);
            }
            b.put_f64(p.cost_lower_bound);
            b.put_u8(p.degraded as u8);
            b.put_u32(p.source_values.len() as u32);
            for &(v, x) in &p.source_values {
                b.put_u32(v);
                b.put_f64(x);
            }
        }
    }
    match o.best_bound {
        None => b.put_u8(0),
        Some(x) => {
            b.put_u8(1);
            b.put_f64(x);
        }
    }
    let st = &o.stats;
    for v in [
        st.total_actions,
        st.plrg_props,
        st.plrg_actions,
        st.slrg_nodes,
        st.rg_nodes,
        st.rg_open_left,
        st.replay_prunes,
        st.candidate_rejects,
        st.total_time_us,
        st.search_time_us,
    ] {
        b.put_u64(v);
    }
    b.put_u8(st.budget_exhausted as u8);
    b.put_u8(st.deadline_hit as u8);
    match o.optimality_gap {
        None => b.put_u8(0),
        Some(x) => {
            b.put_u8(1);
            b.put_f64(x);
        }
    }
    match &o.certificate {
        None => b.put_u8(0),
        Some(c) => {
            b.put_u8(1);
            b.put_u32(c.len() as u32);
            b.put_slice(c);
        }
    }
    b.freeze()
}

/// Decode an outcome from bytes.
pub fn decode_outcome(mut buf: &[u8]) -> Result<WireOutcome, SpecError> {
    let b = &mut buf;
    let mut magic = [0u8; 4];
    take(b, &mut magic)?;
    if &magic != OUTCOME_MAGIC {
        return Err(SpecError::wire("bad outcome magic"));
    }
    let plan = match get_u8(b)? {
        0 => None,
        1 => {
            let n = get_u32(b)? as usize;
            if n > 1 << 20 {
                return Err(SpecError::wire("plan too long"));
            }
            let mut steps = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_str(b)?;
                let kind = match get_u8(b)? {
                    0 => WireStepKind::Place,
                    1 => WireStepKind::Cross,
                    2 => WireStepKind::Other,
                    x => return Err(SpecError::wire(format!("bad step kind {x}"))),
                };
                let cost_lb = get_f64(b)?;
                steps.push(WireStep { name, kind, cost_lb });
            }
            let cost_lower_bound = get_f64(b)?;
            let degraded = get_u8(b)? != 0;
            let ns = get_u32(b)? as usize;
            if ns > 1 << 20 {
                return Err(SpecError::wire("too many sources"));
            }
            let mut source_values = Vec::with_capacity(ns.min(1024));
            for _ in 0..ns {
                let v = get_u32(b)?;
                let x = get_f64(b)?;
                source_values.push((v, x));
            }
            Some(WirePlan { steps, cost_lower_bound, degraded, source_values })
        }
        x => return Err(SpecError::wire(format!("bad plan tag {x}"))),
    };
    let best_bound = match get_u8(b)? {
        0 => None,
        1 => Some(get_f64(b)?),
        x => return Err(SpecError::wire(format!("bad bound tag {x}"))),
    };
    let mut words = [0u64; 10];
    for w in &mut words {
        *w = get_u64(b)?;
    }
    let budget_exhausted = get_u8(b)? != 0;
    let deadline_hit = get_u8(b)? != 0;
    let optimality_gap = match get_u8(b)? {
        0 => None,
        1 => Some(get_f64(b)?),
        x => return Err(SpecError::wire(format!("bad gap tag {x}"))),
    };
    let certificate = match get_u8(b)? {
        0 => None,
        1 => {
            let n = get_u32(b)? as usize;
            if n > 1 << 22 {
                return Err(SpecError::wire("certificate too long"));
            }
            let mut c = vec![0u8; n];
            take(b, &mut c)?;
            Some(c)
        }
        x => return Err(SpecError::wire(format!("bad certificate tag {x}"))),
    };
    if !b.is_empty() {
        return Err(SpecError::wire("trailing bytes after outcome"));
    }
    Ok(WireOutcome {
        plan,
        best_bound,
        optimality_gap,
        certificate,
        stats: WireStats {
            total_actions: words[0],
            plrg_props: words[1],
            plrg_actions: words[2],
            slrg_nodes: words[3],
            rg_nodes: words[4],
            rg_open_left: words[5],
            replay_prunes: words[6],
            candidate_rejects: words[7],
            total_time_us: words[8],
            search_time_us: words[9],
            budget_exhausted,
            deadline_hit,
        },
    })
}

// ----------------------------------------------------------- phase tables

/// Magic header of the phase-table wire form (server → client direction).
const PHASES_MAGIC: &[u8; 4] = b"SKP1";

/// Hard cap on phase rows: the server emits one row per pipeline stage
/// (queue wait, decode, compile, search, validate, encode, …), so
/// anything past this is a malformed or hostile frame.
const MAX_PHASES: usize = 64;

/// One row of a server-side self-time table: how long one named phase of
/// request handling took, exclusive of nested phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePhase {
    /// Phase name (e.g. `"search"`, `"queue_wait"`).
    pub name: String,
    /// Self time in nanoseconds.
    pub self_ns: u64,
    /// Number of slices aggregated into this row (0 allowed for phases
    /// that were skipped but still reported).
    pub count: u64,
}

/// Encode a per-phase self-time table. Riding next to an `SKO1` outcome
/// in the serving protocol, this lets `sekitei request --profile` stitch
/// the server's phase breakdown into the client's own trace.
pub fn encode_phases(phases: &[WirePhase]) -> Bytes {
    let mut b = BytesMut::with_capacity(16 + phases.len() * 32);
    b.put_slice(PHASES_MAGIC);
    b.put_u32(phases.len() as u32);
    for p in phases {
        put_str(&mut b, &p.name);
        b.put_u64(p.self_ns);
        b.put_u64(p.count);
    }
    b.freeze()
}

/// Decode a phase table; strict (trailing bytes and oversized row counts
/// are rejected).
pub fn decode_phases(mut buf: &[u8]) -> Result<Vec<WirePhase>, SpecError> {
    let b = &mut buf;
    let mut magic = [0u8; 4];
    take(b, &mut magic)?;
    if &magic != PHASES_MAGIC {
        return Err(SpecError::wire("bad phase-table magic"));
    }
    let n = get_u32(b)? as usize;
    if n > MAX_PHASES {
        return Err(SpecError::wire(format!("phase table too long ({n} rows)")));
    }
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(b)?;
        let self_ns = get_u64(b)?;
        let count = get_u64(b)?;
        phases.push(WirePhase { name, self_ns, count });
    }
    if !b.is_empty() {
        return Err(SpecError::wire("trailing bytes after phase table"));
    }
    Ok(phases)
}

// --------------------------------------------------------- cache snapshots

/// Magic header of the outcome-cache snapshot file format.
const SNAPSHOT_MAGIC: &[u8; 4] = b"SKS1";

/// Current snapshot format version. Bumping this invalidates every file
/// written by an older binary (loaders cold-start instead of guessing).
const SNAPSHOT_VERSION: u32 = 1;

/// Byte length of a snapshot file header: magic + version + fingerprint.
pub const SNAPSHOT_HEADER_LEN: usize = 4 + 4 + 8;

/// Hard cap on one cached outcome payload; mirrors the certificate cap
/// and keeps a corrupt length field from allocating gigabytes.
const MAX_SNAPSHOT_PAYLOAD: usize = 1 << 22;

/// One record of an append-only outcome-cache snapshot: the content
/// fingerprint of the problem, the outcome class (as its stable wire
/// ordinal), the reachability-graph node count, and the encoded `SKO1`
/// bytes exactly as they would be served from the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSnapshotRecord {
    /// Content hash of the problem bytes (the cache key).
    pub key: u64,
    /// Outcome-class ordinal (0..=5, matching the serving layer's
    /// six-way class partition).
    pub class: u8,
    /// Reachability-graph nodes expanded when the outcome was computed.
    pub rg_nodes: u64,
    /// Encoded `SKO1` outcome bytes.
    pub payload: Vec<u8>,
}

/// FNV-1a over a byte slice; the per-record checksum primitive. Kept
/// private — callers only see it through encode/decode.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a snapshot file header binding the file to one server build:
/// `fingerprint` hashes the planner configuration and crate version, so
/// a cache written under different search settings is never replayed.
pub fn encode_snapshot_header(fingerprint: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(SNAPSHOT_HEADER_LEN);
    b.put_slice(SNAPSHOT_MAGIC);
    b.put_u32(SNAPSHOT_VERSION);
    b.put_u64(fingerprint);
    b.freeze()
}

/// Decode a snapshot file header, returning the embedded configuration
/// fingerprint. Strict: bad magic or an unknown version is an error
/// (loaders treat either as a cold start).
pub fn decode_snapshot_header(buf: &[u8]) -> Result<u64, SpecError> {
    if buf.len() < SNAPSHOT_HEADER_LEN {
        return Err(SpecError::wire("snapshot header truncated"));
    }
    let mut b = &buf[..SNAPSHOT_HEADER_LEN];
    let mut magic = [0u8; 4];
    take(&mut b, &mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(SpecError::wire("bad snapshot magic"));
    }
    let version = get_u32(&mut b)?;
    if version != SNAPSHOT_VERSION {
        return Err(SpecError::wire(format!("unsupported snapshot version {version}")));
    }
    get_u64(&mut b)
}

/// Encode one snapshot record with a trailing FNV-1a checksum over the
/// record body, so torn appends and bit flips are detected per record.
pub fn encode_snapshot_record(r: &WireSnapshotRecord) -> Bytes {
    let mut b = BytesMut::with_capacity(29 + r.payload.len() + 8);
    b.put_u64(r.key);
    b.put_u8(r.class);
    b.put_u64(r.rg_nodes);
    b.put_u32(r.payload.len() as u32);
    b.put_slice(&r.payload);
    let sum = fnv1a(&b);
    b.put_u64(sum);
    b.freeze()
}

/// Decode one snapshot record from the front of `buf`, returning the
/// record and the number of bytes consumed so callers can walk an
/// append-only file record by record. Strict per record: a bad class,
/// an oversized or non-`SKO1` payload, or a checksum mismatch is an
/// error — the loader treats the first failure as the end of the valid
/// prefix.
pub fn decode_snapshot_record(buf: &[u8]) -> Result<(WireSnapshotRecord, usize), SpecError> {
    let b = &mut &buf[..];
    let key = get_u64(b)?;
    let class = get_u8(b)?;
    if class > 5 {
        return Err(SpecError::wire(format!("bad snapshot class {class}")));
    }
    let rg_nodes = get_u64(b)?;
    let len = get_u32(b)? as usize;
    if len > MAX_SNAPSHOT_PAYLOAD {
        return Err(SpecError::wire(format!("snapshot payload too large ({len} bytes)")));
    }
    if b.remaining() < len {
        return Err(SpecError::wire("snapshot payload truncated"));
    }
    let payload = b[..len].to_vec();
    if payload.len() < 4 || &payload[..4] != OUTCOME_MAGIC {
        return Err(SpecError::wire("snapshot payload is not an SKO1 outcome"));
    }
    *b = &b[len..];
    let body_len = 8 + 1 + 8 + 4 + len;
    let stored = get_u64(b)?;
    if stored != fnv1a(&buf[..body_len]) {
        return Err(SpecError::wire("snapshot record checksum mismatch"));
    }
    Ok((WireSnapshotRecord { key, class, rg_nodes, payload }, body_len + 8))
}

// ------------------------------------------------------------- primitives

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn put_strs(b: &mut BytesMut, ss: &[String]) {
    b.put_u32(ss.len() as u32);
    for s in ss {
        put_str(b, s);
    }
}

fn put_levels(b: &mut BytesMut, ls: &LevelSpec) {
    b.put_u32(ls.cutpoints().len() as u32);
    for &c in ls.cutpoints() {
        b.put_f64(c);
    }
}

fn put_var(b: &mut BytesMut, v: &SpecVar) {
    match v {
        SpecVar::Iface { iface, prop } => {
            b.put_u8(0);
            put_str(b, iface);
            put_str(b, prop);
        }
        SpecVar::Node { res } => {
            b.put_u8(1);
            put_str(b, res);
        }
        SpecVar::Link { res } => {
            b.put_u8(2);
            put_str(b, res);
        }
    }
}

fn put_expr(b: &mut BytesMut, e: &Expr<SpecVar>) {
    match e {
        Expr::Const(c) => {
            b.put_u8(0);
            b.put_f64(*c);
        }
        Expr::Var(v) => {
            b.put_u8(1);
            put_var(b, v);
        }
        Expr::Add(x, y) => bin(b, 2, x, y),
        Expr::Sub(x, y) => bin(b, 3, x, y),
        Expr::Mul(x, y) => bin(b, 4, x, y),
        Expr::Div(x, y) => bin(b, 5, x, y),
        Expr::Min(x, y) => bin(b, 6, x, y),
        Expr::Max(x, y) => bin(b, 7, x, y),
        Expr::Neg(x) => {
            b.put_u8(8);
            put_expr(b, x);
        }
    }
}

fn bin(b: &mut BytesMut, tag: u8, x: &Expr<SpecVar>, y: &Expr<SpecVar>) {
    b.put_u8(tag);
    put_expr(b, x);
    put_expr(b, y);
}

fn put_cond(b: &mut BytesMut, c: &Cond<SpecVar>) {
    put_expr(b, &c.lhs);
    b.put_u8(match c.op {
        CmpOp::Le => 0,
        CmpOp::Lt => 1,
        CmpOp::Ge => 2,
        CmpOp::Gt => 3,
        CmpOp::Eq => 4,
    });
    put_expr(b, &c.rhs);
}

fn put_effect(b: &mut BytesMut, e: &Effect<SpecVar>) {
    put_var(b, &e.target);
    b.put_u8(match e.op {
        AssignOp::Set => 0,
        AssignOp::Sub => 1,
        AssignOp::Add => 2,
    });
    put_expr(b, &e.value);
}

fn take(b: &mut &[u8], out: &mut [u8]) -> Result<(), SpecError> {
    if b.remaining() < out.len() {
        return Err(SpecError::wire("unexpected end of input"));
    }
    b.copy_to_slice(out);
    Ok(())
}

fn get_u8(b: &mut &[u8]) -> Result<u8, SpecError> {
    if b.remaining() < 1 {
        return Err(SpecError::wire("unexpected end of input"));
    }
    Ok(b.get_u8())
}

fn get_u32(b: &mut &[u8]) -> Result<u32, SpecError> {
    if b.remaining() < 4 {
        return Err(SpecError::wire("unexpected end of input"));
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut &[u8]) -> Result<u64, SpecError> {
    if b.remaining() < 8 {
        return Err(SpecError::wire("unexpected end of input"));
    }
    Ok(b.get_u64())
}

fn get_f64(b: &mut &[u8]) -> Result<f64, SpecError> {
    if b.remaining() < 8 {
        return Err(SpecError::wire("unexpected end of input"));
    }
    Ok(b.get_f64())
}

fn get_str(b: &mut &[u8]) -> Result<String, SpecError> {
    let len = get_u32(b)? as usize;
    if len > 1 << 20 {
        return Err(SpecError::wire("string too long"));
    }
    if b.remaining() < len {
        return Err(SpecError::wire("unexpected end of input"));
    }
    let mut bytes = vec![0u8; len];
    b.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| SpecError::wire("invalid utf-8"))
}

fn get_strs(b: &mut &[u8]) -> Result<Vec<String>, SpecError> {
    let n = get_u32(b)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_str(b)?);
    }
    Ok(out)
}

fn get_levels(b: &mut &[u8]) -> Result<LevelSpec, SpecError> {
    let n = get_u32(b)? as usize;
    let mut cuts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        cuts.push(get_f64(b)?);
    }
    LevelSpec::new(cuts).map_err(|e| SpecError::wire(e.to_string()))
}

fn get_var(b: &mut &[u8]) -> Result<SpecVar, SpecError> {
    Ok(match get_u8(b)? {
        0 => {
            let iface = get_str(b)?;
            let prop = get_str(b)?;
            SpecVar::Iface { iface, prop }
        }
        1 => SpecVar::Node { res: get_str(b)? },
        2 => SpecVar::Link { res: get_str(b)? },
        x => return Err(SpecError::wire(format!("bad var tag {x}"))),
    })
}

fn get_expr(b: &mut &[u8]) -> Result<Expr<SpecVar>, SpecError> {
    Ok(match get_u8(b)? {
        0 => Expr::Const(get_f64(b)?),
        1 => Expr::Var(get_var(b)?),
        2 => Expr::Add(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        3 => Expr::Sub(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        4 => Expr::Mul(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        5 => Expr::Div(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        6 => Expr::Min(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        7 => Expr::Max(Box::new(get_expr(b)?), Box::new(get_expr(b)?)),
        8 => Expr::Neg(Box::new(get_expr(b)?)),
        x => return Err(SpecError::wire(format!("bad expr tag {x}"))),
    })
}

fn get_cond(b: &mut &[u8]) -> Result<Cond<SpecVar>, SpecError> {
    let lhs = get_expr(b)?;
    let op = match get_u8(b)? {
        0 => CmpOp::Le,
        1 => CmpOp::Lt,
        2 => CmpOp::Ge,
        3 => CmpOp::Gt,
        4 => CmpOp::Eq,
        x => return Err(SpecError::wire(format!("bad cmp tag {x}"))),
    };
    let rhs = get_expr(b)?;
    Ok(Cond::new(lhs, op, rhs))
}

fn get_effect(b: &mut &[u8]) -> Result<Effect<SpecVar>, SpecError> {
    let target = get_var(b)?;
    let op = match get_u8(b)? {
        0 => AssignOp::Set,
        1 => AssignOp::Sub,
        2 => AssignOp::Add,
        x => return Err(SpecError::wire(format!("bad assign tag {x}"))),
    };
    let value = get_expr(b)?;
    Ok(Effect::new(target, op, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sekitei_model::LevelScenario;
    use sekitei_topology::scenarios;

    #[test]
    fn roundtrip_all_canonical_problems() {
        let problems = vec![
            scenarios::tiny(LevelScenario::A),
            scenarios::tiny(LevelScenario::E),
            scenarios::small(LevelScenario::C),
            scenarios::tradeoff(0.5),
        ];
        for p in problems {
            let bytes = encode(&p);
            let q = decode(&bytes).unwrap();
            assert_eq!(p.resources, q.resources);
            assert_eq!(p.interfaces, q.interfaces);
            assert_eq!(p.components, q.components);
            assert_eq!(p.sources, q.sources);
            assert_eq!(p.pre_placed, q.pre_placed);
            assert_eq!(p.goals, q.goals);
            assert_eq!(p.network.num_nodes(), q.network.num_nodes());
            assert_eq!(p.network.num_links(), q.network.num_links());
        }
    }

    #[test]
    fn roundtrip_large_is_compact() {
        let p = scenarios::large(LevelScenario::D);
        let bytes = encode(&p);
        // 93-node network with full domain fits comfortably under 32 KiB
        assert!(bytes.len() < 32 * 1024, "{} bytes", bytes.len());
        let q = decode(&bytes).unwrap();
        assert_eq!(q.network.num_nodes(), 93);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"XXXX123"), Err(SpecError::Wire(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let p = scenarios::tiny(LevelScenario::C);
        let bytes = encode(&p);
        // every strict prefix must fail cleanly, never panic
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    fn sample_outcome(with_plan: bool) -> WireOutcome {
        WireOutcome {
            plan: with_plan.then(|| WirePlan {
                steps: vec![
                    WireStep {
                        name: "place(Splitter,n0)[M=1]".into(),
                        kind: WireStepKind::Place,
                        cost_lb: 1.0,
                    },
                    WireStep {
                        name: "cross(Z,n0→n1)".into(),
                        kind: WireStepKind::Cross,
                        cost_lb: 0.35,
                    },
                ],
                cost_lower_bound: 1.35,
                degraded: true,
                source_values: vec![(7, 92.5)],
            }),
            best_bound: Some(1.25),
            optimality_gap: Some(0.1),
            stats: WireStats {
                total_actions: 96,
                plrg_props: 40,
                plrg_actions: 96,
                slrg_nodes: 200,
                rg_nodes: 5000,
                rg_open_left: 120,
                replay_prunes: 300,
                candidate_rejects: 2,
                total_time_us: 1234,
                search_time_us: 1000,
                budget_exhausted: true,
                deadline_hit: true,
            },
            certificate: with_plan.then(|| b"SKC1-opaque-blob".to_vec()),
        }
    }

    #[test]
    fn outcome_roundtrip_identity() {
        for with_plan in [true, false] {
            let o = sample_outcome(with_plan);
            let bytes = encode_outcome(&o);
            let q = decode_outcome(&bytes).unwrap();
            assert_eq!(o, q);
            // encode→decode→encode is the identity on bytes
            assert_eq!(bytes, encode_outcome(&q));
        }
    }

    #[test]
    fn outcome_rejects_bad_magic() {
        assert!(matches!(decode_outcome(b"SKT1\x00\x00"), Err(SpecError::Wire(_))));
        assert!(matches!(decode_outcome(b""), Err(SpecError::Wire(_))));
    }

    #[test]
    fn outcome_rejects_truncation_everywhere() {
        let bytes = encode_outcome(&sample_outcome(true));
        for cut in 0..bytes.len() {
            assert!(decode_outcome(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn outcome_rejects_trailing_bytes() {
        let mut bytes = encode_outcome(&sample_outcome(true)).to_vec();
        bytes.push(0);
        assert!(decode_outcome(&bytes).is_err());
    }

    #[test]
    fn phase_table_roundtrip_and_rejections() {
        let phases = vec![
            WirePhase { name: "queue_wait".into(), self_ns: 1200, count: 1 },
            WirePhase { name: "search".into(), self_ns: 81_000, count: 1 },
            WirePhase { name: "encode".into(), self_ns: 0, count: 0 },
        ];
        let bytes = encode_phases(&phases);
        assert_eq!(decode_phases(&bytes).unwrap(), phases);
        // Empty tables are legal (profile not requested / nothing timed).
        assert_eq!(decode_phases(&encode_phases(&[])).unwrap(), vec![]);
        // Strictness: truncation, trailing bytes, bad magic, runaway count.
        for cut in 0..bytes.len() {
            assert!(decode_phases(&bytes[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert!(decode_phases(&trailing).is_err());
        assert!(decode_phases(b"SKO1\x00\x00\x00\x00").is_err());
        let mut huge = b"SKP1".to_vec();
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_phases(&huge).is_err());
    }

    #[test]
    fn rejects_corrupt_tags() {
        let p = scenarios::tiny(LevelScenario::C);
        let bytes = encode(&p).to_vec();
        // flip a byte in the middle; must error or produce a validated
        // problem — never panic
        for i in (4..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let _ = decode(&corrupt);
        }
    }

    fn sample_snapshot_record(seed: u64) -> WireSnapshotRecord {
        WireSnapshotRecord {
            key: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            class: (seed % 6) as u8,
            rg_nodes: seed * 31,
            payload: encode_outcome(&sample_outcome(seed % 2 == 0)).to_vec(),
        }
    }

    #[test]
    fn snapshot_header_roundtrip_and_rejections() {
        let bytes = encode_snapshot_header(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(bytes.len(), SNAPSHOT_HEADER_LEN);
        assert_eq!(decode_snapshot_header(&bytes).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        for cut in 0..bytes.len() {
            assert!(decode_snapshot_header(&bytes[..cut]).is_err());
        }
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] = b'X';
        assert!(decode_snapshot_header(&bad_magic).is_err());
        let mut bad_version = bytes.to_vec();
        bad_version[7] = 99;
        assert!(decode_snapshot_header(&bad_version).is_err());
    }

    #[test]
    fn snapshot_record_roundtrip_reports_consumed_length() {
        let records: Vec<_> = (1..=4).map(sample_snapshot_record).collect();
        let mut file = Vec::new();
        for r in &records {
            file.extend_from_slice(&encode_snapshot_record(r));
        }
        let mut rest = &file[..];
        for want in &records {
            let (got, used) = decode_snapshot_record(rest).unwrap();
            assert_eq!(&got, want);
            rest = &rest[used..];
        }
        assert!(rest.is_empty());
    }

    #[test]
    fn snapshot_record_rejects_truncation_and_bad_fields() {
        let bytes = encode_snapshot_record(&sample_snapshot_record(3));
        for cut in 0..bytes.len() {
            assert!(decode_snapshot_record(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        // class out of range
        let mut bad = bytes.to_vec();
        bad[8] = 6;
        assert!(decode_snapshot_record(&bad).is_err());
        // payload that is not SKO1
        let not_sko = WireSnapshotRecord { key: 1, class: 0, rg_nodes: 0, payload: vec![0; 16] };
        assert!(decode_snapshot_record(&encode_snapshot_record(&not_sko)).is_err());
    }

    #[test]
    fn snapshot_record_seeded_corruption_never_passes_checksum() {
        // xorshift-style seeded sweep: flip one byte at a pseudo-random
        // offset each round; every corruption must be rejected, never
        // panic, and never decode to a different record silently.
        let r = sample_snapshot_record(7);
        let bytes = encode_snapshot_record(&r).to_vec();
        let mut state: u64 = 0x1234_5678_9ABC_DEF0;
        for _ in 0..256 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pos = (state % bytes.len() as u64) as usize;
            let bit = 1u8 << (state >> 32 & 7);
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= bit;
            match decode_snapshot_record(&corrupt) {
                Err(_) => {}
                Ok((got, used)) => {
                    // only reachable if the flip cancelled out, which a
                    // single-bit flip cannot do
                    panic!("corrupt record decoded: {got:?} ({used} bytes)");
                }
            }
        }
    }
}
