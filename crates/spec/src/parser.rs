//! Recursive-descent parser for the Sekitei specification language.
//!
//! Grammar (brace-based rendering of the paper's Figures 2/6):
//!
//! ```text
//! spec      := item*
//! item      := resource | interface | component | network | problem
//! resource  := "resource" ("node"|"link") IDENT
//!              ("levels" "[" NUM ("," NUM)* "]")?
//!              ("degradable"|"upgradable"|"rigid")? ("static")? ";"
//! interface := "interface" IDENT "{"
//!                ("property" IDENT ("," IDENT)* ";")*
//!                ("degradable" ";" | "rigid" ";")?
//!                ("levels" IDENT "[" NUM ("," NUM)* "]" ";")*
//!                ("cross" "{" ("when" condblock)? ("effect" effblock)?
//!                             ("cost" expr ";")? "}")?
//!              "}"
//! component := "component" IDENT "{"
//!                ("requires" IDENT ("," IDENT)* ";")?
//!                ("implements" IDENT ("," IDENT)* ";")?
//!                ("when" condblock)? ("effect" effblock)?
//!                ("cost" expr ";")? ("only" "on" IDENT ("," IDENT)* ";")?
//!              "}"
//! network   := "network" "{" (node | link)* "}"
//! node      := "node" IDENT "{" (IDENT NUM ";")* "}"
//! link      := "link" IDENT "--" IDENT ("lan"|"wan")? "{" (IDENT NUM ";")* "}"
//! problem   := "problem" "{"
//!                ("source" IDENT "at" IDENT "{"
//!                    (IDENT "up" "to" NUM ";" | IDENT "in" "[" NUM "," NUM "]" ";")* "}")*
//!                ("placed" IDENT "at" IDENT ";")*
//!                ("goal" IDENT "at" IDENT ";")*
//!              "}"
//! condblock := "{" (expr CMP expr ";")* "}"
//! effblock  := "{" (lval (":="|"-="|"+=") expr ";")* "}"
//! expr      := term (("+"|"-") term)*     — usual precedence
//! factor    := NUM | "-" factor | "(" expr ")"
//!            | ("min"|"max") "(" expr "," expr ")" | lval
//! lval      := IDENT "." IDENT            — `node.`/`link.` are resources
//! ```

use crate::error::SpecError;
use crate::lexer::{lex, Spanned, Tok};
use sekitei_model::resource::{Elasticity, Locus};
use sekitei_model::{
    AssignOp, CmpOp, ComponentSpec, Cond, CppProblem, Effect, Expr, Goal, InterfaceSpec, Interval,
    LevelSpec, LinkClass, Network, Placement, PrePlacement, ResourceDef, SEffect, SExpr, SpecVar,
    StreamSource,
};
use std::collections::BTreeMap;

/// Parse a complete specification into a validated [`CppProblem`].
pub fn parse_problem(src: &str) -> Result<CppProblem, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let problem = p.spec()?;
    problem.validate()?;
    Ok(problem)
}

/// Parse a standalone expression (the formula sub-language of `cost`,
/// `when` and `effect` clauses). The whole input must be consumed.
pub fn parse_expr(src: &str) -> Result<SExpr, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(SpecError::parse(p.line(), "trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map(|s| s.line).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SpecError> {
        let line = self.line();
        match self.next() {
            Some(got) if got == *t => Ok(()),
            Some(got) => Err(SpecError::parse(line, format!("expected `{t}`, found `{got}`"))),
            None => Err(SpecError::parse(0, format!("expected `{t}`"))),
        }
    }

    fn ident(&mut self) -> Result<String, SpecError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(got) => Err(SpecError::parse(line, format!("expected identifier, found `{got}`"))),
            None => Err(SpecError::parse(0, "expected identifier")),
        }
    }

    fn num(&mut self) -> Result<f64, SpecError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(got) => Err(SpecError::parse(line, format!("expected number, found `{got}`"))),
            None => Err(SpecError::parse(0, "expected number")),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SpecError> {
        let line = self.line();
        if self.eat_ident(kw) {
            Ok(())
        } else {
            Err(SpecError::parse(line, format!("expected `{kw}`")))
        }
    }

    // ----------------------------------------------------------- top level

    fn spec(&mut self) -> Result<CppProblem, SpecError> {
        let mut problem = CppProblem {
            network: Network::new(),
            resources: Vec::new(),
            interfaces: Vec::new(),
            components: Vec::new(),
            sources: Vec::new(),
            pre_placed: Vec::new(),
            goals: Vec::new(),
        };
        while let Some(tok) = self.peek() {
            let line = self.line();
            match tok {
                Tok::Ident(kw) => match kw.as_str() {
                    "resource" => {
                        self.pos += 1;
                        let r = self.resource()?;
                        problem.resources.push(r);
                    }
                    "interface" => {
                        self.pos += 1;
                        let i = self.interface()?;
                        problem.interfaces.push(i);
                    }
                    "component" => {
                        self.pos += 1;
                        let c = self.component()?;
                        problem.components.push(c);
                    }
                    "network" => {
                        self.pos += 1;
                        self.network(&mut problem.network)?;
                    }
                    "problem" => {
                        self.pos += 1;
                        self.problem_block(&mut problem)?;
                    }
                    other => {
                        return Err(SpecError::parse(
                            line,
                            format!("expected a top-level item, found `{other}`"),
                        ))
                    }
                },
                other => {
                    return Err(SpecError::parse(
                        line,
                        format!("expected a top-level item, found `{other}`"),
                    ))
                }
            }
        }
        Ok(problem)
    }

    fn levels_list(&mut self) -> Result<LevelSpec, SpecError> {
        let line = self.line();
        self.expect(&Tok::LBracket)?;
        let mut cuts = Vec::new();
        if self.peek() != Some(&Tok::RBracket) {
            loop {
                cuts.push(self.num()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBracket)?;
        LevelSpec::new(cuts).map_err(|e| SpecError::parse(line, e.to_string()))
    }

    fn resource(&mut self) -> Result<ResourceDef, SpecError> {
        let line = self.line();
        let locus = match self.ident()?.as_str() {
            "node" => Locus::Node,
            "link" => Locus::Link,
            other => {
                return Err(SpecError::parse(
                    line,
                    format!("expected `node` or `link`, found `{other}`"),
                ))
            }
        };
        let name = self.ident()?;
        let mut def = ResourceDef {
            name,
            locus,
            consumable: true,
            levels: LevelSpec::trivial(),
            elasticity: Elasticity::Degradable,
        };
        loop {
            if self.eat_ident("levels") {
                def.levels = self.levels_list()?;
            } else if self.eat_ident("degradable") {
                def.elasticity = Elasticity::Degradable;
            } else if self.eat_ident("upgradable") {
                def.elasticity = Elasticity::Upgradable;
            } else if self.eat_ident("rigid") {
                def.elasticity = Elasticity::Rigid;
            } else if self.eat_ident("static") {
                def.consumable = false;
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(def)
    }

    fn interface(&mut self) -> Result<InterfaceSpec, SpecError> {
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut spec = InterfaceSpec {
            name,
            properties: Vec::new(),
            degradable: true,
            cross_conditions: Vec::new(),
            cross_effects: Vec::new(),
            cross_cost: Expr::c(1.0),
            levels: BTreeMap::new(),
        };
        while self.peek() != Some(&Tok::RBrace) {
            let line = self.line();
            if self.eat_ident("property") {
                loop {
                    spec.properties.push(self.ident()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("degradable") {
                spec.degradable = true;
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("rigid") {
                spec.degradable = false;
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("levels") {
                let prop = self.ident()?;
                let ls = self.levels_list()?;
                spec.levels.insert(prop, ls);
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("cross") {
                self.expect(&Tok::LBrace)?;
                while self.peek() != Some(&Tok::RBrace) {
                    if self.eat_ident("when") {
                        spec.cross_conditions.extend(self.cond_block()?);
                    } else if self.eat_ident("effect") {
                        spec.cross_effects.extend(self.eff_block()?);
                    } else if self.eat_ident("cost") {
                        spec.cross_cost = self.expr()?;
                        self.expect(&Tok::Semi)?;
                    } else {
                        return Err(SpecError::parse(
                            self.line(),
                            "expected `when`, `effect` or `cost` in cross block",
                        ));
                    }
                }
                self.expect(&Tok::RBrace)?;
            } else {
                return Err(SpecError::parse(line, "unexpected item in interface block"));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(spec)
    }

    fn component(&mut self) -> Result<ComponentSpec, SpecError> {
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut spec = ComponentSpec::new(name);
        while self.peek() != Some(&Tok::RBrace) {
            let line = self.line();
            if self.eat_ident("requires") {
                loop {
                    let i = self.ident()?;
                    spec.requires.push(i);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("implements") {
                loop {
                    let i = self.ident()?;
                    spec.implements.push(i);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("when") {
                spec.conditions.extend(self.cond_block()?);
            } else if self.eat_ident("effect") {
                spec.effects.extend(self.eff_block()?);
            } else if self.eat_ident("cost") {
                spec.cost = self.expr()?;
                self.expect(&Tok::Semi)?;
            } else if self.eat_ident("only") {
                self.expect_kw("on")?;
                let mut nodes = Vec::new();
                loop {
                    nodes.push(self.ident()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
                spec.placement = Placement::Only(nodes);
            } else {
                return Err(SpecError::parse(line, "unexpected item in component block"));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(spec)
    }

    fn network(&mut self, net: &mut Network) -> Result<(), SpecError> {
        self.expect(&Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let line = self.line();
            if self.eat_ident("node") {
                let name = self.ident()?;
                let res = self.res_block()?;
                net.add_node(name, res);
            } else if self.eat_ident("link") {
                let a = self.ident()?;
                self.expect(&Tok::DashDash)?;
                let b = self.ident()?;
                let class = if self.eat_ident("lan") {
                    LinkClass::Lan
                } else if self.eat_ident("wan") {
                    LinkClass::Wan
                } else {
                    LinkClass::Other
                };
                let res = self.res_block()?;
                let na = net
                    .node_by_name(&a)
                    .ok_or_else(|| SpecError::parse(line, format!("unknown node `{a}`")))?;
                let nb = net
                    .node_by_name(&b)
                    .ok_or_else(|| SpecError::parse(line, format!("unknown node `{b}`")))?;
                net.add_link(na, nb, class, res);
            } else {
                return Err(SpecError::parse(line, "expected `node` or `link`"));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    fn res_block(&mut self) -> Result<Vec<(String, f64)>, SpecError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let name = self.ident()?;
            let val = self.num()?;
            self.expect(&Tok::Semi)?;
            out.push((name, val));
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn problem_block(&mut self, problem: &mut CppProblem) -> Result<(), SpecError> {
        self.expect(&Tok::LBrace)?;
        while self.peek() != Some(&Tok::RBrace) {
            let line = self.line();
            if self.eat_ident("source") {
                let iface = self.ident()?;
                self.expect_kw("at")?;
                let node_name = self.ident()?;
                let node = problem
                    .network
                    .node_by_name(&node_name)
                    .ok_or_else(|| SpecError::parse(line, format!("unknown node `{node_name}`")))?;
                self.expect(&Tok::LBrace)?;
                let mut properties = BTreeMap::new();
                while self.peek() != Some(&Tok::RBrace) {
                    let prop = self.ident()?;
                    if self.eat_ident("up") {
                        self.expect_kw("to")?;
                        let max = self.num()?;
                        properties.insert(prop, Interval::new(0.0, max));
                    } else if self.eat_ident("in") {
                        self.expect(&Tok::LBracket)?;
                        let lo = self.num()?;
                        self.expect(&Tok::Comma)?;
                        let hi = self.num()?;
                        self.expect(&Tok::RBracket)?;
                        properties.insert(prop, Interval::new(lo, hi));
                    } else {
                        return Err(SpecError::parse(self.line(), "expected `up to` or `in`"));
                    }
                    self.expect(&Tok::Semi)?;
                }
                self.expect(&Tok::RBrace)?;
                problem.sources.push(StreamSource { iface, node, properties });
            } else if self.eat_ident("placed") {
                let component = self.ident()?;
                self.expect_kw("at")?;
                let node_name = self.ident()?;
                let node = problem
                    .network
                    .node_by_name(&node_name)
                    .ok_or_else(|| SpecError::parse(line, format!("unknown node `{node_name}`")))?;
                self.expect(&Tok::Semi)?;
                problem.pre_placed.push(PrePlacement { component, node });
            } else if self.eat_ident("goal") {
                let component = self.ident()?;
                self.expect_kw("at")?;
                let node_name = self.ident()?;
                let node = problem
                    .network
                    .node_by_name(&node_name)
                    .ok_or_else(|| SpecError::parse(line, format!("unknown node `{node_name}`")))?;
                self.expect(&Tok::Semi)?;
                problem.goals.push(Goal { component, node });
            } else {
                return Err(SpecError::parse(line, "expected `source`, `placed` or `goal`"));
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(())
    }

    // --------------------------------------------------------- expressions

    fn cond_block(&mut self) -> Result<Vec<Cond<SpecVar>>, SpecError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let lhs = self.expr()?;
            let line = self.line();
            let op = match self.next() {
                Some(Tok::Le) => CmpOp::Le,
                Some(Tok::Lt) => CmpOp::Lt,
                Some(Tok::Ge) => CmpOp::Ge,
                Some(Tok::Gt) => CmpOp::Gt,
                Some(Tok::EqEq) => CmpOp::Eq,
                other => {
                    return Err(SpecError::parse(
                        line,
                        format!("expected comparison operator, found `{:?}`", other),
                    ))
                }
            };
            let rhs = self.expr()?;
            self.expect(&Tok::Semi)?;
            out.push(Cond::new(lhs, op, rhs));
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn eff_block(&mut self) -> Result<Vec<SEffect>, SpecError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let target = self.lval()?;
            let line = self.line();
            let op = match self.next() {
                Some(Tok::Assign) => AssignOp::Set,
                Some(Tok::SubAssign) => AssignOp::Sub,
                Some(Tok::AddAssign) => AssignOp::Add,
                other => {
                    return Err(SpecError::parse(
                        line,
                        format!("expected `:=`, `-=` or `+=`, found `{:?}`", other),
                    ))
                }
            };
            let value = self.expr()?;
            self.expect(&Tok::Semi)?;
            out.push(Effect::new(target, op, value));
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn lval(&mut self) -> Result<SpecVar, SpecError> {
        let owner = self.ident()?;
        self.expect(&Tok::Dot)?;
        let field = self.ident()?;
        Ok(match owner.as_str() {
            "node" => SpecVar::node(field),
            "link" => SpecVar::link(field),
            _ => SpecVar::iface(owner, field),
        })
    }

    fn expr(&mut self) -> Result<SExpr, SpecError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    lhs = lhs + self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    lhs = lhs - self.term()?;
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<SExpr, SpecError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    lhs = lhs * self.factor()?;
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    lhs = lhs / self.factor()?;
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<SExpr, SpecError> {
        let line = self.line();
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::c(n))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "min" || name == "max" => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(if name == "min" { a.min_e(b) } else { a.max_e(b) })
            }
            Some(Tok::Ident(_)) => Ok(Expr::var(self.lval()?)),
            other => Err(SpecError::parse(line, format!("expected expression, found `{other:?}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MERGER: &str = r#"
        resource node cpu;
        resource link lbw;
        interface T { property ibw; }
        interface I { property ibw; }
        interface M {
            property ibw;
            degradable;
            levels ibw [30, 70, 90, 100];
            cross {
                effect {
                    link.lbw -= min(M.ibw, link.lbw);
                    M.ibw := min(M.ibw, link.lbw);
                }
                cost 1 + M.ibw / 10;
            }
        }
        component Merger {
            requires T, I;
            implements M;
            when {
                node.cpu >= (T.ibw + I.ibw) / 5;
                T.ibw * 3 == I.ibw * 7;
            }
            effect {
                M.ibw := T.ibw + I.ibw;
                node.cpu -= (T.ibw + I.ibw) / 5;
            }
            cost 1 + (T.ibw + I.ibw) / 10;
        }
        component Client {
            requires M;
            when { M.ibw >= 90; }
            cost 1 + M.ibw / 10;
        }
        network {
            node n0 { cpu 30; }
            node n1 { cpu 30; }
            link n0 -- n1 wan { lbw 70; }
        }
        problem {
            source M at n0 { ibw up to 200; }
            goal Client at n1;
        }
    "#;

    #[test]
    fn parses_figure2_style_spec() {
        let p = parse_problem(MERGER).unwrap();
        assert_eq!(p.components.len(), 2);
        assert_eq!(p.interfaces.len(), 3);
        let merger = &p.components[0];
        assert_eq!(merger.name, "Merger");
        assert_eq!(merger.requires, vec!["T", "I"]);
        assert_eq!(merger.conditions.len(), 2);
        assert_eq!(merger.effects.len(), 2);
        let m = p.interfaces.iter().find(|i| i.name == "M").unwrap();
        assert_eq!(m.levels_of("ibw").cutpoints(), &[30.0, 70.0, 90.0, 100.0]);
        assert_eq!(p.network.num_nodes(), 2);
        assert_eq!(p.sources.len(), 1);
        assert_eq!(p.goals.len(), 1);
    }

    #[test]
    fn parsed_formulas_evaluate_like_figure2() {
        let p = parse_problem(MERGER).unwrap();
        let merger = &p.components[0];
        let mut env = |v: &SpecVar| match v {
            SpecVar::Iface { iface, .. } if iface == "T" => 63.0,
            SpecVar::Iface { iface, .. } if iface == "I" => 27.0,
            SpecVar::Node { .. } => 30.0,
            _ => 0.0,
        };
        assert!(merger.conditions.iter().all(|c| c.holds(&mut env)));
        assert_eq!(merger.cost.eval(&mut env), 10.0);
    }

    #[test]
    fn parsed_problem_plans() {
        let p = parse_problem(MERGER).unwrap();
        // no splitter in this domain, so the 70-unit link makes it
        // unsolvable — the planner must terminate cleanly
        let o = sekitei_planner::Planner::default().plan(&p).unwrap();
        assert!(o.plan.is_none());
    }

    #[test]
    fn precedence_and_unary() {
        let src = r#"
            resource node cpu;
            resource link lbw;
            interface X { property v; }
            component C {
                requires X;
                when { X.v >= 1 + 2 * 3; }
                cost -X.v + 2 * (3 - 1);
            }
            network { node a { cpu 1; } }
            problem { source X at a { v up to 5; } goal C at a; }
        "#;
        let p = parse_problem(src).unwrap();
        let c = &p.components[0];
        // 1 + 2*3 = 7
        let mut env = |_: &SpecVar| 10.0;
        assert!(c.conditions[0].holds(&mut env));
        assert_eq!(c.cost.eval(&mut env), -10.0 + 4.0);
    }

    #[test]
    fn error_reporting_has_lines() {
        let err = parse_problem("component {").unwrap_err();
        match err {
            SpecError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse_problem("network { link a -- b { } }").is_err());
        assert!(parse_problem("problem { goal C at nowhere; }").is_err());
        assert!(parse_problem("bogus").is_err());
    }

    #[test]
    fn validation_errors_surface() {
        // goal references unknown component
        let src = r#"
            resource node cpu;
            network { node a { cpu 1; } }
            problem { goal Ghost at a; }
        "#;
        assert!(matches!(parse_problem(src), Err(SpecError::Model(_))));
    }

    #[test]
    fn only_on_placement() {
        let src = r#"
            resource node cpu;
            interface X { property v; }
            component C { requires X; only on a; }
            network { node a { cpu 1; } node b { cpu 1; } }
            problem { source X at a { v up to 5; } goal C at a; }
        "#;
        let p = parse_problem(src).unwrap();
        assert_eq!(p.components[0].placement, Placement::Only(vec!["a".into()]));
    }

    #[test]
    fn source_interval_form() {
        let src = r#"
            resource node cpu;
            interface X { property v; }
            component C { requires X; }
            network { node a { cpu 1; } }
            problem { source X at a { v in [3, 9]; } goal C at a; }
        "#;
        let p = parse_problem(src).unwrap();
        assert_eq!(p.sources[0].properties["v"], Interval::new(3.0, 9.0));
    }

    #[test]
    fn resource_options() {
        let src = r#"
            resource node cpu static rigid;
            resource link lbw levels [31, 62] degradable;
            network { node a { cpu 1; } }
            interface X { property v; }
            component C { requires X; }
            problem { source X at a { v up to 5; } goal C at a; }
        "#;
        let p = parse_problem(src).unwrap();
        let cpu = p.resource("cpu").unwrap();
        assert!(!cpu.consumable);
        assert_eq!(cpu.elasticity, Elasticity::Rigid);
        let lbw = p.resource("lbw").unwrap();
        assert_eq!(lbw.levels.cutpoints(), &[31.0, 62.0]);
    }
}
